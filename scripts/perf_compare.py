#!/usr/bin/env python3
"""Compare two BENCH_*.json exports (schema eden-bench-v1).

    scripts/perf_compare.py BASELINE.json AFTER.json [--threshold PCT]

Prints, for every counter and gauge present in either file, the before/after
values and the relative change, and for every histogram the mean and p99
deltas. Rows whose |change| is below --threshold (default 1%) are folded into
a summary line so regressions stand out.

By default this is a reporting tool and always exits 0. With --gate PCT it
becomes a CI gate: any histogram mean_us/p99_us that grew by more than PCT
percent (histograms record latencies, so growth is a regression) is listed
and the exit status is 1.

Typical use, from the repository root:

    ./build/bench/bench_throughput --json=/tmp/before.json   # on main
    ./build/bench/bench_throughput --json=/tmp/after.json    # on your branch
    scripts/perf_compare.py /tmp/before.json /tmp/after.json

or `cmake --build build --target bench_compare` after dropping the two files
at BENCH_baseline.json / BENCH_after.json in the repository root.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if doc.get("schema") != "eden-bench-v1":
        print(f"warning: {path} has schema {doc.get('schema')!r}, "
              "expected eden-bench-v1", file=sys.stderr)
    return doc


def fmt(value):
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}"
    return f"{int(value):,}"


def change_pct(before, after):
    if before == 0:
        return None if after == 0 else float("inf")
    return 100.0 * (after - before) / before


def emit_row(name, before, after, threshold, folded):
    pct = change_pct(before, after)
    if pct is None or (pct != float("inf") and abs(pct) < threshold):
        folded.append(name)
        return
    arrow = "new" if pct == float("inf") else f"{pct:+8.1f}%"
    print(f"  {name:<42} {fmt(before):>16} -> {fmt(after):>16}  {arrow}")


def compare_section(title, before, after, threshold):
    names = sorted(set(before) | set(after))
    if not names:
        return
    print(f"{title}:")
    folded = []
    for name in names:
        emit_row(name, before.get(name, 0), after.get(name, 0),
                 threshold, folded)
    if folded:
        print(f"  ({len(folded)} within +/-{threshold:g}%: "
              f"{', '.join(folded[:4])}{', ...' if len(folded) > 4 else ''})")
    print()


def compare_histograms(before, after, threshold, gate=None):
    """Prints the histogram diff; returns [(row, pct)] rows that grew > gate."""
    names = sorted(set(before) | set(after))
    rows = []
    for name in names:
        b, a = before.get(name, {}), after.get(name, {})
        if b.get("count", 0) == 0 and a.get("count", 0) == 0:
            continue
        for stat in ("mean_us", "p99_us"):
            rows.append((f"{name}.{stat}", b.get(stat, 0), a.get(stat, 0)))
    regressions = []
    if not rows:
        return regressions
    print("histograms:")
    folded = []
    for name, b, a in rows:
        emit_row(name, b, a, threshold, folded)
        if gate is not None and b > 0:
            pct = change_pct(b, a)
            if pct is not None and pct > gate:
                regressions.append((name, pct))
    if folded:
        print(f"  ({len(folded)} within +/-{threshold:g}%)")
    print()
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description="Diff two eden-bench-v1 JSON exports.")
    parser.add_argument("baseline")
    parser.add_argument("after")
    parser.add_argument("--threshold", type=float, default=1.0,
                        help="fold rows changing less than this %% (default 1)")
    parser.add_argument("--gate", type=float, default=None, metavar="PCT",
                        help="exit 1 if any histogram mean/p99 grew by more "
                             "than PCT%% (latency regression gate)")
    args = parser.parse_args()

    base = load(args.baseline)
    new = load(args.after)
    if base.get("bench") != new.get("bench"):
        print(f"warning: comparing different benches "
              f"({base.get('bench')!r} vs {new.get('bench')!r})",
              file=sys.stderr)

    print(f"bench: {new.get('bench')}   "
          f"baseline: {args.baseline}   after: {args.after}\n")
    bm, nm = base.get("metrics", {}), new.get("metrics", {})
    compare_section("counters", bm.get("counters", {}),
                    nm.get("counters", {}), args.threshold)
    compare_section("gauges", bm.get("gauges", {}),
                    nm.get("gauges", {}), args.threshold)
    regressions = compare_histograms(bm.get("histograms", {}),
                                     nm.get("histograms", {}), args.threshold,
                                     args.gate)
    if args.gate is not None and regressions:
        print(f"GATE FAILED: {len(regressions)} histogram stat(s) regressed "
              f"more than {args.gate:g}%:")
        for name, pct in regressions:
            print(f"  {name}  +{pct:.1f}%")
        sys.exit(1)


if __name__ == "__main__":
    main()
