#!/usr/bin/env sh
# Tier-1 CI for the Eden repo:
#
#   1. Configure + build the default (RelWithDebInfo) tree and run the whole
#      test suite (the `check` target).
#   2. Configure + build an ASan+UBSan tree at build-asan and run the suite
#      there too (catches lifetime bugs the fast build hides).
#   3. Smoke-run the storage benchmark (--quick) so the perf harness itself
#      stays green; the JSON export lands in the asan build dir and is
#      discarded.
#   4. Chaos smoke: re-run the seeded fault-matrix shard on its own, then run
#      bench_chaos --quick and gate its recovery/availability histograms
#      against the committed baseline (bench/baselines/BENCH_bench_chaos.json;
#      virtual-time metrics, so the comparison is machine-independent).
#      Regenerate the baseline with
#        build/bench/bench_chaos --quick --json=bench/baselines/BENCH_bench_chaos.json
#      when a change intentionally moves recovery latency.
#   5. Tracing smoke: run trace_test under the ASan tree on its own (the span
#      collector is the newest lifetime-heavy code), then bench_tracing
#      --quick gated against bench/baselines/BENCH_bench_tracing.json. The
#      gated histograms are invocations-per-segment with tracing off/on —
#      virtual-time counts that the determinism suite pins to be identical
#      with and without a collector, so any drift means the tracing layer
#      started doing simulated work (the "disabled overhead" contract).
#      Regenerate with
#        build/bench/bench_tracing --quick --json=bench/baselines/BENCH_bench_tracing.json
#      when the workload itself intentionally changes.
#   6. Location smoke: run location_test under the ASan tree on its own (the
#      directory backend is the newest kernel code), then bench_location
#      --quick gated against bench/baselines/BENCH_bench_location.json. The
#      gated histograms are the cold-resolve and Zipf-churn virtual-time
#      series for both backends — the broadcast-vs-directory ablation of
#      EXPERIMENTS.md E15. Regenerate with
#        build/bench/bench_location --quick --json=bench/baselines/BENCH_bench_location.json
#      when locate behavior intentionally changes.
#   7. Lease smoke: run lease_test under the ASan tree on its own (the lease
#      cache and recall coroutine paths are the newest lifetime-heavy kernel
#      code), then bench_lease --quick gated against
#      bench/baselines/BENCH_bench_lease.json. The gated histograms are the
#      hot-object read-mix virtual-time series with leases off/on plus the
#      recall round — the caching win and its write-side cost from
#      EXPERIMENTS.md E17. Regenerate with
#        build/bench/bench_lease --quick --json=bench/baselines/BENCH_bench_lease.json
#      when lease behavior intentionally changes.
#   8. Membership smoke: run membership_test under the ASan tree on its own
#      (the drain/rebalance coroutines and the directory handoff path are the
#      newest lifetime-heavy kernel code), re-run the seeded rolling-restart
#      chaos case on the fast build (zero lost/duplicated invocations under
#      wire faults, bit-identical across two same-seed runs), then
#      bench_membership --quick gated against
#      bench/baselines/BENCH_bench_membership.json. The gated histograms are
#      drain evacuation time and the steady-state vs rolling-restart workload
#      p99 — the SLO numbers of EXPERIMENTS.md E18. Regenerate with
#        build/bench/bench_membership --quick --json=bench/baselines/BENCH_bench_membership.json
#      when drain pacing or restart behavior intentionally changes.
#   9. Telemetry smoke: run telemetry_test under the ASan tree on its own
#      (the scrape chain, SLO engine and bundle builder are the newest
#      lifetime-heavy code), re-run the seeded chaos flight-recorder case on
#      the fast build (a fault storm under closed-loop traffic must produce
#      byte-identical diagnostic bundles across two same-seed runs), then
#      bench_observability --quick gated against
#      bench/baselines/BENCH_bench_observability.json. The gated histograms
#      are invocations-per-segment with telemetry off/on (identical by the
#      zero-perturbation contract) plus the window-export and bundle document
#      sizes (deterministic virtual-metrics documents). Regenerate with
#        build/bench/bench_observability --quick --json=bench/baselines/BENCH_bench_observability.json
#      when the export schema intentionally changes.
#  10. Parallel-engine smoke: build the sharded-engine determinism suite under
#      TSan at build-tsan and run it (the threaded RunUntil windows, the SPSC
#      channels and the horizon protocol are the only concurrent code in the
#      repo — a data race there silently breaks the determinism oracle), then
#      smoke-run bench_throughput --quick, whose BM_ShardedSaturated series
#      sweeps 1/2/4/8 shards at 64 and 256 nodes. The sweep's wall-clock
#      speedup is NOT gated: it depends on host core count (a 1-core CI box
#      legitimately measures ~1x). The determinism gate is the ctest suite.
#
#   scripts/ci.sh [jobs]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
jobs=${1:-$(nproc 2>/dev/null || echo 4)}

echo "== tier-1 build + tests =="
cmake -B "$repo_root/build" -S "$repo_root"
cmake --build "$repo_root/build" -j "$jobs"
cmake --build "$repo_root/build" --target check

echo "== ASan+UBSan build + tests =="
cmake -B "$repo_root/build-asan" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer"
cmake --build "$repo_root/build-asan" -j "$jobs"
(cd "$repo_root/build-asan" && ctest --output-on-failure)

echo "== bench smoke (storage fast path) =="
"$repo_root/build/bench/bench_storage" --quick \
  --json="$repo_root/build/BENCH_bench_storage_smoke.json"

echo "== chaos smoke (fault matrix + recovery-latency gate) =="
"$repo_root/build/tests/fault_test" \
  --gtest_filter='Storms/FaultMatrix.*:FaultDeterminism.*'
"$repo_root/build/bench/bench_chaos" --quick \
  --json="$repo_root/build/BENCH_bench_chaos.json"
"$repo_root/scripts/perf_compare.py" \
  "$repo_root/bench/baselines/BENCH_bench_chaos.json" \
  "$repo_root/build/BENCH_bench_chaos.json" --gate 10

echo "== tracing smoke (span suite under ASan + disabled-overhead gate) =="
"$repo_root/build-asan/tests/trace_test"
"$repo_root/build/bench/bench_tracing" --quick \
  --json="$repo_root/build/BENCH_bench_tracing.json"
"$repo_root/scripts/perf_compare.py" \
  "$repo_root/bench/baselines/BENCH_bench_tracing.json" \
  "$repo_root/build/BENCH_bench_tracing.json" --gate 10

echo "== location smoke (directory backend under ASan + scaling gate) =="
"$repo_root/build-asan/tests/location_test"
"$repo_root/build/bench/bench_location" --quick \
  --json="$repo_root/build/BENCH_bench_location.json"
"$repo_root/scripts/perf_compare.py" \
  "$repo_root/bench/baselines/BENCH_bench_location.json" \
  "$repo_root/build/BENCH_bench_location.json" --gate 10

echo "== lease smoke (read-cache suite under ASan + throughput gate) =="
"$repo_root/build-asan/tests/lease_test"
"$repo_root/build/bench/bench_lease" --quick \
  --json="$repo_root/build/BENCH_bench_lease.json"
"$repo_root/scripts/perf_compare.py" \
  "$repo_root/bench/baselines/BENCH_bench_lease.json" \
  "$repo_root/build/BENCH_bench_lease.json" --gate 10

echo "== membership smoke (elastic membership under ASan + restart-SLO gate) =="
"$repo_root/build-asan/tests/membership_test"
"$repo_root/build/tests/membership_test" \
  --gtest_filter='RollingRestartChaos.*'
"$repo_root/build/bench/bench_membership" --quick \
  --json="$repo_root/build/BENCH_bench_membership.json"
"$repo_root/scripts/perf_compare.py" \
  "$repo_root/bench/baselines/BENCH_bench_membership.json" \
  "$repo_root/build/BENCH_bench_membership.json" --gate 10

echo "== telemetry smoke (pipeline under ASan + flight-recorder gate) =="
"$repo_root/build-asan/tests/telemetry_test"
"$repo_root/build/tests/telemetry_test" \
  --gtest_filter='TelemetryChaos.*'
"$repo_root/build/bench/bench_observability" --quick \
  --json="$repo_root/build/BENCH_bench_observability.json"
"$repo_root/scripts/perf_compare.py" \
  "$repo_root/bench/baselines/BENCH_bench_observability.json" \
  "$repo_root/build/BENCH_bench_observability.json" --gate 10

echo "== TSan build + parallel determinism suite =="
cmake -B "$repo_root/build-tsan" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
cmake --build "$repo_root/build-tsan" -j "$jobs" --target parallel_sim_test
"$repo_root/build-tsan/tests/parallel_sim_test"

echo "== sharded engine smoke (shard sweep, quick) =="
"$repo_root/build/bench/bench_throughput" --quick \
  --json="$repo_root/build/BENCH_bench_throughput_smoke.json"

echo "CI OK"
