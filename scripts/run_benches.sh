#!/usr/bin/env sh
# Runs every benchmark binary and collects the BENCH_<name>.json exports at
# the repository root.
#
#   scripts/run_benches.sh [build-dir] [extra google-benchmark args...]
#
# Default build dir: ./build. Each binary also prints its usual
# google-benchmark console table; pass e.g. --benchmark_min_time=0.05 to
# shorten the run.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found — build the project first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

status=0
for bin in "$build_dir"/bench/bench_*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  echo "== $name =="
  if ! "$bin" --json="$repo_root/BENCH_$name.json" "$@"; then
    echo "error: $name failed" >&2
    status=1
  fi
done

echo
echo "JSON exports:"
ls -l "$repo_root"/BENCH_*.json
exit $status
