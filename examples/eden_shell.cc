// eden_shell: a scripted operator console for an Eden installation.
//
// Runs a command script against a live five-node system — the kind of
// operator tooling a real deployment grows. Demonstrates that the entire
// system is drivable through the uniform capability/invocation interface:
// the shell holds nothing but a directory capability and a command table.
//
// Commands:
//   create <name> <type>            create an object, bind it in the directory
//   invoke <name> <op> [args...]    invoke with string arguments
//   move <name> <node>              migrate an object
//   checkpoint <name>               force a checkpoint
//   fail <node> / restart <node>    node failure injection
//   where <name>                    locate an object
//   trace                           dump recent kernel events
//
//   $ ./eden_shell
#include <cstdio>
#include <sstream>
#include <vector>

#include "src/kernel/eden_system.h"
#include "src/trace/trace.h"
#include "src/types/standard_types.h"

using namespace eden;

namespace {

class EdenShell {
 public:
  EdenShell(EdenSystem& system, TraceBuffer& trace)
      : system_(system), trace_(trace) {
    directory_ = *system_.node(0).CreateObject("std.directory", Representation{});
  }

  void Execute(const std::string& line) {
    std::printf("eden> %s\n", line.c_str());
    std::istringstream in(line);
    std::string command;
    in >> command;
    std::vector<std::string> args;
    std::string word;
    while (in >> word) {
      args.push_back(word);
    }
    Status status = Dispatch(command, args);
    if (!status.ok()) {
      std::printf("  error: %s\n", status.ToString().c_str());
    }
  }

 private:
  Status Dispatch(const std::string& command, std::vector<std::string>& args) {
    if (command == "create" && args.size() == 2) {
      return Create(args[0], args[1]);
    }
    if (command == "invoke" && args.size() >= 2) {
      return Invoke(args);
    }
    if (command == "move" && args.size() == 2) {
      return Move(args[0], std::stoul(args[1]));
    }
    if (command == "checkpoint" && args.size() == 1) {
      return Checkpoint(args[0]);
    }
    if (command == "fail" && args.size() == 1) {
      system_.node(std::stoul(args[0])).FailNode();
      std::printf("  node%s is down\n", args[0].c_str());
      return OkStatus();
    }
    if (command == "restart" && args.size() == 1) {
      system_.node(std::stoul(args[0])).RestartNode();
      std::printf("  node%s is back\n", args[0].c_str());
      return OkStatus();
    }
    if (command == "where" && args.size() == 1) {
      return Where(args[0]);
    }
    if (command == "trace") {
      std::printf("%s", trace_.Summary().c_str());
      return OkStatus();
    }
    return InvalidArgumentError("unknown command or bad arity: " + command);
  }

  StatusOr<Capability> Lookup(const std::string& name) {
    InvokeResult found = system_.Await(system_.node(0).Invoke(
        directory_, "lookup", InvokeArgs{}.AddString(name)));
    if (!found.ok()) {
      return found.status;
    }
    return found.results.CapabilityAt(0);
  }

  Status Create(const std::string& name, const std::string& type) {
    auto cap = system_.node(next_node_++ % system_.node_count())
                   .CreateObject(type, Representation{});
    if (!cap.ok()) {
      return cap.status();
    }
    InvokeResult bound = system_.Await(system_.node(0).Invoke(
        directory_, "bind", InvokeArgs{}.AddString(name).AddCapability(*cap)));
    if (bound.ok()) {
      std::printf("  created %s as %s\n", name.c_str(),
                  cap->name().ToString().c_str());
    }
    return bound.status;
  }

  Status Invoke(const std::vector<std::string>& args) {
    EDEN_ASSIGN_OR_RETURN(Capability cap, Lookup(args[0]));
    InvokeArgs call_args;
    for (size_t i = 2; i < args.size(); i++) {
      call_args.AddString(args[i]);
    }
    InvokeResult result =
        system_.Await(system_.node(0).Invoke(cap, args[1], std::move(call_args)));
    if (result.ok()) {
      std::printf("  ok");
      for (size_t i = 0; i < result.results.data.size(); i++) {
        std::string text = result.results.StringAt(i).value_or("<bytes>");
        bool printable = !text.empty();
        for (char c : text) {
          if (static_cast<unsigned char>(c) < 9) {
            printable = false;
          }
        }
        std::printf(" [%s]", printable ? text.c_str() : "<binary>");
      }
      std::printf("\n");
    }
    return result.status;
  }

  Status Move(const std::string& name, size_t node) {
    EDEN_ASSIGN_OR_RETURN(Capability cap, Lookup(name));
    InvokeResult result = system_.Await(system_.node(0).Invoke(
        cap, "move_to", InvokeArgs{}.AddU64(system_.node(node).station())));
    if (result.ok()) {
      std::printf("  %s now lives on node%zu\n", name.c_str(), node);
    }
    return result.status;
  }

  Status Checkpoint(const std::string& name) {
    EDEN_ASSIGN_OR_RETURN(Capability cap, Lookup(name));
    InvokeResult result = system_.Await(system_.node(0).Invoke(cap, "checkpoint"));
    if (result.ok()) {
      std::printf("  long-term state recorded\n");
    }
    return result.status;
  }

  Status Where(const std::string& name) {
    EDEN_ASSIGN_OR_RETURN(Capability cap, Lookup(name));
    InvokeResult result = system_.Await(system_.node(0).Invoke(cap, "where"));
    if (!result.ok()) {
      return result.status;
    }
    std::printf("  %s is active on station %llu\n", name.c_str(),
                static_cast<unsigned long long>(result.results.U64At(0).value()));
    return OkStatus();
  }

  EdenSystem& system_;
  Capability directory_;
  TraceBuffer& trace_;
  size_t next_node_ = 1;
};

}  // namespace

int main() {
  std::printf("=== eden_shell: scripted operator session ===\n\n");
  EdenSystem system;
  RegisterStandardTypes(system);
  TraceBuffer trace;
  for (int i = 0; i < 5; i++) {
    system.AddNode("node" + std::to_string(i)).WithTrace(&trace);
  }
  EdenShell shell(system, trace);

  const char* script[] = {
      "create hits std.counter",
      "create notes std.data",
      "invoke hits increment",
      "invoke hits increment",
      "invoke hits read",
      "invoke notes put remember_the_demo",
      "invoke notes get",
      "checkpoint notes",
      "move notes 3",
      "invoke notes get",
      "where notes",
      "fail 3",
      "invoke notes get",
      "restart 3",
      "where notes",
      "trace",
  };
  for (const char* line : script) {
    shell.Execute(line);
  }
  std::printf("\nvirtual time elapsed: %.3f ms\n",
              ToMilliseconds(system.sim().now()));
  return 0;
}
