// The object editor's world-view, text-mode (paper section 5): every object
// has a syntactically structured visual representation, and "all human
// interactions with objects are treated as editing operations applied to
// these visual representations."
//
// A user on node 1 edits a shared design document that lives on node 0,
// purely through inherited edit.* operations; a reviewer on node 2 watches
// renders. The document survives a crash mid-session (write-through
// checkpointing). Finally the user ships the rendered document to a foreign
// time-sharing machine's "troff" service through a gateway object — the
// asymmetric foreign-machine interface of section 2.
//
//   $ ./object_editor
#include <cstdio>

#include "src/edit/editable.h"
#include "src/gateway/gateway.h"
#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

using namespace eden;

int main() {
  std::printf("=== Eden object editor (text mode) ===\n\n");

  EdenSystem system;
  RegisterStandardTypes(system);
  RegisterEditTypes(system);
  for (int i = 0; i < 3; i++) {
    system.AddNode("desk" + std::to_string(i));
  }

  // The shared document, born with a skeleton outline.
  StructureNode outline("paper", "The Architecture of the Eden System");
  outline.AddChild("section", "Introduction")
      .AddChild("para", "Integration vs distribution.");
  outline.AddChild("section", "Goals");
  auto doc = system.node(0).CreateObject("edit.document", StructureRep(outline));
  if (!doc.ok()) {
    return 1;
  }

  auto call = [&](size_t node, const std::string& op, InvokeArgs args = {}) {
    return system.Await(system.node(node).Invoke(*doc, op, std::move(args)));
  };

  std::printf("-- reviewer (node2) renders the fresh document:\n%s\n",
              call(2, "edit.render").results.StringAt(0).value().c_str());

  std::printf("-- author (node1) edits: retitles Goals, adds Kernel section\n");
  call(1, "edit.set", InvokeArgs{}.AddString("1").AddString("Goals and Approaches"));
  call(1, "edit.insert",
       InvokeArgs{}.AddString("").AddU64(2).AddString("section").AddString(
           "An Overview of the Eden Kernel"));
  call(1, "edit.insert",
       InvokeArgs{}.AddString("2").AddU64(0).AddString("para").AddString(
           "Objects: name, representation, type, short-term state."));

  std::printf("-- node0 crashes mid-session...\n");
  system.node(0).FailNode();
  system.node(0).RestartNode();

  std::printf("-- reviewer renders again; every edit survived:\n%s\n",
              call(2, "edit.render").results.StringAt(0).value().c_str());

  // Ship the rendering to the department's old time-sharing machine.
  std::printf("-- shipping to the foreign machine 'tops20' for formatting\n");
  auto tops20 = std::make_shared<ForeignMachine>(system.sim(), "tops20");
  tops20->InstallService("troff", [](const std::string& text) {
    std::string out = "*** formatted by tops20 troff ***\n" + text;
    return StatusOr<std::string>(std::move(out));
  });
  auto gateway = AttachForeignMachine(system, 0, tops20);
  if (!gateway.ok()) {
    return 1;
  }
  std::string rendered = call(1, "edit.render").results.StringAt(0).value();
  InvokeResult formatted = system.Await(system.node(1).Invoke(
      *gateway, "submit", InvokeArgs{}.AddString("troff").AddString(rendered)));
  std::printf("   gateway status: %s\n", formatted.status.ToString().c_str());
  std::printf("%s\n", formatted.results.StringAt(0).value_or("").c_str());

  std::printf("virtual time elapsed: %.3f ms\n",
              ToMilliseconds(system.sim().now()));
  return 0;
}
