// The Eden File System at work (paper section 5): transaction-based,
// immutable versions, replicated at multiple sites.
//
// Two engineers edit a shared document through a 3-way-replicated EFS:
//   * every save is a transaction producing a new immutable version,
//   * concurrent saves conflict and one aborts cleanly (first-preparer-wins),
//   * any historical version remains readable,
//   * reads survive the loss of two of the three replica nodes.
//
//   $ ./efs_workbench
#include <cstdio>

#include "src/efs/client.h"
#include "src/efs/file_store.h"
#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

using namespace eden;

int main() {
  std::printf("=== EFS workbench: replicated, versioned, transactional ===\n\n");

  EdenSystem system;
  RegisterStandardTypes(system);
  RegisterEfsTypes(system);
  for (int i = 0; i < 3; i++) {
    system.AddNode("store" + std::to_string(i));
  }
  system.AddNode("alice");
  system.AddNode("bob");

  // Three store replicas on nodes 0..2; clients on nodes 3 and 4.
  std::vector<Capability> stores;
  for (size_t i = 0; i < 3; i++) {
    auto cap = system.node(i).CreateObject("efs.store", Representation{});
    if (!cap.ok()) {
      return 1;
    }
    stores.push_back(*cap);
  }
  EfsClient alice(system.node(3), stores);
  EfsClient bob(system.node(4), stores);

  std::printf("-- alice creates /design.txt (replicated on 3 nodes)\n");
  Status created = system.Await(alice.CreateFile("/design.txt"));
  std::printf("   create: %s\n", created.ToString().c_str());

  std::printf("-- alice commits the first draft\n");
  {
    auto txn = alice.Begin();
    txn.Write("/design.txt", ToBytes("v1: objects, capabilities, invocation"));
    Status committed = system.Await(txn.Commit());
    std::printf("   commit: %s\n", committed.ToString().c_str());
  }

  std::printf("-- alice and bob both edit from version 1 and race to commit\n");
  {
    auto alice_txn = alice.Begin();
    auto bob_txn = bob.Begin();
    alice_txn.Write("/design.txt", ToBytes("v2 (alice): add checkpointing"));
    bob_txn.Write("/design.txt", ToBytes("v2 (bob): add migration"));
    Future<Status> alice_commit = alice_txn.Commit();
    Future<Status> bob_commit = bob_txn.Commit();
    Status alice_status = system.Await(std::move(alice_commit));
    Status bob_status = system.Await(std::move(bob_commit));
    std::printf("   alice: %s\n   bob:   %s\n", alice_status.ToString().c_str(),
                bob_status.ToString().c_str());

    // The loser retries on top of the winner's version — no lost update.
    EfsClient& loser = alice_status.ok() ? bob : alice;
    const char* loser_name = alice_status.ok() ? "bob" : "alice";
    auto retry = loser.Begin();
    retry.Write("/design.txt",
                ToBytes(std::string("v3 (") + loser_name + " retry): merged"));
    Status retried = system.Await(retry.Commit());
    std::printf("   %s retries on the new base: %s\n", loser_name,
                retried.ToString().c_str());
  }

  std::printf("\n-- full version history (immutable versions):\n");
  auto latest = system.Await(alice.Latest("/design.txt"));
  for (uint64_t v = 1; v <= latest.value_or(0); v++) {
    auto content = system.Await(alice.Read("/design.txt", v));
    std::printf("   version %llu: \"%s\"\n", static_cast<unsigned long long>(v),
                ToString(content.value_or({})).c_str());
  }

  std::printf("\n-- two of three replica nodes fail; reads keep working\n");
  system.node(0).FailNode();
  system.node(1).FailNode();
  auto survived = system.Await(bob.Read("/design.txt"));
  std::printf("   read with 1/3 replicas alive: %s (\"%s\")\n",
              survived.status().ToString().c_str(),
              ToString(survived.value_or({})).c_str());
  std::printf("   read failovers so far (bob): %llu\n",
              static_cast<unsigned long long>(bob.stats().read_failovers));

  // Writes, however, need every replica (strict 2PC): they abort now.
  auto doomed = bob.Begin();
  doomed.Write("/design.txt", ToBytes("v4: never happens"));
  Status blocked = system.Await(doomed.Commit());
  std::printf("   commit with replicas down: %s\n", blocked.ToString().c_str());

  std::printf("\nvirtual time elapsed: %.3f ms\n",
              ToMilliseconds(system.sim().now()));
  return 0;
}
