// Quickstart: the Figure 1 installation in 100 lines.
//
// Builds a five-node Eden (four workstations + a file-server node), defines a
// custom type, and walks through the kernel primitives of paper section 4.5:
// creation, location-independent invocation, checkpointing, crash and
// reincarnation.
//
//   $ ./quickstart
#include <cstdio>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

using namespace eden;

namespace {

// A tiny custom type: a guestbook that visitors sign.
std::shared_ptr<AbstractType> GuestbookType() {
  auto type = std::make_shared<AbstractType>("guestbook", StdObjectType());
  type->AddClass("writers", 1);
  type->AddClass("readers", 4);
  type->AddOperation(AbstractOperation{
      .name = "sign",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto visitor = ctx.args().StringAt(0);
        if (!visitor.ok()) {
          co_return InvokeResult::Error(visitor.status());
        }
        Bytes& book = ctx.rep().mutable_data(0);
        std::string line = *visitor + "\n";
        book.insert(book.end(), line.begin(), line.end());
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(book.size()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "writers",
  });
  type->AddOperation(AbstractOperation{
      .name = "read",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Bytes book = ctx.rep().data_segment_count() ? ctx.rep().data(0) : Bytes{};
        co_return InvokeResult::Ok(InvokeArgs{}.AddBytes(std::move(book)));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });
  return type;
}

}  // namespace

int main() {
  std::printf("=== Eden quickstart: five nodes on one Ethernet ===\n\n");

  EdenSystem system;
  RegisterStandardTypes(system);
  system.RegisterType(GuestbookType()->BuildTypeManager());

  // The Figure 1 installation: four workstations plus a file-server node
  // with a faster, larger disk (node4).
  for (int i = 0; i < 4; i++) {
    system.AddNode("workstation" + std::to_string(i));
  }
  DiskConfig server_disk;
  server_disk.average_seek = Milliseconds(20);
  server_disk.capacity_bytes = 2ull << 30;
  system.AddNode("fileserver").WithDisk(server_disk);

  // 1. Create a guestbook object on node 0. The creator gets an owner
  //    capability: the ONLY way anyone will ever refer to this object.
  auto book = system.node(0).CreateObject("guestbook", Representation{});
  if (!book.ok()) {
    std::printf("create failed: %s\n", book.status().ToString().c_str());
    return 1;
  }
  std::printf("created %s on node0 (capability %s)\n",
              book->name().ToString().c_str(), book->ToString().c_str());

  // 2. Location-independent invocation: nodes that never heard of the object
  //    invoke it through the kernel, which locates it by broadcast and
  //    forwards the message (paper section 4.2).
  for (int visitor = 1; visitor <= 3; visitor++) {
    InvokeResult result = system.Await(system.node(visitor).Invoke(
        *book, "sign", InvokeArgs{}.AddString("user on node" + std::to_string(visitor))));
    std::printf("node%d signed: %s (book is now %llu bytes)\n", visitor,
                result.status.ToString().c_str(),
                static_cast<unsigned long long>(
                    result.results.U64At(0).value_or(0)));
  }

  // 3. A restricted capability: read-only, handed to node 4.
  Capability read_only = book->Restrict(Rights(Rights::kInvoke | Rights::kRead));
  InvokeResult denied = system.Await(
      system.node(4).Invoke(read_only, "sign", InvokeArgs{}.AddString("mallory")));
  std::printf("write through read-only capability: %s\n",
              denied.status.ToString().c_str());

  // 4. Checkpoint to the file-server node (checksite, section 4.4), then
  //    crash. The volatile object dies; its long-term state survives.
  auto object = system.node(0).FindActive(book->name());
  object->policy = CheckpointPolicy{system.node(4).station(),
                                    ReliabilityLevel::kLocal, 0};
  Status ck = system.Await(system.node(0).CheckpointObject(book->name()));
  std::printf("checkpoint to file server: %s\n", ck.ToString().c_str());
  system.Await(system.node(1).Invoke(*book, "crash"));
  std::printf("object crashed; active on node0: %s\n",
              system.node(0).IsActive(book->name()) ? "yes" : "no");

  // 5. The next invocation reincarnates the object at its checksite — the
  //    invoker cannot tell anything happened.
  InvokeResult revived = system.Await(system.node(2).Invoke(*book, "read"));
  std::printf("\nread after reincarnation (%s), guestbook contents:\n%s",
              revived.status.ToString().c_str(),
              ToString(revived.results.BytesAt(0).value_or({})).c_str());
  std::printf("object now active on file server: %s\n",
              system.node(4).IsActive(book->name()) ? "yes" : "no");

  std::printf("\nvirtual time elapsed: %.3f ms; frames on the wire: %llu\n",
              ToMilliseconds(system.sim().now()),
              static_cast<unsigned long long>(system.lan().stats().frames_sent));
  return 0;
}
