// A distributed mail system — the kind of "advanced distributed application"
// the Eden project was built to host.
//
// Each user has a std.mailbox object living on their own node machine; a
// shared std.directory on the file-server node maps user names to mailbox
// capabilities. The demo shows:
//   * sending mail across nodes purely through capabilities,
//   * a user "changing offices": their mailbox migrates with them (move),
//   * a node failure: deposited mail survives (write-through checkpointing)
//     and the mailbox reincarnates on first use.
//
//   $ ./mail_system
#include <cstdio>
#include <map>
#include <string>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

using namespace eden;

namespace {

struct MailSystem {
  EdenSystem& system;
  Capability directory;

  // Registers a user: a mailbox on their node, named in the directory.
  Status AddUser(const std::string& user, size_t node_index) {
    auto box = system.node(node_index).CreateObject("std.mailbox",
                                                    Representation{});
    if (!box.ok()) {
      return box.status();
    }
    InvokeResult bound = system.Await(system.node(node_index).Invoke(
        directory, "bind", InvokeArgs{}.AddString(user).AddCapability(*box)));
    return bound.status;
  }

  StatusOr<Capability> MailboxOf(const std::string& user, size_t from_node) {
    InvokeResult found = system.Await(system.node(from_node).Invoke(
        directory, "lookup", InvokeArgs{}.AddString(user)));
    if (!found.ok()) {
      return found.status;
    }
    return found.results.CapabilityAt(0);
  }

  Status Send(size_t from_node, const std::string& from, const std::string& to,
              const std::string& body) {
    auto box = MailboxOf(to, from_node);
    if (!box.ok()) {
      return box.status();
    }
    InvokeResult result = system.Await(system.node(from_node).Invoke(
        *box, "deposit", InvokeArgs{}.AddString(from).AddString(body)));
    return result.status;
  }

  void ReadAll(size_t node_index, const std::string& user) {
    auto box = MailboxOf(user, node_index);
    if (!box.ok()) {
      std::printf("  (no mailbox for %s)\n", user.c_str());
      return;
    }
    while (true) {
      InvokeResult count = system.Await(system.node(node_index).Invoke(*box, "count"));
      if (!count.ok() || count.results.U64At(0).value_or(0) == 0) {
        break;
      }
      InvokeResult mail = system.Await(system.node(node_index).Invoke(*box, "retrieve"));
      if (!mail.ok()) {
        break;
      }
      std::printf("  %s got mail from %s: \"%s\"\n", user.c_str(),
                  mail.results.StringAt(0).value().c_str(),
                  ToString(mail.results.BytesAt(1).value()).c_str());
    }
  }
};

}  // namespace

int main() {
  std::printf("=== Eden mail system ===\n\n");

  EdenSystem system;
  RegisterStandardTypes(system);
  // Workstations for the users; node4 is the post office and keeps the
  // shared directory, so give it a patient kernel for bursty deliveries.
  for (int i = 0; i < 4; i++) {
    system.AddNode("node" + std::to_string(i));
  }
  KernelConfig office = system.config().kernel;
  office.default_invoke_timeout = Seconds(60);
  system.AddNode("postoffice").WithKernel(office);

  auto directory =
      system.node(4).CreateObject("std.directory", Representation{});
  if (!directory.ok()) {
    return 1;
  }
  MailSystem mail{system, *directory};

  std::printf("-- registering users: alice@node0  bob@node1  carol@node2\n");
  mail.AddUser("alice", 0);
  mail.AddUser("bob", 1);
  mail.AddUser("carol", 2);

  std::printf("-- alice and carol write to bob\n");
  mail.Send(0, "alice", "bob", "lunch at noon?");
  mail.Send(2, "carol", "bob", "code review when you have a minute");
  mail.ReadAll(1, "bob");

  // Bob changes offices: his mailbox migrates to node 3 with him. Location
  // transparency means NOBODY else needs to know — the directory entry, the
  // capabilities, everything keeps working.
  std::printf("\n-- bob moves offices (node1 -> node3); mailbox migrates\n");
  auto bob_box = mail.MailboxOf("bob", 1);
  InvokeResult moved = system.Await(system.node(1).Invoke(
      *bob_box, "move_to", InvokeArgs{}.AddU64(system.node(3).station())));
  std::printf("   move: %s\n", moved.status.ToString().c_str());
  system.RunFor(Milliseconds(50));
  std::printf("   mailbox active on node3: %s\n",
              system.node(3).IsActive(bob_box->name()) ? "yes" : "no");

  mail.Send(0, "alice", "bob", "did the move go okay?");
  mail.ReadAll(3, "bob");

  // Node 3 crashes. Deposited mail was checkpointed write-through, so after
  // the node comes back the mailbox reincarnates on demand, mail intact.
  std::printf("\n-- carol mails bob, then bob's node crashes\n");
  mail.Send(2, "carol", "bob", "IMPORTANT: demo at 3pm");
  system.node(3).FailNode();
  std::printf("   node3 failed. alice writes anyway: the kernel discovers the\n"
              "   dead host, and the mailbox reincarnates at its checksite\n"
              "   (node1, where its checkpoints live) -- transparently:\n");
  Status sent = mail.Send(0, "alice", "bob", "are you there?");
  std::printf("   alice's send while node3 is down: %s\n",
              sent.ToString().c_str());

  system.node(3).RestartNode();
  std::printf("   bob (back at a terminal) reads his mail; nothing was lost:\n");
  mail.ReadAll(0, "bob");

  std::printf("\nvirtual time elapsed: %.3f ms\n",
              ToMilliseconds(system.sim().now()));
  return 0;
}
