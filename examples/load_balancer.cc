// A placement-policy object and frozen-object replication (paper section 4.3).
//
// Part 1 — policy object: "some objects may have the ability to make location
// decisions for other objects in the system; for example, there may be a
// policy object responsible for the location of objects in a particular
// subsystem." A balancer object inspects where a subsystem's worker objects
// live and migrates them so every node carries a fair share.
//
// Part 2 — frozen objects: "when an object is frozen its representation is
// made immutable... Such an object can be replicated and cached at several
// sites in order to save the overhead of remote invocations. Many traditional
// operating system utilities, such as compilers, will have this property."
// A "compiler release" object is frozen and then consulted from every node;
// after the first remote read each node serves it from a local replica.
//
//   $ ./load_balancer
#include <cstdio>
#include <vector>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

using namespace eden;

namespace {

// The policy object: receives worker capabilities + target stations and
// spreads the workers round-robin by invoking their inherited move_to.
std::shared_ptr<AbstractType> BalancerType() {
  auto type = std::make_shared<AbstractType>("policy.balancer", StdObjectType());
  type->AddOperation(AbstractOperation{
      .name = "spread",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        size_t stations = ctx.args().data.size();
        if (stations == 0 || ctx.args().caps.empty()) {
          co_return InvokeResult::Error(
              InvalidArgumentError("spread(stations..., caps...)"));
        }
        uint64_t moved = 0;
        for (size_t i = 0; i < ctx.args().caps.size(); i++) {
          uint64_t station = ctx.args().U64At(i % stations).value_or(0);
          InvokeResult result = co_await ctx.Invoke(
              ctx.args().caps[i], "move_to", InvokeArgs{}.AddU64(station));
          if (result.ok()) {
            moved++;
          }
        }
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(moved));
      },
  });
  return type;
}

void PrintPlacement(EdenSystem& system, const std::vector<Capability>& workers) {
  for (size_t n = 0; n < system.node_count(); n++) {
    int here = 0;
    for (const Capability& w : workers) {
      if (system.node(n).IsActive(w.name())) {
        here++;
      }
    }
    std::printf("   node%zu: %d worker(s)\n", n, here);
  }
}

}  // namespace

int main() {
  std::printf("=== Placement policy + frozen-object replication ===\n\n");

  EdenSystem system;
  RegisterStandardTypes(system);
  system.RegisterType(BalancerType()->BuildTypeManager());
  for (int i = 0; i < 4; i++) {
    system.AddNode("node" + std::to_string(i));
  }

  // --- Part 1: rebalancing a subsystem --------------------------------------
  std::printf("-- eight workers, all created on node0 (hot spot):\n");
  std::vector<Capability> workers;
  for (int i = 0; i < 8; i++) {
    auto cap = system.node(0).CreateObject("std.counter", Representation{});
    workers.push_back(*cap);
  }
  PrintPlacement(system, workers);

  auto balancer = system.node(3).CreateObject("policy.balancer", Representation{});
  InvokeArgs args;
  for (size_t n = 0; n < system.node_count(); n++) {
    args.AddU64(system.node(n).station());
  }
  for (const Capability& w : workers) {
    args.AddCapability(w);
  }
  InvokeResult spread =
      system.Await(system.node(3).Invoke(*balancer, "spread", std::move(args)));
  system.RunFor(Milliseconds(100));
  std::printf("\n-- after the policy object spreads them (%llu moved):\n",
              static_cast<unsigned long long>(spread.results.U64At(0).value_or(0)));
  PrintPlacement(system, workers);

  // Workers still answer wherever they landed.
  int reachable = 0;
  for (const Capability& w : workers) {
    if (system.Await(system.node(1).Invoke(w, "increment")).ok()) {
      reachable++;
    }
  }
  std::printf("   all %d workers still reachable after migration\n", reachable);

  // --- Part 2: a frozen compiler release ------------------------------------
  std::printf("\n-- a 64 KB \"compiler release\" object, frozen on node0\n");
  Representation release;
  release.set_data(0, Bytes(64 * 1024, 0x42));
  auto compiler = system.node(0).CreateObject("std.data", release);
  system.Await(system.node(0).Invoke(*compiler, "freeze"));

  for (size_t n = 1; n < system.node_count(); n++) {
    // First read is remote and triggers a background replica fetch...
    uint64_t remote_before = system.node(n).stats().invocations_remote;
    system.Await(system.node(n).Invoke(*compiler, "get"));
    system.RunFor(Milliseconds(200));  // replica fetch completes
    // ...every later read is served locally.
    system.Await(system.node(n).Invoke(*compiler, "get"));
    system.Await(system.node(n).Invoke(*compiler, "get"));
    uint64_t remote_after = system.node(n).stats().invocations_remote;
    std::printf("   node%zu: replica cached=%s, remote invocations for 3 reads: %llu\n",
                n, system.node(n).HasReplica(compiler->name()) ? "yes" : "no",
                static_cast<unsigned long long>(remote_after - remote_before));
  }

  std::printf("\nvirtual time elapsed: %.3f ms\n",
              ToMilliseconds(system.sim().now()));
  return 0;
}
