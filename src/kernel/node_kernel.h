// NodeKernel: the per-node Eden kernel (paper section 4). It supplies the
// primitives of section 4.5 — object/type creation, location-independent
// invocation, preservation of long-term state over failures, and intra-object
// communication — on top of the simulated LAN and stable store.
//
// One NodeKernel is one "node" in the paper's sense: an abstraction supplying
// virtual memory for active objects' segments and virtual processors for
// their invocations. A physical machine may host several node objects; in the
// simulation, several NodeKernels simply share the Lan.
#ifndef EDEN_SRC_KERNEL_NODE_KERNEL_H_
#define EDEN_SRC_KERNEL_NODE_KERNEL_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/kernel/context.h"
#include "src/kernel/location.h"
#include "src/kernel/message.h"
#include "src/kernel/object.h"
#include "src/kernel/type_manager.h"
#include "src/metrics/metrics.h"
#include "src/net/transport.h"
#include "src/sim/rng.h"
#include "src/storage/stable_store.h"
#include "src/trace/span.h"
#include "src/trace/trace.h"

namespace eden {

class EdenSystem;

struct KernelConfig {
  // Kernel-level costs, modeled on early-80s processor budgets (the paper
  // itself flags GDP invocation performance as "something of a question
  // mark"; these knobs are what bench_invocation sweeps).
  SimDuration dispatch_overhead = Microseconds(200);    // validate + dispatch
  SimDuration local_invoke_overhead = Microseconds(150);// same-node shortcut
  SimDuration remote_receive_overhead = Microseconds(250);  // network kernel path
  SimDuration serialize_per_kb = Microseconds(40);      // parameter copying
  SimDuration activation_overhead = Microseconds(500);  // build address space

  // End-to-end invocation management.
  SimDuration default_invoke_timeout = Seconds(30);
  SimDuration attempt_timeout = Seconds(2);  // per-host try before re-locate
  // Resolution attempts (locate rounds). Each round can heal one stale hop
  // of a forwarding chain, so this bounds the chain length that remains
  // recoverable after the node at the chain's end dies.
  int max_attempts = 5;
  int max_redirects = 8;

  // Location protocol (DESIGN.md §13): backend selection plus every locate
  // knob, gathered in one struct (builder: WithLocation).
  LocateConfig locate;

  // Frozen-object replication (section 4.3).
  bool cache_frozen_replicas = true;

  // At-most-once server-side reply cache.
  size_t reply_cache_capacity = 4096;

  // Delta checkpoints (DESIGN.md §10). When enabled, a checkpoint of an
  // object whose base record is already durable writes only the dirty
  // segments; after checkpoint_delta_limit deltas (or whenever every segment
  // is dirty anyway) the chain is folded into a fresh base record.
  bool checkpoint_deltas = true;
  uint64_t checkpoint_delta_limit = 8;

  // Invocation attempt backoff (DESIGN.md §11). Attempt k waits
  // attempt_timeout * attempt_backoff^k before giving up on the host, capped
  // at attempt_timeout_max, with ±attempt_jitter (a fraction) of seeded
  // jitter so retry storms from many clients decorrelate.
  double attempt_backoff = 2.0;
  SimDuration attempt_timeout_max = Seconds(10);
  double attempt_jitter = 0.2;

  // Peer health (DESIGN.md §11). After suspect_after_failures consecutive
  // reliable-send failures to a peer, the peer is suspect: requests to it
  // fail fast into re-location while a cheap ping probe — retried with
  // probe_backoff up to probe_interval_max — gates its return to service.
  bool peer_health = true;
  int suspect_after_failures = 3;
  SimDuration probe_interval = Milliseconds(200);
  double probe_backoff = 2.0;
  SimDuration probe_interval_max = Seconds(5);

  // Activation fallback (DESIGN.md §11). When the primary checkpoint chain
  // is corrupt or torn, reincarnation tries the local mirror chain, then the
  // longest intact chain prefix, before declaring data loss; an unusable
  // chain is quarantined so locates stop landing on it.
  bool restore_fallback = true;

  // Lease-based read caching of mutable objects (DESIGN.md §15). Off by
  // default: leases change which node executes a read, so runs that pin
  // digests keep their exact traffic unless they opt in.
  bool lease_reads = false;
  // Lease term. Longer = fewer grants and renewals, but a lost recall (or a
  // crashed holder) blocks writers for up to this long.
  SimDuration lease_duration = Milliseconds(500);
  // A holder whose lease expires within this margin routes the read to the
  // home instead of serving it locally; the reply piggybacks a renewal.
  SimDuration lease_renew_margin = Milliseconds(100);
};

// Snapshot of the kernel's registry-backed counters (see NodeKernel::stats).
// Retained as a compatibility view: the authoritative counts live in the
// node's MetricsRegistry under the kernel.* names listed in DESIGN.md.
struct KernelStats {
  uint64_t invocations_started = 0;
  uint64_t invocations_local = 0;
  uint64_t invocations_remote = 0;
  uint64_t invocations_completed = 0;
  uint64_t invocations_timed_out = 0;
  uint64_t invocations_unavailable = 0;
  uint64_t dispatches = 0;
  uint64_t rights_denied = 0;
  uint64_t queue_refusals = 0;
  // Locate query rounds issued, by backend: locate_queries is the total
  // (kernel.locate.queries.broadcast + kernel.locate.queries.directory);
  // locate_broadcasts remains as the broadcast-tagged compat view.
  uint64_t locate_queries = 0;
  uint64_t locate_broadcasts = 0;
  uint64_t locate_cache_hits = 0;
  uint64_t directory_updates = 0;
  uint64_t directory_stale_forwards = 0;
  uint64_t redirects_followed = 0;
  uint64_t activations = 0;
  uint64_t checkpoints = 0;
  uint64_t crashes = 0;
  uint64_t moves_out = 0;
  uint64_t moves_in = 0;
  uint64_t replica_fetches = 0;
  uint64_t replica_reads = 0;
  uint64_t duplicate_requests = 0;
  uint64_t lease_grants = 0;
  uint64_t lease_recalls = 0;
  uint64_t lease_renewals = 0;
  uint64_t lease_expiries = 0;
  uint64_t lease_local_reads = 0;
};

struct CreateOptions {
  // Default policy: long-term state at the creating node, kLocal level.
  std::optional<CheckpointPolicy> policy;
};

class NodeKernel {
 public:
  // `shard_sim` is the simulation that drives this node — its shard's event
  // queue and clock under the parallel engine; nullptr means the system's
  // primary simulation (the unsharded default).
  NodeKernel(EdenSystem& system, std::string node_name, KernelConfig config = {},
             DiskConfig disk = {}, TransportConfig transport = {},
             Simulation* shard_sim = nullptr);
  ~NodeKernel();

  NodeKernel(const NodeKernel&) = delete;
  NodeKernel& operator=(const NodeKernel&) = delete;

  StationId station() const { return transport_->station_id(); }
  const std::string& node_name() const { return node_name_; }

  // --- Object lifecycle -----------------------------------------------------
  // Creates an active object of a registered type with the given initial
  // representation. The object is immediately invokable; it has NO long-term
  // state until its first checkpoint.
  StatusOr<Capability> CreateObject(const std::string& type_name,
                                    Representation initial,
                                    CreateOptions options = {});

  // Forces a checkpoint of an active object (driver-side convenience; type
  // code uses InvokeContext::Checkpoint).
  Future<Status> CheckpointObject(const ObjectName& name);

  // Requests migration of an active object to another node. Normally invoked
  // from within the object (InvokeContext::RequestMove); exposed for policy
  // drivers and tests. A valid `parent` parents the kMove span; a driver call
  // without one mints a root move trace. `drain_threshold` is how many
  // invocations may still be running when the rep is serialized: 0 for
  // driver/rebalancer moves (full quiesce), 1 when the requesting invocation
  // itself is the caller (it is still counted as running).
  Future<Status> MoveObject(const std::shared_ptr<ActiveObject>& object,
                            StationId destination,
                            const SpanContext& parent = {},
                            int drain_threshold = 0);

  // --- Invocation (driver side) ----------------------------------------------
  // Location-independent invocation from outside any object (applications,
  // tests, benchmarks). Per-call knobs (timeout, trace label, metrics class)
  // travel in InvokeOptions, taken by const reference — see the note on
  // kDefaultInvokeOptions for why the default is a named constant.
  Future<InvokeResult> Invoke(const Capability& target, const std::string& op,
                              InvokeArgs args = {},
                              const InvokeOptions& options = kDefaultInvokeOptions);

  // --- Failure injection ------------------------------------------------------
  // Node failure: all volatile state (active objects, caches, in-flight
  // messages) is lost; the stable store survives.
  void FailNode();
  void RestartNode();
  bool failed() const { return failed_; }

  // Promotes a mirror checkpoint record to primary at THIS node, after the
  // original primary site is permanently lost (administrative recovery).
  Future<Status> PromoteMirror(const ObjectName& name);

  // --- Elastic membership / drain (DESIGN.md §16) ----------------------------
  // While draining, this kernel refuses new lease grants (so the drain is not
  // extended by freshly-minted holder state). Set by EdenSystem::LeaveNode.
  void set_draining(bool draining) { draining_ = draining; }
  bool draining() const { return draining_; }

  // True when departure would lose nothing volatile: no active objects (lease
  // replicas excepted — their state is reconstructible and recalls backstop
  // by expiry), no activations, and no in-flight client/move/ack protocol
  // entries originated here.
  bool DrainIdle() const;

  // Names of non-replica active objects (sorted; rebalancer evacuation set).
  std::vector<ObjectName> ActiveObjects() const;
  // Names of active non-replica objects whose checkpoint policy writes to
  // station `site` (primary or mirror): the resite set when `site` drains.
  std::vector<ObjectName> ActiveObjectsWithPolicySite(StationId site) const;
  // Names behind base checkpoint records in this node's store (sorted). A
  // drain that must evacuate passively-stored state is complete only once
  // this is empty.
  std::vector<ObjectName> CheckpointInventory() const;

  // Reincarnates a passive object from this node's store so the rebalancer
  // can move it off (drain of passive state). No-op if already active or
  // activating here.
  void Reactivate(const ObjectName& name);

  // Rewrites an active object's checkpoint policy and forces a full base
  // checkpoint at the new site(s); once that lands, the chains at the old
  // sites are erased. Used by the rebalancer to pull long-term state off a
  // draining store. Returns the checkpoint future (ok once the new chain is
  // durable).
  Future<Status> ResiteCheckpoint(const ObjectName& name,
                                  const CheckpointPolicy& policy);

  // --- Introspection ------------------------------------------------------------
  bool IsActive(const ObjectName& name) const { return active_.count(name) > 0; }
  bool IsActivating(const ObjectName& name) const {
    return activating_.count(name) > 0;
  }
  bool HasReplica(const ObjectName& name) const { return replicas_.count(name) > 0; }
  bool HasCheckpoint(const ObjectName& name) const;
  // Peer-health introspection (tests, policy drivers): whether `peer` is
  // currently suspect, and its consecutive-failure count (0 when healthy —
  // healthy peers carry no state at all).
  bool PeerSuspect(StationId peer) const;
  int PeerConsecutiveFailures(StationId peer) const;
  std::shared_ptr<ActiveObject> FindActive(const ObjectName& name) const;
  size_t active_count() const { return active_.size(); }

  // Attaches (or detaches, with nullptr) a trace buffer recording this
  // kernel's events. The buffer must outlive the kernel or be detached first.
  void set_trace(TraceBuffer* trace) { trace_ = trace; }

  // Attaches the shared causal-span collector (DESIGN.md §12) and propagates
  // it to the owned transport and store. Spans never schedule simulation
  // events or consume simulation randomness, so attaching a collector cannot
  // change execution. The collector must outlive this kernel; nullptr
  // detaches.
  void set_spans(SpanCollector* spans) {
    spans_ = spans;
    transport_->set_spans(spans);
    store_->set_spans(spans, station());
  }

  StableStore& store() { return *store_; }
  Transport& transport() { return *transport_; }
  // The location backend this kernel resolves through (DESIGN.md §13).
  LocationService& location() { return *location_; }
  const LocationService& location() const { return *location_; }
  // This node's metrics: kernel.* counters and latency histograms, plus the
  // store.* and transport.* instruments of the owned subsystems.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  // Compatibility snapshot of the registry-backed kernel counters.
  KernelStats stats() const;
  const KernelConfig& config() const { return config_; }
  EdenSystem& system() { return system_; }
  // This node's driving simulation (its shard's under the parallel engine).
  Simulation& sim() { return *sim_; }

  // Order-sensitive digest of every message this node received: mixes
  // (arrival time, source, payload hash) per message. Because it is built
  // entirely from one node's inbound stream, it is the per-node determinism
  // oracle for parallel runs — serial and sharded executions of the same
  // seed must produce identical digests (tests/parallel_sim_test.cc).
  const Digest& digest() const { return digest_; }

 private:
  friend class InvokeContext;
  friend class BroadcastLocation;
  friend class DirectoryLocation;

  // --- Client-side invocation state machine ---------------------------------
  struct PendingInvocation {
    Promise<InvokeResult> promise;
    Capability target;
    std::string operation;
    InvokeArgs args;
    EventId user_timer = kInvalidEventId;
    EventId attempt_timer = kInvalidEventId;
    int attempts = 0;
    int redirects = 0;
    // Host the request was last sent to, and every host that proved dead or
    // ignorant so far (forwarded to target kernels as avoid_hosts).
    StationId current_host = kNoStation;
    std::set<StationId> dead_hosts;
    // Latency accounting: start time, whether the request ever left this
    // node, and the caller's metrics class (empty = unclassified).
    SimTime started = 0;
    bool went_remote = false;
    std::string metrics_class;
    // The kInvocation span covering this invocation end to end (a root when
    // the caller is a driver, a child of the calling invocation's dispatch
    // span otherwise; invalid when tracing is off).
    SpanContext span;
  };

  struct PendingLocate {
    ObjectName name;
    std::vector<uint64_t> waiting;  // invocation ids
    int attempts = 0;
    EventId timer = kInvalidEventId;
    SimTime started = 0;
    // kLocate span, child of the first waiting invocation's span.
    SpanContext span;
  };

  struct PendingAck {
    Promise<Status> promise;
    EventId timer = kInvalidEventId;
  };

  struct PendingMove {
    Promise<Status> promise;
    std::shared_ptr<ActiveObject> object;
    StationId destination = 0;
    EventId timer = kInvalidEventId;
    SpanContext span;  // kMove span, open until ack / timeout
  };

  void Trace(TraceEventKind kind, const ObjectName& object, uint64_t id,
             std::string detail = {}) {
    if (trace_ != nullptr) {
      trace_->Record(TraceEvent{sim().now(), kind, station(), object, id,
                                std::move(detail)});
    }
  }

  // --- Causal spans (DESIGN.md §12) ------------------------------------------
  // StartSpan opens a child of `parent`, or a new root trace when `parent` is
  // invalid; ChildSpan additionally requires a valid parent (mid-path spans
  // must never mint root traces of their own). All three are no-ops without a
  // collector and return/accept invalid contexts freely, so call sites need
  // no guards.
  SpanContext StartSpan(const SpanContext& parent, SpanKind kind,
                        const ObjectName& object, std::string_view label) {
    if (spans_ == nullptr) {
      return {};
    }
    return spans_->StartSpan(parent, kind, station(), object, label,
                             sim().now());
  }
  SpanContext ChildSpan(const SpanContext& parent, SpanKind kind,
                        const ObjectName& object, std::string_view label) {
    if (spans_ == nullptr || !parent.valid()) {
      return {};
    }
    return spans_->StartSpan(parent, kind, station(), object, label,
                             sim().now());
  }
  void EndSpan(const SpanContext& ctx, std::string_view status = {}) {
    if (spans_ != nullptr && ctx.valid()) {
      spans_->EndSpan(ctx, sim().now(), status);
    }
  }
  void AnnotateSpan(const SpanContext& ctx, std::string_view note) {
    if (spans_ != nullptr && ctx.valid()) {
      spans_->Annotate(ctx, sim().now(), note);
    }
  }

  uint64_t NewInvocationId();
  uint64_t StartInvocation(const Capability& target, const std::string& op,
                           InvokeArgs args, const InvokeOptions& options,
                           Promise<InvokeResult> promise,
                           const SpanContext& parent_span);
  void TryResolve(uint64_t id);
  void SendRequestTo(uint64_t id, StationId host);
  void DispatchLocally(uint64_t id, std::shared_ptr<ActiveObject> object);
  void StartLocate(uint64_t id);
  void LocateAttempt(uint64_t query_id);
  // Shared locate machinery driven by the LocationService backends
  // (location.h). ResolveLocate completes the pending locate with a learned
  // residence; OnLocateRoundFailed counts a round against the budget and
  // either retries or gives up; RetryLocateNow short-circuits the round
  // timer (a directory miss falls back to broadcast without waiting).
  void ResolveLocate(uint64_t query_id, StationId host, uint64_t epoch,
                     bool active);
  void OnLocateRoundFailed(uint64_t query_id);
  void RetryLocateNow(uint64_t query_id);
  // Merges a residence sighting into the location cache: strictly newer
  // epoch wins, equal-epoch active beats passive, older is dropped.
  void CacheLocation(const ObjectName& name, const ResidenceRecord& record);
  // Stamps `object` as acquired now and publishes the residence to the
  // location backend. The epoch is returned (move acks carry it).
  uint64_t PublishResidenceHere(const std::shared_ptr<ActiveObject>& object);
  void CompleteInvocation(uint64_t id, InvokeResult result);
  void OnAttemptTimeout(uint64_t id);
  // Mark this attempt's host dead, count the attempt, and either re-locate
  // or complete with `give_up_message` if the attempt budget is spent.
  void FailAttempt(uint64_t id, StationId host, const char* give_up_message);
  // Per-host attempt timeout: exponential in `attempts` with seeded jitter.
  SimDuration AttemptTimeout(int attempts, size_t bytes);

  // --- Peer health (DESIGN.md §11) -------------------------------------------
  struct PeerState {
    enum class Mode { kHealthy, kSuspect };
    Mode mode = Mode::kHealthy;
    int consecutive_failures = 0;
    int probes_sent = 0;
    EventId probe_timer = kInvalidEventId;
  };
  void ReportPeerAlive(StationId peer);
  void ReportPeerFailure(StationId peer);
  void SchedulePeerProbe(StationId peer);
  void SendPeerProbe(StationId peer);

  // --- Message plumbing --------------------------------------------------------
  void OnMessage(StationId src, BytesView message);
  void HandleInvokeRequest(StationId src, InvokeRequestMsg msg);
  void HandleInvokeReply(StationId src, const InvokeReplyMsg& msg);
  void HandleInvokeRedirect(StationId src, const InvokeRedirectMsg& msg);
  void HandleLocateRequest(StationId src, const LocateRequestMsg& msg);
  void HandleLocateReply(const LocateReplyMsg& msg);
  void HandleMoveTransfer(StationId src, MoveTransferMsg msg);
  void HandleMoveAck(const MoveAckMsg& msg);
  void HandleCheckpointPut(StationId src, CheckpointPutMsg msg);
  void HandleCheckpointAck(const CheckpointAckMsg& msg);
  void HandleCheckpointErase(const CheckpointEraseMsg& msg);
  void HandleReplicaFetch(StationId src, const ReplicaFetchMsg& msg);
  void HandleReplicaReply(StationId src, ReplicaReplyMsg msg);
  void HandleLeaseGrant(StationId src, LeaseGrantMsg msg);
  void HandleLeaseRecall(StationId src, const LeaseRecallMsg& msg);
  void HandleLeaseRelease(StationId src, const LeaseReleaseMsg& msg);

  // --- Read leases (DESIGN.md §15) -------------------------------------------
  // Home side. MaybeGrantLease runs as a read-class invocation from station
  // `reader` completes: it grants a fresh lease (pushing a LeaseGrant with a
  // representation snapshot) or renews an existing one, and returns the
  // absolute expiry to piggyback on the reply (0 = no lease). StartLeaseRecall
  // opens the recall window for a write-class dispatch `d` that hit live
  // leases (or the reincarnation quiesce); FinishLeaseRecall closes it —
  // normally on the last release, or from the backstop timer at the maximum
  // outstanding expiry when releases were lost.
  uint64_t MaybeGrantLease(const std::shared_ptr<ActiveObject>& object,
                           StationId reader);
  // True when a write-class dispatch must wait: live leases, a recall already
  // open, or the post-reincarnation quiesce window.
  bool LeaseWriteBlocked(const std::shared_ptr<ActiveObject>& object);
  // Opens the recall window without queueing a write (RunMove waits out
  // leases this way); StartLeaseRecall opens it for — and queues — a blocked
  // write-class dispatch.
  void OpenLeaseRecall(const std::shared_ptr<ActiveObject>& object,
                       const SpanContext& parent);
  void StartLeaseRecall(const std::shared_ptr<ActiveObject>& object,
                        PendingDispatch d);
  void FinishLeaseRecall(const std::shared_ptr<ActiveObject>& object,
                         std::string_view how);
  // Drops every lease granted by this home for `object` without recall
  // (crash/destroy/move teardown): cancels the backstop, fails or drains the
  // queued writes via `refuse` (null = re-admit through AcceptDispatch), and
  // resolves waiters.
  void TeardownLeases(const std::shared_ptr<ActiveObject>& object,
                      const Status* refuse);

  // --- Server-side dispatch (the coordinator) ------------------------------------
  void AcceptDispatch(const std::shared_ptr<ActiveObject>& object, PendingDispatch d);
  DetachedTask RunInvocation(std::shared_ptr<ActiveObject> object, PendingDispatch d,
                             const OperationSpec* op);
  void FinishDispatch(const std::shared_ptr<ActiveObject>& object, size_t class_index);
  void PumpQueues(const std::shared_ptr<ActiveObject>& object);
  void ReplyTo(const PendingDispatch& d, InvokeResult result, bool target_frozen,
               uint64_t lease_renew_expiry = 0);
  void RefuseDispatch(const PendingDispatch& d, Status status);
  void CacheReply(uint64_t invocation_id, const ObjectName& object,
                  const InvokeResult& result, bool frozen);
  SimDuration SerializeCost(size_t bytes) const;

  // --- Activation (reincarnation) -------------------------------------------------
  // `parent` (when valid) parents the kActivation span to whichever request
  // first forced the passive object back to life.
  void BeginActivation(const ObjectName& name, const SpanContext& parent = {});
  DetachedTask RunActivation(ObjectName name, SpanContext parent);
  // Result of replaying a checkpoint chain from the store. `corrupt_at` is
  // the first unusable delta link (base failures surface as a non-OK status
  // instead); links [1, corrupt_at) are already applied to `rep` when
  // `prefix_ok` is set, so a fallback can resume from that prefix.
  struct RestoredChain {
    std::string type_name;
    CheckpointPolicy policy;
    bool frozen = false;
    Representation rep;
    uint64_t chain_len = 0;
    uint64_t corrupt_at = 0;
    bool corrupt = false;
    bool prefix_ok = false;
  };
  // Reads base + delta chain for `name`. Non-OK when the base record is
  // missing (kNotFound) or unreadable/corrupt (kDataLoss); OK otherwise,
  // with `out.corrupt` flagging a bad delta link partway down the chain.
  Task<Status> ReadCheckpointChain(const ObjectName& name, RestoredChain& out,
                                   const SpanContext& parent = {});
  void StartBehaviors(const std::shared_ptr<ActiveObject>& object);
  Task<void> RunBehavior(std::shared_ptr<ActiveObject> object, std::string name,
                         BehaviorBody body);

  // --- Checkpoint / crash / destroy / move / freeze (via InvokeContext) ------------
  Future<Status> CheckpointForObject(const std::shared_ptr<ActiveObject>& object,
                                     const SpanContext& parent = {});
  Bytes EncodeCheckpointRecord(const ActiveObject& object,
                               CheckpointRecordKind kind) const;
  // delta_seq 0 writes a base record (and erases any stale delta chain);
  // k > 0 appends link k. The record rides refcounted — a mirrored local
  // write shares the same buffer.
  Future<Status> WriteCheckpoint(const ObjectName& name, SharedBytes record,
                                 uint64_t delta_seq,
                                 const CheckpointPolicy& policy,
                                 const SpanContext& parent = {});
  Future<Status> WriteLocalCheckpoint(const ObjectName& name, SharedBytes record,
                                      uint64_t delta_seq, bool is_mirror,
                                      const SpanContext& parent = {});
  Future<Status> SendRemoteCheckpoint(const ObjectName& name, SharedBytes record,
                                      uint64_t delta_seq, StationId site,
                                      bool is_mirror,
                                      const SpanContext& parent = {});
  // Deletes delta links `from_seq`, `from_seq`+1, ... while they exist.
  void EraseDeltaChain(const ObjectName& name, bool is_mirror,
                       uint64_t from_seq = 1);
  Task<Status> CopyMirrorChain(ObjectName name);
  void CrashObject(const std::shared_ptr<ActiveObject>& object, const Status& reason);
  void DestroyObject(const std::shared_ptr<ActiveObject>& object);
  DetachedTask RunMove(std::shared_ptr<ActiveObject> object, StationId destination,
                       Promise<Status> done, SpanContext parent,
                       int drain_threshold);
  void MaybeFetchReplica(const ObjectName& name, StationId host,
                         const SpanContext& parent = {});

  static std::string CheckpointKey(const ObjectName& name) {
    return "ckpt/" + name.ToKey();
  }
  static std::string MirrorKey(const ObjectName& name) {
    return "mirror/" + name.ToKey();
  }
  // Delta link k of the (primary or mirror) chain: "<base key>#d<k>".
  static std::string DeltaKey(const ObjectName& name, uint64_t seq,
                              bool is_mirror) {
    return (is_mirror ? MirrorKey(name) : CheckpointKey(name)) + "#d" +
           std::to_string(seq);
  }

  // Cached Counter pointers into metrics_ for the kernel's hot paths; the
  // names mirror the KernelStats fields (see NodeKernel::stats).
  struct KernelCounters {
    Counter* invocations_started = nullptr;
    Counter* invocations_local = nullptr;
    Counter* invocations_remote = nullptr;
    Counter* invocations_completed = nullptr;
    Counter* invocations_timed_out = nullptr;
    Counter* invocations_unavailable = nullptr;
    Counter* dispatches = nullptr;
    Counter* rights_denied = nullptr;
    Counter* queue_refusals = nullptr;
    // Backend-tagged locate query rounds (kernel.locate.queries.<backend>)
    // plus the directory.* instruments (DESIGN.md §13).
    Counter* locate_queries_broadcast = nullptr;
    Counter* locate_queries_directory = nullptr;
    Counter* locate_cache_hits = nullptr;
    Counter* directory_lookups = nullptr;
    Counter* directory_updates = nullptr;
    Counter* directory_stale_updates = nullptr;
    Counter* directory_stale_forwards = nullptr;
    Counter* directory_fallbacks = nullptr;
    Counter* directory_repairs = nullptr;
    Counter* directory_handoffs = nullptr;
    Counter* redirects_followed = nullptr;
    Counter* activations = nullptr;
    Counter* checkpoints = nullptr;
    Counter* checkpoint_bases = nullptr;
    Counter* checkpoint_deltas = nullptr;
    Counter* checkpoint_noops = nullptr;
    Counter* checkpoint_record_bytes = nullptr;
    Counter* crashes = nullptr;
    Counter* moves_out = nullptr;
    Counter* moves_in = nullptr;
    Counter* replica_fetches = nullptr;
    Counter* replica_reads = nullptr;
    Counter* duplicate_requests = nullptr;
    Counter* lease_grants = nullptr;
    Counter* lease_recalls = nullptr;
    Counter* lease_renewals = nullptr;
    Counter* lease_expiries = nullptr;
    Counter* lease_local_reads = nullptr;
    Counter* peer_suspects = nullptr;
    Counter* peer_probes = nullptr;
    Counter* peer_recoveries = nullptr;
    Counter* suspect_fast_fails = nullptr;
    Counter* restore_fallbacks = nullptr;
    Counter* restore_quarantines = nullptr;
  };
  void InitMetrics();
  void RecordInvocationLatency(const PendingInvocation& pending, bool ok);
  void UpdateActiveGauge() {
    metrics_.gauge("kernel.objects.active")
        .Set(static_cast<int64_t>(active_.size()));
  }

  EdenSystem& system_;
  std::string node_name_;
  // The simulation this node schedules through (see the constructor).
  Simulation* sim_;
  Digest digest_;
  KernelConfig config_;
  // Kernel-private randomness (attempt jitter), forked from the simulation
  // seed so chaotic runs stay reproducible.
  Rng rng_;
  // Declared before the transport and store, which hold pointers into it.
  MetricsRegistry metrics_;
  KernelCounters counters_;
  Histogram* invoke_latency_local_ = nullptr;
  Histogram* invoke_latency_remote_ = nullptr;
  Histogram* locate_latency_ = nullptr;
  Histogram* checkpoint_latency_ = nullptr;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<StableStore> store_;
  // The pluggable location backend (DESIGN.md §13); constructed after the
  // transport it sends through.
  std::unique_ptr<LocationService> location_;
  bool failed_ = false;
  bool draining_ = false;

  // active_ stays ordered: FailNode's iteration completes promises, so its
  // order is observable in the execution trace (determinism_test).
  std::map<ObjectName, std::shared_ptr<ActiveObject>> active_;
  std::map<ObjectName, std::shared_ptr<ActiveObject>> replicas_;
  // Behavior coroutines, owned so a frame still suspended when the kernel is
  // torn down is destroyed instead of leaked (a behavior parked on a sleep or
  // checkpoint future holds its object alive). A behavior that observes
  // !alive() exits on its next resume; finished frames are reaped lazily in
  // StartBehaviors.
  std::vector<Task<void>> behaviors_;
  // Forwarding hints left behind by moves, stamped with the destination's
  // residence epoch (from its move ack) so redirects are versioned.
  std::map<ObjectName, ResidenceRecord> forwarding_;
  // Pure point-lookup table: never iterated where order is observable.
  // Entries merge by epoch (CacheLocation) — lazy invalidation.
  std::unordered_map<ObjectName, ResidenceRecord, ObjectNameHash>
      location_cache_;

  // Peers with recent consecutive send failures (healthy peers are absent).
  // Iterated only to cancel probe timers on node failure.
  std::unordered_map<StationId, PeerState> peers_;

  std::map<uint64_t, PendingInvocation> pending_invocations_;
  // Iterated only to cancel timers on node failure (order-insensitive).
  std::unordered_map<uint64_t, PendingLocate> pending_locates_;
  std::map<ObjectName, uint64_t> locate_by_name_;
  std::map<uint64_t, PendingAck> pending_acks_;
  std::map<uint64_t, PendingMove> pending_moves_;
  std::map<uint64_t, ObjectName> pending_replica_fetches_;

  // Reincarnations in progress: invocations that arrived for the passive
  // object wait here until the reincarnation handler finishes.
  std::set<ObjectName> activating_;
  std::map<ObjectName, std::vector<uint64_t>> activation_local_waiters_;
  std::map<ObjectName, std::deque<PendingDispatch>> activation_remote_hold_;

  // --- Client-side lease cache (DESIGN.md §15) -------------------------------
  // One entry per object this node holds a read lease on. `replica` is a
  // frozen local copy built from the grant's representation snapshot;
  // read-class invocations dispatch into it with zero network traffic until
  // `expiry`. Ordered map: FailNode teardown iterates it.
  struct LeaseEntry {
    std::shared_ptr<ActiveObject> replica;
    SimTime expiry = 0;
    StationId home = kNoStation;
    uint64_t epoch = 0;
    uint64_t seq = 0;
  };
  std::map<ObjectName, LeaseEntry> lease_cache_;
  // Highest recall version answered (or grant dropped) per object: a grant
  // versioned <= this floor arrived late and is refused, so a recalled lease
  // can never resurrect. Bounded by the number of leased objects; entries
  // die with the node (leases are volatile state).
  std::map<ObjectName, std::pair<uint64_t, uint64_t>> lease_floor_;

  // Server-side at-most-once execution. Cached replies remember which object
  // produced them so a move can carry the object's entries to the new host
  // (a retry that lands post-move must re-reply, not re-execute).
  struct CachedReply {
    InvokeResult result;
    bool frozen = false;
    ObjectName object;
  };
  std::set<uint64_t> requests_in_progress_;
  std::map<uint64_t, CachedReply> reply_cache_;
  std::deque<uint64_t> reply_cache_order_;

  uint64_t next_invocation_seq_ = 1;
  uint64_t next_object_seq_ = 1;
  uint64_t next_query_id_ = 1;
  uint64_t next_request_id_ = 1;
  uint64_t next_transfer_id_ = 1;

  TraceBuffer* trace_ = nullptr;
  SpanCollector* spans_ = nullptr;
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_NODE_KERNEL_H_
