// LocationService: the pluggable object-location backend of the kernel
// (DESIGN.md §13). The paper resolves locations by broadcasting to every
// node (section 4.3); at the 256-node installations the ROADMAP targets the
// broadcast is the classic non-scaler, so the kernel now talks to this
// interface and two backends implement it:
//
//  * BroadcastLocation — the paper's protocol, kept as the ablation baseline
//    and as the directory backend's fallback: one best-effort broadcast per
//    round, holders reply (active immediately, passive/mirror delayed).
//  * DirectoryLocation — a partitioned directory: each ObjectName hashes to
//    a *home node* whose volatile partition records the object's current
//    residence with an epoch stamp (the simulation time at which the host
//    acquired the object). Moves, reincarnations and mirror promotions
//    publish a versioned update to the home; lookups cost O(1) messages
//    regardless of node count. A miss (cold home, crashed-and-restarted
//    home, racing move) falls back to one broadcast round, and the learned
//    residence is pushed back to the home — so the directory reconstructs
//    itself lazily from the hosts' own inventories after a home-node crash.
//
// Epoch rule, everywhere a residence record lands (home partition, location
// caches, forwarding hints): a strictly newer epoch wins, an older one is
// dropped, and at equal epochs an active sighting beats a passive one.
// Passive holders stamp epoch 0, so they only ever fill empty slots.
//
// The kernel owns the shared locate machinery (PendingLocate timers, retry
// budget, waiting invocations); a backend implements one *query round* plus
// the publish/lookup message handlers. Everything a backend sends rides the
// best-effort transport: a lost update or reply is repaired lazily by the
// fallback path, never retransmitted.
#ifndef EDEN_SRC_KERNEL_LOCATION_H_
#define EDEN_SRC_KERNEL_LOCATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "src/kernel/message.h"
#include "src/kernel/name.h"
#include "src/kernel/placement.h"
#include "src/metrics/metrics.h"
#include "src/net/lan.h"
#include "src/sim/time.h"
#include "src/trace/span.h"

namespace eden {

class NodeKernel;

enum class LocationBackend : uint8_t {
  kBroadcast = 0,
  kDirectory = 1,
};

std::string_view LocationBackendName(LocationBackend backend);

// Locate knobs, gathered on the builder (`WithLocation`) — see LocateConfig
// notes in node_kernel.h for the deprecated loose aliases.
struct LocateConfig {
  LocationBackend backend = LocationBackend::kDirectory;
  // Per-round timeout and round budget (shared by both backends; a directory
  // miss's broadcast fallback consumes a round from the same budget).
  SimDuration timeout = Milliseconds(50);
  int max_attempts = 3;
  // Passive holders delay their broadcast replies so an active host wins.
  SimDuration passive_reply_delay = Milliseconds(2);
  // Directory backend: number of home nodes each object's residence is
  // recorded at (>1 tolerates home crashes without fallback broadcasts).
  // 0 = auto: 2 once the installation reaches 16 members, else 1 — big
  // installations get crash-tolerant lookups by default, small ones don't
  // pay the double-publish tax.
  int directory_fanout = 0;
  // Hysteresis for the auto fanout flip (directory_fanout == 0 only). With a
  // membership hovering around the 16-member boundary — a rolling restart, a
  // flapping node — the instant flip re-fans every record's home set on each
  // crossing, a cluster-wide handoff wave each way. A non-zero dwell makes
  // the flip commit only after the member count has stayed on the far side
  // of the boundary for this long; crossings shorter than the dwell change
  // nothing. 0 = flip immediately (bit-identical legacy behavior).
  SimDuration fanout_dwell = 0;
  // After a fallback broadcast resolves, push the learned residence back to
  // the home node(s) so the next query hits the directory again.
  bool directory_repair = true;
};

// One node's view of where an object lives: a home-partition record, a
// location-cache entry, or a forwarding hint.
struct ResidenceRecord {
  StationId host = kNoStation;
  // Simulation time at which `host` acquired the object (create, move-in,
  // reincarnation); 0 for passive sightings. Monotone along any causal chain
  // of residence changes, so "newer epoch wins" is a safe merge rule.
  uint64_t epoch = 0;
  bool active = false;
};

class LocationService {
 public:
  static std::unique_ptr<LocationService> Create(NodeKernel& kernel,
                                                 LocationBackend backend);
  virtual ~LocationService() = default;

  virtual LocationBackend backend() const = 0;

  // --- Client side -----------------------------------------------------------
  // Issues resolution round `attempt` (0-based) for the pending locate
  // `query_id`. Resolution flows back through NodeKernel::ResolveLocate —
  // possibly synchronously (the kernel arms the round timer first). `avoid`
  // lists hosts the waiting invocations proved dead, so stale records
  // pointing there are dropped rather than returned.
  virtual void QueryRound(uint64_t query_id, const ObjectName& name,
                          int attempt, const std::vector<StationId>& avoid,
                          const SpanContext& locate_span) = 0;
  // The locate under `query_id` is over (resolved, budget spent, node
  // failed): drop per-query state and close any open round span.
  virtual void EndQuery(uint64_t query_id, std::string_view status) {}
  // Residence learned outside the backend's own replies (a broadcast locate
  // reply): lets the directory repair its home partition.
  virtual void NoteResidence(const ObjectName& name,
                             const ResidenceRecord& record) {}

  // --- Host side -------------------------------------------------------------
  // This node acquired (or reincarnated, or received) the object: publish the
  // new residence. No-op for the broadcast backend — holders answer queries
  // from their inventories instead.
  virtual void PublishResidence(const ObjectName& name,
                                const ResidenceRecord& record) {}
  // The object was destroyed; `epoch` is the destruction time.
  virtual void PublishRemoval(const ObjectName& name, uint64_t epoch) {}

  // --- Wire ------------------------------------------------------------------
  virtual void HandleDirectoryLookup(StationId src,
                                     const DirectoryLookupMsg& msg) {}
  virtual void HandleDirectoryReply(const DirectoryReplyMsg& msg) {}
  virtual void HandleDirectoryUpdate(StationId src,
                                     const DirectoryUpdateMsg& msg) {}

  // --- Lifecycle / introspection --------------------------------------------
  // Node failure: all backend state is volatile and dies with the node.
  virtual void OnNodeFailed() {}
  // The member set changed (join/drain/depart, DESIGN.md §16). The directory
  // backend re-checks which records this node still homes and hands the rest
  // off; the broadcast backend doesn't care.
  virtual void OnMembershipChange() {}
  // Size of this node's home partition (0 for the broadcast backend).
  virtual size_t directory_entries() const { return 0; }
  // This node's partition record for `name`, or nullptr (tests).
  virtual const ResidenceRecord* DirectoryEntry(const ObjectName& name) const {
    return nullptr;
  }
  // The home node(s) `name` hashes to (empty for the broadcast backend).
  virtual std::vector<StationId> HomesOf(const ObjectName& name) { return {}; }

 protected:
  explicit LocationService(NodeKernel& kernel) : kernel_(kernel) {}
  NodeKernel& kernel_;
};

// The paper's broadcast protocol: every query round is one best-effort
// broadcast; active hosts answer immediately, passive checkpoint holders
// after passive_reply_delay, mirror-only holders after twice that.
class BroadcastLocation : public LocationService {
 public:
  explicit BroadcastLocation(NodeKernel& kernel) : LocationService(kernel) {}
  LocationBackend backend() const override {
    return LocationBackend::kBroadcast;
  }
  void QueryRound(uint64_t query_id, const ObjectName& name, int attempt,
                  const std::vector<StationId>& avoid,
                  const SpanContext& locate_span) override;
};

// The partitioned directory. This node plays two roles at once: home node
// for the slice of the name space that hashes here (`partition_`), and
// client issuing lookups for its own kernel's locates (`pending_`).
class DirectoryLocation : public LocationService {
 public:
  explicit DirectoryLocation(NodeKernel& kernel);
  LocationBackend backend() const override {
    return LocationBackend::kDirectory;
  }

  void QueryRound(uint64_t query_id, const ObjectName& name, int attempt,
                  const std::vector<StationId>& avoid,
                  const SpanContext& locate_span) override;
  void EndQuery(uint64_t query_id, std::string_view status) override;
  void NoteResidence(const ObjectName& name,
                     const ResidenceRecord& record) override;

  void PublishResidence(const ObjectName& name,
                        const ResidenceRecord& record) override;
  void PublishRemoval(const ObjectName& name, uint64_t epoch) override;

  void HandleDirectoryLookup(StationId src,
                             const DirectoryLookupMsg& msg) override;
  void HandleDirectoryReply(const DirectoryReplyMsg& msg) override;
  void HandleDirectoryUpdate(StationId src,
                             const DirectoryUpdateMsg& msg) override;

  void OnNodeFailed() override;
  void OnMembershipChange() override;
  size_t directory_entries() const override { return partition_.size(); }
  const ResidenceRecord* DirectoryEntry(const ObjectName& name) const override;
  std::vector<StationId> HomesOf(const ObjectName& name) override;

 private:
  struct Query {
    ObjectName name;
    // A home answered "unknown" (or the only home is this node and its
    // partition missed): remaining rounds broadcast instead.
    bool fallback = false;
    // kDirectory span covering the current lookup round; closed on reply,
    // fallback, or when the next round opens.
    SpanContext round_span;
  };

  // Homes of `name` under an explicit member list and fanout (the system
  // placement policy decides which members). HomesOf uses the current
  // members and the effective fanout; OnMembershipChange diffs against the
  // previous snapshots of both.
  std::vector<StationId> HomesWith(const ObjectName& name,
                                   const std::vector<Member>& members,
                                   int fanout) const;
  // The fanout in force right now: the configured value when pinned, else
  // the auto value (2 at >= 16 members, else 1) run through the
  // fanout_dwell hysteresis. Deterministic across nodes: the dwell state
  // only changes at membership transitions (delivered to every node in the
  // same event) and the committed value is a pure function of that shared
  // state and the current time.
  int EffectiveFanout(const std::vector<Member>& members);
  // Applies the epoch merge rule to this node's partition. Returns true if
  // the record was applied (inserted or superseded an older one).
  bool ApplyUpdate(const ObjectName& name, const ResidenceRecord& record);
  void ApplyRemoval(const ObjectName& name, uint64_t epoch);
  // Local lookup when this node is one of the homes. Drops entries pointing
  // at `avoid` hosts, exactly like the remote handler.
  const ResidenceRecord* LookupLocal(const ObjectName& name,
                                     const std::vector<StationId>& avoid);
  void UpdateEntriesGauge();
  void BeginFallback(uint64_t query_id, Query& query, const char* reason);

  // This node's slice of the directory. Ordered so OnNodeFailed's span
  // closing and any future inventory dump iterate deterministically.
  std::map<ObjectName, ResidenceRecord> partition_;
  // Client-side per-query state, keyed (and iterated on failure) by query id.
  std::map<uint64_t, Query> pending_;
  // Member set this node's partition was last reconciled against, so a
  // membership change hands off only the records whose home set actually
  // changed instead of re-pushing everything.
  std::vector<Member> last_members_;
  // Fanout-dwell hysteresis state (see LocateConfig::fanout_dwell).
  // stable_fanout_ is the committed auto fanout; pending_fanout_ (0 = none)
  // is a flip waiting out its dwell since pending_since_. last_fanout_
  // snapshots the fanout the partition was last reconciled under, so a
  // membership diff compares old homes at the old fanout with new homes at
  // the new one.
  int stable_fanout_ = 0;
  int pending_fanout_ = 0;
  SimTime pending_since_ = 0;
  int last_fanout_ = 0;
  Gauge* entries_gauge_ = nullptr;
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_LOCATION_H_
