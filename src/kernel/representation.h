// Representation: "the data and capability segments that form the object's
// long-term state" (paper section 4.1, Figure 4). This is the only part of an
// object that checkpoint writes to stable storage and that move transfers
// between nodes; short-term state never leaves the node.
//
// For delta checkpoints (DESIGN.md §10) the representation keeps one coarse
// dirty bit per data segment plus one for the whole capability segment:
// every mutator sets the corresponding bit, the kernel's checkpoint encoder
// reads and clears them. `mutable_data` marks conservatively — handing out a
// mutable reference counts as a write.
#ifndef EDEN_SRC_KERNEL_REPRESENTATION_H_
#define EDEN_SRC_KERNEL_REPRESENTATION_H_

#include <vector>

#include "src/common/bytes.h"
#include "src/kernel/capability.h"

namespace eden {

class Representation {
 public:
  Representation() = default;

  // --- Data segments ---------------------------------------------------
  size_t data_segment_count() const { return data_segments_.size(); }

  // Grows the data segment vector to at least `count` segments.
  void EnsureDataSegments(size_t count) {
    if (data_segments_.size() < count) {
      data_segments_.resize(count);
      data_dirty_.resize(count, true);  // fresh segments are dirty
    }
  }

  const Bytes& data(size_t index) const { return data_segments_.at(index); }
  Bytes& mutable_data(size_t index) {
    EnsureDataSegments(index + 1);
    data_dirty_[index] = true;
    return data_segments_[index];
  }
  void set_data(size_t index, Bytes bytes) {
    EnsureDataSegments(index + 1);
    data_dirty_[index] = true;
    data_segments_[index] = std::move(bytes);
  }

  // Convenience: segment as string.
  std::string DataAsString(size_t index) const {
    if (index >= data_segments_.size()) {
      return {};
    }
    return ToString(data_segments_[index]);
  }
  void SetDataFromString(size_t index, std::string_view text) {
    set_data(index, ToBytes(text));
  }

  // --- Capability segment ----------------------------------------------
  size_t capability_count() const { return capabilities_.size(); }
  const Capability& capability(size_t index) const { return capabilities_.at(index); }
  const std::vector<Capability>& capabilities() const { return capabilities_; }
  void AddCapability(const Capability& cap) {
    caps_dirty_ = true;
    capabilities_.push_back(cap);
  }
  void SetCapability(size_t index, const Capability& cap) {
    if (capabilities_.size() <= index) {
      capabilities_.resize(index + 1);
    }
    caps_dirty_ = true;
    capabilities_[index] = cap;
  }
  void ClearCapabilities() {
    if (!capabilities_.empty()) {
      caps_dirty_ = true;
    }
    capabilities_.clear();
  }

  // --- Dirty tracking ----------------------------------------------------
  bool data_dirty(size_t index) const {
    return index < data_dirty_.size() && data_dirty_[index];
  }
  bool caps_dirty() const { return caps_dirty_; }
  bool AnyDirty() const;
  size_t DirtySegmentCount() const;
  void MarkAllDirty();
  void ClearDirty();

  // --- Whole-representation operations ----------------------------------
  void Encode(BufferWriter& writer) const;
  static StatusOr<Representation> Decode(BufferReader& reader);

  // Delta record body: only the dirty data segments (index + bytes) and, if
  // dirty, the full capability segment. ApplyDelta replays one onto a base;
  // segment indices beyond the current count grow the representation.
  // Neither touches the dirty bits of the *target* beyond what set_data
  // implies — restore paths call ClearDirty() when done.
  void EncodeDelta(BufferWriter& writer) const;
  Status ApplyDelta(BufferReader& reader);

  // Approximate in-memory footprint (drives checkpoint/migration cost).
  size_t ByteSize() const;

  // Byte size of a delta record body for the current dirty set.
  size_t DirtyByteSize() const;

  // Content digest (replica integrity, round-trip property tests).
  uint64_t DigestValue() const;

  bool operator==(const Representation& other) const {
    return data_segments_ == other.data_segments_ &&
           capabilities_ == other.capabilities_;
  }

 private:
  std::vector<Bytes> data_segments_;
  std::vector<Capability> capabilities_;
  // Parallel to data_segments_; content equality ignores these.
  std::vector<bool> data_dirty_;
  bool caps_dirty_ = false;
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_REPRESENTATION_H_
