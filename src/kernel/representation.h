// Representation: "the data and capability segments that form the object's
// long-term state" (paper section 4.1, Figure 4). This is the only part of an
// object that checkpoint writes to stable storage and that move transfers
// between nodes; short-term state never leaves the node.
#ifndef EDEN_SRC_KERNEL_REPRESENTATION_H_
#define EDEN_SRC_KERNEL_REPRESENTATION_H_

#include <vector>

#include "src/common/bytes.h"
#include "src/kernel/capability.h"

namespace eden {

class Representation {
 public:
  Representation() = default;

  // --- Data segments ---------------------------------------------------
  size_t data_segment_count() const { return data_segments_.size(); }

  // Grows the data segment vector to at least `count` segments.
  void EnsureDataSegments(size_t count) {
    if (data_segments_.size() < count) {
      data_segments_.resize(count);
    }
  }

  const Bytes& data(size_t index) const { return data_segments_.at(index); }
  Bytes& mutable_data(size_t index) {
    EnsureDataSegments(index + 1);
    return data_segments_[index];
  }
  void set_data(size_t index, Bytes bytes) {
    EnsureDataSegments(index + 1);
    data_segments_[index] = std::move(bytes);
  }

  // Convenience: segment as string.
  std::string DataAsString(size_t index) const {
    if (index >= data_segments_.size()) {
      return {};
    }
    return ToString(data_segments_[index]);
  }
  void SetDataFromString(size_t index, std::string_view text) {
    set_data(index, ToBytes(text));
  }

  // --- Capability segment ----------------------------------------------
  size_t capability_count() const { return capabilities_.size(); }
  const Capability& capability(size_t index) const { return capabilities_.at(index); }
  const std::vector<Capability>& capabilities() const { return capabilities_; }
  void AddCapability(const Capability& cap) { capabilities_.push_back(cap); }
  void SetCapability(size_t index, const Capability& cap) {
    if (capabilities_.size() <= index) {
      capabilities_.resize(index + 1);
    }
    capabilities_[index] = cap;
  }
  void ClearCapabilities() { capabilities_.clear(); }

  // --- Whole-representation operations ----------------------------------
  void Encode(BufferWriter& writer) const;
  static StatusOr<Representation> Decode(BufferReader& reader);

  // Approximate in-memory footprint (drives checkpoint/migration cost).
  size_t ByteSize() const;

  // Content digest (replica integrity, round-trip property tests).
  uint64_t DigestValue() const;

  bool operator==(const Representation& other) const {
    return data_segments_ == other.data_segments_ &&
           capabilities_ == other.capabilities_;
  }

 private:
  std::vector<Bytes> data_segments_;
  std::vector<Capability> capabilities_;
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_REPRESENTATION_H_
