// EdenSystem: the whole simulated installation of Figure 1 — one Ethernet,
// a set of node machines, and the system-wide type registry.
//
// In the paper, type managers are themselves objects; here the registry is a
// process-global table shared by every kernel, standing in for "on a single
// node, the type code can be shared by several instances of the type"
// (section 4.1) without simulating code shipping. DESIGN.md section 2.2
// records the substitution.
#ifndef EDEN_SRC_KERNEL_EDEN_SYSTEM_H_
#define EDEN_SRC_KERNEL_EDEN_SYSTEM_H_

#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/kernel/node_kernel.h"
#include "src/kernel/placement.h"
#include "src/kernel/rebalancer.h"
#include "src/metrics/metrics.h"
#include "src/net/lan.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/telemetry/telemetry.h"

namespace eden {

class EdenSystem;
class TraceBuffer;

// Elastic membership (DESIGN.md §16): how joins warm up, how drains pace
// themselves, and which placement policy assigns homes and move targets.
struct MembershipConfig {
  PlacementPolicyKind placement = PlacementPolicyKind::kModulo;
  // A joining node serves directory traffic immediately but is only marked
  // active (eligible as a rebalance/spread target) after this warmup.
  SimDuration join_warmup = Milliseconds(50);
  // Drain progress poll period and overall deadline. A drain that cannot
  // finish by the deadline departs anyway and reports TimeoutError.
  SimDuration drain_poll = Milliseconds(5);
  SimDuration drain_timeout = Seconds(30);
  RebalanceConfig rebalance;
};

struct SystemConfig {
  uint64_t seed = 1;
  LanConfig lan;
  KernelConfig kernel;
  DiskConfig disk;
  TransportConfig transport;
  MembershipConfig membership;
  // Always-on telemetry (DESIGN.md §17). With enabled = true the system
  // starts the scrape/SLO/flight-recorder pipeline at construction;
  // EnableTelemetry() does the same on demand.
  TelemetryConfig telemetry;
  // 0 = the classic single-threaded CSMA/CD world (the default and the
  // correctness baseline). >= 1 = switched LAN + parallel sharded engine
  // (DESIGN.md §14) with this many worker shards; 1 is the sharded code path
  // with a single shard (pass-through, used as the sharded-mode oracle).
  // Equivalent builder-style knob: EdenSystem::WithShards before AddNode.
  size_t shards = 0;
};

// Fluent per-node configuration, returned by EdenSystem::AddNode:
//
//   NodeKernel& server = system.AddNode("fileserver")
//                            .WithDisk(big_disk)
//                            .WithTrace(&trace);
//
// Each With* overrides the system-wide default from SystemConfig for this
// node only. The node is created when Build() runs — explicitly, via the
// NodeKernel& conversion, or (for a bare `system.AddNode("x");` statement)
// when the builder goes out of scope at the end of the statement. Station
// ids are therefore assigned in statement order, as before.
class NodeBuilder {
 public:
  NodeBuilder(const NodeBuilder&) = delete;
  NodeBuilder& operator=(const NodeBuilder&) = delete;

  ~NodeBuilder() {
    if (node_ == nullptr) {
      Build();
    }
  }

  NodeBuilder& WithKernel(KernelConfig config) {
    kernel_ = config;
    return *this;
  }
  NodeBuilder& WithDisk(DiskConfig config) {
    disk_ = config;
    return *this;
  }
  NodeBuilder& WithTransport(TransportConfig config) {
    transport_ = config;
    return *this;
  }
  // Selects the location backend (DESIGN.md §13) — or overrides the whole
  // locate configuration — for this node only.
  NodeBuilder& WithLocation(LocationBackend backend) {
    kernel_.locate.backend = backend;
    return *this;
  }
  NodeBuilder& WithLocation(const LocateConfig& locate) {
    kernel_.locate = locate;
    return *this;
  }
  NodeBuilder& WithTrace(TraceBuffer* trace) {
    trace_ = trace;
    return *this;
  }
  // Pins this node to a specific shard (sharded systems only; the default is
  // round-robin placement).
  NodeBuilder& WithShard(uint32_t shard) {
    shard_ = static_cast<int>(shard);
    return *this;
  }

  // Creates the node (idempotent).
  NodeKernel& Build();
  operator NodeKernel&() { return Build(); }

 private:
  friend class EdenSystem;
  NodeBuilder(EdenSystem* system, std::string name);

  EdenSystem* system_;
  std::string name_;
  KernelConfig kernel_;
  DiskConfig disk_;
  TransportConfig transport_;
  TraceBuffer* trace_ = nullptr;
  int shard_ = -1;  // -1 = auto placement
  NodeKernel* node_ = nullptr;
};

class EdenSystem {
 public:
  explicit EdenSystem(SystemConfig config = {});

  EdenSystem(const EdenSystem&) = delete;
  EdenSystem& operator=(const EdenSystem&) = delete;

  // The primary simulation (shard 0 under the parallel engine). Setup-time
  // randomness (node rng forks, transport ids, object nonces) always draws
  // from this one so it is independent of the shard layout.
  Simulation& sim() { return sim_; }
  Lan& lan() { return lan_; }
  const SystemConfig& config() const { return config_; }

  // --- Parallel sharded engine (DESIGN.md §14) -------------------------------
  // Equivalent to SystemConfig::shards = n: flips the LAN into switched mode
  // and partitions subsequently-added nodes across n worker shards, each
  // with its own Simulation, synchronized conservatively with the LAN's
  // minimum wire latency as lookahead. Call before adding any node.
  EdenSystem& WithShards(size_t n);
  bool sharded() const { return engine_ != nullptr; }
  size_t shard_count() const { return engine_ ? engine_->shard_count() : 1; }
  // Simulation driving shard `s` (s == 0 is sim()).
  Simulation& shard_sim(size_t s) {
    return s == 0 ? sim_ : *extra_sims_[s - 1];
  }
  // Shard that owns node `index` (0 when unsharded).
  uint32_t node_shard(size_t index) const {
    return index < node_shard_.size() ? node_shard_[index] : 0;
  }
  ShardedEngine* engine() { return engine_.get(); }
  // Events executed across every shard (== sim().events_executed() when
  // unsharded).
  uint64_t total_events() const;

  // Adds a node machine to the installation, configured with the system-wide
  // defaults unless the returned builder overrides them.
  NodeBuilder AddNode(const std::string& name);
  // Adds `count` default-configured nodes named "node0".."node<count-1>".
  // Under the sharded engine, the batch is placed in contiguous blocks
  // (node i -> shard i*S/count) so ring/neighbor traffic stays shard-local.
  void AddNodes(size_t count);

  NodeKernel& node(size_t index) {
    assert(index < nodes_.size());
    return *nodes_[index];
  }
  size_t node_count() const { return nodes_.size(); }
  NodeKernel* NodeAt(StationId station);

  // --- Fault injection (chaos layer, DESIGN.md §11) ---------------------------
  // Arms `plan`: installs the injector's wire hook on the Lan and its disk
  // hooks on every node's stable store (nodes added later are hooked as they
  // are built), schedules the plan's partition and crash-restart timelines,
  // and mirrors injected-fault counts into metrics() under fault.*. With a
  // trace buffer, every injected fault is also recorded as a kFaultInjected
  // event, interleaved with the recoveries it provokes. Call at most once.
  void EnableFaults(const FaultPlan& plan, TraceBuffer* trace = nullptr);
  FaultInjector* faults() { return fault_injector_.get(); }

  // --- Always-on telemetry (DESIGN.md §17) -----------------------------------
  // Builds the telemetry pipeline from config().telemetry and starts a
  // deterministic scrape chain on every shard. Idempotent; called by the
  // constructor when config.telemetry.enabled and re-run by WithShards so
  // late-created shards get chains too. Scrape ticks are ordered after all
  // same-instant events, so node digests and wire traffic are unchanged by
  // enabling telemetry (only the sim's internal event trace shifts).
  Telemetry& EnableTelemetry();
  // Null until EnableTelemetry has run.
  Telemetry* telemetry() { return telemetry_.get(); }
  const Telemetry* telemetry() const { return telemetry_.get(); }

  // Mirrors `trace`'s occupancy (trace.buffer.recorded/dropped counters,
  // high_water/size gauges) into the system registry, so flat-event-buffer
  // loss shows up in Rollup()/MetricsJson(). Idempotent per buffer; called
  // automatically for buffers passed to NodeBuilder::WithTrace and
  // EnableFaults. The buffer must outlive this system. No-op under the
  // sharded engine (the buffer would be written from a shard thread, and the
  // mirror would race on the shared system registry).
  void MeterTrace(TraceBuffer* trace);

  // --- Causal tracing (DESIGN.md §12) ----------------------------------------
  // Attaches one shared SpanCollector to every node kernel (present and
  // future), wiring it into the system metrics registry so trace.phase.*
  // histograms appear in Rollup(). Spans never schedule simulation events or
  // consume simulation randomness, so enabling tracing cannot change a run's
  // execution. nullptr detaches. The collector must outlive this system or be
  // detached first.
  void set_span_collector(SpanCollector* spans);
  SpanCollector* span_collector() { return span_collector_; }

  // --- Type registry ---------------------------------------------------------
  void RegisterType(std::shared_ptr<TypeManager> type);
  std::shared_ptr<TypeManager> FindType(const std::string& type_name) const;

  // --- Metrics ---------------------------------------------------------------
  // The system-wide registry: lan.* instruments live here.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Aggregates the system registry plus every node's registry into one
  // snapshot: counters and gauges sum, histograms merge bucket-wise. Under
  // the sharded engine this also syncs the LAN's deferred per-station
  // counters and the per-shard span-phase registries; call it only between
  // runs (shards quiescent).
  MetricsRegistry Rollup() const;

  // JSON rendering of Rollup() (see MetricsRegistry::ToJson for the shape).
  std::string MetricsJson() const;

  // Folds every shard's span collector into the one passed to
  // set_span_collector, so post-run span analysis (critical paths,
  // exemplars) sees the whole installation. No-op when unsharded. Call
  // between runs.
  void MergeSpans();

  // --- Drive helpers (tests, examples, benchmarks) -----------------------------
  // Runs the simulation until the future resolves. Aborts if the event queue
  // drains first (a deadlock in the scenario under test).
  template <typename T>
  T Await(Future<T> future) {
    auto pending = [&future] { return !future.ready(); };
    bool done = engine_ != nullptr ? engine_->DriveWhile(pending)
                                   : sim_.RunWhile(pending);
    assert(done && "simulation deadlocked while awaiting a future");
    (void)done;
    return future.Get();
  }

  void RunFor(SimDuration duration) { RunUntil(sim_.now() + duration); }
  // Advances the whole installation (every shard, in parallel when sharded)
  // to exactly `deadline`.
  void RunUntil(SimTime deadline) {
    if (engine_ != nullptr) {
      engine_->RunUntil(deadline);
    } else {
      sim_.RunUntil(deadline);
    }
  }
  // Runs conservative single-threaded rounds while `pending()` is true (the
  // sharded counterpart of Simulation::RunWhile); plain RunWhile when
  // unsharded. Returns false if the world drained with `pending` still true.
  bool DriveWhile(const std::function<bool()>& pending) {
    return engine_ != nullptr ? engine_->DriveWhile(pending)
                              : sim_.RunWhile(pending);
  }

  // --- Elastic membership (DESIGN.md §16) ------------------------------------
  // Every node has a lifecycle: joining -> active -> draining -> departed.
  // The *member set* — the nodes that home directory partitions and are
  // eligible rebalance targets — is the joining + active nodes, recomputed on
  // every transition. A crashed node stays a member (crash != leave: its
  // directory slice is repaired by broadcast fallback and its objects
  // reincarnate from checkpoints); a draining node leaves the member set
  // immediately so its directory partitions hand off up front.
  //
  // All membership operations require the single-threaded world (shards == 0);
  // calling them on a sharded system is a FatalError.
  NodeLifecycle lifecycle(size_t index) const {
    assert(index < lifecycle_.size());
    return lifecycle_[index];
  }
  // Bumped on every member-set recomputation; directory handoffs and caches
  // are keyed monotonically by it.
  uint64_t membership_epoch() const { return membership_epoch_; }
  // Current members (joining + active), sorted by node index.
  const std::vector<Member>& members() const { return members_; }
  Placement& placement() { return *placement_; }
  Rebalancer& rebalancer() { return *rebalancer_; }
  // True while a LeaveNode drain must also evacuate the node's *passive*
  // state (checkpointed objects reactivate here, then move off; chains
  // anchored at this station resite). GracefulRestart drains without this —
  // checkpoints stay put and are re-published by the restart scan.
  bool drain_evacuates_passive(size_t index) const {
    return evacuate_passive_.count(index) > 0;
  }

  // Adds a node to a *running* installation. It serves directory traffic and
  // invocations immediately, and becomes an eligible rebalance/spread target
  // once the join warmup elapses.
  NodeKernel& JoinNode(const std::string& name);
  // Brings a departed node back: restarts it if crashed (checkpoint scan
  // re-publishes its passive objects), then runs the join warmup.
  Status RejoinNode(size_t index);
  // Removes a node. With drain (the default): hands off its directory
  // partitions now, then streams active objects off via the rebalancer,
  // reactivates + evacuates its checkpointed state, waits for in-flight
  // protocol work to settle, and only then detaches it from the wire —
  // zero lost invocations. Resolves OK when drained (TimeoutError if the
  // drain deadline passes first; the node departs regardless). Without
  // drain: immediate hard departure (equivalent to a crash that nobody
  // will restart).
  Future<Status> LeaveNode(size_t index, bool drain = true);
  // Rolling-restart primitive: drain (keeping checkpoints in place), depart,
  // stay down for `down_for`, then restart + rejoin.
  Future<Status> GracefulRestart(size_t index, SimDuration down_for);

 private:
  friend class NodeBuilder;

  NodeKernel& AddNodeWithConfig(const std::string& name, KernelConfig kernel,
                                DiskConfig disk, TransportConfig transport,
                                int shard = -1);
  // The collector nodes of shard `s` should record into: the user's
  // collector when unsharded, a lazily-created shard-local collector (with
  // a partitioned id space) otherwise.
  SpanCollector* ShardCollectorFor(uint32_t s);

  // FatalError unless this system can run membership transitions (unsharded,
  // node index valid).
  void RequireMembershipOp(const char* op, size_t index) const;
  void SetLifecycle(size_t index, NodeLifecycle lifecycle);
  // Recomputes members_, bumps the epoch, and notifies the placement policy
  // and every node's location service (directory partitions hand off here).
  void RebuildMembers();
  // Polls the rebalancer until node `index` is fully drained (or the drain
  // deadline passes, or the node crashes out from under the drain).
  Task<Status> AwaitDrain(size_t index);
  DetachedTask RunDrain(size_t index, Promise<Status> done);
  DetachedTask RunGracefulRestart(size_t index, SimDuration down_for,
                                  Promise<Status> done);
  // Final step of every departure: the node leaves the world (FailNode
  // detaches it from the wire) and is marked departed.
  void FinishDepart(size_t index);

  SystemConfig config_;
  Simulation sim_;
  // Holds lan.* instruments; must outlive (so precede) lan_.
  MetricsRegistry metrics_;
  Lan lan_;
  // Shards 1..S-1 (shard 0 is sim_). Unique_ptrs so Simulation needn't move.
  std::vector<std::unique_ptr<Simulation>> extra_sims_;
  std::unique_ptr<ShardedEngine> engine_;
  std::vector<uint32_t> node_shard_;  // by node index
  uint32_t next_shard_rr_ = 0;        // round-robin cursor for single AddNode
  // Per-shard span collectors and the registries their phase histograms
  // record into; MergeSpans/Rollup fold them into the user-visible ones.
  std::vector<std::unique_ptr<SpanCollector>> shard_spans_;
  std::vector<std::unique_ptr<MetricsRegistry>> shard_span_metrics_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<Telemetry> telemetry_;
  // Buffers already wired into metrics_ (MeterTrace is idempotent).
  std::set<TraceBuffer*> metered_traces_;
  SpanCollector* span_collector_ = nullptr;
  std::vector<std::unique_ptr<NodeKernel>> nodes_;
  std::map<std::string, std::shared_ptr<TypeManager>> types_;
  // --- Elastic membership state (DESIGN.md §16) ------------------------------
  std::vector<NodeLifecycle> lifecycle_;  // by node index
  std::vector<Member> members_;           // joining + active, by node index
  uint64_t membership_epoch_ = 0;
  std::unique_ptr<Placement> placement_;
  std::unique_ptr<Rebalancer> rebalancer_;
  std::set<size_t> evacuate_passive_;  // indices of evacuating drains
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_EDEN_SYSTEM_H_
