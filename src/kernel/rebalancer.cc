#include "src/kernel/rebalancer.h"

#include <cstdint>
#include <vector>

#include "src/kernel/eden_system.h"
#include "src/kernel/node_kernel.h"
#include "src/kernel/object.h"

namespace eden {

Rebalancer::Rebalancer(EdenSystem& system, RebalanceConfig config)
    : system_(system), config_(config) {}

void Rebalancer::EnsureRunning() {
  if (running_) {
    return;
  }
  running_ = true;
  Tick();
}

void Rebalancer::Tick() {
  bool worked = RunOnePass();
  bool drains_pending = false;
  for (size_t i = 0; i < system_.node_count(); i++) {
    if (system_.lifecycle(i) == NodeLifecycle::kDraining) {
      drains_pending = true;
      break;
    }
  }
  // The count-based spread only diverges through object churn that some
  // membership event accompanies, so parking until the next EnsureRunning is
  // safe. The rate-ranked spread watches *load*, which diverges without any
  // membership event — keep the tick alive while it is armed.
  bool spread_watching = config_.spread_by_load && config_.spread_gap > 0 &&
                         system_.telemetry() != nullptr;
  if (!worked && !drains_pending && !spread_watching && moves_in_flight_ == 0 &&
      resites_in_flight_.empty()) {
    // Parked; the next membership change re-arms via EnsureRunning.
    running_ = false;
    return;
  }
  system_.sim().Schedule(config_.tick, [this] { Tick(); });
}

bool Rebalancer::RunOnePass() {
  bool worked = false;
  for (size_t i = 0; i < system_.node_count(); i++) {
    if (system_.lifecycle(i) != NodeLifecycle::kDraining) {
      continue;
    }
    worked |= EvacuateActives(i);
    if (system_.drain_evacuates_passive(i)) {
      worked |= ReactivatePassives(i);
    }
  }
  worked |= ResiteCheckpoints();
  worked |= SpreadLoad();
  return worked;
}

bool Rebalancer::EvacuateActives(size_t index) {
  NodeKernel& node = system_.node(index);
  if (node.failed()) {
    return false;
  }
  bool worked = false;
  for (const ObjectName& name : node.ActiveObjects()) {
    if (moves_in_flight_ >= config_.max_moves_in_flight) {
      break;
    }
    StationId target =
        system_.placement().TargetFor(name, system_.members(), node.station());
    if (target == kNoStation) {
      break;  // no other member to take anything; retry next tick
    }
    worked |= StartMove(index, name, target);
  }
  return worked;
}

bool Rebalancer::ReactivatePassives(size_t index) {
  NodeKernel& node = system_.node(index);
  if (node.failed()) {
    return false;
  }
  bool worked = false;
  int budget = config_.max_activations_per_tick;
  for (const ObjectName& name : node.CheckpointInventory()) {
    if (budget <= 0) {
      break;
    }
    if (resites_in_flight_.count(name) > 0) {
      continue;  // chain rewrite in flight; erasure may be about to land
    }
    // Never reincarnate a second active copy: if the object is live (or
    // coming live) anywhere, the resite pass pulls its chain off this store
    // instead.
    bool live_somewhere = false;
    for (size_t j = 0; j < system_.node_count(); j++) {
      NodeKernel& other = system_.node(j);
      if (!other.failed() && (other.IsActive(name) || other.IsActivating(name))) {
        live_somewhere = true;
        break;
      }
    }
    if (live_somewhere || node.IsActivating(name)) {
      continue;
    }
    node.Reactivate(name);
    system_.metrics().counter("rebalance.reactivations").Increment();
    budget--;
    worked = true;
  }
  return worked;
}

bool Rebalancer::ResiteCheckpoints() {
  // Stations whose stores are being evacuated: chains referencing them must
  // be rewritten at their objects' current hosts.
  std::set<StationId> evacuating;
  for (size_t i = 0; i < system_.node_count(); i++) {
    if (system_.lifecycle(i) == NodeLifecycle::kDraining &&
        system_.drain_evacuates_passive(i)) {
      evacuating.insert(system_.node(i).station());
    }
  }
  if (evacuating.empty()) {
    return false;
  }
  bool worked = false;
  int budget = config_.max_resites_per_tick;
  for (size_t j = 0; j < system_.node_count() && budget > 0; j++) {
    if (system_.lifecycle(j) != NodeLifecycle::kActive &&
        system_.lifecycle(j) != NodeLifecycle::kJoining) {
      continue;  // objects still on a drainer move off first, resite after
    }
    NodeKernel& host = system_.node(j);
    if (host.failed()) {
      continue;
    }
    for (StationId site : evacuating) {
      if (budget <= 0) {
        break;
      }
      for (const ObjectName& name : host.ActiveObjectsWithPolicySite(site)) {
        if (budget <= 0) {
          break;
        }
        if (resites_in_flight_.count(name) > 0) {
          continue;
        }
        auto object = host.FindActive(name);
        if (!object || object->moving || object->activating) {
          continue;
        }
        // Re-anchor the chain at the current host; keep a healthy mirror if
        // the old one still qualifies, otherwise pick another member (or
        // degrade to local when this is the last one standing).
        CheckpointPolicy policy = object->policy;
        policy.primary_site = host.station();
        if (policy.level == ReliabilityLevel::kMirrored) {
          bool mirror_ok = policy.mirror_site != policy.primary_site &&
                           evacuating.count(policy.mirror_site) == 0;
          if (mirror_ok) {
            mirror_ok = false;
            for (const Member& m : system_.members()) {
              if (m.station == policy.mirror_site) {
                mirror_ok = true;
                break;
              }
            }
          }
          if (!mirror_ok) {
            StationId mirror = system_.placement().TargetFor(
                name, system_.members(), policy.primary_site);
            if (mirror == kNoStation || mirror == policy.primary_site) {
              policy.level = ReliabilityLevel::kLocal;
              policy.mirror_site = 0;
            } else {
              policy.mirror_site = mirror;
            }
          }
        }
        resites_in_flight_.insert(name);
        system_.metrics().counter("rebalance.resites").Increment();
        host.ResiteCheckpoint(name, policy)
            .OnReadyValue([this, name](const Status& status) {
              resites_in_flight_.erase(name);
              if (!status.ok()) {
                system_.metrics()
                    .counter("rebalance.resite_failures")
                    .Increment();
              }
            });
        budget--;
        worked = true;
      }
    }
  }
  return worked;
}

bool Rebalancer::SpreadLoad() {
  if (config_.spread_gap <= 0) {
    return false;
  }
  if (config_.spread_by_load && system_.telemetry() != nullptr) {
    return SpreadByLoad();
  }
  // Fullest vs leanest active member (ties to the lower node index — keeps
  // the pass deterministic).
  const std::vector<Member>& members = system_.members();
  size_t fullest = SIZE_MAX, leanest = SIZE_MAX;
  for (const Member& m : members) {
    NodeKernel& node = system_.node(m.node);
    if (node.failed() || node.draining()) {
      continue;
    }
    size_t count = node.active_count();
    if (fullest == SIZE_MAX || count > system_.node(fullest).active_count()) {
      fullest = m.node;
    }
    if (leanest == SIZE_MAX || count < system_.node(leanest).active_count()) {
      leanest = m.node;
    }
  }
  if (fullest == SIZE_MAX || leanest == SIZE_MAX || fullest == leanest) {
    return false;
  }
  NodeKernel& from = system_.node(fullest);
  NodeKernel& to = system_.node(leanest);
  if (from.active_count() <=
      to.active_count() + static_cast<size_t>(config_.spread_gap)) {
    return false;
  }
  for (const ObjectName& name : from.ActiveObjects()) {
    if (StartMove(fullest, name, to.station())) {
      system_.metrics().counter("rebalance.spread_moves").Increment();
      return true;  // one leveling move per tick
    }
  }
  return false;
}

bool Rebalancer::SpreadByLoad() {
  Telemetry& telemetry = *system_.telemetry();
  const std::vector<Member>& members = system_.members();
  // Hottest vs coolest member by windowed dispatch rate; members_ is sorted
  // by node index and the comparisons are strict, so ties break to the lower
  // index like the count-based pass.
  size_t fullest = SIZE_MAX, leanest = SIZE_MAX;
  double fullest_rate = 0, leanest_rate = 0;
  for (const Member& m : members) {
    NodeKernel& node = system_.node(m.node);
    if (node.failed() || node.draining()) {
      continue;
    }
    double rate = telemetry.WindowSum(m.node, "kernel.dispatches.delta",
                                      config_.spread_rate_window);
    if (fullest == SIZE_MAX || rate > fullest_rate) {
      fullest = m.node;
      fullest_rate = rate;
    }
    if (leanest == SIZE_MAX || rate < leanest_rate) {
      leanest = m.node;
      leanest_rate = rate;
    }
  }
  if (fullest == SIZE_MAX || leanest == SIZE_MAX || fullest == leanest) {
    return false;
  }
  if (fullest_rate <= leanest_rate + config_.spread_rate_gap) {
    return false;
  }
  NodeKernel& from = system_.node(fullest);
  NodeKernel& to = system_.node(leanest);
  for (const ObjectName& name : from.ActiveObjects()) {
    if (StartMove(fullest, name, to.station())) {
      system_.metrics().counter("rebalance.spread_moves").Increment();
      system_.metrics().counter("rebalance.spread_moves_by_load").Increment();
      return true;  // one leveling move per tick
    }
  }
  return false;
}

bool Rebalancer::StartMove(size_t from_index, const ObjectName& name,
                           StationId destination) {
  if (moves_in_flight_ >= config_.max_moves_in_flight) {
    return false;
  }
  NodeKernel& node = system_.node(from_index);
  auto object = node.FindActive(name);
  if (!object || object->is_replica || object->moving || object->activating ||
      !object->core->alive) {
    return false;
  }
  moves_in_flight_++;
  system_.metrics().counter("rebalance.moves").Increment();
  node.MoveObject(object, destination)
      .OnReadyValue([this](const Status& status) {
        moves_in_flight_--;
        if (!status.ok()) {
          system_.metrics().counter("rebalance.move_failures").Increment();
        }
      });
  return true;
}

bool Rebalancer::DrainComplete(size_t index) const {
  NodeKernel& node = system_.node(index);
  if (node.failed()) {
    return true;  // nothing volatile left to lose
  }
  if (!node.DrainIdle()) {
    return false;
  }
  if (node.transport().pending_reliable_sends() > 0) {
    // Departure fails the node, which would silently discard unacked
    // reliable sends — including the directory-partition handoffs issued
    // when the drain began. Wait for the acks.
    return false;
  }
  if (system_.drain_evacuates_passive(index) &&
      !node.CheckpointInventory().empty()) {
    return false;
  }
  return true;
}

}  // namespace eden
