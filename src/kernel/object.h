// In-memory structures for active objects. Mirrors Figure 4 of the paper: an
// object is (name, representation, type, short-term state). ObjectCore holds
// the name, representation and the crash-volatile short-term state;
// ActiveObject adds the kernel's per-object dispatch bookkeeping (the
// coordinator's view).
#ifndef EDEN_SRC_KERNEL_OBJECT_H_
#define EDEN_SRC_KERNEL_OBJECT_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/kernel/checkpoint.h"
#include "src/kernel/message.h"
#include "src/kernel/representation.h"
#include "src/kernel/sync.h"
#include "src/kernel/type_manager.h"
#include "src/sim/simulation.h"

namespace eden {

// The object state reachable from running invocation handlers. Held by
// shared_ptr from every in-flight InvokeContext, so a crash (which marks the
// core dead and drops the kernel's reference) never dangles a suspended
// coroutine; post-crash writes land in a discarded core.
struct ObjectCore {
  ObjectName name;
  Representation rep;
  bool alive = true;
  // Bumped on every (re)activation; a reply produced by a stale incarnation
  // is discarded by the coordinator.
  uint64_t incarnation = 0;

  std::map<std::string, std::unique_ptr<Semaphore>> semaphores;
  std::map<std::string, std::unique_ptr<MessagePort>> ports;

  Semaphore& semaphore(const std::string& sem_name, int initial) {
    auto it = semaphores.find(sem_name);
    if (it == semaphores.end()) {
      it = semaphores.emplace(sem_name, std::make_unique<Semaphore>(initial)).first;
    }
    return *it->second;
  }

  MessagePort& port(const std::string& port_name) {
    auto it = ports.find(port_name);
    if (it == ports.end()) {
      it = ports.emplace(port_name, std::make_unique<MessagePort>()).first;
    }
    return *it->second;
  }

  // Crash: destroy short-term state. Every blocked P()/Receive() wakes with
  // `reason`; the representation is left in place for any still-running
  // handler but will never be checkpointed again.
  void Fail(const Status& reason) {
    alive = false;
    for (auto& [sem_name, sem] : semaphores) {
      sem->FailAll(reason);
    }
    for (auto& [port_name, port] : ports) {
      port->FailAll(reason);
    }
  }
};

// An invocation accepted by this node but not yet completed.
struct PendingDispatch {
  InvokeRequestMsg request;
  // True when the invoker is an object (or driver) on this same node: the
  // reply is completed in-process instead of transmitted.
  bool local = false;
  // The kDispatch span covering queueing + execution at this node (child of
  // the request's invocation span; invalid when tracing is off).
  SpanContext span;
  // Write-class dispatch counted in its object's lease_mutators_pending
  // (DESIGN.md §15); the count drops when this dispatch terminates.
  bool lease_mutator = false;
};

// Kernel bookkeeping for one active object (the coordinator's state).
struct ActiveObject {
  ObjectName name;
  std::shared_ptr<TypeManager> type;
  std::shared_ptr<ObjectCore> core;
  CheckpointPolicy policy;

  bool frozen = false;
  // True for a cached copy of a frozen object; serves read-only operations.
  bool is_replica = false;
  // Reincarnation handler still running; arrivals wait in hold_queue.
  bool activating = false;
  // Move in progress; new arrivals wait in hold_queue, to be forwarded.
  bool moving = false;

  // Residence epoch (DESIGN.md §13): the simulation time this node acquired
  // the object (create, move-in, reincarnation). Stamped on every directory
  // update, locate reply and forwarding hint this host issues, so stale
  // location records lose to fresh ones everywhere they meet.
  uint64_t location_epoch = 0;

  // Per-invocation-class running counts and FIFO wait queues.
  std::vector<int> class_running;
  std::vector<std::deque<PendingDispatch>> class_queues;
  std::deque<PendingDispatch> hold_queue;

  int total_running = 0;
  uint64_t invocations_served = 0;

  // Delta-checkpoint chain bookkeeping (DESIGN.md §10). ckpt_has_base is
  // true once a full base record is durably placed at the primary site for
  // this activation; ckpt_chain_len counts the deltas written since. A fresh
  // arrival (create, move-in) starts with no base, forcing the first
  // checkpoint to write a full record.
  bool ckpt_has_base = false;
  uint64_t ckpt_chain_len = 0;
  // No-op checkpoint support: a checkpoint of an object whose representation
  // has no dirty bits — and whose policy/frozen flag match what the last
  // record captured — writes nothing and returns the last write's future
  // (durability is only claimed once that write lands).
  std::optional<Future<Status>> ckpt_pending;
  CheckpointPolicy ckpt_policy;
  bool ckpt_frozen = false;

  // Move support: RunMove waits here until running invocations drain down to
  // `drain_threshold` (1 = the invocation requesting the move itself).
  std::optional<Promise<Unit>> drain_waiter;
  int drain_threshold = 0;

  // --- Home-side lease state (DESIGN.md §15) -------------------------------
  struct LeaseHolder {
    SimTime expiry = 0;
    uint64_t seq = 0;
  };
  // A recall in flight: one write-class invocation hit live leases. Further
  // writes queue behind it; it resolves when every recalled holder releases
  // (and any reincarnation quiesce has passed) or the backstop timer fires
  // at the maximum outstanding expiry.
  struct LeaseRecall {
    uint64_t epoch = 0;
    uint64_t seq = 0;
    // Holders still owing a release (std::map: wire sends iterate this).
    std::map<StationId, LeaseHolder> waiting;
    EventId backstop_timer = kInvalidEventId;
    // The kLease span covering block -> cleared (child of the triggering
    // write's dispatch span; invalid when tracing is off).
    SpanContext span;
    // Write-class dispatches admitted only once the recall resolves.
    std::deque<PendingDispatch> write_queue;
    // Moves (and anything else) co_awaiting lease clearance.
    std::vector<Promise<Unit>> waiters;
  };
  // Stations holding an unexpired read lease (std::map: grant/recall sends
  // iterate this, so order must be deterministic).
  std::map<StationId, LeaseHolder> lease_holders;
  std::optional<LeaseRecall> lease_recall;
  // Per-object grant counter; (location_epoch, lease_seq) versions every
  // grant so late grants lose to recalls across moves and home crashes.
  uint64_t lease_seq = 0;
  // Write-class invocations admitted but not yet completed. While nonzero no
  // new lease is granted — a grant racing a queued or running mutation could
  // serve the pre-write state after the write commits.
  int lease_mutators_pending = 0;
  // Reincarnation quiesce (Gray & Cheriton's recovering-server rule): a
  // reborn home cannot know what leases its predecessor granted, so writes
  // wait until every pre-crash lease must have expired.
  SimTime lease_quiesce_until = 0;

  explicit ActiveObject(std::shared_ptr<TypeManager> type_manager)
      : type(std::move(type_manager)) {
    class_running.assign(type->classes().size(), 0);
    class_queues.resize(type->classes().size());
  }

  size_t QueuedCount() const {
    size_t total = hold_queue.size();
    for (const auto& queue : class_queues) {
      total += queue.size();
    }
    return total;
  }
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_OBJECT_H_
