// TypeManager: "a collection of procedures defining the operations on the
// object, shared among objects of the same type" (paper section 4.1). The
// type programmer divides operations into "an exhaustive and mutually
// exclusive set of invocation classes, and specifies the number of concurrent
// processes that are allowed to be servicing each class" (section 4.2); a
// class limited to one process gives mutual exclusion.
//
// A TypeManager also carries the reincarnation condition handler (run when a
// passive object is activated, section 4.2) and any behaviors (detached
// caretaker processes spawned at activation).
#ifndef EDEN_SRC_KERNEL_TYPE_MANAGER_H_
#define EDEN_SRC_KERNEL_TYPE_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rights.h"
#include "src/common/status.h"
#include "src/kernel/invoke.h"
#include "src/sim/task.h"

namespace eden {

class InvokeContext;

// An operation body: a coroutine that may co_await nested invocations,
// sleeps, semaphores and kernel primitives, and finally produces the reply.
using OperationHandler = std::function<Task<InvokeResult>(InvokeContext&)>;

// Runs after a passive object's representation is reloaded and before any
// queued invocation is dispatched: "does any work needed to reinitialize the
// object, build temporary data structures, and so on".
using ReincarnationHandler = std::function<Task<Status>(InvokeContext&)>;

// A detached caretaker process ("behavior"): tree balancing, internal garbage
// collection, etc. Should loop `while (ctx.alive())`.
using BehaviorBody = std::function<Task<void>(InvokeContext&)>;

struct InvocationClassSpec {
  std::string name;
  // Concurrent processes allowed to service this class; 1 = mutual exclusion.
  int concurrency_limit = 1;
  // Invocations queued beyond this bound are refused (internal flow control).
  size_t queue_limit = 1024;
};

struct OperationSpec {
  std::string name;
  OperationHandler handler;
  // The capability presented must cover these rights.
  Rights required_rights = Rights(Rights::kInvoke);
  // Index into the type's invocation classes.
  size_t invocation_class = 0;
  // Read-only operations may be served by cached replicas of frozen objects.
  bool read_only = false;
  // Whether the operation may modify the representation. Frozen objects
  // refuse mutating operations but still accept kernel housekeeping
  // (checkpoint, move, crash, ...), which is non-mutating by nature.
  bool mutates = true;
};

class TypeManager {
 public:
  // Every type starts with a "default" class of concurrency limit 1, so a
  // naive type is single-threaded (safe) until the programmer says otherwise.
  explicit TypeManager(std::string type_name);

  const std::string& name() const { return name_; }

  // --- Construction (builder style) --------------------------------------
  // Returns the new class index for use in OperationSpec::invocation_class.
  size_t AddClass(std::string class_name, int concurrency_limit,
                  size_t queue_limit = 1024);
  TypeManager& AddOperation(OperationSpec spec);
  TypeManager& SetReincarnation(ReincarnationHandler handler);
  TypeManager& AddBehavior(std::string behavior_name, BehaviorBody body);

  // --- Queries ------------------------------------------------------------
  const OperationSpec* FindOperation(const std::string& operation) const;
  const std::vector<InvocationClassSpec>& classes() const { return classes_; }
  const ReincarnationHandler& reincarnation() const { return reincarnation_; }
  const std::vector<std::pair<std::string, BehaviorBody>>& behaviors() const {
    return behaviors_;
  }
  std::vector<std::string> OperationNames() const;

 private:
  std::string name_;
  std::vector<InvocationClassSpec> classes_;
  std::map<std::string, OperationSpec> operations_;
  ReincarnationHandler reincarnation_;
  std::vector<std::pair<std::string, BehaviorBody>> behaviors_;
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_TYPE_MANAGER_H_
