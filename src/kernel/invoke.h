// Invocation parameter and result types (paper section 4.2):
//
//   Invoke(filecapa, "put", "this is a new line") Returns(status)
//
// An invocation carries "optionally a list of data and/or capability
// parameters"; the reply carries status and output parameters. There is no
// shared memory: everything crosses the wire by value.
#ifndef EDEN_SRC_KERNEL_INVOKE_H_
#define EDEN_SRC_KERNEL_INVOKE_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/kernel/capability.h"
#include "src/sim/time.h"

namespace eden {

// Per-invocation options for NodeKernel::Invoke / InvokeContext::Invoke.
// Replaces the old positional `timeout` parameter so new knobs (trace
// labels, metrics classification) do not keep widening the signature.
struct InvokeOptions {
  // End-to-end deadline for the invocation; 0 selects the kernel default
  // (KernelConfig::default_invoke_timeout).
  SimDuration timeout = 0;
  // Free-form label appended to the INVOKE_START trace event, for picking
  // one logical request stream out of a busy trace.
  std::string trace_label;
  // Operation class for latency accounting: when set, the completion latency
  // is additionally recorded under kernel.invoke.latency.class.<name> in the
  // invoking node's metrics registry.
  std::string metrics_class;

  static InvokeOptions WithTimeout(SimDuration timeout) {
    InvokeOptions options;
    options.timeout = timeout;
    return options;
  }
};

// Default for the `options` parameter of Invoke. A named constant rather
// than `= {}` deliberately: GCC 12 miscompiles a defaulted (or inline
// temporary) argument with std::string members when the call is part of a
// co_await expression — the temporary is bitwise-relocated into the
// coroutine frame and its SSO string self-pointer dangles. For the same
// reason, coroutine code passing custom options must build them in a named
// local first instead of writing `co_await ctx.Invoke(..., InvokeOptions{...})`.
inline const InvokeOptions kDefaultInvokeOptions{};

// Parameters of an invocation (also used for results).
struct InvokeArgs {
  std::vector<Bytes> data;
  std::vector<Capability> caps;

  InvokeArgs() = default;

  // --- Builder-style helpers --------------------------------------------
  InvokeArgs& AddBytes(Bytes bytes) {
    data.push_back(std::move(bytes));
    return *this;
  }
  InvokeArgs& AddString(std::string_view text) {
    data.push_back(ToBytes(text));
    return *this;
  }
  InvokeArgs& AddU64(uint64_t value);
  InvokeArgs& AddI64(int64_t value) { return AddU64(static_cast<uint64_t>(value)); }
  InvokeArgs& AddCapability(const Capability& cap) {
    caps.push_back(cap);
    return *this;
  }

  // --- Accessors (bounds- and type-checked) ------------------------------
  StatusOr<std::string> StringAt(size_t index) const;
  StatusOr<uint64_t> U64At(size_t index) const;
  StatusOr<int64_t> I64At(size_t index) const;
  StatusOr<Bytes> BytesAt(size_t index) const;
  StatusOr<Capability> CapabilityAt(size_t index) const;

  size_t TotalBytes() const;

  void Encode(BufferWriter& writer) const;
  static StatusOr<InvokeArgs> Decode(BufferReader& reader);
};

// What an operation handler produces and an invoker receives.
struct InvokeResult {
  Status status;
  InvokeArgs results;

  static InvokeResult Ok() { return InvokeResult{OkStatus(), {}}; }
  static InvokeResult Ok(InvokeArgs results) {
    return InvokeResult{OkStatus(), std::move(results)};
  }
  static InvokeResult Error(Status status) {
    return InvokeResult{std::move(status), {}};
  }

  bool ok() const { return status.ok(); }

  void Encode(BufferWriter& writer) const;
  static StatusOr<InvokeResult> Decode(BufferReader& reader);
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_INVOKE_H_
