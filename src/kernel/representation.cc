#include "src/kernel/representation.h"

#include <algorithm>

namespace eden {

bool Representation::AnyDirty() const {
  if (caps_dirty_) {
    return true;
  }
  return std::find(data_dirty_.begin(), data_dirty_.end(), true) !=
         data_dirty_.end();
}

size_t Representation::DirtySegmentCount() const {
  return static_cast<size_t>(
      std::count(data_dirty_.begin(), data_dirty_.end(), true));
}

void Representation::MarkAllDirty() {
  data_dirty_.assign(data_segments_.size(), true);
  caps_dirty_ = true;
}

void Representation::ClearDirty() {
  data_dirty_.assign(data_segments_.size(), false);
  caps_dirty_ = false;
}

void Representation::Encode(BufferWriter& writer) const {
  writer.WriteVarint(data_segments_.size());
  for (const Bytes& segment : data_segments_) {
    writer.WriteBytes(segment);
  }
  writer.WriteVarint(capabilities_.size());
  for (const Capability& cap : capabilities_) {
    cap.Encode(writer);
  }
}

StatusOr<Representation> Representation::Decode(BufferReader& reader) {
  Representation rep;
  EDEN_ASSIGN_OR_RETURN(uint64_t segment_count, reader.ReadVarint());
  if (segment_count > 1u << 20) {
    return InvalidArgumentError("implausible segment count");
  }
  rep.data_segments_.reserve(segment_count);
  for (uint64_t i = 0; i < segment_count; i++) {
    EDEN_ASSIGN_OR_RETURN(Bytes segment, reader.ReadBytes());
    rep.data_segments_.push_back(std::move(segment));
  }
  EDEN_ASSIGN_OR_RETURN(uint64_t cap_count, reader.ReadVarint());
  if (cap_count > 1u << 20) {
    return InvalidArgumentError("implausible capability count");
  }
  rep.capabilities_.reserve(cap_count);
  for (uint64_t i = 0; i < cap_count; i++) {
    EDEN_ASSIGN_OR_RETURN(Capability cap, Capability::Decode(reader));
    rep.capabilities_.push_back(cap);
  }
  // A decoded representation is a faithful stable copy: nothing to flush.
  rep.data_dirty_.assign(rep.data_segments_.size(), false);
  return rep;
}

void Representation::EncodeDelta(BufferWriter& writer) const {
  writer.WriteVarint(data_segments_.size());
  writer.WriteVarint(DirtySegmentCount());
  for (size_t i = 0; i < data_segments_.size(); i++) {
    if (i < data_dirty_.size() && data_dirty_[i]) {
      writer.WriteVarint(i);
      writer.WriteBytes(data_segments_[i]);
    }
  }
  writer.WriteBool(caps_dirty_);
  if (caps_dirty_) {
    writer.WriteVarint(capabilities_.size());
    for (const Capability& cap : capabilities_) {
      cap.Encode(writer);
    }
  }
}

Status Representation::ApplyDelta(BufferReader& reader) {
  EDEN_ASSIGN_OR_RETURN(uint64_t total_segments, reader.ReadVarint());
  if (total_segments > 1u << 20) {
    return InvalidArgumentError("implausible segment count in delta");
  }
  EnsureDataSegments(total_segments);
  EDEN_ASSIGN_OR_RETURN(uint64_t dirty_count, reader.ReadVarint());
  if (dirty_count > total_segments) {
    return InvalidArgumentError("delta dirty count exceeds segment count");
  }
  for (uint64_t i = 0; i < dirty_count; i++) {
    EDEN_ASSIGN_OR_RETURN(uint64_t index, reader.ReadVarint());
    if (index >= total_segments) {
      return InvalidArgumentError("delta segment index out of range");
    }
    EDEN_ASSIGN_OR_RETURN(Bytes segment, reader.ReadBytes());
    set_data(index, std::move(segment));
  }
  EDEN_ASSIGN_OR_RETURN(bool caps, reader.ReadBool());
  if (caps) {
    EDEN_ASSIGN_OR_RETURN(uint64_t cap_count, reader.ReadVarint());
    if (cap_count > 1u << 20) {
      return InvalidArgumentError("implausible capability count in delta");
    }
    std::vector<Capability> replaced;
    replaced.reserve(cap_count);
    for (uint64_t i = 0; i < cap_count; i++) {
      EDEN_ASSIGN_OR_RETURN(Capability cap, Capability::Decode(reader));
      replaced.push_back(cap);
    }
    capabilities_ = std::move(replaced);
    caps_dirty_ = true;
  }
  return OkStatus();
}

size_t Representation::ByteSize() const {
  size_t total = 0;
  for (const Bytes& segment : data_segments_) {
    total += segment.size();
  }
  total += capabilities_.size() * 20;  // 16-byte name + 4-byte rights
  return total;
}

size_t Representation::DirtyByteSize() const {
  size_t total = 0;
  for (size_t i = 0; i < data_segments_.size(); i++) {
    if (i < data_dirty_.size() && data_dirty_[i]) {
      total += data_segments_[i].size();
    }
  }
  if (caps_dirty_) {
    total += capabilities_.size() * 20;
  }
  return total;
}

uint64_t Representation::DigestValue() const {
  BufferWriter writer;
  Encode(writer);
  return Fnv1a64(writer.buffer());
}

}  // namespace eden
