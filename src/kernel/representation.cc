#include "src/kernel/representation.h"

namespace eden {

void Representation::Encode(BufferWriter& writer) const {
  writer.WriteVarint(data_segments_.size());
  for (const Bytes& segment : data_segments_) {
    writer.WriteBytes(segment);
  }
  writer.WriteVarint(capabilities_.size());
  for (const Capability& cap : capabilities_) {
    cap.Encode(writer);
  }
}

StatusOr<Representation> Representation::Decode(BufferReader& reader) {
  Representation rep;
  EDEN_ASSIGN_OR_RETURN(uint64_t segment_count, reader.ReadVarint());
  if (segment_count > 1u << 20) {
    return InvalidArgumentError("implausible segment count");
  }
  rep.data_segments_.reserve(segment_count);
  for (uint64_t i = 0; i < segment_count; i++) {
    EDEN_ASSIGN_OR_RETURN(Bytes segment, reader.ReadBytes());
    rep.data_segments_.push_back(std::move(segment));
  }
  EDEN_ASSIGN_OR_RETURN(uint64_t cap_count, reader.ReadVarint());
  if (cap_count > 1u << 20) {
    return InvalidArgumentError("implausible capability count");
  }
  rep.capabilities_.reserve(cap_count);
  for (uint64_t i = 0; i < cap_count; i++) {
    EDEN_ASSIGN_OR_RETURN(Capability cap, Capability::Decode(reader));
    rep.capabilities_.push_back(cap);
  }
  return rep;
}

size_t Representation::ByteSize() const {
  size_t total = 0;
  for (const Bytes& segment : data_segments_) {
    total += segment.size();
  }
  total += capabilities_.size() * 20;  // 16-byte name + 4-byte rights
  return total;
}

uint64_t Representation::DigestValue() const {
  BufferWriter writer;
  Encode(writer);
  return Fnv1a64(writer.buffer());
}

}  // namespace eden
