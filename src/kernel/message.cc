#include "src/kernel/message.h"

namespace eden {

namespace {

BufferWriter StartMessage(MessageKind kind) {
  BufferWriter writer;
  writer.WriteU8(static_cast<uint8_t>(kind));
  return writer;
}

// Consumes and validates the kind tag.
Status ExpectKind(BufferReader& reader, MessageKind kind) {
  EDEN_ASSIGN_OR_RETURN(uint8_t tag, reader.ReadU8());
  if (tag != static_cast<uint8_t>(kind)) {
    return InvalidArgumentError("unexpected message kind");
  }
  return OkStatus();
}

}  // namespace

StatusOr<MessageKind> PeekMessageKind(BytesView message) {
  if (message.empty()) {
    return InvalidArgumentError("empty message");
  }
  uint8_t tag = message[0];
  if (tag < static_cast<uint8_t>(MessageKind::kInvokeRequest) ||
      tag > static_cast<uint8_t>(MessageKind::kLeaseRelease)) {
    return InvalidArgumentError("unknown message kind");
  }
  return static_cast<MessageKind>(tag);
}

Bytes InvokeRequestMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kInvokeRequest);
  writer.WriteU64(invocation_id);
  writer.WriteU32(reply_to);
  target.Encode(writer);
  writer.WriteString(operation);
  args.Encode(writer);
  writer.WriteVarint(avoid_hosts.size());
  for (StationId host : avoid_hosts) {
    writer.WriteU32(host);
  }
  span.Encode(writer);
  return writer.Take();
}

StatusOr<InvokeRequestMsg> InvokeRequestMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kInvokeRequest));
  InvokeRequestMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.invocation_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.reply_to, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.target, Capability::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.operation, reader.ReadString());
  EDEN_ASSIGN_OR_RETURN(msg.args, InvokeArgs::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(uint64_t avoid_count, reader.ReadVarint());
  if (avoid_count > 64) {
    return InvalidArgumentError("implausible avoid-host count");
  }
  for (uint64_t i = 0; i < avoid_count; i++) {
    EDEN_ASSIGN_OR_RETURN(StationId host, reader.ReadU32());
    msg.avoid_hosts.push_back(host);
  }
  EDEN_ASSIGN_OR_RETURN(msg.span, SpanContext::Decode(reader));
  return msg;
}

Bytes InvokeReplyMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kInvokeReply);
  writer.WriteU64(invocation_id);
  result.Encode(writer);
  writer.WriteBool(target_frozen);
  writer.WriteU64(lease_renew_expiry);
  return writer.Take();
}

StatusOr<InvokeReplyMsg> InvokeReplyMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kInvokeReply));
  InvokeReplyMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.invocation_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.result, InvokeResult::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.target_frozen, reader.ReadBool());
  EDEN_ASSIGN_OR_RETURN(msg.lease_renew_expiry, reader.ReadU64());
  return msg;
}

Bytes InvokeRedirectMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kInvokeRedirect);
  writer.WriteU64(invocation_id);
  name.Encode(writer);
  writer.WriteU32(new_host);
  writer.WriteU64(epoch);
  return writer.Take();
}

StatusOr<InvokeRedirectMsg> InvokeRedirectMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kInvokeRedirect));
  InvokeRedirectMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.invocation_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.new_host, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.epoch, reader.ReadU64());
  return msg;
}

Bytes LocateRequestMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kLocateRequest);
  writer.WriteU64(query_id);
  writer.WriteU32(reply_to);
  name.Encode(writer);
  span.Encode(writer);
  return writer.Take();
}

StatusOr<LocateRequestMsg> LocateRequestMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kLocateRequest));
  LocateRequestMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.query_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.reply_to, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.span, SpanContext::Decode(reader));
  return msg;
}

Bytes LocateReplyMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kLocateReply);
  writer.WriteU64(query_id);
  name.Encode(writer);
  writer.WriteU32(host);
  writer.WriteBool(active);
  writer.WriteU64(epoch);
  return writer.Take();
}

StatusOr<LocateReplyMsg> LocateReplyMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kLocateReply));
  LocateReplyMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.query_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.host, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.active, reader.ReadBool());
  EDEN_ASSIGN_OR_RETURN(msg.epoch, reader.ReadU64());
  return msg;
}

Bytes MoveTransferMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kMoveTransfer);
  writer.WriteU64(transfer_id);
  writer.WriteU32(source);
  name.Encode(writer);
  writer.WriteString(type_name);
  representation.Encode(writer);
  policy.Encode(writer);
  writer.WriteBool(frozen);
  span.Encode(writer);
  writer.WriteVarint(cached_replies.size());
  for (const CachedReplyEntry& entry : cached_replies) {
    writer.WriteU64(entry.invocation_id);
    entry.result.Encode(writer);
    writer.WriteBool(entry.frozen);
  }
  return writer.Take();
}

StatusOr<MoveTransferMsg> MoveTransferMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kMoveTransfer));
  MoveTransferMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.transfer_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.source, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.type_name, reader.ReadString());
  EDEN_ASSIGN_OR_RETURN(msg.representation, Representation::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.policy, CheckpointPolicy::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.frozen, reader.ReadBool());
  EDEN_ASSIGN_OR_RETURN(msg.span, SpanContext::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(uint64_t reply_count, reader.ReadVarint());
  if (reply_count > 8192) {
    return InvalidArgumentError("implausible cached-reply count");
  }
  for (uint64_t i = 0; i < reply_count; i++) {
    MoveTransferMsg::CachedReplyEntry entry;
    EDEN_ASSIGN_OR_RETURN(entry.invocation_id, reader.ReadU64());
    EDEN_ASSIGN_OR_RETURN(entry.result, InvokeResult::Decode(reader));
    EDEN_ASSIGN_OR_RETURN(entry.frozen, reader.ReadBool());
    msg.cached_replies.push_back(std::move(entry));
  }
  return msg;
}

Bytes MoveAckMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kMoveAck);
  writer.WriteU64(transfer_id);
  name.Encode(writer);
  writer.WriteBool(accepted);
  writer.WriteU64(epoch);
  return writer.Take();
}

StatusOr<MoveAckMsg> MoveAckMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kMoveAck));
  MoveAckMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.transfer_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.accepted, reader.ReadBool());
  EDEN_ASSIGN_OR_RETURN(msg.epoch, reader.ReadU64());
  return msg;
}

Bytes CheckpointPutMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kCheckpointPut);
  writer.WriteU64(request_id);
  writer.WriteU32(reply_to);
  name.Encode(writer);
  writer.WriteBytes(record.view());
  writer.WriteBool(is_mirror);
  writer.WriteVarint(delta_seq);
  span.Encode(writer);
  return writer.Take();
}

StatusOr<CheckpointPutMsg> CheckpointPutMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kCheckpointPut));
  CheckpointPutMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.request_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.reply_to, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(Bytes record, reader.ReadBytes());
  msg.record = SharedBytes(std::move(record));
  EDEN_ASSIGN_OR_RETURN(msg.is_mirror, reader.ReadBool());
  EDEN_ASSIGN_OR_RETURN(msg.delta_seq, reader.ReadVarint());
  EDEN_ASSIGN_OR_RETURN(msg.span, SpanContext::Decode(reader));
  return msg;
}

Bytes CheckpointAckMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kCheckpointAck);
  writer.WriteU64(request_id);
  writer.WriteBool(ok);
  return writer.Take();
}

StatusOr<CheckpointAckMsg> CheckpointAckMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kCheckpointAck));
  CheckpointAckMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.request_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.ok, reader.ReadBool());
  return msg;
}

Bytes CheckpointEraseMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kCheckpointErase);
  name.Encode(writer);
  return writer.Take();
}

StatusOr<CheckpointEraseMsg> CheckpointEraseMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kCheckpointErase));
  CheckpointEraseMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  return msg;
}

Bytes ReplicaFetchMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kReplicaFetch);
  writer.WriteU64(request_id);
  writer.WriteU32(reply_to);
  name.Encode(writer);
  span.Encode(writer);
  return writer.Take();
}

StatusOr<ReplicaFetchMsg> ReplicaFetchMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kReplicaFetch));
  ReplicaFetchMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.request_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.reply_to, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.span, SpanContext::Decode(reader));
  return msg;
}

Bytes ReplicaReplyMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kReplicaReply);
  writer.WriteU64(request_id);
  name.Encode(writer);
  writer.WriteBool(ok);
  writer.WriteString(type_name);
  representation.Encode(writer);
  return writer.Take();
}

StatusOr<ReplicaReplyMsg> ReplicaReplyMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kReplicaReply));
  ReplicaReplyMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.request_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.ok, reader.ReadBool());
  EDEN_ASSIGN_OR_RETURN(msg.type_name, reader.ReadString());
  EDEN_ASSIGN_OR_RETURN(msg.representation, Representation::Decode(reader));
  return msg;
}

Bytes PingMsg::Encode() const {
  return StartMessage(MessageKind::kPing).Take();
}

StatusOr<PingMsg> PingMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kPing));
  return PingMsg{};
}

Bytes DirectoryUpdateMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kDirectoryUpdate);
  name.Encode(writer);
  writer.WriteU32(host);
  writer.WriteU64(epoch);
  writer.WriteBool(active);
  writer.WriteBool(removal);
  return writer.Take();
}

StatusOr<DirectoryUpdateMsg> DirectoryUpdateMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kDirectoryUpdate));
  DirectoryUpdateMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.host, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.epoch, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.active, reader.ReadBool());
  EDEN_ASSIGN_OR_RETURN(msg.removal, reader.ReadBool());
  return msg;
}

Bytes DirectoryLookupMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kDirectoryLookup);
  writer.WriteU64(query_id);
  writer.WriteU32(reply_to);
  name.Encode(writer);
  writer.WriteVarint(avoid_hosts.size());
  for (StationId host : avoid_hosts) {
    writer.WriteU32(host);
  }
  span.Encode(writer);
  return writer.Take();
}

StatusOr<DirectoryLookupMsg> DirectoryLookupMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kDirectoryLookup));
  DirectoryLookupMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.query_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.reply_to, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(uint64_t avoid_count, reader.ReadVarint());
  if (avoid_count > 64) {
    return InvalidArgumentError("implausible avoid-host count");
  }
  for (uint64_t i = 0; i < avoid_count; i++) {
    EDEN_ASSIGN_OR_RETURN(StationId host, reader.ReadU32());
    msg.avoid_hosts.push_back(host);
  }
  EDEN_ASSIGN_OR_RETURN(msg.span, SpanContext::Decode(reader));
  return msg;
}

Bytes LeaseGrantMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kLeaseGrant);
  name.Encode(writer);
  writer.WriteString(type_name);
  representation.Encode(writer);
  writer.WriteU64(expiry);
  writer.WriteU64(epoch);
  writer.WriteU64(seq);
  return writer.Take();
}

StatusOr<LeaseGrantMsg> LeaseGrantMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kLeaseGrant));
  LeaseGrantMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.type_name, reader.ReadString());
  EDEN_ASSIGN_OR_RETURN(msg.representation, Representation::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.expiry, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.epoch, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.seq, reader.ReadU64());
  return msg;
}

Bytes LeaseRecallMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kLeaseRecall);
  name.Encode(writer);
  writer.WriteU64(epoch);
  writer.WriteU64(seq);
  span.Encode(writer);
  return writer.Take();
}

StatusOr<LeaseRecallMsg> LeaseRecallMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kLeaseRecall));
  LeaseRecallMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.epoch, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.seq, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.span, SpanContext::Decode(reader));
  return msg;
}

Bytes LeaseReleaseMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kLeaseRelease);
  name.Encode(writer);
  writer.WriteU32(holder);
  writer.WriteU64(epoch);
  writer.WriteU64(seq);
  return writer.Take();
}

StatusOr<LeaseReleaseMsg> LeaseReleaseMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kLeaseRelease));
  LeaseReleaseMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.holder, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.epoch, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.seq, reader.ReadU64());
  return msg;
}

Bytes DirectoryReplyMsg::Encode() const {
  BufferWriter writer = StartMessage(MessageKind::kDirectoryReply);
  writer.WriteU64(query_id);
  name.Encode(writer);
  writer.WriteBool(known);
  writer.WriteU32(host);
  writer.WriteU64(epoch);
  writer.WriteBool(active);
  return writer.Take();
}

StatusOr<DirectoryReplyMsg> DirectoryReplyMsg::Decode(BytesView message) {
  BufferReader reader(message);
  EDEN_RETURN_IF_ERROR(ExpectKind(reader, MessageKind::kDirectoryReply));
  DirectoryReplyMsg msg;
  EDEN_ASSIGN_OR_RETURN(msg.query_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(msg.known, reader.ReadBool());
  EDEN_ASSIGN_OR_RETURN(msg.host, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(msg.epoch, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(msg.active, reader.ReadBool());
  return msg;
}

}  // namespace eden
