#include "src/kernel/eden_system.h"

namespace eden {

EdenSystem::EdenSystem(SystemConfig config)
    : config_(config), sim_(config.seed), lan_(sim_, config.lan) {}

NodeKernel& EdenSystem::AddNode(const std::string& name) {
  nodes_.push_back(std::make_unique<NodeKernel>(*this, name, config_.kernel,
                                                config_.disk, config_.transport));
  return *nodes_.back();
}

void EdenSystem::AddNodes(size_t count) {
  for (size_t i = 0; i < count; i++) {
    AddNode("node" + std::to_string(node_count()));
  }
}

NodeKernel* EdenSystem::NodeAt(StationId station) {
  for (auto& node : nodes_) {
    if (node->station() == station) {
      return node.get();
    }
  }
  return nullptr;
}

void EdenSystem::RegisterType(std::shared_ptr<TypeManager> type) {
  assert(type != nullptr);
  types_[type->name()] = std::move(type);
}

std::shared_ptr<TypeManager> EdenSystem::FindType(const std::string& type_name) const {
  auto it = types_.find(type_name);
  if (it == types_.end()) {
    return nullptr;
  }
  return it->second;
}

}  // namespace eden
