#include "src/kernel/eden_system.h"

#include "src/trace/trace.h"

namespace eden {

EdenSystem::EdenSystem(SystemConfig config)
    : config_(config), sim_(config.seed), lan_(sim_, config.lan) {
  lan_.set_metrics(&metrics_);
}

NodeBuilder::NodeBuilder(EdenSystem* system, std::string name)
    : system_(system),
      name_(std::move(name)),
      kernel_(system->config().kernel),
      disk_(system->config().disk),
      transport_(system->config().transport) {}

NodeKernel& NodeBuilder::Build() {
  if (node_ == nullptr) {
    node_ = &system_->AddNodeWithConfig(name_, kernel_, disk_, transport_);
    if (trace_ != nullptr) {
      node_->set_trace(trace_);
    }
  }
  return *node_;
}

NodeBuilder EdenSystem::AddNode(const std::string& name) {
  return NodeBuilder(this, name);
}

NodeKernel& EdenSystem::AddNodeWithConfig(const std::string& name,
                                          KernelConfig kernel, DiskConfig disk,
                                          TransportConfig transport) {
  nodes_.push_back(
      std::make_unique<NodeKernel>(*this, name, kernel, disk, transport));
  return *nodes_.back();
}

void EdenSystem::AddNodes(size_t count) {
  for (size_t i = 0; i < count; i++) {
    AddNodeWithConfig("node" + std::to_string(node_count()), config_.kernel,
                      config_.disk, config_.transport);
  }
}

NodeKernel* EdenSystem::NodeAt(StationId station) {
  for (auto& node : nodes_) {
    if (node->station() == station) {
      return node.get();
    }
  }
  return nullptr;
}

void EdenSystem::RegisterType(std::shared_ptr<TypeManager> type) {
  assert(type != nullptr);
  types_[type->name()] = std::move(type);
}

std::shared_ptr<TypeManager> EdenSystem::FindType(const std::string& type_name) const {
  auto it = types_.find(type_name);
  if (it == types_.end()) {
    return nullptr;
  }
  return it->second;
}

MetricsRegistry EdenSystem::Rollup() const {
  MetricsRegistry rollup;
  rollup.MergeFrom(metrics_);
  for (const auto& node : nodes_) {
    rollup.MergeFrom(node->metrics());
  }
  return rollup;
}

std::string EdenSystem::MetricsJson() const { return Rollup().ToJson(); }

}  // namespace eden
