#include "src/kernel/eden_system.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/trace/trace.h"

namespace eden {

EdenSystem::EdenSystem(SystemConfig config)
    : config_(config), sim_(config.seed), lan_(sim_, config.lan) {
  lan_.set_metrics(&metrics_);
  placement_ = Placement::Create(config_.membership.placement);
  rebalancer_ =
      std::make_unique<Rebalancer>(*this, config_.membership.rebalance);
  if (config_.shards > 0) {
    WithShards(config_.shards);
  }
  if (config_.telemetry.enabled) {
    EnableTelemetry();
  }
}

Telemetry& EdenSystem::EnableTelemetry() {
  if (telemetry_ == nullptr) {
    config_.telemetry.enabled = true;
    telemetry_ = std::make_unique<Telemetry>(this, config_.telemetry);
  }
  telemetry_->Start();
  return *telemetry_;
}

void EdenSystem::MeterTrace(TraceBuffer* trace) {
  // Under the sharded engine a node's buffer is written from its shard's
  // thread; mirroring into the shared system registry there would race.
  if (engine_ != nullptr) {
    return;
  }
  if (trace != nullptr && metered_traces_.insert(trace).second) {
    trace->set_metrics(&metrics_);
  }
}

EdenSystem& EdenSystem::WithShards(size_t n) {
  if (fault_injector_ != nullptr) {
    FatalError(
        "WithShards: the chaos layer is armed, and fault injection requires "
        "the single-threaded CSMA world (EnableFaults + WithShards cannot be "
        "combined)");
  }
  assert(n >= 1);
  assert(engine_ == nullptr && "WithShards may be called only once");
  assert(nodes_.empty() && "call WithShards before adding nodes");
  config_.shards = n;
  // Sharding requires the switched LAN: delivery times must be computable at
  // send time for the engine's lookahead to hold.
  lan_.EnableSwitched();
  for (size_t k = 1; k < n; k++) {
    // Shard rngs deliberately diverge from the primary's stream; nothing
    // layout-sensitive draws from them (see the randomness notes on
    // NodeKernel's constructor).
    extra_sims_.push_back(std::make_unique<Simulation>(
        config_.seed ^ (0x9e3779b97f4a7c15ULL * k)));
  }
  std::vector<Simulation*> sims;
  sims.push_back(&sim_);
  for (auto& s : extra_sims_) {
    sims.push_back(s.get());
  }
  engine_ = std::make_unique<ShardedEngine>(std::move(sims), lan_.lookahead());
  engine_->set_deliver(
      [this](const CrossShardMsg& msg) { lan_.DeliverRouted(msg); });
  lan_.set_cross_shard_sink(
      [this](uint32_t from, uint32_t to, CrossShardMsg msg) {
        engine_->Push(from, to, std::move(msg));
      });
  if (telemetry_ != nullptr) {
    // Telemetry was enabled before sharding: the new shards need their own
    // scrape chains (shard 0's chain is already running).
    telemetry_->Start();
  }
  return *this;
}

uint64_t EdenSystem::total_events() const {
  uint64_t total = sim_.events_executed();
  for (const auto& s : extra_sims_) {
    total += s->events_executed();
  }
  return total;
}

NodeBuilder::NodeBuilder(EdenSystem* system, std::string name)
    : system_(system),
      name_(std::move(name)),
      kernel_(system->config().kernel),
      disk_(system->config().disk),
      transport_(system->config().transport) {}

NodeKernel& NodeBuilder::Build() {
  if (node_ == nullptr) {
    node_ = &system_->AddNodeWithConfig(name_, kernel_, disk_, transport_,
                                        shard_);
    if (trace_ != nullptr) {
      node_->set_trace(trace_);
      system_->MeterTrace(trace_);
    }
  }
  return *node_;
}

NodeBuilder EdenSystem::AddNode(const std::string& name) {
  return NodeBuilder(this, name);
}

NodeKernel& EdenSystem::AddNodeWithConfig(const std::string& name,
                                          KernelConfig kernel, DiskConfig disk,
                                          TransportConfig transport,
                                          int shard) {
  uint32_t s = 0;
  Simulation* shard_sim_ptr = nullptr;
  if (engine_ != nullptr) {
    size_t count = engine_->shard_count();
    s = shard >= 0 ? static_cast<uint32_t>(shard)
                   : next_shard_rr_++ % static_cast<uint32_t>(count);
    assert(s < count && "WithShard index out of range");
    shard_sim_ptr = &shard_sim(s);
  }
  nodes_.push_back(std::make_unique<NodeKernel>(*this, name, kernel, disk,
                                                transport, shard_sim_ptr));
  node_shard_.push_back(s);
  if (engine_ != nullptr) {
    lan_.SetStationShard(nodes_.back()->station(), s);
  }
  if (fault_injector_ != nullptr) {
    nodes_.back()->store().set_fault_hook(
        fault_injector_->DiskHookFor(nodes_.size() - 1));
  }
  if (span_collector_ != nullptr) {
    nodes_.back()->set_spans(ShardCollectorFor(s));
  }
  lifecycle_.push_back(NodeLifecycle::kActive);
  if (telemetry_ != nullptr) {
    // Eager sampler creation, always from the main thread: shard ticks only
    // ever read the sampler vector.
    telemetry_->OnNodeAdded(nodes_.size() - 1);
  }
  RebuildMembers();
  return *nodes_.back();
}

SpanCollector* EdenSystem::ShardCollectorFor(uint32_t s) {
  if (engine_ == nullptr) {
    return span_collector_;
  }
  if (span_collector_ == nullptr) {
    return nullptr;
  }
  if (shard_spans_.empty()) {
    shard_spans_.resize(engine_->shard_count());
    shard_span_metrics_.resize(engine_->shard_count());
  }
  if (shard_spans_[s] == nullptr) {
    shard_spans_[s] = std::make_unique<SpanCollector>();
    // Partitioned id space (ids never collide across shards) and fragment
    // mode (a cross-shard child records locally; MergeSpans rejoins it).
    shard_spans_[s]->set_id_base((static_cast<uint64_t>(s) << 56) | 1);
    shard_spans_[s]->set_fragments_enabled(true);
    shard_span_metrics_[s] = std::make_unique<MetricsRegistry>();
    shard_spans_[s]->set_metrics(shard_span_metrics_[s].get());
  }
  return shard_spans_[s].get();
}

void EdenSystem::set_span_collector(SpanCollector* spans) {
  span_collector_ = spans;
  if (spans != nullptr) {
    spans->set_metrics(&metrics_);
  }
  if (spans == nullptr) {
    shard_spans_.clear();
    shard_span_metrics_.clear();
  }
  for (size_t i = 0; i < nodes_.size(); i++) {
    nodes_[i]->set_spans(spans == nullptr ? nullptr
                                          : ShardCollectorFor(node_shard_[i]));
  }
}

void EdenSystem::MergeSpans() {
  if (span_collector_ == nullptr) {
    return;
  }
  for (auto& shard_collector : shard_spans_) {
    if (shard_collector != nullptr) {
      span_collector_->Absorb(*shard_collector);
    }
  }
}

void EdenSystem::EnableFaults(const FaultPlan& plan, TraceBuffer* trace) {
  if (engine_ != nullptr) {
    FatalError(
        "EnableFaults: fault injection requires the single-threaded CSMA "
        "world (WithShards + EnableFaults cannot be combined)");
  }
  assert(fault_injector_ == nullptr && "EnableFaults may be called only once");
  fault_injector_ = std::make_unique<FaultInjector>(sim_, plan);
  FaultInjector* injector = fault_injector_.get();
  injector->set_metrics(&metrics_);
  MeterTrace(trace);
  // Always install the sink: the flight recorder keys diagnostic bundles off
  // injected faults whether or not a flat trace buffer is attached.
  injector->set_event_sink([this, trace](const char* kind, uint32_t site) {
    if (trace != nullptr) {
      TraceEvent event;
      event.when = sim_.now();
      event.kind = TraceEventKind::kFaultInjected;
      event.node = site == FaultInjector::kNoFaultSite ? 0 : site;
      event.detail = kind;
      trace->Record(std::move(event));
    }
    if (telemetry_ != nullptr) {
      telemetry_->OnFault(kind, site);
    }
  });
  lan_.set_fault_hook(injector);
  for (size_t i = 0; i < nodes_.size(); i++) {
    nodes_[i]->store().set_fault_hook(injector->DiskHookFor(i));
  }

  for (const PartitionEpoch& epoch : plan.partitions) {
    sim_.ScheduleAt(std::max(epoch.at, sim_.now()),
                    [this, groups = epoch.groups] {
                      if (groups.empty()) {
                        lan_.ClearPartitions();
                      } else {
                        for (const auto& [station, group] : groups) {
                          lan_.SetPartitionGroup(station, group);
                        }
                      }
                      fault_injector_->RecordPartitionEpoch();
                    });
  }
  for (const CrashEvent& crash : plan.crashes) {
    sim_.ScheduleAt(std::max(crash.fail_at, sim_.now()), [this, crash] {
      if (crash.node >= nodes_.size() || nodes_[crash.node]->failed()) {
        return;
      }
      nodes_[crash.node]->FailNode();
      fault_injector_->RecordNodeFailure(crash.node);
      sim_.Schedule(crash.down_for, [this, node = crash.node] {
        // A test may have restarted (or re-failed) the node itself; only
        // undo the failure this schedule caused.
        if (node < nodes_.size() && nodes_[node]->failed()) {
          nodes_[node]->RestartNode();
          fault_injector_->RecordNodeRestart(node);
        }
      });
    });
  }
}

void EdenSystem::AddNodes(size_t count) {
  for (size_t i = 0; i < count; i++) {
    int shard = -1;
    if (engine_ != nullptr) {
      // Contiguous blocks: node i -> shard i*S/count, so ring/neighbor
      // workloads keep most traffic shard-local.
      shard = static_cast<int>((i * engine_->shard_count()) / count);
    }
    AddNodeWithConfig("node" + std::to_string(node_count()), config_.kernel,
                      config_.disk, config_.transport, shard);
  }
}

NodeKernel* EdenSystem::NodeAt(StationId station) {
  for (auto& node : nodes_) {
    if (node->station() == station) {
      return node.get();
    }
  }
  return nullptr;
}

// --- Elastic membership (DESIGN.md §16) --------------------------------------

void EdenSystem::RequireMembershipOp(const char* op, size_t index) const {
  if (engine_ != nullptr) {
    FatalError(std::string(op) +
               ": elastic membership requires the single-threaded world "
               "(shards == 0)");
  }
  if (index >= nodes_.size()) {
    FatalError(std::string(op) + ": node index out of range");
  }
}

void EdenSystem::SetLifecycle(size_t index, NodeLifecycle lifecycle) {
  lifecycle_[index] = lifecycle;
  metrics_.counter("membership.transitions").Increment();
}

void EdenSystem::RebuildMembers() {
  members_.clear();
  for (size_t i = 0; i < nodes_.size(); i++) {
    if (lifecycle_[i] == NodeLifecycle::kJoining ||
        lifecycle_[i] == NodeLifecycle::kActive) {
      members_.push_back(Member{i, nodes_[i]->station()});
    }
  }
  ++membership_epoch_;
  placement_->OnMembershipChange(members_);
  // Every location service re-checks which directory partitions it homes;
  // records whose home set changed are handed off here (epoch-monotone, so a
  // straggling hand-off can never clobber a newer publish). Failed nodes are
  // included: their in-memory directory is already empty, so it's a no-op.
  for (auto& node : nodes_) {
    node->location().OnMembershipChange();
  }
  metrics_.gauge("membership.members")
      .Set(static_cast<int64_t>(members_.size()));
}

NodeKernel& EdenSystem::JoinNode(const std::string& name) {
  if (engine_ != nullptr) {
    FatalError(
        "JoinNode: elastic membership requires the single-threaded world "
        "(shards == 0)");
  }
  NodeKernel& node =
      AddNodeWithConfig(name, config_.kernel, config_.disk, config_.transport);
  size_t index = nodes_.size() - 1;
  // AddNodeWithConfig already rebuilt the member set with this node in it;
  // joining nodes are members too, so flip the lifecycle without a second
  // rebuild.
  lifecycle_[index] = NodeLifecycle::kJoining;
  sim_.Schedule(config_.membership.join_warmup, [this, index] {
    if (lifecycle_[index] == NodeLifecycle::kJoining) {
      SetLifecycle(index, NodeLifecycle::kActive);
    }
  });
  rebalancer_->EnsureRunning();
  return node;
}

Status EdenSystem::RejoinNode(size_t index) {
  RequireMembershipOp("RejoinNode", index);
  if (lifecycle_[index] != NodeLifecycle::kDeparted) {
    return FailedPreconditionError("RejoinNode: node is not departed");
  }
  NodeKernel& node = *nodes_[index];
  if (node.failed()) {
    // Reattaches to the wire and re-publishes this store's checkpointed
    // objects (passive, epoch 0 — fills only empty directory slots).
    node.RestartNode();
  }
  node.set_draining(false);
  SetLifecycle(index, NodeLifecycle::kJoining);
  RebuildMembers();
  sim_.Schedule(config_.membership.join_warmup, [this, index] {
    if (lifecycle_[index] == NodeLifecycle::kJoining) {
      SetLifecycle(index, NodeLifecycle::kActive);
    }
  });
  rebalancer_->EnsureRunning();
  return OkStatus();
}

Future<Status> EdenSystem::LeaveNode(size_t index, bool drain) {
  RequireMembershipOp("LeaveNode", index);
  Promise<Status> done;
  Future<Status> result = done.GetFuture();
  if (lifecycle_[index] == NodeLifecycle::kDraining ||
      lifecycle_[index] == NodeLifecycle::kDeparted) {
    done.Set(FailedPreconditionError("LeaveNode: node is already leaving"));
    return result;
  }
  SetLifecycle(index, NodeLifecycle::kDraining);
  nodes_[index]->set_draining(true);
  if (drain) {
    // A permanent departure also evacuates the node's passive state: its
    // checkpointed objects reactivate here and move off, and chains anchored
    // at this station resite elsewhere.
    evacuate_passive_.insert(index);
  }
  RebuildMembers();
  if (!drain || nodes_[index]->failed()) {
    FinishDepart(index);
    done.Set(OkStatus());
    return result;
  }
  rebalancer_->EnsureRunning();
  RunDrain(index, std::move(done));
  return result;
}

Future<Status> EdenSystem::GracefulRestart(size_t index, SimDuration down_for) {
  RequireMembershipOp("GracefulRestart", index);
  Promise<Status> done;
  Future<Status> result = done.GetFuture();
  if (lifecycle_[index] != NodeLifecycle::kActive &&
      lifecycle_[index] != NodeLifecycle::kJoining) {
    done.Set(FailedPreconditionError("GracefulRestart: node is not a member"));
    return result;
  }
  // Drain WITHOUT evacuating passive state: checkpoints stay on this store
  // across the restart, and the restart scan re-publishes them.
  SetLifecycle(index, NodeLifecycle::kDraining);
  nodes_[index]->set_draining(true);
  RebuildMembers();
  rebalancer_->EnsureRunning();
  RunGracefulRestart(index, down_for, std::move(done));
  return result;
}

Task<Status> EdenSystem::AwaitDrain(size_t index) {
  SimTime deadline = sim_.now() + config_.membership.drain_timeout;
  while (true) {
    if (nodes_[index]->failed()) {
      // Crashed out from under the drain: the volatile state is already
      // gone, and whatever survives in checkpoints reincarnates elsewhere
      // on demand. Nothing left to wait for.
      co_return OkStatus();
    }
    if (rebalancer_->DrainComplete(index)) {
      co_return OkStatus();
    }
    if (sim_.now() >= deadline) {
      co_return TimeoutError(
          "drain deadline passed; node departs with residual state");
    }
    co_await SleepFor(sim_, config_.membership.drain_poll);
  }
}

DetachedTask EdenSystem::RunDrain(size_t index, Promise<Status> done) {
  Status status = co_await AwaitDrain(index);
  FinishDepart(index);
  done.Set(status);
}

DetachedTask EdenSystem::RunGracefulRestart(size_t index, SimDuration down_for,
                                            Promise<Status> done) {
  Status drained = co_await AwaitDrain(index);
  FinishDepart(index);
  co_await SleepFor(sim_, down_for);
  Status rejoined = RejoinNode(index);
  done.Set(drained.ok() ? rejoined : drained);
}

void EdenSystem::FinishDepart(size_t index) {
  evacuate_passive_.erase(index);
  SetLifecycle(index, NodeLifecycle::kDeparted);
  if (!nodes_[index]->failed()) {
    // Detach from the wire. After a clean drain this loses nothing: the
    // kernel reported DrainIdle, so there is no volatile state left to shed.
    nodes_[index]->FailNode();
  }
  metrics_.counter("membership.departures").Increment();
}

void EdenSystem::RegisterType(std::shared_ptr<TypeManager> type) {
  assert(type != nullptr);
  types_[type->name()] = std::move(type);
}

std::shared_ptr<TypeManager> EdenSystem::FindType(const std::string& type_name) const {
  auto it = types_.find(type_name);
  if (it == types_.end()) {
    return nullptr;
  }
  return it->second;
}

MetricsRegistry EdenSystem::Rollup() const {
  // Switched mode defers its wire counters (they are per-station for thread
  // safety); fold the outstanding deltas into metrics_ first.
  lan_.SyncMetrics();
  MetricsRegistry rollup;
  rollup.MergeFrom(metrics_);
  for (const auto& node : nodes_) {
    rollup.MergeFrom(node->metrics());
  }
  for (const auto& shard_registry : shard_span_metrics_) {
    if (shard_registry != nullptr) {
      rollup.MergeFrom(*shard_registry);
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->ContributeTo(rollup);
  }
  return rollup;
}

std::string EdenSystem::MetricsJson() const { return Rollup().ToJson(); }

}  // namespace eden
