#include "src/kernel/eden_system.h"

#include <algorithm>

#include "src/trace/trace.h"

namespace eden {

EdenSystem::EdenSystem(SystemConfig config)
    : config_(config), sim_(config.seed), lan_(sim_, config.lan) {
  lan_.set_metrics(&metrics_);
}

NodeBuilder::NodeBuilder(EdenSystem* system, std::string name)
    : system_(system),
      name_(std::move(name)),
      kernel_(system->config().kernel),
      disk_(system->config().disk),
      transport_(system->config().transport) {}

NodeKernel& NodeBuilder::Build() {
  if (node_ == nullptr) {
    node_ = &system_->AddNodeWithConfig(name_, kernel_, disk_, transport_);
    if (trace_ != nullptr) {
      node_->set_trace(trace_);
    }
  }
  return *node_;
}

NodeBuilder EdenSystem::AddNode(const std::string& name) {
  return NodeBuilder(this, name);
}

NodeKernel& EdenSystem::AddNodeWithConfig(const std::string& name,
                                          KernelConfig kernel, DiskConfig disk,
                                          TransportConfig transport) {
  nodes_.push_back(
      std::make_unique<NodeKernel>(*this, name, kernel, disk, transport));
  if (fault_injector_ != nullptr) {
    nodes_.back()->store().set_fault_hook(
        fault_injector_->DiskHookFor(nodes_.size() - 1));
  }
  if (span_collector_ != nullptr) {
    nodes_.back()->set_spans(span_collector_);
  }
  return *nodes_.back();
}

void EdenSystem::set_span_collector(SpanCollector* spans) {
  span_collector_ = spans;
  if (spans != nullptr) {
    spans->set_metrics(&metrics_);
  }
  for (auto& node : nodes_) {
    node->set_spans(spans);
  }
}

void EdenSystem::EnableFaults(const FaultPlan& plan, TraceBuffer* trace) {
  assert(fault_injector_ == nullptr && "EnableFaults may be called only once");
  fault_injector_ = std::make_unique<FaultInjector>(sim_, plan);
  FaultInjector* injector = fault_injector_.get();
  injector->set_metrics(&metrics_);
  if (trace != nullptr) {
    injector->set_event_sink([this, trace](const char* kind, uint32_t site) {
      TraceEvent event;
      event.when = sim_.now();
      event.kind = TraceEventKind::kFaultInjected;
      event.node = site == FaultInjector::kNoFaultSite ? 0 : site;
      event.detail = kind;
      trace->Record(std::move(event));
    });
  }
  lan_.set_fault_hook(injector);
  for (size_t i = 0; i < nodes_.size(); i++) {
    nodes_[i]->store().set_fault_hook(injector->DiskHookFor(i));
  }

  for (const PartitionEpoch& epoch : plan.partitions) {
    sim_.ScheduleAt(std::max(epoch.at, sim_.now()),
                    [this, groups = epoch.groups] {
                      if (groups.empty()) {
                        lan_.ClearPartitions();
                      } else {
                        for (const auto& [station, group] : groups) {
                          lan_.SetPartitionGroup(station, group);
                        }
                      }
                      fault_injector_->RecordPartitionEpoch();
                    });
  }
  for (const CrashEvent& crash : plan.crashes) {
    sim_.ScheduleAt(std::max(crash.fail_at, sim_.now()), [this, crash] {
      if (crash.node >= nodes_.size() || nodes_[crash.node]->failed()) {
        return;
      }
      nodes_[crash.node]->FailNode();
      fault_injector_->RecordNodeFailure(crash.node);
      sim_.Schedule(crash.down_for, [this, node = crash.node] {
        // A test may have restarted (or re-failed) the node itself; only
        // undo the failure this schedule caused.
        if (node < nodes_.size() && nodes_[node]->failed()) {
          nodes_[node]->RestartNode();
          fault_injector_->RecordNodeRestart(node);
        }
      });
    });
  }
}

void EdenSystem::AddNodes(size_t count) {
  for (size_t i = 0; i < count; i++) {
    AddNodeWithConfig("node" + std::to_string(node_count()), config_.kernel,
                      config_.disk, config_.transport);
  }
}

NodeKernel* EdenSystem::NodeAt(StationId station) {
  for (auto& node : nodes_) {
    if (node->station() == station) {
      return node.get();
    }
  }
  return nullptr;
}

void EdenSystem::RegisterType(std::shared_ptr<TypeManager> type) {
  assert(type != nullptr);
  types_[type->name()] = std::move(type);
}

std::shared_ptr<TypeManager> EdenSystem::FindType(const std::string& type_name) const {
  auto it = types_.find(type_name);
  if (it == types_.end()) {
    return nullptr;
  }
  return it->second;
}

MetricsRegistry EdenSystem::Rollup() const {
  MetricsRegistry rollup;
  rollup.MergeFrom(metrics_);
  for (const auto& node : nodes_) {
    rollup.MergeFrom(node->metrics());
  }
  return rollup;
}

std::string EdenSystem::MetricsJson() const { return Rollup().ToJson(); }

}  // namespace eden
