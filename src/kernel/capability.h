// Capability: the only way to refer to an Eden object. "Possession of a
// capability for an object implies the ability to manipulate that object's
// representation by invoking some subset of the operations defined for
// objects of that type" (paper section 2).
//
// Capabilities are data (they travel in messages and live in capability
// segments); forgery resistance is by convention, consistent with the paper's
// explicit non-goal of "extreme resistance to maliciousness".
#ifndef EDEN_SRC_KERNEL_CAPABILITY_H_
#define EDEN_SRC_KERNEL_CAPABILITY_H_

#include <string>

#include "src/common/rights.h"
#include "src/kernel/name.h"

namespace eden {

class Capability {
 public:
  Capability() = default;
  Capability(ObjectName name, Rights rights) : name_(name), rights_(rights) {}

  static Capability Null() { return Capability(); }

  const ObjectName& name() const { return name_; }
  Rights rights() const { return rights_; }
  bool IsNull() const { return name_.IsNull(); }

  // Produces a capability with a subset of this one's rights. Rights can only
  // ever shrink as capabilities are passed around.
  Capability Restrict(Rights mask) const {
    return Capability(name_, rights_.Restrict(mask));
  }

  bool operator==(const Capability& other) const {
    return name_ == other.name_ && rights_ == other.rights_;
  }

  void Encode(BufferWriter& writer) const;
  static StatusOr<Capability> Decode(BufferReader& reader);

  std::string ToString() const;

 private:
  ObjectName name_;
  Rights rights_;
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_CAPABILITY_H_
