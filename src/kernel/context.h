// InvokeContext: the type programmer's window onto the kernel. An operation
// handler, reincarnation handler or behavior receives an InvokeContext and
// through it reads its parameters, manipulates the representation, and calls
// the kernel primitives of paper section 4.5: invocation, checkpoint /
// checksite / crash, move, freeze, and intra-object synchronization.
#ifndef EDEN_SRC_KERNEL_CONTEXT_H_
#define EDEN_SRC_KERNEL_CONTEXT_H_

#include <memory>
#include <string>

#include "src/kernel/object.h"
#include "src/sim/task.h"

namespace eden {

class NodeKernel;

class InvokeContext {
 public:
  InvokeContext(NodeKernel* kernel, std::shared_ptr<ActiveObject> object,
                std::string operation, InvokeArgs args, Rights caller_rights,
                SpanContext span = {})
      : kernel_(kernel),
        object_(std::move(object)),
        core_(object_->core),
        operation_(std::move(operation)),
        args_(std::move(args)),
        caller_rights_(caller_rights),
        span_(span) {}

  // --- Identity & parameters ---------------------------------------------
  const ObjectName& self_name() const { return core_->name; }
  const std::string& operation() const { return operation_; }
  const InvokeArgs& args() const { return args_; }
  Rights caller_rights() const { return caller_rights_; }

  // Mints a capability for this object. Type code may amplify (it *is* the
  // abstraction), so any rights subset may be produced.
  Capability SelfCapability(Rights rights = Rights::All()) const {
    return Capability(core_->name, rights);
  }

  // --- State ----------------------------------------------------------------
  Representation& rep() { return core_->rep; }
  const Representation& rep() const { return core_->rep; }

  // False once the object has crashed; long-running behaviors must poll this.
  bool alive() const { return core_->alive; }

  // --- Kernel primitives (awaitable) ---------------------------------------
  // Synchronous invocation of another object: suspends this invocation until
  // the reply or the timeout in `options` (0 = kernel default). For
  // asynchronous invocation simply do not co_await the returned future
  // immediately.
  // `options` is a const reference defaulting to a named constant, and
  // custom options must be a named local at the call site, never an inline
  // temporary — see the note on kDefaultInvokeOptions.
  Future<InvokeResult> Invoke(const Capability& target, const std::string& op,
                              InvokeArgs args = {},
                              const InvokeOptions& options = kDefaultInvokeOptions);

  // Deprecated positional-timeout form; use InvokeOptions instead.
  [[deprecated("pass InvokeOptions instead of a positional timeout")]]
  Future<InvokeResult> Invoke(const Capability& target, const std::string& op,
                              InvokeArgs args, SimDuration timeout) {
    return Invoke(target, op, std::move(args),
                  InvokeOptions::WithTimeout(timeout));
  }

  // Records the representation on stable storage per the checksite policy.
  // The type programmer must call this at a consistent point (section 4.4).
  Future<Status> Checkpoint();

  // Chooses the long-term storage site(s) and reliability level.
  Status SetChecksite(const CheckpointPolicy& policy);

  // Simulated virtual-memory failure: destroys all active state. If the
  // object has checkpointed, it becomes passive; otherwise it is lost.
  void Crash();

  // Crash + erase long-term state everywhere: the exit operation.
  void Destroy();

  // Asks the kernel to transfer this object to another node. Resolves after
  // running invocations drain and the transfer is acknowledged. The calling
  // invocation itself continues executing on the *old* node until it
  // returns; subsequent invocations are served at the new home.
  Future<Status> RequestMove(StationId new_home);

  // Makes the representation immutable; the kernel may then replicate and
  // cache it at other nodes (section 4.3). One-way.
  Status Freeze();

  // --- Scheduling / synchronization ----------------------------------------
  Future<Unit> Sleep(SimDuration duration);
  Semaphore& semaphore(const std::string& name, int initial = 1) {
    return core_->semaphore(name, initial);
  }
  MessagePort& port(const std::string& name) { return core_->port(name); }

  // --- Environment ----------------------------------------------------------
  StationId node() const;
  Simulation& sim();
  NodeKernel& kernel() { return *kernel_; }
  const std::shared_ptr<ActiveObject>& object() const { return object_; }

  // The dispatch span this invocation runs under (invalid when tracing is
  // off). Nested Invoke/Checkpoint calls parent their spans here, so a
  // cross-node call chain assembles into one trace tree.
  const SpanContext& span() const { return span_; }

 private:
  NodeKernel* kernel_;
  std::shared_ptr<ActiveObject> object_;
  std::shared_ptr<ObjectCore> core_;
  std::string operation_;
  InvokeArgs args_;
  Rights caller_rights_;
  SpanContext span_;
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_CONTEXT_H_
