#include "src/kernel/invoke.h"

namespace eden {

InvokeArgs& InvokeArgs::AddU64(uint64_t value) {
  BufferWriter writer;
  writer.WriteU64(value);
  data.push_back(writer.Take());
  return *this;
}

StatusOr<std::string> InvokeArgs::StringAt(size_t index) const {
  if (index >= data.size()) {
    return InvalidArgumentError("missing data parameter");
  }
  return ToString(data[index]);
}

StatusOr<uint64_t> InvokeArgs::U64At(size_t index) const {
  if (index >= data.size()) {
    return InvalidArgumentError("missing data parameter");
  }
  BufferReader reader(data[index]);
  return reader.ReadU64();
}

StatusOr<int64_t> InvokeArgs::I64At(size_t index) const {
  EDEN_ASSIGN_OR_RETURN(uint64_t bits, U64At(index));
  return static_cast<int64_t>(bits);
}

StatusOr<Bytes> InvokeArgs::BytesAt(size_t index) const {
  if (index >= data.size()) {
    return InvalidArgumentError("missing data parameter");
  }
  return data[index];
}

StatusOr<Capability> InvokeArgs::CapabilityAt(size_t index) const {
  if (index >= caps.size()) {
    return InvalidArgumentError("missing capability parameter");
  }
  return caps[index];
}

size_t InvokeArgs::TotalBytes() const {
  size_t total = 0;
  for (const Bytes& item : data) {
    total += item.size();
  }
  total += caps.size() * 20;
  return total;
}

void InvokeArgs::Encode(BufferWriter& writer) const {
  writer.WriteVarint(data.size());
  for (const Bytes& item : data) {
    writer.WriteBytes(item);
  }
  writer.WriteVarint(caps.size());
  for (const Capability& cap : caps) {
    cap.Encode(writer);
  }
}

StatusOr<InvokeArgs> InvokeArgs::Decode(BufferReader& reader) {
  InvokeArgs args;
  EDEN_ASSIGN_OR_RETURN(uint64_t data_count, reader.ReadVarint());
  if (data_count > 1u << 20) {
    return InvalidArgumentError("implausible parameter count");
  }
  for (uint64_t i = 0; i < data_count; i++) {
    EDEN_ASSIGN_OR_RETURN(Bytes item, reader.ReadBytes());
    args.data.push_back(std::move(item));
  }
  EDEN_ASSIGN_OR_RETURN(uint64_t cap_count, reader.ReadVarint());
  if (cap_count > 1u << 20) {
    return InvalidArgumentError("implausible capability count");
  }
  for (uint64_t i = 0; i < cap_count; i++) {
    EDEN_ASSIGN_OR_RETURN(Capability cap, Capability::Decode(reader));
    args.caps.push_back(cap);
  }
  return args;
}

void InvokeResult::Encode(BufferWriter& writer) const {
  writer.WriteU8(static_cast<uint8_t>(status.code()));
  writer.WriteString(status.message());
  results.Encode(writer);
}

StatusOr<InvokeResult> InvokeResult::Decode(BufferReader& reader) {
  EDEN_ASSIGN_OR_RETURN(uint8_t code, reader.ReadU8());
  EDEN_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  EDEN_ASSIGN_OR_RETURN(InvokeArgs results, InvokeArgs::Decode(reader));
  InvokeResult result;
  result.status = Status(static_cast<StatusCode>(code), std::move(message));
  result.results = std::move(results);
  return result;
}

}  // namespace eden
