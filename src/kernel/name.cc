#include "src/kernel/name.h"

#include <cstdio>

namespace eden {

void ObjectName::Encode(BufferWriter& writer) const {
  writer.WriteU32(birth_node_);
  writer.WriteU64(sequence_);
  writer.WriteU32(disambiguator_);
}

StatusOr<ObjectName> ObjectName::Decode(BufferReader& reader) {
  EDEN_ASSIGN_OR_RETURN(uint32_t birth_node, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(uint64_t sequence, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(uint32_t disambiguator, reader.ReadU32());
  return ObjectName(birth_node, sequence, disambiguator);
}

std::string ObjectName::ToKey() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "obj/%u/%llu/%u", birth_node_,
                static_cast<unsigned long long>(sequence_), disambiguator_);
  return buf;
}

std::string ObjectName::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "obj-%u.%llu", birth_node_,
                static_cast<unsigned long long>(sequence_));
  return buf;
}

}  // namespace eden
