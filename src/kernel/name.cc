#include "src/kernel/name.h"

#include <cstdio>
#include <cstring>

namespace eden {

void ObjectName::Encode(BufferWriter& writer) const {
  writer.WriteU32(birth_node_);
  writer.WriteU64(sequence_);
  writer.WriteU32(disambiguator_);
}

StatusOr<ObjectName> ObjectName::Decode(BufferReader& reader) {
  EDEN_ASSIGN_OR_RETURN(uint32_t birth_node, reader.ReadU32());
  EDEN_ASSIGN_OR_RETURN(uint64_t sequence, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(uint32_t disambiguator, reader.ReadU32());
  return ObjectName(birth_node, sequence, disambiguator);
}

std::string ObjectName::ToKey() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "obj/%u/%llu/%u", birth_node_,
                static_cast<unsigned long long>(sequence_), disambiguator_);
  return buf;
}

StatusOr<ObjectName> ObjectName::FromKey(std::string_view key) {
  // snprintf/sscanf need NUL-terminated input; keys are short.
  char buf[64];
  if (key.size() >= sizeof(buf)) {
    return InvalidArgumentError("object key too long");
  }
  std::memcpy(buf, key.data(), key.size());
  buf[key.size()] = '\0';
  unsigned birth = 0;
  unsigned long long sequence = 0;
  unsigned disambiguator = 0;
  int consumed = 0;
  if (std::sscanf(buf, "obj/%u/%llu/%u%n", &birth, &sequence, &disambiguator,
                  &consumed) != 3 ||
      static_cast<size_t>(consumed) != key.size()) {
    return InvalidArgumentError("not an object key");
  }
  return ObjectName(birth, sequence, disambiguator);
}

std::string ObjectName::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "obj-%u.%llu", birth_node_,
                static_cast<unsigned long long>(sequence_));
  return buf;
}

}  // namespace eden
