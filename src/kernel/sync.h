// Intra-object synchronization primitives: "for fine-grained synchronization
// control, programmers can use kernel-supplied semaphore and message port
// primitives" (paper section 4.2).
//
// These live in an object's *short-term state*: they are destroyed (and all
// waiters failed) when the object crashes, and they are never checkpointed.
#ifndef EDEN_SRC_KERNEL_SYNC_H_
#define EDEN_SRC_KERNEL_SYNC_H_

#include <deque>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/task.h"

namespace eden {

// Counting semaphore. P() suspends the calling invocation until a unit is
// available; V() releases one waiter in FIFO order.
class Semaphore {
 public:
  explicit Semaphore(int initial = 1) : value_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Acquire. Resolves OK when the unit is granted, or with kAborted if the
  // object crashes while waiting.
  Future<Status> P() {
    Promise<Status> promise;
    if (failed_) {
      promise.Set(AbortedError("object crashed"));
    } else if (value_ > 0) {
      value_--;
      promise.Set(OkStatus());
    } else {
      waiters_.push_back(promise);
    }
    return promise.GetFuture();
  }

  // Release. Hands the unit directly to the oldest waiter, if any.
  void V() {
    if (failed_) {
      return;
    }
    if (!waiters_.empty()) {
      Promise<Status> waiter = waiters_.front();
      waiters_.pop_front();
      waiter.Set(OkStatus());
    } else {
      value_++;
    }
  }

  int value() const { return value_; }
  size_t waiter_count() const { return waiters_.size(); }

  // Crash support: wake every waiter with an error; further P()s fail fast.
  void FailAll(const Status& status) {
    failed_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& waiter : waiters) {
      waiter.Set(status);
    }
  }

 private:
  int value_;
  bool failed_ = false;
  std::deque<Promise<Status>> waiters_;
};

// Unbounded FIFO message port for data exchange between invocations and
// behaviors within one object.
class MessagePort {
 public:
  MessagePort() = default;

  MessagePort(const MessagePort&) = delete;
  MessagePort& operator=(const MessagePort&) = delete;

  void Send(Bytes message) {
    if (failed_) {
      return;
    }
    if (!waiters_.empty()) {
      Promise<StatusOr<Bytes>> waiter = waiters_.front();
      waiters_.pop_front();
      waiter.Set(StatusOr<Bytes>(std::move(message)));
    } else {
      queue_.push_back(std::move(message));
    }
  }

  Future<StatusOr<Bytes>> Receive() {
    Promise<StatusOr<Bytes>> promise;
    if (failed_) {
      promise.Set(StatusOr<Bytes>(AbortedError("object crashed")));
    } else if (!queue_.empty()) {
      promise.Set(StatusOr<Bytes>(std::move(queue_.front())));
      queue_.pop_front();
    } else {
      waiters_.push_back(promise);
    }
    return promise.GetFuture();
  }

  size_t queued() const { return queue_.size(); }
  size_t waiter_count() const { return waiters_.size(); }

  void FailAll(const Status& status) {
    failed_ = true;
    queue_.clear();
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& waiter : waiters) {
      waiter.Set(StatusOr<Bytes>(status));
    }
  }

 private:
  bool failed_ = false;
  std::deque<Bytes> queue_;
  std::deque<Promise<StatusOr<Bytes>>> waiters_;
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_SYNC_H_
