#include "src/kernel/node_kernel.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"
#include "src/kernel/eden_system.h"

namespace eden {

namespace {

// Joins two asynchronous Status results: OK iff both OK (first error wins).
Future<Status> CombineStatus(Future<Status> a, Future<Status> b) {
  struct JoinState {
    int remaining = 2;
    Status status = OkStatus();
  };
  auto state = std::make_shared<JoinState>();
  Promise<Status> done;
  auto arm = [state, done](Future<Status> f) mutable {
    f.OnReadyValue([state, done](const Status& status) mutable {
      if (!status.ok() && state->status.ok()) {
        state->status = status;
      }
      if (--state->remaining == 0) {
        done.Set(state->status);
      }
    });
  };
  arm(std::move(a));
  arm(std::move(b));
  return done.GetFuture();
}

Future<Status> ReadyStatus(Status status) {
  Promise<Status> promise;
  promise.Set(std::move(status));
  return promise.GetFuture();
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / environment
// ---------------------------------------------------------------------------

NodeKernel::NodeKernel(EdenSystem& system, std::string node_name,
                       KernelConfig config, DiskConfig disk,
                       TransportConfig transport, Simulation* shard_sim)
    : system_(system),
      node_name_(std::move(node_name)),
      sim_(shard_sim != nullptr ? shard_sim : &system.sim()),
      config_(config),
      rng_(system.sim().rng().Fork()) {
  InitMetrics();
  // The transport and store run on this node's shard simulation; message ids
  // keep drawing from the primary rng so the id sequence depends only on
  // node-creation order, never on the shard layout.
  transport_ = std::make_unique<Transport>(*sim_, system_.lan(), transport,
                                           &system_.sim().rng());
  store_ = std::make_unique<StableStore>(*sim_, disk);
  location_ = LocationService::Create(*this, config_.locate.backend);
  transport_->set_metrics(&metrics_);
  store_->set_metrics(&metrics_);
  transport_->SetHandler(
      [this](StationId src, BytesView message) { OnMessage(src, message); });
  transport_->SetSendOutcomeHandler([this](StationId dst, bool delivered) {
    if (delivered) {
      ReportPeerAlive(dst);
    } else {
      ReportPeerFailure(dst);
    }
  });
}

NodeKernel::~NodeKernel() = default;

void NodeKernel::InitMetrics() {
  counters_.invocations_started = &metrics_.counter("kernel.invoke.started");
  counters_.invocations_local = &metrics_.counter("kernel.invoke.local");
  counters_.invocations_remote = &metrics_.counter("kernel.invoke.remote");
  counters_.invocations_completed = &metrics_.counter("kernel.invoke.completed");
  counters_.invocations_timed_out = &metrics_.counter("kernel.invoke.timed_out");
  counters_.invocations_unavailable =
      &metrics_.counter("kernel.invoke.unavailable");
  counters_.dispatches = &metrics_.counter("kernel.dispatches");
  counters_.rights_denied = &metrics_.counter("kernel.rights_denied");
  counters_.queue_refusals = &metrics_.counter("kernel.queue_refusals");
  counters_.locate_queries_broadcast =
      &metrics_.counter("kernel.locate.queries.broadcast");
  counters_.locate_queries_directory =
      &metrics_.counter("kernel.locate.queries.directory");
  counters_.locate_cache_hits = &metrics_.counter("kernel.locate.cache_hits");
  counters_.directory_lookups = &metrics_.counter("kernel.directory.lookups");
  counters_.directory_updates = &metrics_.counter("kernel.directory.updates");
  counters_.directory_stale_updates =
      &metrics_.counter("kernel.directory.stale_updates");
  counters_.directory_stale_forwards =
      &metrics_.counter("kernel.directory.stale_forwards");
  counters_.directory_fallbacks =
      &metrics_.counter("kernel.directory.fallbacks");
  counters_.directory_repairs = &metrics_.counter("kernel.directory.repairs");
  counters_.directory_handoffs = &metrics_.counter("kernel.directory.handoffs");
  counters_.redirects_followed = &metrics_.counter("kernel.redirects_followed");
  counters_.activations = &metrics_.counter("kernel.activations");
  counters_.checkpoints = &metrics_.counter("kernel.checkpoints");
  counters_.checkpoint_bases = &metrics_.counter("kernel.checkpoint.bases");
  counters_.checkpoint_deltas = &metrics_.counter("kernel.checkpoint.deltas");
  counters_.checkpoint_noops = &metrics_.counter("kernel.checkpoint.noops");
  counters_.checkpoint_record_bytes =
      &metrics_.counter("kernel.checkpoint.record_bytes");
  counters_.crashes = &metrics_.counter("kernel.crashes");
  counters_.moves_out = &metrics_.counter("kernel.moves_out");
  counters_.moves_in = &metrics_.counter("kernel.moves_in");
  counters_.replica_fetches = &metrics_.counter("kernel.replica.fetches");
  counters_.replica_reads = &metrics_.counter("kernel.replica.reads");
  counters_.duplicate_requests = &metrics_.counter("kernel.duplicate_requests");
  counters_.lease_grants = &metrics_.counter("kernel.lease.grants");
  counters_.lease_recalls = &metrics_.counter("kernel.lease.recalls");
  counters_.lease_renewals = &metrics_.counter("kernel.lease.renewals");
  counters_.lease_expiries = &metrics_.counter("kernel.lease.expiries");
  counters_.lease_local_reads = &metrics_.counter("kernel.lease.local_reads");
  counters_.peer_suspects = &metrics_.counter("kernel.peer.suspects");
  counters_.peer_probes = &metrics_.counter("kernel.peer.probes");
  counters_.peer_recoveries = &metrics_.counter("kernel.peer.recoveries");
  counters_.suspect_fast_fails = &metrics_.counter("kernel.peer.fast_fails");
  counters_.restore_fallbacks = &metrics_.counter("kernel.restore.fallbacks");
  counters_.restore_quarantines =
      &metrics_.counter("kernel.restore.quarantines");
  invoke_latency_local_ = &metrics_.histogram("kernel.invoke.latency.local");
  invoke_latency_remote_ = &metrics_.histogram("kernel.invoke.latency.remote");
  locate_latency_ = &metrics_.histogram("kernel.locate.latency");
  checkpoint_latency_ = &metrics_.histogram("kernel.checkpoint.latency");
}

KernelStats NodeKernel::stats() const {
  KernelStats s;
  s.invocations_started = counters_.invocations_started->value();
  s.invocations_local = counters_.invocations_local->value();
  s.invocations_remote = counters_.invocations_remote->value();
  s.invocations_completed = counters_.invocations_completed->value();
  s.invocations_timed_out = counters_.invocations_timed_out->value();
  s.invocations_unavailable = counters_.invocations_unavailable->value();
  s.dispatches = counters_.dispatches->value();
  s.rights_denied = counters_.rights_denied->value();
  s.queue_refusals = counters_.queue_refusals->value();
  s.locate_queries = counters_.locate_queries_broadcast->value() +
                     counters_.locate_queries_directory->value();
  s.locate_broadcasts = counters_.locate_queries_broadcast->value();
  s.locate_cache_hits = counters_.locate_cache_hits->value();
  s.directory_updates = counters_.directory_updates->value();
  s.directory_stale_forwards = counters_.directory_stale_forwards->value();
  s.redirects_followed = counters_.redirects_followed->value();
  s.activations = counters_.activations->value();
  s.checkpoints = counters_.checkpoints->value();
  s.crashes = counters_.crashes->value();
  s.moves_out = counters_.moves_out->value();
  s.moves_in = counters_.moves_in->value();
  s.replica_fetches = counters_.replica_fetches->value();
  s.replica_reads = counters_.replica_reads->value();
  s.duplicate_requests = counters_.duplicate_requests->value();
  s.lease_grants = counters_.lease_grants->value();
  s.lease_recalls = counters_.lease_recalls->value();
  s.lease_renewals = counters_.lease_renewals->value();
  s.lease_expiries = counters_.lease_expiries->value();
  s.lease_local_reads = counters_.lease_local_reads->value();
  return s;
}

void NodeKernel::RecordInvocationLatency(const PendingInvocation& pending,
                                         bool ok) {
  SimDuration elapsed = sim().now() - pending.started;
  (pending.went_remote ? invoke_latency_remote_ : invoke_latency_local_)
      ->Record(elapsed);
  if (!pending.metrics_class.empty()) {
    metrics_.histogram("kernel.invoke.latency.class." + pending.metrics_class)
        .Record(elapsed);
    // Per-class completion/error counters: the telemetry SLO engine's
    // error-burn inputs (DESIGN.md §17). Not cached — classified invocations
    // are a driver-side minority.
    metrics_
        .counter("kernel.invoke.class." + pending.metrics_class + ".completed")
        .Increment();
    if (!ok) {
      metrics_
          .counter("kernel.invoke.class." + pending.metrics_class + ".errors")
          .Increment();
    }
  }
}

SimDuration NodeKernel::SerializeCost(size_t bytes) const {
  return config_.serialize_per_kb * static_cast<SimDuration>(bytes / 1024 + 1);
}

uint64_t NodeKernel::NewInvocationId() {
  return (static_cast<uint64_t>(station()) << 40) | next_invocation_seq_++;
}

bool NodeKernel::HasCheckpoint(const ObjectName& name) const {
  return store_->Contains(CheckpointKey(name));
}

std::shared_ptr<ActiveObject> NodeKernel::FindActive(const ObjectName& name) const {
  auto it = active_.find(name);
  if (it == active_.end()) {
    return nullptr;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Peer health (DESIGN.md §11)
// ---------------------------------------------------------------------------

bool NodeKernel::PeerSuspect(StationId peer) const {
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second.mode == PeerState::Mode::kSuspect;
}

int NodeKernel::PeerConsecutiveFailures(StationId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.consecutive_failures;
}

void NodeKernel::ReportPeerAlive(StationId peer) {
  // Healthy peers have no entry, so the common case is one failed lookup.
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    return;
  }
  if (it->second.mode == PeerState::Mode::kSuspect) {
    counters_.peer_recoveries->Increment();
    Trace(TraceEventKind::kPeerRecovered, ObjectName::Null(), peer);
  }
  sim().Cancel(it->second.probe_timer);
  peers_.erase(it);
}

void NodeKernel::ReportPeerFailure(StationId peer) {
  if (!config_.peer_health || failed_ || peer == station() ||
      peer == kBroadcastStation) {
    return;
  }
  PeerState& state = peers_[peer];
  state.consecutive_failures++;
  if (state.mode == PeerState::Mode::kHealthy) {
    if (state.consecutive_failures < config_.suspect_after_failures) {
      return;
    }
    state.mode = PeerState::Mode::kSuspect;
    state.probes_sent = 0;
    counters_.peer_suspects->Increment();
    Trace(TraceEventKind::kPeerSuspect, ObjectName::Null(), peer);
  }
  // Suspect (newly or still): keep exactly one probe pending. The failure
  // that lands here may itself be a probe's give-up, which is what walks the
  // interval up the backoff ladder.
  if (state.probe_timer == kInvalidEventId) {
    SchedulePeerProbe(peer);
  }
}

void NodeKernel::SchedulePeerProbe(StationId peer) {
  PeerState& state = peers_[peer];
  double interval = static_cast<double>(config_.probe_interval);
  for (int k = 0;
       k < state.probes_sent &&
       interval < static_cast<double>(config_.probe_interval_max);
       k++) {
    interval *= config_.probe_backoff;
  }
  interval =
      std::min(interval, static_cast<double>(config_.probe_interval_max));
  state.probe_timer = sim().Schedule(static_cast<SimDuration>(interval),
                                     [this, peer] { SendPeerProbe(peer); });
}

void NodeKernel::SendPeerProbe(StationId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || failed_) {
    return;
  }
  it->second.probe_timer = kInvalidEventId;
  it->second.probes_sent++;
  counters_.peer_probes->Increment();
  Trace(TraceEventKind::kPeerProbe, ObjectName::Null(), peer);
  // The transport outcome resolves the probe: an ack reports the peer alive
  // (clearing the suspicion), a give-up reports another failure (scheduling
  // the next, further-backed-off probe).
  transport_->SendReliable(peer, PingMsg{}.Encode());
}

// ---------------------------------------------------------------------------
// Object creation
// ---------------------------------------------------------------------------

StatusOr<Capability> NodeKernel::CreateObject(const std::string& type_name,
                                              Representation initial,
                                              CreateOptions options) {
  if (failed_) {
    return UnavailableError("node is down");
  }
  std::shared_ptr<TypeManager> type = system_.FindType(type_name);
  if (type == nullptr) {
    return NotFoundError("unknown type: " + type_name);
  }
  // Nonce from the primary rng: object names must not depend on which shard
  // the creating node landed on (they feed directory-home hashing).
  ObjectName name(station(), next_object_seq_++,
                  static_cast<uint32_t>(system_.sim().rng().NextU64()));
  auto object = std::make_shared<ActiveObject>(type);
  object->name = name;
  object->core = std::make_shared<ObjectCore>();
  object->core->name = name;
  object->core->rep = std::move(initial);
  object->policy =
      options.policy.value_or(CheckpointPolicy{station(), ReliabilityLevel::kLocal, 0});
  active_[name] = object;
  UpdateActiveGauge();
  PublishResidenceHere(object);
  StartBehaviors(object);
  return Capability(name, Rights::All());
}

// ---------------------------------------------------------------------------
// Client-side invocation
// ---------------------------------------------------------------------------

Future<InvokeResult> NodeKernel::Invoke(const Capability& target,
                                        const std::string& op, InvokeArgs args,
                                        const InvokeOptions& options) {
  Promise<InvokeResult> promise;
  Future<InvokeResult> future = promise.GetFuture();
  StartInvocation(target, op, std::move(args), options, std::move(promise),
                  SpanContext{});
  return future;
}

uint64_t NodeKernel::StartInvocation(const Capability& target,
                                     const std::string& op, InvokeArgs args,
                                     const InvokeOptions& options,
                                     Promise<InvokeResult> promise,
                                     const SpanContext& parent_span) {
  uint64_t id = NewInvocationId();
  if (failed_) {
    promise.Set(InvokeResult::Error(UnavailableError("node is down")));
    return id;
  }
  if (target.IsNull()) {
    promise.Set(InvokeResult::Error(InvalidArgumentError("null capability")));
    return id;
  }
  counters_.invocations_started->Increment();
  Trace(TraceEventKind::kInvokeStart, target.name(), id,
        options.trace_label.empty() ? op : op + " [" + options.trace_label + "]");
  PendingInvocation& pending = pending_invocations_[id];
  pending.promise = std::move(promise);
  pending.target = target;
  pending.operation = op;
  pending.args = std::move(args);
  pending.started = sim().now();
  pending.metrics_class = options.metrics_class;
  // A driver call (invalid parent) roots a fresh trace; a nested Invoke hangs
  // off the calling invocation's dispatch span.
  pending.span = StartSpan(parent_span, SpanKind::kInvocation, target.name(),
                           options.trace_label.empty() ? op : options.trace_label);
  SimDuration user_timeout =
      options.timeout > 0 ? options.timeout : config_.default_invoke_timeout;
  pending.user_timer = sim().Schedule(user_timeout, [this, id] {
    counters_.invocations_timed_out->Increment();
    CompleteInvocation(
        id, InvokeResult::Error(TimeoutError("invocation timed out")));
  });
  TryResolve(id);
  return id;
}

void NodeKernel::TryResolve(uint64_t id) {
  auto it = pending_invocations_.find(id);
  if (it == pending_invocations_.end()) {
    return;
  }
  PendingInvocation& pending = it->second;
  const ObjectName& name = pending.target.name();

  // 1. Active on this node.
  if (auto active = active_.find(name); active != active_.end()) {
    DispatchLocally(id, active->second);
    return;
  }

  // 2. Unexpired read lease on this node (DESIGN.md §15): read-class
  // invocations dispatch into the leased copy with zero network traffic.
  // Near expiry the read routes to the home instead, so the reply can
  // piggyback a renewal; write-class invocations always route to the home.
  if (config_.lease_reads) {
    if (auto lease = lease_cache_.find(name); lease != lease_cache_.end()) {
      SimTime now = sim().now();
      if (lease->second.expiry <= now) {
        counters_.lease_expiries->Increment();
        lease_cache_.erase(lease);
      } else {
        const OperationSpec* op =
            lease->second.replica->type->FindOperation(pending.operation);
        if (op != nullptr && op->read_only &&
            lease->second.expiry > now + config_.lease_renew_margin) {
          counters_.lease_local_reads->Increment();
          DispatchLocally(id, lease->second.replica);
          return;
        }
        SendRequestTo(id, lease->second.home);
        return;
      }
    }
  }

  // 3. Cached replica of a frozen object, for read-only operations.
  if (auto replica = replicas_.find(name); replica != replicas_.end()) {
    const OperationSpec* op =
        replica->second->type->FindOperation(pending.operation);
    if (op != nullptr && op->read_only) {
      counters_.replica_reads->Increment();
      DispatchLocally(id, replica->second);
      return;
    }
  }

  // 4. Reincarnation already under way on this node.
  if (activating_.count(name) > 0) {
    activation_local_waiters_[name].push_back(id);
    return;
  }

  // 5. We moved it away: follow the forwarding address — unless this very
  // invocation already found that host dead or ignorant, in which case the
  // pointer is stale and must be dropped (same healing the remote path gets
  // via InvokeRequestMsg::avoid_hosts).
  if (auto fwd = forwarding_.find(name); fwd != forwarding_.end()) {
    if (pending.dead_hosts.count(fwd->second.host) > 0) {
      forwarding_.erase(fwd);
    } else {
      SendRequestTo(id, fwd->second.host);
      return;
    }
  }

  // 6. Location cache.
  if (auto hint = location_cache_.find(name); hint != location_cache_.end()) {
    counters_.locate_cache_hits->Increment();
    SendRequestTo(id, hint->second.host);
    return;
  }

  // 7. Passive on this node (we hold its authoritative checkpoint).
  if (store_->Contains(CheckpointKey(name))) {
    activation_local_waiters_[name].push_back(id);
    BeginActivation(name, pending.span);
    return;
  }

  // 8. Ask the network.
  StartLocate(id);
}

void NodeKernel::DispatchLocally(uint64_t id, std::shared_ptr<ActiveObject> object) {
  auto it = pending_invocations_.find(id);
  if (it == pending_invocations_.end()) {
    return;
  }
  counters_.invocations_local->Increment();
  PendingDispatch dispatch;
  dispatch.local = true;
  dispatch.request.invocation_id = id;
  dispatch.request.reply_to = station();
  dispatch.request.target = it->second.target;
  dispatch.request.operation = it->second.operation;
  dispatch.request.args = it->second.args;
  dispatch.request.span = it->second.span;
  dispatch.span = ChildSpan(it->second.span, SpanKind::kDispatch,
                            it->second.target.name(), it->second.operation);
  SimDuration cost = config_.local_invoke_overhead +
                     SerializeCost(it->second.args.TotalBytes());
  sim().Schedule(cost, [this, object = std::move(object),
                        dispatch = std::move(dispatch)]() mutable {
    AcceptDispatch(object, std::move(dispatch));
  });
}

void NodeKernel::SendRequestTo(uint64_t id, StationId host) {
  auto it = pending_invocations_.find(id);
  if (it == pending_invocations_.end()) {
    return;
  }
  if (host == station()) {
    // A redirect or hint pointing at ourselves (e.g. the object moved TO this
    // node while our request was in flight): resolve locally. Drop the hint
    // first so a stale self-pointing cache entry cannot loop.
    location_cache_.erase(it->second.target.name());
    TryResolve(id);
    return;
  }
  if (config_.peer_health && PeerSuspect(host)) {
    // Fast-fail: recent traffic already proved this peer unresponsive, so
    // don't burn a full attempt timeout on it — count the attempt and
    // re-locate now. The probe loop owns its rehabilitation.
    counters_.suspect_fast_fails->Increment();
    AnnotateSpan(it->second.span,
                 "suspect_fast_fail host " + std::to_string(host));
    FailAttempt(id, host, "object unreachable");
    return;
  }
  PendingInvocation& pending = it->second;
  counters_.invocations_remote->Increment();
  pending.current_host = host;
  pending.went_remote = true;

  InvokeRequestMsg msg;
  msg.invocation_id = id;
  msg.reply_to = station();
  msg.target = pending.target;
  msg.operation = pending.operation;
  msg.args = pending.args;
  msg.avoid_hosts.assign(pending.dead_hosts.begin(), pending.dead_hosts.end());
  msg.span = pending.span;
  Bytes encoded = msg.Encode();

  sim().Cancel(pending.attempt_timer);
  pending.attempt_timer =
      sim().Schedule(AttemptTimeout(pending.attempts, encoded.size()),
                     [this, id] { OnAttemptTimeout(id); });

  sim().Schedule(SerializeCost(encoded.size()),
                 [this, host, span = pending.span,
                  encoded = std::move(encoded)]() mutable {
                   if (!failed_) {
                     transport_->SendReliable(host, std::move(encoded), span);
                   }
                 });
}

SimDuration NodeKernel::AttemptTimeout(int attempts, size_t bytes) {
  double timeout = static_cast<double>(config_.attempt_timeout);
  for (int k = 0;
       k < attempts && timeout < static_cast<double>(config_.attempt_timeout_max);
       k++) {
    timeout *= config_.attempt_backoff;
  }
  timeout = std::min(timeout, static_cast<double>(config_.attempt_timeout_max));
  if (config_.attempt_jitter > 0) {
    timeout *= 1.0 + (rng_.NextDouble() * 2.0 - 1.0) * config_.attempt_jitter;
  }
  return static_cast<SimDuration>(timeout) + SerializeCost(bytes);
}

void NodeKernel::FailAttempt(uint64_t id, StationId host,
                             const char* give_up_message) {
  auto it = pending_invocations_.find(id);
  if (it == pending_invocations_.end()) {
    return;
  }
  PendingInvocation& pending = it->second;
  pending.attempts++;
  if (host != kNoStation) {
    pending.dead_hosts.insert(host);
  }
  AnnotateSpan(pending.span, "attempt " + std::to_string(pending.attempts) +
                                 " failed at host " + std::to_string(host));
  location_cache_.erase(pending.target.name());
  if (pending.attempts >= config_.max_attempts) {
    counters_.invocations_unavailable->Increment();
    CompleteInvocation(
        id, InvokeResult::Error(UnavailableError(give_up_message)));
    return;
  }
  StartLocate(id);
}

void NodeKernel::OnAttemptTimeout(uint64_t id) {
  auto it = pending_invocations_.find(id);
  if (it == pending_invocations_.end()) {
    return;
  }
  StationId host = it->second.current_host;
  // The silence that timed this attempt out is also peer-health evidence.
  if (host != kNoStation) {
    ReportPeerFailure(host);
  }
  FailAttempt(id, host, "object unreachable");
}

void NodeKernel::StartLocate(uint64_t id) {
  auto it = pending_invocations_.find(id);
  if (it == pending_invocations_.end()) {
    return;
  }
  const ObjectName& name = it->second.target.name();
  if (auto existing = locate_by_name_.find(name); existing != locate_by_name_.end()) {
    pending_locates_[existing->second].waiting.push_back(id);
    return;
  }
  uint64_t query_id = next_query_id_++;
  PendingLocate& locate = pending_locates_[query_id];
  locate.name = name;
  locate.started = sim().now();
  locate.waiting.push_back(id);
  locate.span = ChildSpan(it->second.span, SpanKind::kLocate, name, "locate");
  locate_by_name_[name] = query_id;
  LocateAttempt(query_id);
}

void NodeKernel::LocateAttempt(uint64_t query_id) {
  auto it = pending_locates_.find(query_id);
  if (it == pending_locates_.end()) {
    return;
  }
  // The object may have arrived here (move, reincarnation) after the locate
  // began; our own query would never reach us, so re-check locally.
  if (active_.count(it->second.name) > 0 || activating_.count(it->second.name) > 0 ||
      store_->Contains(CheckpointKey(it->second.name))) {
    std::vector<uint64_t> waiting = std::move(it->second.waiting);
    sim().Cancel(it->second.timer);
    locate_latency_->Record(sim().now() - it->second.started);
    location_->EndQuery(query_id, "resolved_locally");
    EndSpan(it->second.span, "resolved_locally");
    locate_by_name_.erase(it->second.name);
    pending_locates_.erase(it);
    for (uint64_t id : waiting) {
      TryResolve(id);
    }
    return;
  }
  PendingLocate& locate = it->second;
  // Hosts the waiting invocations proved dead or ignorant: the backends drop
  // stale records pointing there instead of returning them.
  std::set<StationId> dead;
  for (uint64_t id : locate.waiting) {
    auto w = pending_invocations_.find(id);
    if (w != pending_invocations_.end()) {
      dead.insert(w->second.dead_hosts.begin(), w->second.dead_hosts.end());
    }
  }
  std::vector<StationId> avoid(dead.begin(), dead.end());
  // Arm the round timer BEFORE issuing the round: a directory query whose
  // home is this very node can resolve synchronously through ResolveLocate,
  // which cancels the timer and erases the PendingLocate.
  locate.timer = sim().Schedule(config_.locate.timeout, [this, query_id] {
    OnLocateRoundFailed(query_id);
  });
  location_->QueryRound(query_id, locate.name, locate.attempts, avoid,
                        locate.span);
}

void NodeKernel::OnLocateRoundFailed(uint64_t query_id) {
  auto it = pending_locates_.find(query_id);
  if (it == pending_locates_.end()) {
    return;
  }
  it->second.attempts++;
  AnnotateSpan(it->second.span,
               "round timeout #" + std::to_string(it->second.attempts));
  if (it->second.attempts >= config_.locate.max_attempts) {
    ObjectName name = it->second.name;
    std::vector<uint64_t> waiting = std::move(it->second.waiting);
    SpanContext locate_span = it->second.span;
    location_->EndQuery(query_id, "not_found");
    locate_by_name_.erase(name);
    pending_locates_.erase(it);
    if (config_.restore_fallback && !store_->Contains(CheckpointKey(name)) &&
        store_->Contains(MirrorKey(name))) {
      // Nobody answered for the object, but we hold its mirror chain: the
      // primary site is gone, so promote the mirror and reincarnate here
      // rather than failing the waiters (RunActivation does the promote).
      EndSpan(locate_span, "mirror_fallback");
      SpanContext act_parent;
      if (!waiting.empty()) {
        auto w = pending_invocations_.find(waiting.front());
        if (w != pending_invocations_.end()) {
          act_parent = w->second.span;
        }
      }
      for (uint64_t id : waiting) {
        activation_local_waiters_[name].push_back(id);
      }
      BeginActivation(name, act_parent);
      return;
    }
    EndSpan(locate_span, "not_found");
    for (uint64_t id : waiting) {
      counters_.invocations_unavailable->Increment();
      CompleteInvocation(
          id, InvokeResult::Error(UnavailableError("object not found")));
    }
    return;
  }
  LocateAttempt(query_id);
}

void NodeKernel::RetryLocateNow(uint64_t query_id) {
  auto it = pending_locates_.find(query_id);
  if (it == pending_locates_.end()) {
    return;
  }
  // Short-circuit the round timer: the round is already known lost (a home
  // answered "unknown"), so count it against the budget and move on now.
  sim().Cancel(it->second.timer);
  it->second.timer = kInvalidEventId;
  OnLocateRoundFailed(query_id);
}

void NodeKernel::ResolveLocate(uint64_t query_id, StationId host,
                               uint64_t epoch, bool active) {
  auto it = pending_locates_.find(query_id);
  if (it == pending_locates_.end()) {
    return;
  }
  CacheLocation(it->second.name, ResidenceRecord{host, epoch, active});
  sim().Cancel(it->second.timer);
  locate_latency_->Record(sim().now() - it->second.started);
  location_->EndQuery(query_id, active ? "resolved" : "passive_host");
  EndSpan(it->second.span,
          active ? std::string() : std::string("passive_host"));
  std::vector<uint64_t> waiting = std::move(it->second.waiting);
  locate_by_name_.erase(it->second.name);
  pending_locates_.erase(it);
  for (uint64_t id : waiting) {
    SendRequestTo(id, host);
  }
}

void NodeKernel::CacheLocation(const ObjectName& name,
                               const ResidenceRecord& record) {
  auto [it, inserted] = location_cache_.try_emplace(name, record);
  if (inserted) {
    return;
  }
  ResidenceRecord& existing = it->second;
  if (record.epoch > existing.epoch ||
      (record.epoch == existing.epoch && record.active && !existing.active)) {
    existing = record;
  }
}

uint64_t NodeKernel::PublishResidenceHere(
    const std::shared_ptr<ActiveObject>& object) {
  // +1 so an object acquired at the simulation origin still outranks the
  // passive-sighting sentinel epoch 0.
  object->location_epoch = static_cast<uint64_t>(sim().now()) + 1;
  location_->PublishResidence(
      object->name, ResidenceRecord{station(), object->location_epoch, true});
  return object->location_epoch;
}

void NodeKernel::CompleteInvocation(uint64_t id, InvokeResult result) {
  auto it = pending_invocations_.find(id);
  if (it == pending_invocations_.end()) {
    return;  // late reply, duplicate, or already timed out
  }
  sim().Cancel(it->second.user_timer);
  sim().Cancel(it->second.attempt_timer);
  Trace(TraceEventKind::kInvokeComplete, it->second.target.name(), id,
        std::string(StatusCodeName(result.status.code())));
  EndSpan(it->second.span,
          result.status.ok()
              ? std::string()
              : std::string(StatusCodeName(result.status.code())));
  RecordInvocationLatency(it->second, result.status.ok());
  Promise<InvokeResult> promise = std::move(it->second.promise);
  pending_invocations_.erase(it);
  counters_.invocations_completed->Increment();
  promise.Set(std::move(result));
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void NodeKernel::OnMessage(StationId src, BytesView message) {
  if (failed_) {
    return;
  }
  // Per-node determinism oracle: the full inbound stream in arrival order.
  digest_.Mix(static_cast<uint64_t>(sim().now()));
  digest_.Mix(src);
  digest_.Mix(Fnv1a64(message));
  // Any traffic from a peer is liveness evidence (find-only on healthy peers).
  ReportPeerAlive(src);
  auto kind = PeekMessageKind(message);
  if (!kind.ok()) {
    EDEN_LOG(kWarning, "kernel") << node_name_ << ": undecodable message";
    return;
  }
  switch (*kind) {
    case MessageKind::kInvokeRequest: {
      auto msg = InvokeRequestMsg::Decode(message);
      if (msg.ok()) {
        HandleInvokeRequest(src, std::move(*msg));
      }
      break;
    }
    case MessageKind::kInvokeReply: {
      auto msg = InvokeReplyMsg::Decode(message);
      if (msg.ok()) {
        HandleInvokeReply(src, *msg);
      }
      break;
    }
    case MessageKind::kInvokeRedirect: {
      auto msg = InvokeRedirectMsg::Decode(message);
      if (msg.ok()) {
        HandleInvokeRedirect(src, *msg);
      }
      break;
    }
    case MessageKind::kLocateRequest: {
      auto msg = LocateRequestMsg::Decode(message);
      if (msg.ok()) {
        HandleLocateRequest(src, *msg);
      }
      break;
    }
    case MessageKind::kLocateReply: {
      auto msg = LocateReplyMsg::Decode(message);
      if (msg.ok()) {
        HandleLocateReply(*msg);
      }
      break;
    }
    case MessageKind::kMoveTransfer: {
      auto msg = MoveTransferMsg::Decode(message);
      if (msg.ok()) {
        HandleMoveTransfer(src, std::move(*msg));
      }
      break;
    }
    case MessageKind::kMoveAck: {
      auto msg = MoveAckMsg::Decode(message);
      if (msg.ok()) {
        HandleMoveAck(*msg);
      }
      break;
    }
    case MessageKind::kCheckpointPut: {
      auto msg = CheckpointPutMsg::Decode(message);
      if (msg.ok()) {
        HandleCheckpointPut(src, std::move(*msg));
      }
      break;
    }
    case MessageKind::kCheckpointAck: {
      auto msg = CheckpointAckMsg::Decode(message);
      if (msg.ok()) {
        HandleCheckpointAck(*msg);
      }
      break;
    }
    case MessageKind::kCheckpointErase: {
      auto msg = CheckpointEraseMsg::Decode(message);
      if (msg.ok()) {
        HandleCheckpointErase(*msg);
      }
      break;
    }
    case MessageKind::kReplicaFetch: {
      auto msg = ReplicaFetchMsg::Decode(message);
      if (msg.ok()) {
        HandleReplicaFetch(src, *msg);
      }
      break;
    }
    case MessageKind::kReplicaReply: {
      auto msg = ReplicaReplyMsg::Decode(message);
      if (msg.ok()) {
        HandleReplicaReply(src, std::move(*msg));
      }
      break;
    }
    case MessageKind::kPing:
      // Health probe: the transport-level ack already answered it.
      break;
    case MessageKind::kDirectoryUpdate: {
      auto msg = DirectoryUpdateMsg::Decode(message);
      if (msg.ok()) {
        location_->HandleDirectoryUpdate(src, *msg);
      }
      break;
    }
    case MessageKind::kDirectoryLookup: {
      auto msg = DirectoryLookupMsg::Decode(message);
      if (msg.ok()) {
        location_->HandleDirectoryLookup(src, *msg);
      }
      break;
    }
    case MessageKind::kDirectoryReply: {
      auto msg = DirectoryReplyMsg::Decode(message);
      if (msg.ok()) {
        location_->HandleDirectoryReply(*msg);
      }
      break;
    }
    case MessageKind::kLeaseGrant: {
      auto msg = LeaseGrantMsg::Decode(message);
      if (msg.ok()) {
        HandleLeaseGrant(src, std::move(*msg));
      }
      break;
    }
    case MessageKind::kLeaseRecall: {
      auto msg = LeaseRecallMsg::Decode(message);
      if (msg.ok()) {
        HandleLeaseRecall(src, *msg);
      }
      break;
    }
    case MessageKind::kLeaseRelease: {
      auto msg = LeaseReleaseMsg::Decode(message);
      if (msg.ok()) {
        HandleLeaseRelease(src, *msg);
      }
      break;
    }
  }
}

void NodeKernel::HandleInvokeRequest(StationId src, InvokeRequestMsg msg) {
  uint64_t id = msg.invocation_id;

  // At-most-once execution: a retransmitted request must not run twice.
  if (auto cached = reply_cache_.find(id); cached != reply_cache_.end()) {
    counters_.duplicate_requests->Increment();
    InvokeReplyMsg reply;
    reply.invocation_id = id;
    reply.result = cached->second.result;
    reply.target_frozen = cached->second.frozen;
    transport_->SendReliable(msg.reply_to, reply.Encode());
    return;
  }
  if (requests_in_progress_.count(id) > 0) {
    counters_.duplicate_requests->Increment();
    return;  // still executing; the eventual reply covers this duplicate
  }

  const ObjectName name = msg.target.name();
  StationId reply_to = msg.reply_to;
  PendingDispatch dispatch;
  dispatch.local = false;
  dispatch.request = std::move(msg);
  // Opened only on paths that accept the request for execution here; redirect
  // paths reply without ever owning the invocation.
  auto open_dispatch_span = [this, &dispatch, &name] {
    dispatch.span = ChildSpan(dispatch.request.span, SpanKind::kDispatch, name,
                              dispatch.request.operation);
  };

  if (auto it = active_.find(name); it != active_.end()) {
    requests_in_progress_.insert(id);
    open_dispatch_span();
    AcceptDispatch(it->second, std::move(dispatch));
    return;
  }
  if (activating_.count(name) > 0) {
    requests_in_progress_.insert(id);
    open_dispatch_span();
    activation_remote_hold_[name].push_back(std::move(dispatch));
    return;
  }
  if (auto fwd = forwarding_.find(name); fwd != forwarding_.end()) {
    bool stale = false;
    for (StationId avoid : dispatch.request.avoid_hosts) {
      if (fwd->second.host == avoid) {
        stale = true;
        break;
      }
    }
    if (stale) {
      // The invoker found the forwarded-to node dead (or ignorant). The
      // active copy is gone; our checkpoint, if any, is now authoritative.
      forwarding_.erase(fwd);
    } else {
      // The invoker landed on a stale host: hand back a version-stamped
      // forward hint so its cache merges it by epoch.
      counters_.directory_stale_forwards->Increment();
      InvokeRedirectMsg redirect;
      redirect.invocation_id = id;
      redirect.name = name;
      redirect.new_host = fwd->second.host;
      redirect.epoch = fwd->second.epoch;
      transport_->SendReliable(reply_to, redirect.Encode());
      return;
    }
  }
  if (store_->Contains(CheckpointKey(name))) {
    requests_in_progress_.insert(id);
    open_dispatch_span();
    SpanContext act_parent = dispatch.request.span;
    activation_remote_hold_[name].push_back(std::move(dispatch));
    BeginActivation(name, act_parent);
    return;
  }
  if (config_.restore_fallback && store_->Contains(MirrorKey(name))) {
    // Mirror-only holder targeted directly (our delayed locate reply won,
    // so the primary passive site is gone): promote the mirror chain and
    // reincarnate from it (RunActivation does the promote).
    requests_in_progress_.insert(id);
    open_dispatch_span();
    SpanContext act_parent = dispatch.request.span;
    activation_remote_hold_[name].push_back(std::move(dispatch));
    BeginActivation(name, act_parent);
    return;
  }
  InvokeRedirectMsg redirect;
  redirect.invocation_id = id;
  redirect.name = name;
  redirect.new_host = kNoStation;
  transport_->SendReliable(reply_to, redirect.Encode());
}

void NodeKernel::HandleInvokeReply(StationId src, const InvokeReplyMsg& msg) {
  auto it = pending_invocations_.find(msg.invocation_id);
  if (it == pending_invocations_.end()) {
    return;
  }
  ObjectName name = it->second.target.name();
  SpanContext inv_span = it->second.span;
  // Renewal piggyback (DESIGN.md §15): the home extends a lease we already
  // hold on this object. Only forward extensions apply — a lease recalled or
  // re-granted in the meantime carries a different version and the stale
  // piggyback simply loses the max.
  if (msg.lease_renew_expiry != 0) {
    if (auto lease = lease_cache_.find(name);
        lease != lease_cache_.end() && lease->second.home == src) {
      lease->second.expiry = std::max(
          lease->second.expiry, static_cast<SimTime>(msg.lease_renew_expiry));
    }
  }
  CompleteInvocation(msg.invocation_id, msg.result);
  if (msg.target_frozen && config_.cache_frozen_replicas &&
      replicas_.count(name) == 0 && active_.count(name) == 0) {
    MaybeFetchReplica(name, src, inv_span);
  }
}

void NodeKernel::HandleInvokeRedirect(StationId src, const InvokeRedirectMsg& msg) {
  auto it = pending_invocations_.find(msg.invocation_id);
  if (it == pending_invocations_.end()) {
    return;
  }
  PendingInvocation& pending = it->second;
  sim().Cancel(pending.attempt_timer);
  pending.attempt_timer = kInvalidEventId;
  if (msg.new_host == kNoStation || pending.dead_hosts.count(msg.new_host) > 0) {
    if (msg.new_host == kNoStation) {
      // The sender is alive but knows nothing about the object: any
      // forwarding address still pointing at it is stale. Recording it lets
      // nodes further back the chain erase their pointers, so a multi-hop
      // stale chain heals across locate rounds.
      pending.dead_hosts.insert(src);
    }
    location_cache_.erase(msg.name);
    pending.attempts++;
    if (pending.attempts >= config_.max_attempts) {
      counters_.invocations_unavailable->Increment();
      CompleteInvocation(msg.invocation_id,
                         InvokeResult::Error(UnavailableError("object lost")));
      return;
    }
    StartLocate(msg.invocation_id);
    return;
  }
  pending.redirects++;
  if (pending.redirects > config_.max_redirects) {
    counters_.invocations_unavailable->Increment();
    CompleteInvocation(
        msg.invocation_id,
        InvokeResult::Error(UnavailableError("forwarding chain too long")));
    return;
  }
  counters_.redirects_followed->Increment();
  Trace(TraceEventKind::kRedirectFollowed, msg.name, msg.invocation_id,
        "to station " + std::to_string(msg.new_host));
  AnnotateSpan(pending.span, "redirect from host " + std::to_string(src) +
                                 " to host " + std::to_string(msg.new_host));
  // Merge the version-stamped hint; if the cache already holds a strictly
  // newer sighting (the object moved again and that move's update got here
  // first), follow the cache instead of the older hint.
  CacheLocation(msg.name, ResidenceRecord{msg.new_host, msg.epoch, true});
  auto hint = location_cache_.find(msg.name);
  SendRequestTo(msg.invocation_id,
                hint != location_cache_.end() ? hint->second.host : msg.new_host);
}

void NodeKernel::HandleLocateRequest(StationId src, const LocateRequestMsg& msg) {
  const ObjectName name = msg.name;
  // Replicas never answer: only the authoritative copy counts.
  bool is_active_here = active_.count(name) > 0 || activating_.count(name) > 0;
  if (is_active_here) {
    LocateReplyMsg reply;
    reply.query_id = msg.query_id;
    reply.name = name;
    reply.host = station();
    reply.active = true;
    // A still-activating object has no epoch minted yet; 0 + active still
    // beats passive sightings and fills empty slots.
    auto it = active_.find(name);
    reply.epoch = it != active_.end() ? it->second->location_epoch : 0;
    transport_->SendBestEffort(msg.reply_to, reply.Encode());
    return;
  }
  if (forwarding_.count(name) > 0 && !store_->Contains(CheckpointKey(name))) {
    return;  // the new host will answer for itself
  }
  // If we hold the primary checkpoint we answer even with a forwarding entry
  // outstanding: if the new host is alive its immediate "active" reply beats
  // our delayed one; if it died, we are the only path back to the object.
  if (store_->Contains(CheckpointKey(name))) {
    // Delay so an active host's answer always arrives first.
    sim().Schedule(config_.locate.passive_reply_delay,
                   [this, query_id = msg.query_id, name,
                    reply_to = msg.reply_to] {
                     if (failed_) {
                       return;
                     }
                     if (!store_->Contains(CheckpointKey(name))) {
                       return;
                     }
                     LocateReplyMsg reply;
                     reply.query_id = query_id;
                     reply.name = name;
                     reply.host = station();
                     reply.active = active_.count(name) > 0;
                     transport_->SendBestEffort(reply_to, reply.Encode());
                   });
    return;
  }
  if (config_.restore_fallback && store_->Contains(MirrorKey(name))) {
    // Mirror-only holder: answer at twice the passive delay, so both an
    // active host and the primary passive site always win. If neither
    // exists any more, this reply is the invoker's only path back to the
    // state — the resulting request promotes our mirror chain.
    sim().Schedule(config_.locate.passive_reply_delay * 2,
                   [this, query_id = msg.query_id, name,
                    reply_to = msg.reply_to] {
                     if (failed_ || store_->Contains(CheckpointKey(name)) ||
                         !store_->Contains(MirrorKey(name))) {
                       return;
                     }
                     LocateReplyMsg reply;
                     reply.query_id = query_id;
                     reply.name = name;
                     reply.host = station();
                     reply.active = false;
                     transport_->SendBestEffort(reply_to, reply.Encode());
                   });
  }
}

void NodeKernel::HandleLocateReply(const LocateReplyMsg& msg) {
  ResidenceRecord record{msg.host, msg.epoch, msg.active};
  auto it = pending_locates_.find(msg.query_id);
  if (it == pending_locates_.end()) {
    // Late reply (another holder already answered): still a sighting.
    CacheLocation(msg.name, record);
    return;
  }
  // The first broadcast reply for a still-pending query is what a fallback
  // round learned: let the directory repair its home partition from it.
  location_->NoteResidence(msg.name, record);
  ResolveLocate(msg.query_id, msg.host, msg.epoch, msg.active);
}

// ---------------------------------------------------------------------------
// Server-side dispatch: the coordinator
// ---------------------------------------------------------------------------

void NodeKernel::AcceptDispatch(const std::shared_ptr<ActiveObject>& object,
                                PendingDispatch d) {
  if (!object->core->alive) {
    RefuseDispatch(d, UnavailableError("object crashed"));
    return;
  }
  if (object->activating || object->moving) {
    object->hold_queue.push_back(std::move(d));
    return;
  }
  const OperationSpec* op = object->type->FindOperation(d.request.operation);
  if (op == nullptr) {
    RefuseDispatch(d, UnimplementedError("no operation \"" + d.request.operation +
                                         "\" on type " + object->type->name()));
    return;
  }
  if (!d.request.target.rights().Covers(op->required_rights)) {
    counters_.rights_denied->Increment();
    RefuseDispatch(d, PermissionDeniedError("capability lacks rights for \"" +
                                            d.request.operation + "\""));
    return;
  }
  if (object->frozen && op->mutates && !op->read_only) {
    RefuseDispatch(d, FailedPreconditionError("object is frozen"));
    return;
  }
  // Lease write gate (DESIGN.md §15): a write-class invocation cannot touch
  // the representation while any node may still be serving leased reads —
  // recall the leases (or wait out the post-reincarnation quiesce) first.
  // Admitted writes are counted in lease_mutators_pending from here until
  // they terminate, so no lease is granted over a queued or running write.
  if (config_.lease_reads && !object->is_replica && op->mutates &&
      !op->read_only) {
    if (LeaseWriteBlocked(object)) {
      StartLeaseRecall(object, std::move(d));
      return;
    }
    d.lease_mutator = true;
    object->lease_mutators_pending++;
  }
  size_t class_index = op->invocation_class;
  const InvocationClassSpec& spec = object->type->classes()[class_index];
  if (object->class_running[class_index] < spec.concurrency_limit) {
    object->class_running[class_index]++;
    object->total_running++;
    counters_.dispatches->Increment();
    RunInvocation(object, std::move(d), op);
    return;
  }
  if (object->class_queues[class_index].size() < spec.queue_limit) {
    object->class_queues[class_index].push_back(std::move(d));
    return;
  }
  if (d.lease_mutator) {
    object->lease_mutators_pending--;
  }
  counters_.queue_refusals->Increment();
  RefuseDispatch(d, ResourceExhaustedError("invocation class \"" + spec.name +
                                           "\" queue overflow"));
}

DetachedTask NodeKernel::RunInvocation(std::shared_ptr<ActiveObject> object,
                                       PendingDispatch d, const OperationSpec* op) {
  size_t class_index = op->invocation_class;
  Trace(TraceEventKind::kDispatch, object->name, d.request.invocation_id,
        d.request.operation);
  // Coordinator overhead: rights were checked, now build the process.
  co_await SleepFor(sim(), config_.dispatch_overhead);
  if (!object->core->alive) {
    if (d.lease_mutator) {
      object->lease_mutators_pending--;
    }
    ReplyTo(d, InvokeResult::Error(AbortedError("object crashed")), false);
    FinishDispatch(object, class_index);
    co_return;
  }
  InvokeContext context(this, object, d.request.operation, d.request.args,
                        d.request.target.rights(), d.span);
  InvokeResult result = co_await op->handler(context);
  if (d.lease_mutator) {
    object->lease_mutators_pending--;
  }
  // A successful remote read-class invocation is the lease machinery's cue:
  // grant (or renew) and piggyback the expiry on the reply (DESIGN.md §15).
  uint64_t lease_renew_expiry = 0;
  if (!d.local && op->read_only && result.status.ok()) {
    lease_renew_expiry = MaybeGrantLease(object, d.request.reply_to);
  }
  // Even if the object crashed or moved while we ran, the invoker gets the
  // produced reply (the work happened); bookkeeping checks map identity.
  ReplyTo(d, result, object->frozen, lease_renew_expiry);
  FinishDispatch(object, class_index);
}

void NodeKernel::FinishDispatch(const std::shared_ptr<ActiveObject>& object,
                                size_t class_index) {
  object->class_running[class_index]--;
  object->total_running--;
  object->invocations_served++;
  if (object->drain_waiter.has_value() &&
      object->total_running <= object->drain_threshold) {
    Promise<Unit> waiter = std::move(*object->drain_waiter);
    object->drain_waiter.reset();
    waiter.Set(Unit{});
  }
  PumpQueues(object);
}

void NodeKernel::PumpQueues(const std::shared_ptr<ActiveObject>& object) {
  if (!object->core->alive || object->activating || object->moving) {
    return;
  }
  for (size_t ci = 0; ci < object->class_queues.size(); ci++) {
    const InvocationClassSpec& spec = object->type->classes()[ci];
    while (object->class_running[ci] < spec.concurrency_limit &&
           !object->class_queues[ci].empty()) {
      PendingDispatch d = std::move(object->class_queues[ci].front());
      object->class_queues[ci].pop_front();
      const OperationSpec* op = object->type->FindOperation(d.request.operation);
      if (op == nullptr) {
        if (d.lease_mutator) {
          object->lease_mutators_pending--;
        }
        RefuseDispatch(d, UnimplementedError("operation vanished"));
        continue;
      }
      object->class_running[ci]++;
      object->total_running++;
      counters_.dispatches->Increment();
      RunInvocation(object, std::move(d), op);
    }
  }
}

void NodeKernel::ReplyTo(const PendingDispatch& d, InvokeResult result,
                         bool target_frozen, uint64_t lease_renew_expiry) {
  uint64_t id = d.request.invocation_id;
  EndSpan(d.span, result.status.ok()
                      ? std::string()
                      : std::string(StatusCodeName(result.status.code())));
  if (d.local) {
    SimDuration cost = SerializeCost(result.results.TotalBytes());
    sim().Schedule(cost, [this, id, result = std::move(result)] {
      CompleteInvocation(id, result);
    });
    return;
  }
  CacheReply(id, d.request.target.name(), result, target_frozen);
  requests_in_progress_.erase(id);
  InvokeReplyMsg reply;
  reply.invocation_id = id;
  reply.result = std::move(result);
  reply.target_frozen = target_frozen;
  reply.lease_renew_expiry = lease_renew_expiry;
  Bytes encoded = reply.Encode();
  // Receive-side kernel processing for the request plus reply marshalling.
  SimDuration cost = config_.remote_receive_overhead + SerializeCost(encoded.size());
  sim().Schedule(cost, [this, dst = d.request.reply_to, span = d.span,
                        encoded = std::move(encoded)]() mutable {
    if (!failed_) {
      // The reply's wire span parents to the (just closed) dispatch span:
      // the trace stays open until the reply is acknowledged, so its ACK
      // leg is attributed rather than lost.
      transport_->SendReliable(dst, std::move(encoded), span);
    }
  });
}

void NodeKernel::RefuseDispatch(const PendingDispatch& d, Status status) {
  ReplyTo(d, InvokeResult::Error(std::move(status)), false);
}

void NodeKernel::CacheReply(uint64_t invocation_id, const ObjectName& object,
                            const InvokeResult& result, bool frozen) {
  reply_cache_[invocation_id] = CachedReply{result, frozen, object};
  reply_cache_order_.push_back(invocation_id);
  while (reply_cache_order_.size() > config_.reply_cache_capacity) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Read leases (DESIGN.md §15)
// ---------------------------------------------------------------------------

uint64_t NodeKernel::MaybeGrantLease(const std::shared_ptr<ActiveObject>& object,
                                     StationId reader) {
  // No grant while anything could invalidate the snapshot: a write queued or
  // running, a recall open, a move draining, the post-reincarnation quiesce.
  if (!config_.lease_reads || object->is_replica || object->frozen ||
      !object->core->alive || object->moving || draining_ ||
      object->lease_recall.has_value() || object->lease_mutators_pending > 0 ||
      reader == station()) {
    return 0;
  }
  SimTime now = sim().now();
  if (now < object->lease_quiesce_until) {
    return 0;
  }
  SimTime expiry = now + config_.lease_duration;
  if (auto it = object->lease_holders.find(reader);
      it != object->lease_holders.end() && it->second.expiry > now) {
    // Renewal rides the invoke reply alone: the holder's cached copy is
    // still the current state (no write got past the gate since the grant),
    // so no new snapshot needs to travel.
    it->second.expiry = std::max(it->second.expiry, expiry);
    counters_.lease_renewals->Increment();
    return static_cast<uint64_t>(it->second.expiry);
  }
  uint64_t seq = ++object->lease_seq;
  object->lease_holders[reader] = {expiry, seq};
  counters_.lease_grants->Increment();
  Trace(TraceEventKind::kLeaseGrant, object->name, reader);
  LeaseGrantMsg grant;
  grant.name = object->name;
  grant.type_name = object->type->name();
  grant.representation = object->core->rep;  // snapshot at grant time
  grant.expiry = static_cast<uint64_t>(expiry);
  grant.epoch = object->location_epoch;
  grant.seq = seq;
  Bytes encoded = grant.Encode();
  sim().Schedule(SerializeCost(encoded.size()),
                 [this, reader, encoded = std::move(encoded)]() mutable {
                   if (!failed_) {
                     transport_->SendReliable(reader, std::move(encoded));
                   }
                 });
  return static_cast<uint64_t>(expiry);
}

bool NodeKernel::LeaseWriteBlocked(const std::shared_ptr<ActiveObject>& object) {
  if (object->lease_recall.has_value()) {
    return true;
  }
  SimTime now = sim().now();
  if (object->lease_quiesce_until > now) {
    return true;
  }
  // Prune holders whose term lapsed — their copies self-invalidate, no
  // recall owed.
  for (auto it = object->lease_holders.begin();
       it != object->lease_holders.end();) {
    if (it->second.expiry <= now) {
      counters_.lease_expiries->Increment();
      it = object->lease_holders.erase(it);
    } else {
      ++it;
    }
  }
  return !object->lease_holders.empty();
}

void NodeKernel::OpenLeaseRecall(const std::shared_ptr<ActiveObject>& object,
                                 const SpanContext& parent) {
  counters_.lease_recalls->Increment();
  Trace(TraceEventKind::kLeaseRecall, object->name,
        object->lease_holders.size());
  ActiveObject::LeaseRecall recall;
  recall.epoch = object->location_epoch;
  // The recall's seq outranks every grant issued so far, so a holder's floor
  // set from it also kills grants still in flight.
  recall.seq = ++object->lease_seq;
  recall.span = ChildSpan(parent, SpanKind::kLease, object->name, "lease recall");
  SimTime now = sim().now();
  SimTime backstop = std::max(now, object->lease_quiesce_until);
  for (const auto& [holder, lease] : object->lease_holders) {
    recall.waiting.emplace(holder, lease);
    backstop = std::max(backstop, lease.expiry);
  }
  object->lease_recall = std::move(recall);
  // Per-holder recall messages; lease_holders is an ordered map, so the wire
  // send order is deterministic. Each wire leg parents to the kLease span.
  // The batch goes out after the marshalling cost (matching every other send
  // path); a recall that resolved meanwhile is harmless on the wire — the
  // holder floors and releases, the home ignores the stale release.
  std::vector<std::pair<StationId, Bytes>> sends;
  size_t total_bytes = 0;
  for (const auto& [holder, lease] : object->lease_recall->waiting) {
    LeaseRecallMsg msg;
    msg.name = object->name;
    msg.epoch = object->lease_recall->epoch;
    msg.seq = object->lease_recall->seq;
    msg.span = object->lease_recall->span;
    Bytes encoded = msg.Encode();
    total_bytes += encoded.size();
    sends.emplace_back(holder, std::move(encoded));
  }
  sim().Schedule(SerializeCost(total_bytes),
                 [this, span = object->lease_recall->span,
                  sends = std::move(sends)]() mutable {
                   if (failed_) {
                     return;
                   }
                   for (auto& [holder, encoded] : sends) {
                     transport_->SendReliable(holder, std::move(encoded), span);
                   }
                 });
  // Backstop: past `backstop` every recalled lease has lapsed of its own
  // accord, so lost releases (holder crash, partition) only ever delay the
  // write to the lease term — never block it forever, never leave a holder
  // serving reads the home no longer honors.
  object->lease_recall->backstop_timer = sim().Schedule(
      backstop + 1 - now, [this, weak = std::weak_ptr<ActiveObject>(object)] {
        std::shared_ptr<ActiveObject> object = weak.lock();
        if (object == nullptr || !object->lease_recall.has_value()) {
          return;
        }
        object->lease_recall->backstop_timer = kInvalidEventId;
        counters_.lease_expiries->Increment(
            object->lease_recall->waiting.size());
        FinishLeaseRecall(object, "expired");
      });
}

void NodeKernel::StartLeaseRecall(const std::shared_ptr<ActiveObject>& object,
                                  PendingDispatch d) {
  if (!object->lease_recall.has_value()) {
    OpenLeaseRecall(object, d.span);
  }
  object->lease_recall->write_queue.push_back(std::move(d));
}

void NodeKernel::FinishLeaseRecall(const std::shared_ptr<ActiveObject>& object,
                                   std::string_view how) {
  ActiveObject::LeaseRecall recall = std::move(*object->lease_recall);
  object->lease_recall.reset();
  sim().Cancel(recall.backstop_timer);
  object->lease_holders.clear();
  EndSpan(recall.span, how);
  for (Promise<Unit>& waiter : recall.waiters) {
    waiter.Set(Unit{});
  }
  // Re-admit the blocked writes through the full gate: a waiter (a move) may
  // have set `moving`, the object may have crashed — AcceptDispatch re-checks
  // everything. The first write admitted bumps lease_mutators_pending, so no
  // grant slips in between queued writes.
  while (!recall.write_queue.empty()) {
    PendingDispatch d = std::move(recall.write_queue.front());
    recall.write_queue.pop_front();
    AcceptDispatch(object, std::move(d));
  }
}

void NodeKernel::TeardownLeases(const std::shared_ptr<ActiveObject>& object,
                                const Status* refuse) {
  object->lease_holders.clear();
  object->lease_quiesce_until = 0;
  if (!object->lease_recall.has_value()) {
    return;
  }
  ActiveObject::LeaseRecall recall = std::move(*object->lease_recall);
  object->lease_recall.reset();
  sim().Cancel(recall.backstop_timer);
  EndSpan(recall.span, refuse != nullptr
                           ? std::string_view(StatusCodeName(refuse->code()))
                           : std::string_view());
  for (Promise<Unit>& waiter : recall.waiters) {
    waiter.Set(Unit{});
  }
  while (!recall.write_queue.empty()) {
    PendingDispatch d = std::move(recall.write_queue.front());
    recall.write_queue.pop_front();
    if (refuse != nullptr) {
      RefuseDispatch(d, *refuse);
    } else {
      AcceptDispatch(object, std::move(d));
    }
  }
}

void NodeKernel::HandleLeaseGrant(StationId src, LeaseGrantMsg msg) {
  if (active_.count(msg.name) > 0) {
    // Home-side authority here now (the object moved to this node while the
    // grant was in flight); the cached copy would be a stale shadow.
    return;
  }
  std::pair<uint64_t, uint64_t> version{msg.epoch, msg.seq};
  if (auto floor = lease_floor_.find(msg.name);
      floor != lease_floor_.end() && version <= floor->second) {
    return;  // recalled before the grant arrived: dead on arrival
  }
  SimTime now = sim().now();
  if (static_cast<SimTime>(msg.expiry) <= now) {
    counters_.lease_expiries->Increment();
    return;
  }
  if (auto it = lease_cache_.find(msg.name);
      it != lease_cache_.end() &&
      std::pair<uint64_t, uint64_t>{it->second.epoch, it->second.seq} >
          version) {
    return;  // an even fresher grant already landed
  }
  std::shared_ptr<TypeManager> type = system_.FindType(msg.type_name);
  if (type == nullptr) {
    return;
  }
  auto replica = std::make_shared<ActiveObject>(type);
  replica->name = msg.name;
  replica->core = std::make_shared<ObjectCore>();
  replica->core->name = msg.name;
  replica->core->rep = std::move(msg.representation);
  // Frozen replica: the dispatch path refuses mutating operations outright,
  // so a leased copy can only ever serve read-class invocations.
  replica->frozen = true;
  replica->is_replica = true;
  Trace(TraceEventKind::kLeaseGrant, msg.name, src);
  LeaseEntry entry;
  entry.replica = std::move(replica);
  entry.expiry = static_cast<SimTime>(msg.expiry);
  entry.home = src;
  entry.epoch = msg.epoch;
  entry.seq = msg.seq;
  lease_cache_[msg.name] = std::move(entry);
}

void NodeKernel::HandleLeaseRecall(StationId src, const LeaseRecallMsg& msg) {
  Trace(TraceEventKind::kLeaseRecall, msg.name, src);
  std::pair<uint64_t, uint64_t> version{msg.epoch, msg.seq};
  auto& floor = lease_floor_[msg.name];
  floor = std::max(floor, version);
  if (auto it = lease_cache_.find(msg.name);
      it != lease_cache_.end() &&
      std::pair<uint64_t, uint64_t>{it->second.epoch, it->second.seq} <=
          version) {
    lease_cache_.erase(it);
  }
  // Always release, even with nothing cached: the grant may still be in
  // flight (the floor above makes it dead on arrival), and the home's write
  // stays blocked until it hears from us or the backstop fires.
  LeaseReleaseMsg release;
  release.name = msg.name;
  release.holder = station();
  release.epoch = msg.epoch;
  release.seq = msg.seq;
  transport_->SendReliable(src, release.Encode(), msg.span);
}

void NodeKernel::HandleLeaseRelease(StationId src, const LeaseReleaseMsg& msg) {
  auto it = active_.find(msg.name);
  if (it == active_.end()) {
    return;
  }
  std::shared_ptr<ActiveObject> object = it->second;
  if (!object->lease_recall.has_value()) {
    // No recall open (it resolved by backstop just before this arrived, or
    // the holder volunteered a release): drop the holder unless a fresher
    // grant to the same station superseded the one being released.
    if (auto h = object->lease_holders.find(msg.holder);
        h != object->lease_holders.end() && h->second.seq <= msg.seq) {
      object->lease_holders.erase(h);
    }
    return;
  }
  if (object->lease_recall->epoch != msg.epoch ||
      object->lease_recall->seq != msg.seq) {
    return;  // a release for some older recall; this home's state moved on
  }
  object->lease_recall->waiting.erase(msg.holder);
  object->lease_holders.erase(msg.holder);
  // The recall also waits out any reincarnation quiesce still running — the
  // backstop timer covers that tail.
  if (object->lease_recall->waiting.empty() &&
      object->lease_quiesce_until <= sim().now()) {
    FinishLeaseRecall(object, {});
  }
}

// ---------------------------------------------------------------------------
// Activation (reincarnation) and behaviors
// ---------------------------------------------------------------------------

void NodeKernel::BeginActivation(const ObjectName& name,
                                 const SpanContext& parent) {
  if (activating_.count(name) > 0 || active_.count(name) > 0) {
    return;
  }
  activating_.insert(name);
  RunActivation(name, parent);
}

DetachedTask NodeKernel::RunActivation(ObjectName name, SpanContext parent) {
  counters_.activations->Increment();
  Trace(TraceEventKind::kActivation, name, 0);
  SpanContext act_span =
      ChildSpan(parent, SpanKind::kActivation, name, "activation");
  co_await SleepFor(sim(), config_.activation_overhead);

  auto fail_waiters = [this, &name](const Status& status) {
    activating_.erase(name);
    auto local = activation_local_waiters_.find(name);
    if (local != activation_local_waiters_.end()) {
      std::vector<uint64_t> waiting = std::move(local->second);
      activation_local_waiters_.erase(local);
      for (uint64_t id : waiting) {
        CompleteInvocation(id, InvokeResult::Error(status));
      }
    }
    auto remote = activation_remote_hold_.find(name);
    if (remote != activation_remote_hold_.end()) {
      std::deque<PendingDispatch> held = std::move(remote->second);
      activation_remote_hold_.erase(remote);
      for (PendingDispatch& d : held) {
        RefuseDispatch(d, status);
      }
    }
  };

  RestoredChain chain;
  Status restored = co_await ReadCheckpointChain(name, chain, act_span);
  if (failed_) {
    EndSpan(act_span, "node_failed");
    co_return;
  }
  bool complete = restored.ok() && !chain.corrupt;

  if (!complete && config_.restore_fallback) {
    // Tier 1: promote the local mirror chain (if any) over the damaged or
    // missing primary and re-read. Covers both a corrupt primary with a
    // healthy local mirror and the mirror-only holder reincarnating after
    // the primary site died.
    if (store_->Contains(MirrorKey(name))) {
      AnnotateSpan(act_span, "fallback:mirror_promote");
      (void)co_await CopyMirrorChain(name);
      if (failed_) {
        EndSpan(act_span, "node_failed");
        co_return;
      }
      RestoredChain retry;
      Status reread = co_await ReadCheckpointChain(name, retry, act_span);
      if (failed_) {
        EndSpan(act_span, "node_failed");
        co_return;
      }
      if (reread.ok()) {
        // The promotion rewrote the primary chain; whatever it produced is
        // now the on-disk truth, corrupt tail or not.
        chain = std::move(retry);
        restored = OkStatus();
        if (!chain.corrupt) {
          complete = true;
          counters_.restore_fallbacks->Increment();
          Trace(TraceEventKind::kFallbackRestore, name, 0, "mirror");
        }
      } else if (reread.code() != StatusCode::kNotFound) {
        restored = reread;
      }
    }
    // Tier 2: the longest intact prefix — every state the object ever had
    // acked durable up to the first bad link — beats data loss. Drop the
    // unusable tail so the on-disk chain matches what was restored.
    if (!complete && restored.ok() && chain.prefix_ok && chain.corrupt_at >= 1) {
      EraseDeltaChain(name, /*is_mirror=*/false, chain.corrupt_at);
      counters_.restore_fallbacks->Increment();
      Trace(TraceEventKind::kFallbackRestore, name, 0,
            "prefix@" + std::to_string(chain.corrupt_at));
      AnnotateSpan(act_span,
                   "fallback:prefix@" + std::to_string(chain.corrupt_at));
      complete = true;
    }
  }

  if (!complete) {
    EndSpan(act_span, "data_loss");
    if (!restored.ok() && restored.code() == StatusCode::kNotFound) {
      fail_waiters(DataLossError("no checkpoint for " + name.ToString()));
    } else {
      // Unusable chain with no usable fallback: quarantine it so later
      // locates stop landing on this site (a surviving mirror elsewhere
      // becomes the answer instead).
      if (config_.restore_fallback && store_->Contains(CheckpointKey(name))) {
        counters_.restore_quarantines->Increment();
        EraseDeltaChain(name, /*is_mirror=*/false);
        store_->Delete(CheckpointKey(name));
      }
      fail_waiters(DataLossError("corrupt checkpoint for " + name.ToString()));
    }
    co_return;
  }

  std::shared_ptr<TypeManager> type = system_.FindType(chain.type_name);
  if (type == nullptr) {
    EndSpan(act_span, "unknown_type");
    fail_waiters(DataLossError("unknown type in checkpoint: " + chain.type_name));
    co_return;
  }

  auto object = std::make_shared<ActiveObject>(type);
  object->name = name;
  object->core = std::make_shared<ObjectCore>();
  object->core->name = name;
  object->core->rep = std::move(chain.rep);
  object->core->rep.ClearDirty();
  object->policy = chain.policy;
  object->frozen = chain.frozen;
  // The restored state is exactly what is on disk: resume the chain (and
  // let a mutation-free checkpoint be a no-op).
  object->ckpt_has_base = true;
  object->ckpt_chain_len = chain.chain_len;
  object->ckpt_policy = chain.policy;
  object->ckpt_frozen = chain.frozen;
  object->activating = true;
  if (config_.lease_reads) {
    // Gray & Cheriton's recovering-server rule: the reborn home cannot know
    // what leases its predecessor granted, so write-class invocations wait
    // until every pre-crash lease must have expired.
    object->lease_quiesce_until = sim().now() + config_.lease_duration;
    // Any lease this node held as a *client* is superseded by home-side
    // authority over the same object.
    lease_cache_.erase(name);
  }
  active_[name] = object;
  UpdateActiveGauge();
  activating_.erase(name);
  PublishResidenceHere(object);

  // "The coordinator will block the invocation while it attempts to execute
  // the object's reincarnation condition handler."
  if (type->reincarnation()) {
    InvokeContext context(this, object, "<reincarnation>", InvokeArgs{},
                          Rights::All(), act_span);
    Status status = co_await type->reincarnation()(context);
    if (!status.ok()) {
      EDEN_LOG(kWarning, "kernel")
          << node_name_ << ": reincarnation handler for " << name.ToString()
          << " failed: " << status.ToString();
    }
  }
  if (!object->core->alive) {
    EndSpan(act_span, "crashed");
    co_return;  // the handler crashed the object
  }

  StartBehaviors(object);
  object->activating = false;
  EndSpan(act_span);

  // Dispatch everything that queued up while we were passive.
  auto local = activation_local_waiters_.find(name);
  if (local != activation_local_waiters_.end()) {
    std::vector<uint64_t> waiting = std::move(local->second);
    activation_local_waiters_.erase(local);
    for (uint64_t id : waiting) {
      TryResolve(id);
    }
  }
  auto remote = activation_remote_hold_.find(name);
  if (remote != activation_remote_hold_.end()) {
    std::deque<PendingDispatch> held = std::move(remote->second);
    activation_remote_hold_.erase(remote);
    for (PendingDispatch& d : held) {
      AcceptDispatch(object, std::move(d));
    }
  }
  while (!object->hold_queue.empty()) {
    PendingDispatch d = std::move(object->hold_queue.front());
    object->hold_queue.pop_front();
    AcceptDispatch(object, std::move(d));
  }
}

Task<Status> NodeKernel::ReadCheckpointChain(const ObjectName& name,
                                             RestoredChain& out,
                                             const SpanContext& parent) {
  StatusOr<SharedBytes> record =
      co_await store_->Get(CheckpointKey(name), parent);
  if (failed_) {
    co_return AbortedError("node failed during restore");
  }
  if (!record.ok()) {
    // Missing base passes through as kNotFound; a checksum failure (the
    // store reads under verify_checksums) or other read error is data loss.
    co_return record.status().code() == StatusCode::kNotFound
        ? record.status()
        : DataLossError("corrupt checkpoint for " + name.ToString());
  }

  BufferReader reader(record->view());
  auto tag = reader.ReadU8();
  if (!tag.ok() ||
      *tag != static_cast<uint8_t>(CheckpointRecordKind::kBase)) {
    co_return DataLossError("corrupt checkpoint for " + name.ToString());
  }
  auto type_name = reader.ReadString();
  auto policy = type_name.ok() ? CheckpointPolicy::Decode(reader)
                               : StatusOr<CheckpointPolicy>(type_name.status());
  auto frozen = policy.ok() ? reader.ReadBool() : StatusOr<bool>(policy.status());
  auto rep = frozen.ok() ? Representation::Decode(reader)
                         : StatusOr<Representation>(frozen.status());
  if (!rep.ok()) {
    co_return DataLossError("corrupt checkpoint for " + name.ToString());
  }
  out.type_name = *type_name;
  out.policy = *policy;
  out.frozen = *frozen;
  out.rep = std::move(*rep);
  out.chain_len = 0;
  out.corrupt = false;
  out.corrupt_at = 0;
  out.prefix_ok = true;

  // Replay the delta chain on top of the base. Links are contiguous by
  // construction (WriteLocalCheckpoint's guard), so the first missing key
  // ends the chain. Policy and frozen-ness track the newest link. Each link
  // applies to a scratch copy, so a link that fails mid-apply leaves `rep`
  // at the intact prefix instead of half-mutated.
  for (uint64_t k = 1;
       store_->Contains(DeltaKey(name, k, /*is_mirror=*/false)); k++) {
    StatusOr<SharedBytes> delta =
        co_await store_->Get(DeltaKey(name, k, /*is_mirror=*/false), parent);
    if (failed_) {
      co_return AbortedError("node failed during restore");
    }
    if (!delta.ok()) {
      out.corrupt = true;
      out.corrupt_at = k;
      break;
    }
    BufferReader delta_reader(delta->view());
    auto delta_tag = delta_reader.ReadU8();
    if (!delta_tag.ok() ||
        *delta_tag != static_cast<uint8_t>(CheckpointRecordKind::kDelta)) {
      out.corrupt = true;
      out.corrupt_at = k;
      break;
    }
    auto delta_type = delta_reader.ReadString();
    auto delta_policy = delta_type.ok()
                            ? CheckpointPolicy::Decode(delta_reader)
                            : StatusOr<CheckpointPolicy>(delta_type.status());
    auto delta_frozen = delta_policy.ok()
                            ? delta_reader.ReadBool()
                            : StatusOr<bool>(delta_policy.status());
    Representation scratch = out.rep;
    if (!delta_frozen.ok() || *delta_type != out.type_name ||
        !scratch.ApplyDelta(delta_reader).ok()) {
      out.corrupt = true;
      out.corrupt_at = k;
      break;
    }
    out.rep = std::move(scratch);
    out.policy = *delta_policy;
    out.frozen = *delta_frozen;
    out.chain_len = k;
  }
  co_return OkStatus();
}

void NodeKernel::StartBehaviors(const std::shared_ptr<ActiveObject>& object) {
  if (object->is_replica) {
    return;
  }
  std::erase_if(behaviors_, [](const Task<void>& task) { return task.done(); });
  for (const auto& [behavior_name, body] : object->type->behaviors()) {
    Task<void> task = RunBehavior(object, behavior_name, body);
    task.Start();
    behaviors_.push_back(std::move(task));
  }
}

Task<void> NodeKernel::RunBehavior(std::shared_ptr<ActiveObject> object,
                                   std::string name, BehaviorBody body) {
  InvokeContext context(this, object, "<behavior:" + name + ">", InvokeArgs{},
                        Rights::All());
  co_await body(context);
}

// ---------------------------------------------------------------------------
// Checkpoint / crash / destroy
// ---------------------------------------------------------------------------

Future<Status> NodeKernel::CheckpointObject(const ObjectName& name) {
  auto it = active_.find(name);
  if (it == active_.end()) {
    return ReadyStatus(NotFoundError("object not active on this node"));
  }
  return CheckpointForObject(it->second);
}

Future<Status> NodeKernel::CheckpointForObject(
    const std::shared_ptr<ActiveObject>& object, const SpanContext& parent) {
  if (!object->core->alive) {
    return ReadyStatus(FailedPreconditionError("object crashed"));
  }
  if (object->is_replica) {
    return ReadyStatus(FailedPreconditionError("replicas do not checkpoint"));
  }
  counters_.checkpoints->Increment();
  Trace(TraceEventKind::kCheckpoint, object->name, 0);

  // No-op checkpoint: nothing was dirtied since the last record was cut and
  // the policy/frozen flag it captured still hold, so the durable chain
  // already reproduces this state. Nothing is written — but durability is
  // only as good as the last write, so return that write's future (if it
  // later fails, its OnReady handler below has already forced the next
  // checkpoint to write a fresh base).
  Representation& rep = object->core->rep;
  if (config_.checkpoint_deltas && object->ckpt_has_base && !rep.AnyDirty() &&
      object->policy == object->ckpt_policy &&
      object->frozen == object->ckpt_frozen) {
    counters_.checkpoint_noops->Increment();
    checkpoint_latency_->Record(0);
    return object->ckpt_pending.value_or(ReadyStatus(OkStatus()));
  }

  // Write a full base record on the first checkpoint of an activation, when
  // the delta chain has reached its compaction threshold (fold), when deltas
  // are disabled, or when everything is dirty anyway (a delta would not be
  // smaller than a base).
  bool all_dirty = rep.data_segment_count() > 0 &&
                   rep.DirtySegmentCount() == rep.data_segment_count() &&
                   rep.caps_dirty();
  bool base = !config_.checkpoint_deltas || !object->ckpt_has_base ||
              object->ckpt_chain_len >= config_.checkpoint_delta_limit ||
              all_dirty;
  Bytes record = EncodeCheckpointRecord(
      *object, base ? CheckpointRecordKind::kBase : CheckpointRecordKind::kDelta);
  uint64_t delta_seq = 0;
  if (base) {
    counters_.checkpoint_bases->Increment();
    object->ckpt_has_base = true;
    object->ckpt_chain_len = 0;
  } else {
    counters_.checkpoint_deltas->Increment();
    delta_seq = ++object->ckpt_chain_len;
  }
  counters_.checkpoint_record_bytes->Increment(record.size());
  rep.ClearDirty();
  object->ckpt_policy = object->policy;
  object->ckpt_frozen = object->frozen;

  // A checkpoint issued inside a traced invocation hangs off that invocation's
  // dispatch span; a bare driver-side checkpoint roots its own trace. Opened
  // only for real writes — no-op checkpoints above do no attributable work.
  SpanContext ckpt_span = StartSpan(parent, SpanKind::kCheckpoint, object->name,
                                    base ? "checkpoint base"
                                         : "checkpoint delta " +
                                               std::to_string(delta_seq));
  Future<Status> done = WriteCheckpoint(object->name, SharedBytes(std::move(record)),
                                        delta_seq, object->policy, ckpt_span);
  object->ckpt_pending = done;
  SimTime started = sim().now();
  // Weak capture: the object holds `done` in ckpt_pending, so a strong
  // capture here (of either the object or the future) would cycle and leak
  // any activation with a checkpoint still in flight at teardown.
  std::weak_ptr<ActiveObject> weak = object;
  done.OnReadyValue([this, weak, started, ckpt_span](const Status& status) {
    checkpoint_latency_->Record(sim().now() - started);
    EndSpan(ckpt_span, status.ok() ? std::string()
                                   : std::string(StatusCodeName(status.code())));
    if (!status.ok()) {
      // The chain's durable suffix is now unknown (and the dirty bits that
      // would have covered it are cleared): force a full base next time.
      if (auto object = weak.lock()) {
        object->ckpt_has_base = false;
      }
    }
  });
  return done;
}

Bytes NodeKernel::EncodeCheckpointRecord(const ActiveObject& object,
                                         CheckpointRecordKind kind) const {
  BufferWriter writer;
  writer.WriteU8(static_cast<uint8_t>(kind));
  writer.WriteString(object.type->name());
  object.policy.Encode(writer);
  writer.WriteBool(object.frozen);
  if (kind == CheckpointRecordKind::kBase) {
    object.core->rep.Encode(writer);
  } else {
    object.core->rep.EncodeDelta(writer);
  }
  return writer.Take();
}

Future<Status> NodeKernel::WriteCheckpoint(const ObjectName& name,
                                           SharedBytes record,
                                           uint64_t delta_seq,
                                           const CheckpointPolicy& policy,
                                           const SpanContext& parent) {
  Future<Status> primary =
      policy.primary_site == station()
          ? WriteLocalCheckpoint(name, record, delta_seq, /*is_mirror=*/false,
                                 parent)
          : SendRemoteCheckpoint(name, record, delta_seq, policy.primary_site,
                                 /*is_mirror=*/false, parent);
  if (policy.level != ReliabilityLevel::kMirrored) {
    return primary;
  }
  Future<Status> mirror =
      policy.mirror_site == station()
          ? WriteLocalCheckpoint(name, std::move(record), delta_seq,
                                 /*is_mirror=*/true, parent)
          : SendRemoteCheckpoint(name, std::move(record), delta_seq,
                                 policy.mirror_site, /*is_mirror=*/true,
                                 parent);
  return CombineStatus(std::move(primary), std::move(mirror));
}

Future<Status> NodeKernel::WriteLocalCheckpoint(const ObjectName& name,
                                                SharedBytes record,
                                                uint64_t delta_seq,
                                                bool is_mirror,
                                                const SpanContext& parent) {
  if (delta_seq == 0) {
    // A fresh base supersedes the previous chain; the deletes join the base
    // write's flush. Erase before Put so a same-key chain restarts cleanly.
    EraseDeltaChain(name, is_mirror);
    return store_->Put(is_mirror ? MirrorKey(name) : CheckpointKey(name),
                       std::move(record), parent);
  }
  // Contiguity guard: never store a delta whose predecessor is missing
  // (e.g. after a capacity failure mid-chain) — restore stops at the first
  // gap, so a stored successor would resurrect stale state later.
  std::string base_key = is_mirror ? MirrorKey(name) : CheckpointKey(name);
  if (!store_->Contains(base_key) ||
      (delta_seq > 1 && !store_->Contains(DeltaKey(name, delta_seq - 1, is_mirror)))) {
    return ReadyStatus(
        FailedPreconditionError("checkpoint delta chain broken; base required"));
  }
  return store_->Put(DeltaKey(name, delta_seq, is_mirror), std::move(record),
                     parent);
}

void NodeKernel::EraseDeltaChain(const ObjectName& name, bool is_mirror,
                                 uint64_t from_seq) {
  for (uint64_t k = from_seq; store_->Contains(DeltaKey(name, k, is_mirror));
       k++) {
    store_->Delete(DeltaKey(name, k, is_mirror));
  }
}

Future<Status> NodeKernel::SendRemoteCheckpoint(const ObjectName& name,
                                                SharedBytes record,
                                                uint64_t delta_seq,
                                                StationId site,
                                                bool is_mirror,
                                                const SpanContext& parent) {
  uint64_t request_id = next_request_id_++;
  PendingAck& pending = pending_acks_[request_id];
  Future<Status> future = pending.promise.GetFuture();
  pending.timer =
      sim().Schedule(config_.attempt_timeout * 2, [this, request_id] {
        auto it = pending_acks_.find(request_id);
        if (it == pending_acks_.end()) {
          return;
        }
        Promise<Status> promise = std::move(it->second.promise);
        pending_acks_.erase(it);
        promise.Set(UnavailableError("checksite unreachable"));
      });

  CheckpointPutMsg msg;
  msg.request_id = request_id;
  msg.reply_to = station();
  msg.name = name;
  msg.record = std::move(record);
  msg.is_mirror = is_mirror;
  msg.delta_seq = delta_seq;
  msg.span = parent;
  Bytes encoded = msg.Encode();
  sim().Schedule(SerializeCost(encoded.size()),
                 [this, site, span = parent,
                  encoded = std::move(encoded)]() mutable {
                   if (!failed_) {
                     transport_->SendReliable(site, std::move(encoded), span);
                   }
                 });
  return future;
}

void NodeKernel::HandleCheckpointPut(StationId src, CheckpointPutMsg msg) {
  // The checksite's disk write becomes a cross-node store-write child of the
  // origin's checkpoint span.
  Future<Status> write = WriteLocalCheckpoint(msg.name, std::move(msg.record),
                                             msg.delta_seq, msg.is_mirror,
                                             msg.span);
  write.OnReadyValue([this, request_id = msg.request_id,
                      reply_to = msg.reply_to](const Status& status) {
    if (failed_) {
      return;
    }
    CheckpointAckMsg ack;
    ack.request_id = request_id;
    // A rejected delta (broken chain — e.g. an earlier link failed or the
    // links arrived out of order) nacks, which makes the source write a
    // full base on its next checkpoint.
    ack.ok = status.ok();
    transport_->SendReliable(reply_to, ack.Encode());
  });
}

void NodeKernel::HandleCheckpointAck(const CheckpointAckMsg& msg) {
  auto it = pending_acks_.find(msg.request_id);
  if (it == pending_acks_.end()) {
    return;
  }
  sim().Cancel(it->second.timer);
  Promise<Status> promise = std::move(it->second.promise);
  pending_acks_.erase(it);
  promise.Set(msg.ok ? OkStatus() : InternalError("checksite write failed"));
}

void NodeKernel::HandleCheckpointErase(const CheckpointEraseMsg& msg) {
  EraseDeltaChain(msg.name, /*is_mirror=*/false);
  EraseDeltaChain(msg.name, /*is_mirror=*/true);
  store_->Delete(CheckpointKey(msg.name));
  store_->Delete(MirrorKey(msg.name));
}

void NodeKernel::CrashObject(const std::shared_ptr<ActiveObject>& object,
                             const Status& reason) {
  if (!object->core->alive) {
    return;
  }
  counters_.crashes->Increment();
  Trace(TraceEventKind::kObjectCrash, object->name, 0, reason.ToString());
  object->core->Fail(reason);

  // Refuse everything that was waiting; running invocations reply on their own.
  auto refuse_all = [this, &reason](std::deque<PendingDispatch>& queue) {
    while (!queue.empty()) {
      PendingDispatch d = std::move(queue.front());
      queue.pop_front();
      RefuseDispatch(d, AbortedError(reason.message()));
    }
  };
  refuse_all(object->hold_queue);
  for (auto& queue : object->class_queues) {
    refuse_all(queue);
  }
  {
    Status aborted = AbortedError(reason.message());
    TeardownLeases(object, &aborted);
  }
  if (object->drain_waiter.has_value()) {
    Promise<Unit> waiter = std::move(*object->drain_waiter);
    object->drain_waiter.reset();
    waiter.Set(Unit{});
  }

  const ObjectName& name = object->name;
  if (auto it = active_.find(name); it != active_.end() && it->second == object) {
    active_.erase(it);
    UpdateActiveGauge();
  }
  if (auto it = replicas_.find(name); it != replicas_.end() && it->second == object) {
    replicas_.erase(it);
  }
}

void NodeKernel::DestroyObject(const std::shared_ptr<ActiveObject>& object) {
  ObjectName name = object->name;
  CheckpointPolicy policy = object->policy;
  CrashObject(object, AbortedError("object destroyed"));

  // Erase long-term state everywhere it may live.
  EraseDeltaChain(name, /*is_mirror=*/false);
  EraseDeltaChain(name, /*is_mirror=*/true);
  store_->Delete(CheckpointKey(name));
  store_->Delete(MirrorKey(name));
  CheckpointEraseMsg erase;
  erase.name = name;
  if (policy.primary_site != station()) {
    transport_->SendReliable(policy.primary_site, erase.Encode());
  }
  if (policy.level == ReliabilityLevel::kMirrored &&
      policy.mirror_site != station()) {
    transport_->SendReliable(policy.mirror_site, erase.Encode());
  }
  forwarding_.erase(name);
  location_cache_.erase(name);
  // Tombstone the directory record (names are never reused, so the epoch
  // only guards against an in-flight move's fresher update).
  location_->PublishRemoval(name, static_cast<uint64_t>(sim().now()) + 1);
}

Future<Status> NodeKernel::PromoteMirror(const ObjectName& name) {
  return Launch(CopyMirrorChain(name));
}

Task<Status> NodeKernel::CopyMirrorChain(ObjectName name) {
  StatusOr<SharedBytes> base = co_await store_->Get(MirrorKey(name));
  if (!base.ok()) {
    co_return base.status();
  }
  // Any stale primary chain dies with its base (and the base write batches
  // with the deletes).
  EraseDeltaChain(name, /*is_mirror=*/false);
  Status written = co_await store_->Put(CheckpointKey(name), *base);
  if (!written.ok()) {
    co_return written;
  }
  for (uint64_t k = 1; store_->Contains(DeltaKey(name, k, /*is_mirror=*/true));
       k++) {
    StatusOr<SharedBytes> delta =
        co_await store_->Get(DeltaKey(name, k, /*is_mirror=*/true));
    if (!delta.ok()) {
      co_return delta.status();
    }
    written = co_await store_->Put(DeltaKey(name, k, /*is_mirror=*/false),
                                   *delta);
    if (!written.ok()) {
      co_return written;
    }
  }
  co_return OkStatus();
}

// ---------------------------------------------------------------------------
// Move (object mobility)
// ---------------------------------------------------------------------------

Future<Status> NodeKernel::MoveObject(const std::shared_ptr<ActiveObject>& object,
                                      StationId destination,
                                      const SpanContext& parent,
                                      int drain_threshold) {
  if (object->is_replica) {
    return ReadyStatus(FailedPreconditionError("cannot move a replica"));
  }
  if (object->moving) {
    return ReadyStatus(FailedPreconditionError("move already in progress"));
  }
  if (destination == station()) {
    return ReadyStatus(OkStatus());
  }
  if (!object->core->alive) {
    return ReadyStatus(FailedPreconditionError("object crashed"));
  }
  Promise<Status> done;
  Future<Status> future = done.GetFuture();
  RunMove(object, destination, std::move(done), parent, drain_threshold);
  return future;
}

DetachedTask NodeKernel::RunMove(std::shared_ptr<ActiveObject> object,
                                 StationId destination, Promise<Status> done,
                                 SpanContext parent, int drain_threshold) {
  // Opened before the drain wait, so drain latency is attributed to the move.
  SpanContext move_span =
      StartSpan(parent, SpanKind::kMove, object->name,
                "move to node" + std::to_string(destination));
  object->moving = true;
  // Wait for other running invocations to drain. When the invocation that
  // requested the move is itself still running the caller passes threshold 1;
  // driver and rebalancer moves quiesce fully (threshold 0) so no in-flight
  // invocation's effects are serialized mid-run.
  object->drain_threshold = drain_threshold;
  while (object->total_running > drain_threshold && object->core->alive) {
    object->drain_waiter = Promise<Unit>();
    Future<Unit> drained = object->drain_waiter->GetFuture();
    co_await drained;
  }
  // A move carries the representation to a new home, where the old
  // (epoch, seq) versions stop meaning anything — so clear every outstanding
  // lease first. `moving` is already set, so no new lease or write can slip
  // in behind the recall (AcceptDispatch holds them).
  if (config_.lease_reads) {
    while (object->core->alive &&
           (object->lease_recall.has_value() || !object->lease_holders.empty() ||
            object->lease_quiesce_until > sim().now())) {
      if (!object->lease_recall.has_value()) {
        OpenLeaseRecall(object, move_span);
      }
      Promise<Unit> cleared;
      Future<Unit> lease_clear = cleared.GetFuture();
      object->lease_recall->waiters.push_back(std::move(cleared));
      co_await lease_clear;
    }
  }
  if (!object->core->alive) {
    object->moving = false;
    EndSpan(move_span, "crashed");
    done.Set(AbortedError("object crashed during move"));
    co_return;
  }

  uint64_t transfer_id = next_transfer_id_++;
  MoveTransferMsg msg;
  msg.transfer_id = transfer_id;
  msg.source = station();
  msg.name = object->name;
  msg.type_name = object->type->name();
  msg.representation = object->core->rep;
  msg.policy = object->policy;
  msg.frozen = object->frozen;
  msg.span = move_span;
  // At-most-once state travels with the object: cached replies for its
  // invocations keep answering retries at the new home, so a request whose
  // reply raced the move is re-replied there instead of re-executed.
  // (reply_cache_ is id-ordered, so the carried list is deterministic.)
  for (const auto& [id, cached] : reply_cache_) {
    if (cached.object == object->name) {
      msg.cached_replies.push_back({id, cached.result, cached.frozen});
    }
  }
  Bytes encoded = msg.Encode();

  PendingMove& pending = pending_moves_[transfer_id];
  pending.promise = std::move(done);
  pending.object = object;
  pending.destination = destination;
  pending.span = move_span;
  pending.timer =
      sim().Schedule(config_.attempt_timeout * 2, [this, transfer_id] {
        auto it = pending_moves_.find(transfer_id);
        if (it == pending_moves_.end()) {
          return;
        }
        PendingMove pending = std::move(it->second);
        pending_moves_.erase(it);
        // Abort: resume service on this node.
        EndSpan(pending.span, "destination_unreachable");
        pending.object->moving = false;
        Promise<Status> promise = std::move(pending.promise);
        std::shared_ptr<ActiveObject> object = pending.object;
        while (!object->hold_queue.empty()) {
          PendingDispatch d = std::move(object->hold_queue.front());
          object->hold_queue.pop_front();
          AcceptDispatch(object, std::move(d));
        }
        PumpQueues(object);
        promise.Set(UnavailableError("move destination unreachable"));
      });

  counters_.moves_out->Increment();
  Trace(TraceEventKind::kMoveOut, object->name, transfer_id,
        "to station " + std::to_string(destination));
  sim().Schedule(SerializeCost(encoded.size()),
                 [this, destination, span = move_span,
                  encoded = std::move(encoded)]() mutable {
                   if (!failed_) {
                     transport_->SendReliable(destination, std::move(encoded),
                                              span);
                   }
                 });
}

void NodeKernel::HandleMoveTransfer(StationId src, MoveTransferMsg msg) {
  MoveAckMsg ack;
  ack.transfer_id = msg.transfer_id;
  ack.name = msg.name;

  if (auto dup = active_.find(msg.name); dup != active_.end()) {
    // Duplicate transfer (retransmission past the transport window). Re-ack
    // with the epoch the first arrival minted.
    ack.accepted = true;
    ack.epoch = dup->second->location_epoch;
    transport_->SendReliable(src, ack.Encode());
    return;
  }
  std::shared_ptr<TypeManager> type = system_.FindType(msg.type_name);
  if (type == nullptr) {
    ack.accepted = false;
    transport_->SendReliable(src, ack.Encode());
    return;
  }

  auto object = std::make_shared<ActiveObject>(type);
  object->name = msg.name;
  object->core = std::make_shared<ObjectCore>();
  object->core->name = msg.name;
  object->core->rep = std::move(msg.representation);
  object->policy = msg.policy;
  object->frozen = msg.frozen;
  object->activating = true;
  active_[msg.name] = object;
  UpdateActiveGauge();
  forwarding_.erase(msg.name);
  location_cache_.erase(msg.name);
  // Home-side authority supersedes any read lease this node held as a client.
  lease_cache_.erase(msg.name);
  counters_.moves_in->Increment();
  Trace(TraceEventKind::kMoveIn, msg.name, msg.transfer_id,
        "from station " + std::to_string(msg.source));
  // Install the carried at-most-once replies before any retry can land here.
  for (const auto& carried : msg.cached_replies) {
    if (reply_cache_.count(carried.invocation_id) == 0) {
      CacheReply(carried.invocation_id, msg.name, carried.result,
                 carried.frozen);
    }
  }

  ack.accepted = true;
  // The destination mints the epoch: a causally later move always lands at a
  // later simulation time here than the acquisition it supersedes, so epochs
  // stay monotone along any chain of moves.
  ack.epoch = PublishResidenceHere(object);
  transport_->SendReliable(src, ack.Encode());

  // The move-in rebuild is a cross-node kActivation child of the mover's
  // kMove span.
  SpanContext act_span =
      ChildSpan(msg.span, SpanKind::kActivation, msg.name, "move-in");

  // Arrival at a new node rebuilds short-term state exactly like a
  // reincarnation: run the condition handler, restart behaviors, then serve.
  [](NodeKernel* kernel, std::shared_ptr<ActiveObject> object,
     SpanContext act_span) -> DetachedTask {
    co_await SleepFor(kernel->sim(), kernel->config_.activation_overhead);
    if (!object->core->alive) {
      kernel->EndSpan(act_span, "crashed");
      co_return;
    }
    if (object->type->reincarnation()) {
      InvokeContext context(kernel, object, "<reincarnation>", InvokeArgs{},
                            Rights::All(), act_span);
      co_await object->type->reincarnation()(context);
    }
    if (!object->core->alive) {
      kernel->EndSpan(act_span, "crashed");
      co_return;
    }
    kernel->StartBehaviors(object);
    object->activating = false;
    kernel->EndSpan(act_span);
    while (!object->hold_queue.empty()) {
      PendingDispatch d = std::move(object->hold_queue.front());
      object->hold_queue.pop_front();
      kernel->AcceptDispatch(object, std::move(d));
    }
  }(this, object, act_span);
}

void NodeKernel::HandleMoveAck(const MoveAckMsg& msg) {
  auto it = pending_moves_.find(msg.transfer_id);
  if (it == pending_moves_.end()) {
    return;
  }
  sim().Cancel(it->second.timer);
  PendingMove pending = std::move(it->second);
  pending_moves_.erase(it);
  std::shared_ptr<ActiveObject> object = pending.object;

  if (!msg.accepted) {
    EndSpan(pending.span, "refused");
    object->moving = false;
    while (!object->hold_queue.empty()) {
      PendingDispatch d = std::move(object->hold_queue.front());
      object->hold_queue.pop_front();
      AcceptDispatch(object, std::move(d));
    }
    PumpQueues(object);
    pending.promise.Set(UnavailableError("destination refused the object"));
    return;
  }

  const ObjectName& name = object->name;
  ResidenceRecord moved{pending.destination, msg.epoch, true};
  forwarding_[name] = moved;
  CacheLocation(name, moved);

  // Re-route everything that queued during the move.
  auto forward = [this, &pending](PendingDispatch& d) {
    if (d.local) {
      SendRequestTo(d.request.invocation_id, pending.destination);
    } else {
      requests_in_progress_.erase(d.request.invocation_id);
      transport_->SendReliable(pending.destination, d.request.Encode());
    }
  };
  while (!object->hold_queue.empty()) {
    PendingDispatch d = std::move(object->hold_queue.front());
    object->hold_queue.pop_front();
    forward(d);
  }
  for (auto& queue : object->class_queues) {
    while (!queue.empty()) {
      PendingDispatch d = std::move(queue.front());
      queue.pop_front();
      forward(d);
    }
  }

  active_.erase(name);
  UpdateActiveGauge();
  object->moving = false;
  EndSpan(pending.span);
  // Behaviors and any post-move handler code on this node see a dead core.
  object->core->Fail(AbortedError("object moved to another node"));
  pending.promise.Set(OkStatus());
}

// ---------------------------------------------------------------------------
// Frozen-object replication
// ---------------------------------------------------------------------------

void NodeKernel::MaybeFetchReplica(const ObjectName& name, StationId host,
                                   const SpanContext& parent) {
  for (const auto& [request_id, pending_name] : pending_replica_fetches_) {
    if (pending_name == name) {
      return;  // fetch already under way
    }
  }
  uint64_t request_id = next_request_id_++;
  pending_replica_fetches_[request_id] = name;
  counters_.replica_fetches->Increment();
  ReplicaFetchMsg msg;
  msg.request_id = request_id;
  msg.reply_to = station();
  msg.name = name;
  // Context only: the fetch is a background prefetch whose triggering
  // invocation has already completed, so no span is opened for it (the
  // parent trace may finalize before the fetch resolves).
  msg.span = parent;
  transport_->SendReliable(host, msg.Encode());
}

void NodeKernel::HandleReplicaFetch(StationId src, const ReplicaFetchMsg& msg) {
  ReplicaReplyMsg reply;
  reply.request_id = msg.request_id;
  reply.name = msg.name;
  auto it = active_.find(msg.name);
  if (it != active_.end() && it->second->frozen && !it->second->is_replica) {
    reply.ok = true;
    reply.type_name = it->second->type->name();
    reply.representation = it->second->core->rep;
  } else {
    reply.ok = false;
  }
  transport_->SendReliable(msg.reply_to, reply.Encode());
}

void NodeKernel::HandleReplicaReply(StationId src, ReplicaReplyMsg msg) {
  auto it = pending_replica_fetches_.find(msg.request_id);
  if (it == pending_replica_fetches_.end()) {
    return;
  }
  pending_replica_fetches_.erase(it);
  if (!msg.ok || replicas_.count(msg.name) > 0 || active_.count(msg.name) > 0) {
    return;
  }
  std::shared_ptr<TypeManager> type = system_.FindType(msg.type_name);
  if (type == nullptr) {
    return;
  }
  auto replica = std::make_shared<ActiveObject>(type);
  replica->name = msg.name;
  replica->core = std::make_shared<ObjectCore>();
  replica->core->name = msg.name;
  replica->core->rep = std::move(msg.representation);
  replica->frozen = true;
  replica->is_replica = true;
  replicas_[msg.name] = replica;
}

// ---------------------------------------------------------------------------
// Node failure / restart
// ---------------------------------------------------------------------------

void NodeKernel::FailNode() {
  if (failed_) {
    return;
  }
  failed_ = true;
  Trace(TraceEventKind::kNodeFailure, ObjectName::Null(), 0);
  system_.lan().DetachStation(station());
  transport_->Reset();

  // Volatile state dies. (The stable store, by definition, survives.)
  auto active = std::move(active_);
  active_.clear();
  auto replicas = std::move(replicas_);
  replicas_.clear();
  for (auto& [name, object] : active) {
    object->core->Fail(UnavailableError("node failed"));
    // Open recalls die with the home: cancel the backstop, close the kLease
    // span, and wake any co_awaiting mover so its coroutine is not leaked.
    // (active_ is an ordered map, so span close order is deterministic.)
    if (object->lease_recall.has_value()) {
      ActiveObject::LeaseRecall recall = std::move(*object->lease_recall);
      object->lease_recall.reset();
      sim().Cancel(recall.backstop_timer);
      EndSpan(recall.span, "node_failed");
      for (Promise<Unit>& waiter : recall.waiters) {
        waiter.Set(Unit{});
      }
      // write_queue replies die silently: the invokers' attempt timers fire.
    }
    object->lease_holders.clear();
  }
  for (auto& [name, object] : replicas) {
    object->core->Fail(UnavailableError("node failed"));
  }
  // Client-side leases are volatile; holders that crash simply stop serving,
  // and the home's recall backstop covers any release they now fail to send.
  lease_cache_.clear();
  lease_floor_.clear();
  forwarding_.clear();
  location_cache_.clear();
  // Both backend roles are volatile: the home partition dies with the node
  // and is rebuilt lazily from the hosts' inventories via fallback + repair.
  location_->OnNodeFailed();

  auto pending = std::move(pending_invocations_);
  pending_invocations_.clear();
  for (auto& [id, invocation] : pending) {
    sim().Cancel(invocation.user_timer);
    sim().Cancel(invocation.attempt_timer);
    EndSpan(invocation.span, "node_failed");
    invocation.promise.Set(
        InvokeResult::Error(UnavailableError("invoking node failed")));
  }
  {
    // pending_locates_ iterates in hash order; close spans in query-id order
    // so the collector sees the same sequence on every run.
    std::vector<std::pair<uint64_t, SpanContext>> locate_spans;
    auto locates = std::move(pending_locates_);
    pending_locates_.clear();
    locate_by_name_.clear();
    for (auto& [query_id, locate] : locates) {
      sim().Cancel(locate.timer);
      if (locate.span.valid()) {
        locate_spans.emplace_back(query_id, locate.span);
      }
    }
    std::sort(locate_spans.begin(), locate_spans.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [query_id, span] : locate_spans) {
      EndSpan(span, "node_failed");
    }
  }
  auto acks = std::move(pending_acks_);
  pending_acks_.clear();
  for (auto& [request_id, ack] : acks) {
    sim().Cancel(ack.timer);
    ack.promise.Set(UnavailableError("node failed"));
  }
  auto moves = std::move(pending_moves_);
  pending_moves_.clear();
  for (auto& [transfer_id, move] : moves) {
    sim().Cancel(move.timer);
    EndSpan(move.span, "node_failed");
    move.promise.Set(UnavailableError("node failed"));
  }
  pending_replica_fetches_.clear();
  requests_in_progress_.clear();
  reply_cache_.clear();
  reply_cache_order_.clear();
  activating_.clear();
  activation_local_waiters_.clear();
  activation_remote_hold_.clear();
  // Peer-health state is volatile too: a reborn node presumes everyone
  // healthy. Probe timers must die with it (order-insensitive iteration).
  for (auto& [peer, state] : peers_) {
    sim().Cancel(state.probe_timer);
  }
  peers_.clear();
}

void NodeKernel::RestartNode() {
  if (!failed_) {
    return;
  }
  failed_ = false;
  Trace(TraceEventKind::kNodeRestart, ObjectName::Null(), 0);
  system_.lan().ReattachStation(station());

  // Proactive directory repair (DESIGN.md §13): scan the stable store for
  // checkpoint bases and re-publish a passive residence record for each. The
  // epoch-0 record only fills an *empty* directory slot — if the object moved
  // (or was reincarnated elsewhere) while this node was down, the incumbent
  // record has a real epoch and wins — so locates for objects that only ever
  // lived here resolve without a broadcast fallback round.
  for (const std::string& key : store_->Keys()) {
    constexpr std::string_view kPrefix = "ckpt/";
    if (key.compare(0, kPrefix.size(), kPrefix) != 0) {
      continue;
    }
    // Delta links ("...#d<k>") fail the parse; only bases publish.
    StatusOr<ObjectName> name =
        ObjectName::FromKey(std::string_view(key).substr(kPrefix.size()));
    if (!name.ok()) {
      continue;
    }
    location_->PublishResidence(*name, ResidenceRecord{station(), 0, false});
  }
}

// ---------------------------------------------------------------------------
// Elastic membership / drain (DESIGN.md §16)
// ---------------------------------------------------------------------------

bool NodeKernel::DrainIdle() const {
  return active_.empty() && activating_.empty() && pending_moves_.empty() &&
         pending_invocations_.empty() && pending_acks_.empty();
}

std::vector<ObjectName> NodeKernel::ActiveObjects() const {
  std::vector<ObjectName> names;
  names.reserve(active_.size());
  for (const auto& [name, object] : active_) {
    if (!object->is_replica) {
      names.push_back(name);
    }
  }
  return names;  // active_ is ordered, so this is sorted
}

std::vector<ObjectName> NodeKernel::ActiveObjectsWithPolicySite(
    StationId site) const {
  std::vector<ObjectName> names;
  for (const auto& [name, object] : active_) {
    if (object->is_replica || !object->core->alive) {
      continue;
    }
    const CheckpointPolicy& p = object->policy;
    if (p.primary_site == site ||
        (p.level == ReliabilityLevel::kMirrored && p.mirror_site == site)) {
      names.push_back(name);
    }
  }
  return names;
}

std::vector<ObjectName> NodeKernel::CheckpointInventory() const {
  std::vector<ObjectName> names;
  for (const std::string& key : store_->Keys()) {
    constexpr std::string_view kPrefix = "ckpt/";
    if (key.compare(0, kPrefix.size(), kPrefix) != 0) {
      continue;
    }
    // Delta links ("...#d<k>") fail the parse; only bases count.
    StatusOr<ObjectName> name =
        ObjectName::FromKey(std::string_view(key).substr(kPrefix.size()));
    if (name.ok()) {
      names.push_back(*name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

void NodeKernel::Reactivate(const ObjectName& name) {
  if (failed_ || active_.count(name) > 0 || activating_.count(name) > 0) {
    return;
  }
  if (!store_->Contains(CheckpointKey(name))) {
    return;
  }
  BeginActivation(name);
}

Future<Status> NodeKernel::ResiteCheckpoint(const ObjectName& name,
                                            const CheckpointPolicy& policy) {
  if (failed_) {
    return ReadyStatus(UnavailableError("node is down"));
  }
  auto it = active_.find(name);
  if (it == active_.end()) {
    return ReadyStatus(NotFoundError("object not active here"));
  }
  std::shared_ptr<ActiveObject> object = it->second;
  if (!object->core->alive) {
    return ReadyStatus(FailedPreconditionError("object crashed"));
  }
  if (object->moving || object->activating) {
    return ReadyStatus(FailedPreconditionError("object is in transit"));
  }
  if (policy.level == ReliabilityLevel::kMirrored &&
      policy.mirror_site == policy.primary_site) {
    return ReadyStatus(
        InvalidArgumentError("mirror site must differ from primary site"));
  }
  const CheckpointPolicy old_policy = object->policy;
  if (old_policy == policy) {
    return ReadyStatus(OkStatus());
  }
  object->policy = policy;
  // Force a full base at the new site(s): a delta appended to the old chain
  // would leave the authoritative state on the store being evacuated.
  object->ckpt_has_base = false;
  Future<Status> done = CheckpointForObject(object);
  done.OnReadyValue([this, name, old_policy, policy](const Status& status) {
    if (!status.ok() || failed_) {
      return;  // old chains stay authoritative; the rebalancer retries
    }
    // The fresh chain is durable: retire old chains wherever their role
    // moved. Local chains are erased per role (the new policy may still use
    // this store in the other role); a remote old site that serves no role
    // at all in the new policy drops everything it has.
    if (old_policy.primary_site == station() &&
        policy.primary_site != station()) {
      EraseDeltaChain(name, /*is_mirror=*/false);
      store_->Delete(CheckpointKey(name));
    }
    const bool old_mirror_here =
        old_policy.level == ReliabilityLevel::kMirrored &&
        old_policy.mirror_site == station();
    const bool new_mirror_here =
        policy.level == ReliabilityLevel::kMirrored &&
        policy.mirror_site == station();
    if (old_mirror_here && !new_mirror_here) {
      EraseDeltaChain(name, /*is_mirror=*/true);
      store_->Delete(MirrorKey(name));
    }
    auto used_by_new = [&policy](StationId site) {
      return site == policy.primary_site ||
             (policy.level == ReliabilityLevel::kMirrored &&
              site == policy.mirror_site);
    };
    CheckpointEraseMsg erase;
    erase.name = name;
    std::set<StationId> erased;
    auto erase_remote = [&, this](StationId site) {
      if (site == station() || used_by_new(site) ||
          !erased.insert(site).second) {
        return;
      }
      transport_->SendReliable(site, erase.Encode());
    };
    erase_remote(old_policy.primary_site);
    if (old_policy.level == ReliabilityLevel::kMirrored) {
      erase_remote(old_policy.mirror_site);
    }
  });
  return done;
}

// ---------------------------------------------------------------------------
// InvokeContext methods that need the kernel definition
// ---------------------------------------------------------------------------

Future<InvokeResult> InvokeContext::Invoke(const Capability& target,
                                           const std::string& op, InvokeArgs args,
                                           const InvokeOptions& options) {
  Promise<InvokeResult> promise;
  Future<InvokeResult> future = promise.GetFuture();
  kernel_->StartInvocation(target, op, std::move(args), options,
                           std::move(promise), span_);
  return future;
}

Future<Status> InvokeContext::Checkpoint() {
  return kernel_->CheckpointForObject(object_, span_);
}

Status InvokeContext::SetChecksite(const CheckpointPolicy& policy) {
  if (policy.level == ReliabilityLevel::kMirrored &&
      policy.mirror_site == policy.primary_site) {
    return InvalidArgumentError("mirror site must differ from primary site");
  }
  object_->policy = policy;
  return OkStatus();
}

void InvokeContext::Crash() {
  kernel_->CrashObject(object_, AbortedError("object crashed itself"));
}

void InvokeContext::Destroy() { kernel_->DestroyObject(object_); }

Future<Status> InvokeContext::RequestMove(StationId new_home) {
  // The requesting invocation is itself still counted as running.
  return kernel_->MoveObject(object_, new_home, span_, /*drain_threshold=*/1);
}

Status InvokeContext::Freeze() {
  if (object_->is_replica) {
    return FailedPreconditionError("replicas are already frozen");
  }
  object_->frozen = true;
  return OkStatus();
}

Future<Unit> InvokeContext::Sleep(SimDuration duration) {
  return SleepFor(kernel_->sim(), duration);
}

StationId InvokeContext::node() const { return kernel_->station(); }

Simulation& InvokeContext::sim() { return kernel_->sim(); }

}  // namespace eden
