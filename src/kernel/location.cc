#include "src/kernel/location.h"

#include <algorithm>
#include <set>

#include "src/kernel/eden_system.h"
#include "src/kernel/node_kernel.h"

namespace eden {

std::string_view LocationBackendName(LocationBackend backend) {
  switch (backend) {
    case LocationBackend::kBroadcast:
      return "broadcast";
    case LocationBackend::kDirectory:
      return "directory";
  }
  return "unknown";
}

std::unique_ptr<LocationService> LocationService::Create(
    NodeKernel& kernel, LocationBackend backend) {
  if (backend == LocationBackend::kDirectory) {
    return std::make_unique<DirectoryLocation>(kernel);
  }
  return std::make_unique<BroadcastLocation>(kernel);
}

// ---------------------------------------------------------------------------
// BroadcastLocation (the paper's protocol, section 4.3)
// ---------------------------------------------------------------------------

void BroadcastLocation::QueryRound(uint64_t query_id, const ObjectName& name,
                                   int attempt,
                                   const std::vector<StationId>& avoid,
                                   const SpanContext& locate_span) {
  (void)attempt;
  (void)avoid;  // broadcast replies are filtered by the invokers themselves
  kernel_.counters_.locate_queries_broadcast->Increment();
  kernel_.Trace(TraceEventKind::kLocateBroadcast, name, query_id);
  LocateRequestMsg msg;
  msg.query_id = query_id;
  msg.reply_to = kernel_.station();
  msg.name = name;
  msg.span = locate_span;
  kernel_.transport_->SendBestEffort(kBroadcastStation, msg.Encode());
}

// ---------------------------------------------------------------------------
// DirectoryLocation (partitioned directory, DESIGN.md §13)
// ---------------------------------------------------------------------------

DirectoryLocation::DirectoryLocation(NodeKernel& kernel)
    : LocationService(kernel) {
  entries_gauge_ = &kernel.metrics_.gauge("kernel.directory.entries");
  last_members_ = kernel.system().members();
  last_fanout_ = EffectiveFanout(last_members_);
}

std::vector<StationId> DirectoryLocation::HomesWith(
    const ObjectName& name, const std::vector<Member>& members,
    int fanout) const {
  if (members.empty()) {
    return {};
  }
  return kernel_.system().placement().HomesOf(name, members, fanout);
}

int DirectoryLocation::EffectiveFanout(const std::vector<Member>& members) {
  int configured = kernel_.config_.locate.directory_fanout;
  if (configured > 0) {
    return configured;
  }
  // Auto fanout: once the installation is big enough that a home crash is
  // routine (16+ members), record every residence at two homes.
  int target = members.size() >= 16 ? 2 : 1;
  SimDuration dwell = kernel_.config_.locate.fanout_dwell;
  if (dwell <= 0) {
    return target;  // legacy: flip the instant the boundary is crossed
  }
  if (stable_fanout_ == 0) {
    // First sighting: adopt without dwelling (there is nothing to re-fan).
    stable_fanout_ = target;
    return stable_fanout_;
  }
  if (target == stable_fanout_) {
    // Back on the committed side: any pending flip was a flap, cancel it.
    pending_fanout_ = 0;
    return stable_fanout_;
  }
  SimTime now = kernel_.sim().now();
  if (pending_fanout_ != target) {
    pending_fanout_ = target;
    pending_since_ = now;
  }
  if (now - pending_since_ >= dwell) {
    stable_fanout_ = pending_fanout_;
    pending_fanout_ = 0;
  }
  return stable_fanout_;
}

std::vector<StationId> DirectoryLocation::HomesOf(const ObjectName& name) {
  const std::vector<Member>& members = kernel_.system().members();
  return HomesWith(name, members, EffectiveFanout(members));
}

void DirectoryLocation::OnMembershipChange() {
  const std::vector<Member>& members = kernel_.system().members();
  if (members == last_members_) {
    return;
  }
  std::vector<Member> previous = std::move(last_members_);
  last_members_ = members;
  // The previous reconciliation's fanout frames the old home sets; a dwell
  // commit between reconciliations only shifts duplicates (receivers merge
  // by epoch) or costs one healable fallback, never loses a record.
  int new_fanout = EffectiveFanout(members);
  int old_fanout = last_fanout_ == 0 ? new_fanout : last_fanout_;
  last_fanout_ = new_fanout;
  if (partition_.empty()) {
    return;
  }
  StationId self = kernel_.station();
  for (auto it = partition_.begin(); it != partition_.end();) {
    const ObjectName& name = it->first;
    std::vector<StationId> new_homes = HomesWith(name, members, new_fanout);
    bool still_home =
        std::find(new_homes.begin(), new_homes.end(), self) != new_homes.end();
    std::vector<StationId> old_homes = HomesWith(name, previous, old_fanout);
    DirectoryUpdateMsg msg;
    msg.name = name;
    msg.host = it->second.host;
    msg.epoch = it->second.epoch;
    msg.active = it->second.active;
    for (StationId home : new_homes) {
      if (home == self) {
        continue;
      }
      // Still a home: top up only the *newly* responsible homes. Leaving the
      // home set: push the record to every new home — the receivers merge by
      // epoch, so a duplicate is harmless and a miss would cost a fallback
      // broadcast. Handoffs ride the reliable transport for the same reason.
      if (still_home && std::find(old_homes.begin(), old_homes.end(), home) !=
                            old_homes.end()) {
        continue;
      }
      kernel_.transport_->SendReliable(home, msg.Encode());
      kernel_.counters_.directory_handoffs->Increment();
    }
    if (still_home) {
      ++it;
    } else {
      it = partition_.erase(it);
    }
  }
  UpdateEntriesGauge();
}

void DirectoryLocation::UpdateEntriesGauge() {
  entries_gauge_->Set(static_cast<int64_t>(partition_.size()));
}

bool DirectoryLocation::ApplyUpdate(const ObjectName& name,
                                    const ResidenceRecord& record) {
  auto it = partition_.find(name);
  bool newer = it == partition_.end() || record.epoch > it->second.epoch ||
               (record.epoch == it->second.epoch && record.active &&
                !it->second.active);
  if (!newer) {
    kernel_.counters_.directory_stale_updates->Increment();
    return false;
  }
  partition_[name] = record;
  kernel_.counters_.directory_updates->Increment();
  kernel_.Trace(TraceEventKind::kDirectoryUpdate, name, 0,
                "host " + std::to_string(record.host) + " epoch " +
                    std::to_string(record.epoch) +
                    (record.active ? "" : " passive"));
  UpdateEntriesGauge();
  return true;
}

void DirectoryLocation::ApplyRemoval(const ObjectName& name, uint64_t epoch) {
  auto it = partition_.find(name);
  if (it == partition_.end()) {
    return;
  }
  if (it->second.epoch > epoch) {
    // A residence acquired after this destruction (an in-flight move's
    // update raced the tombstone): the record outlives the removal.
    kernel_.counters_.directory_stale_updates->Increment();
    return;
  }
  partition_.erase(it);
  kernel_.counters_.directory_updates->Increment();
  kernel_.Trace(TraceEventKind::kDirectoryUpdate, name, 0, "removed");
  UpdateEntriesGauge();
}

const ResidenceRecord* DirectoryLocation::LookupLocal(
    const ObjectName& name, const std::vector<StationId>& avoid) {
  auto it = partition_.find(name);
  if (it == partition_.end()) {
    return nullptr;
  }
  for (StationId host : avoid) {
    if (it->second.host == host) {
      // The invoker proved this host dead or ignorant: drop the stale record
      // so the fallback round can relearn the truth.
      partition_.erase(it);
      UpdateEntriesGauge();
      return nullptr;
    }
  }
  return &it->second;
}

void DirectoryLocation::BeginFallback(uint64_t query_id, Query& query,
                                      const char* reason) {
  (void)query_id;
  if (query.fallback) {
    return;
  }
  query.fallback = true;
  kernel_.counters_.directory_fallbacks->Increment();
  if (query.round_span.valid()) {
    kernel_.EndSpan(query.round_span, reason);
    query.round_span = SpanContext{};
  }
}

void DirectoryLocation::QueryRound(uint64_t query_id, const ObjectName& name,
                                   int attempt,
                                   const std::vector<StationId>& avoid,
                                   const SpanContext& locate_span) {
  Query& query = pending_[query_id];
  query.name = name;
  if (query.round_span.valid()) {
    // The previous lookup round timed out (home crashed, message lost).
    kernel_.EndSpan(query.round_span, "timeout");
    query.round_span = SpanContext{};
  }
  // A round that timed out without an answer is indistinguishable from a
  // crashed home: later rounds broadcast rather than re-ask a silent home.
  if (attempt > 0) {
    BeginFallback(query_id, query, "round_timeout");
  }
  if (query.fallback) {
    kernel_.counters_.locate_queries_broadcast->Increment();
    kernel_.Trace(TraceEventKind::kLocateBroadcast, name, query_id,
                  "fallback");
    LocateRequestMsg msg;
    msg.query_id = query_id;
    msg.reply_to = kernel_.station();
    msg.name = name;
    msg.span = locate_span;
    kernel_.transport_->SendBestEffort(kBroadcastStation, msg.Encode());
    return;
  }

  kernel_.counters_.locate_queries_directory->Increment();
  kernel_.Trace(TraceEventKind::kDirectoryLookup, name, query_id);
  query.round_span = kernel_.ChildSpan(locate_span, SpanKind::kDirectory, name,
                                       "directory lookup");
  std::vector<StationId> homes = HomesOf(name);
  StationId self = kernel_.station();
  bool remote_sent = false;
  for (StationId home : homes) {
    if (home == self) {
      continue;
    }
    DirectoryLookupMsg msg;
    msg.query_id = query_id;
    msg.reply_to = self;
    msg.name = name;
    msg.avoid_hosts = avoid;
    msg.span = query.round_span;
    kernel_.transport_->SendBestEffort(home, msg.Encode());
    remote_sent = true;
  }
  if (std::find(homes.begin(), homes.end(), self) != homes.end()) {
    if (const ResidenceRecord* record = LookupLocal(name, avoid)) {
      ResidenceRecord hit = *record;
      // Resolves synchronously: EndQuery erases pending_[query_id], so no
      // touching `query` past this point.
      kernel_.ResolveLocate(query_id, hit.host, hit.epoch, hit.active);
      return;
    }
    if (!remote_sent) {
      // This node is the only home and its partition has no record: fall
      // back immediately instead of burning the round timer on ourselves.
      BeginFallback(query_id, query, "self_miss");
      kernel_.RetryLocateNow(query_id);
      return;
    }
  }
}

void DirectoryLocation::EndQuery(uint64_t query_id, std::string_view status) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) {
    return;
  }
  kernel_.EndSpan(it->second.round_span, status);
  pending_.erase(it);
}

void DirectoryLocation::NoteResidence(const ObjectName& name,
                                      const ResidenceRecord& record) {
  if (!kernel_.config_.locate.directory_repair) {
    return;
  }
  // A fallback broadcast just relearned this residence from the host's own
  // inventory: push it back to the home(s) so the directory reconstructs
  // itself and the next query is O(1) again.
  kernel_.counters_.directory_repairs->Increment();
  PublishResidence(name, record);
}

void DirectoryLocation::PublishResidence(const ObjectName& name,
                                         const ResidenceRecord& record) {
  StationId self = kernel_.station();
  DirectoryUpdateMsg msg;
  msg.name = name;
  msg.host = record.host;
  msg.epoch = record.epoch;
  msg.active = record.active;
  for (StationId home : HomesOf(name)) {
    if (home == self) {
      ApplyUpdate(name, record);
    } else {
      kernel_.transport_->SendBestEffort(home, msg.Encode());
    }
  }
}

void DirectoryLocation::PublishRemoval(const ObjectName& name,
                                       uint64_t epoch) {
  StationId self = kernel_.station();
  DirectoryUpdateMsg msg;
  msg.name = name;
  msg.epoch = epoch;
  msg.removal = true;
  for (StationId home : HomesOf(name)) {
    if (home == self) {
      ApplyRemoval(name, epoch);
    } else {
      kernel_.transport_->SendBestEffort(home, msg.Encode());
    }
  }
}

void DirectoryLocation::HandleDirectoryLookup(StationId src,
                                              const DirectoryLookupMsg& msg) {
  (void)src;
  kernel_.counters_.directory_lookups->Increment();
  DirectoryReplyMsg reply;
  reply.query_id = msg.query_id;
  reply.name = msg.name;
  if (const ResidenceRecord* record = LookupLocal(msg.name, msg.avoid_hosts)) {
    reply.known = true;
    reply.host = record->host;
    reply.epoch = record->epoch;
    reply.active = record->active;
  }
  kernel_.transport_->SendBestEffort(msg.reply_to, reply.Encode());
}

void DirectoryLocation::HandleDirectoryReply(const DirectoryReplyMsg& msg) {
  auto it = pending_.find(msg.query_id);
  if (it == pending_.end()) {
    return;  // resolved already, or the locate gave up
  }
  Query& query = it->second;
  if (msg.known) {
    if (query.round_span.valid()) {
      kernel_.EndSpan(query.round_span);
      query.round_span = SpanContext{};
    }
    kernel_.ResolveLocate(msg.query_id, msg.host, msg.epoch, msg.active);
    return;
  }
  if (query.fallback) {
    return;  // another home already sent us broadcasting
  }
  // The home is alive and authoritatively knows nothing (cold partition
  // after a crash, or a racing move): burn this round and broadcast now.
  BeginFallback(msg.query_id, query, "home_unknown");
  kernel_.RetryLocateNow(msg.query_id);
}

void DirectoryLocation::HandleDirectoryUpdate(StationId src,
                                              const DirectoryUpdateMsg& msg) {
  (void)src;
  if (msg.removal) {
    ApplyRemoval(msg.name, msg.epoch);
  } else {
    ApplyUpdate(msg.name, ResidenceRecord{msg.host, msg.epoch, msg.active});
  }
}

void DirectoryLocation::OnNodeFailed() {
  // pending_ is ordered by query id, so the round spans close in the same
  // sequence on every run.
  for (auto& [query_id, query] : pending_) {
    kernel_.EndSpan(query.round_span, "node_failed");
  }
  pending_.clear();
  partition_.clear();
  UpdateEntriesGauge();
}

const ResidenceRecord* DirectoryLocation::DirectoryEntry(
    const ObjectName& name) const {
  auto it = partition_.find(name);
  return it == partition_.end() ? nullptr : &it->second;
}

}  // namespace eden
