#include "src/kernel/type_manager.h"

#include <cassert>

namespace eden {

TypeManager::TypeManager(std::string type_name) : name_(std::move(type_name)) {
  classes_.push_back(InvocationClassSpec{"default", 1, 1024});
}

size_t TypeManager::AddClass(std::string class_name, int concurrency_limit,
                             size_t queue_limit) {
  assert(concurrency_limit >= 1);
  classes_.push_back(
      InvocationClassSpec{std::move(class_name), concurrency_limit, queue_limit});
  return classes_.size() - 1;
}

TypeManager& TypeManager::AddOperation(OperationSpec spec) {
  assert(spec.handler && "operation needs a handler");
  assert(spec.invocation_class < classes_.size() &&
         "operation assigned to unknown invocation class");
  assert(operations_.count(spec.name) == 0 && "duplicate operation name");
  operations_[spec.name] = std::move(spec);
  return *this;
}

TypeManager& TypeManager::SetReincarnation(ReincarnationHandler handler) {
  reincarnation_ = std::move(handler);
  return *this;
}

TypeManager& TypeManager::AddBehavior(std::string behavior_name, BehaviorBody body) {
  behaviors_.emplace_back(std::move(behavior_name), std::move(body));
  return *this;
}

const OperationSpec* TypeManager::FindOperation(const std::string& operation) const {
  auto it = operations_.find(operation);
  if (it == operations_.end()) {
    return nullptr;
  }
  return &it->second;
}

std::vector<std::string> TypeManager::OperationNames() const {
  std::vector<std::string> names;
  names.reserve(operations_.size());
  for (const auto& [name, spec] : operations_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace eden
