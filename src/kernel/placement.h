// Placement policy: given the current membership, decide which stations act
// as directory homes for a name and where a rebalanced object should land.
// Two policies ship: the modulo policy (bit-identical to the static layout
// the directory used before elastic membership, so existing seeds reproduce)
// and a consistent-hash ring that keeps most assignments stable across
// join/leave churn (DESIGN.md §16).
#ifndef EDEN_SRC_KERNEL_PLACEMENT_H_
#define EDEN_SRC_KERNEL_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/kernel/message.h"
#include "src/kernel/name.h"
#include "src/net/lan.h"

namespace eden {

// Per-node lifecycle (DESIGN.md §16). Joining nodes already serve directory
// partitions (they are members) but are still warming up. A draining node
// leaves the member set immediately — its directory partitions hand off at
// drain start — and the rebalancer then evacuates its objects; kDeparted
// marks the evacuation finished and the node detached.
enum class NodeLifecycle : uint8_t {
  kJoining = 0,
  kActive = 1,
  kDraining = 2,
  kDeparted = 3,
};

const char* NodeLifecycleName(NodeLifecycle state);

enum class PlacementPolicyKind : uint8_t {
  kModulo = 0,          // hash % members: the historical static layout
  kConsistentHash = 1,  // vnode ring: minimal reshuffle on churn
};

// One member of the installation: its index in EdenSystem::node() order and
// its LAN station. Member lists are always sorted by node index, so every
// node derives the identical view from the same membership epoch.
struct Member {
  size_t node = 0;
  StationId station = 0;

  friend bool operator==(const Member& a, const Member& b) {
    return a.node == b.node && a.station == b.station;
  }
};

class Placement {
 public:
  virtual ~Placement() = default;

  static std::unique_ptr<Placement> Create(PlacementPolicyKind kind);

  virtual PlacementPolicyKind kind() const = 0;

  // Directory homes for `name`: `fanout` distinct stations drawn from
  // `members`. Deterministic for a given (name, members, fanout).
  virtual std::vector<StationId> HomesOf(const ObjectName& name,
                                         const std::vector<Member>& members,
                                         int fanout) const = 0;

  // Where the rebalancer should move `name`, excluding station `avoid`
  // (the draining node). Returns kNoStation when no alternative exists.
  virtual StationId TargetFor(const ObjectName& name,
                              const std::vector<Member>& members,
                              StationId avoid) const = 0;

  // Invalidate any cached structure (e.g. the hash ring) after a membership
  // change. Policies also rebuild lazily on a member-set fingerprint, so
  // callers that construct member lists ad hoc still get correct answers.
  virtual void OnMembershipChange(const std::vector<Member>& /*members*/) {}
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_PLACEMENT_H_
