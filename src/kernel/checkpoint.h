// Checkpoint policy (paper section 4.4): "an object may specify, through the
// checksite primitive, which node is responsible for maintaining its
// long-term storage, and what level of reliability is required. Different
// reliability levels may cause different actions when a checkpoint is
// issued."
#ifndef EDEN_SRC_KERNEL_CHECKPOINT_H_
#define EDEN_SRC_KERNEL_CHECKPOINT_H_

#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/net/lan.h"

namespace eden {

enum class ReliabilityLevel : uint8_t {
  // The representation is written to the primary checksite's disk only.
  kLocal = 0,
  // Written to the primary checksite and, synchronously, to a mirror site;
  // the checkpoint completes only when both are durable.
  kMirrored = 1,
};

// Leading tag byte of an on-disk checkpoint record (DESIGN.md §10). A base
// record carries the full representation; a delta carries only the segments
// dirtied since the previous record in the chain. Any other leading byte is
// treated as corruption (DataLoss on restore).
enum class CheckpointRecordKind : uint8_t {
  kBase = 1,
  kDelta = 2,
};

struct CheckpointPolicy {
  // Node whose stable store holds the authoritative long-term state. This is
  // also where the object reincarnates after a failure. It "need not be the
  // node responsible for supporting its active execution".
  StationId primary_site = 0;
  ReliabilityLevel level = ReliabilityLevel::kLocal;
  StationId mirror_site = 0;  // meaningful only for kMirrored

  void Encode(BufferWriter& writer) const {
    writer.WriteU32(primary_site);
    writer.WriteU8(static_cast<uint8_t>(level));
    writer.WriteU32(mirror_site);
  }

  bool operator==(const CheckpointPolicy& other) const {
    return primary_site == other.primary_site && level == other.level &&
           mirror_site == other.mirror_site;
  }

  static StatusOr<CheckpointPolicy> Decode(BufferReader& reader) {
    CheckpointPolicy policy;
    EDEN_ASSIGN_OR_RETURN(policy.primary_site, reader.ReadU32());
    EDEN_ASSIGN_OR_RETURN(uint8_t level, reader.ReadU8());
    if (level > static_cast<uint8_t>(ReliabilityLevel::kMirrored)) {
      return InvalidArgumentError("bad reliability level");
    }
    policy.level = static_cast<ReliabilityLevel>(level);
    EDEN_ASSIGN_OR_RETURN(policy.mirror_site, reader.ReadU32());
    return policy;
  }
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_CHECKPOINT_H_
