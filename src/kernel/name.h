// ObjectName: "a system-wide, unique-for-all-time binary identifier for the
// object; the name is location-independent, although it may indicate where
// the object was created" (paper section 4.1, Figure 4).
#ifndef EDEN_SRC_KERNEL_NAME_H_
#define EDEN_SRC_KERNEL_NAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace eden {

class ObjectName {
 public:
  constexpr ObjectName() = default;
  constexpr ObjectName(uint32_t birth_node, uint64_t sequence, uint32_t disambiguator)
      : birth_node_(birth_node), sequence_(sequence), disambiguator_(disambiguator) {}

  static constexpr ObjectName Null() { return ObjectName(); }

  bool IsNull() const {
    return birth_node_ == 0 && sequence_ == 0 && disambiguator_ == 0;
  }

  // The node on which the object was created: a *hint*, never authoritative
  // for location (objects move).
  uint32_t birth_node() const { return birth_node_; }
  uint64_t sequence() const { return sequence_; }
  uint32_t disambiguator() const { return disambiguator_; }

  bool operator==(const ObjectName& other) const {
    return birth_node_ == other.birth_node_ && sequence_ == other.sequence_ &&
           disambiguator_ == other.disambiguator_;
  }
  bool operator!=(const ObjectName& other) const { return !(*this == other); }
  bool operator<(const ObjectName& other) const {
    if (birth_node_ != other.birth_node_) {
      return birth_node_ < other.birth_node_;
    }
    if (sequence_ != other.sequence_) {
      return sequence_ < other.sequence_;
    }
    return disambiguator_ < other.disambiguator_;
  }

  void Encode(BufferWriter& writer) const;
  static StatusOr<ObjectName> Decode(BufferReader& reader);

  // Stable string key for storage indices: "obj/<birth>/<seq>/<disamb>".
  std::string ToKey() const;
  // Inverse of ToKey. Rejects anything that is not exactly a base object key
  // (delta-chain suffixes like "#d3" fail), so store scans can recover the
  // names behind checkpoint keys.
  static StatusOr<ObjectName> FromKey(std::string_view key);
  // Human-readable: "obj-2.17".
  std::string ToString() const;

 private:
  uint32_t birth_node_ = 0;
  uint64_t sequence_ = 0;
  uint32_t disambiguator_ = 0;
};

// Hash functor for unordered containers keyed by ObjectName (kernel location
// cache and friends). FNV-style mix over the three fields; iteration order
// of such containers must never be observable (wire traffic, promise
// completion order) — keep a sorted structure where it is.
struct ObjectNameHash {
  size_t operator()(const ObjectName& name) const {
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(name.birth_node());
    mix(name.sequence());
    mix(name.disambiguator());
    return static_cast<size_t>(h);
  }
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_NAME_H_
