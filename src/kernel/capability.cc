#include "src/kernel/capability.h"

namespace eden {

void Capability::Encode(BufferWriter& writer) const {
  name_.Encode(writer);
  writer.WriteU32(rights_.bits());
}

StatusOr<Capability> Capability::Decode(BufferReader& reader) {
  EDEN_ASSIGN_OR_RETURN(ObjectName name, ObjectName::Decode(reader));
  EDEN_ASSIGN_OR_RETURN(uint32_t bits, reader.ReadU32());
  return Capability(name, Rights(bits));
}

std::string Capability::ToString() const {
  return "<" + name_.ToString() + " " + rights_.ToString() + ">";
}

}  // namespace eden
