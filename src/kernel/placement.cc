#include "src/kernel/placement.h"

#include <algorithm>

namespace eden {

namespace {

// splitmix64: cheap, well-distributed mixer for ring points and fingerprints.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t MembersFingerprint(const std::vector<Member>& members) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const Member& m : members) {
    h = Mix64(h ^ m.node);
    h = Mix64(h ^ m.station);
  }
  return h;
}

// The historical layout: first home = hash % member count, fanout homes on
// consecutive members. With all nodes active this reproduces the pre-elastic
// DirectoryLocation::HomesOf exactly, so seeded runs stay bit-identical.
class ModuloPlacement : public Placement {
 public:
  PlacementPolicyKind kind() const override {
    return PlacementPolicyKind::kModulo;
  }

  std::vector<StationId> HomesOf(const ObjectName& name,
                                 const std::vector<Member>& members,
                                 int fanout) const override {
    std::vector<StationId> homes;
    if (members.empty()) {
      return homes;
    }
    const size_t count = members.size();
    const size_t first = ObjectNameHash{}(name) % count;
    const size_t want = std::min<size_t>(std::max(1, fanout), count);
    homes.reserve(want);
    for (size_t k = 0; k < want; ++k) {
      homes.push_back(members[(first + k) % count].station);
    }
    return homes;
  }

  StationId TargetFor(const ObjectName& name,
                      const std::vector<Member>& members,
                      StationId avoid) const override {
    std::vector<Member> eligible;
    eligible.reserve(members.size());
    for (const Member& m : members) {
      if (m.station != avoid) {
        eligible.push_back(m);
      }
    }
    if (eligible.empty()) {
      return kNoStation;
    }
    return eligible[ObjectNameHash{}(name) % eligible.size()].station;
  }
};

// Consistent-hash ring with kVnodes points per member. Assignments move only
// when the arc they sit on changes owner, so a join or leave reshuffles
// ~1/N of the keyspace instead of nearly all of it (membership_test pins the
// comparison against the modulo policy).
class ConsistentHashPlacement : public Placement {
 public:
  static constexpr int kVnodes = 32;

  PlacementPolicyKind kind() const override {
    return PlacementPolicyKind::kConsistentHash;
  }

  std::vector<StationId> HomesOf(const ObjectName& name,
                                 const std::vector<Member>& members,
                                 int fanout) const override {
    EnsureRing(members);
    std::vector<StationId> homes;
    if (ring_.empty()) {
      return homes;
    }
    const size_t want = std::min<size_t>(std::max(1, fanout), members.size());
    const uint64_t point = NamePoint(name);
    size_t i = LowerBound(point);
    homes.reserve(want);
    while (homes.size() < want) {
      const StationId s = ring_[i].second;
      if (std::find(homes.begin(), homes.end(), s) == homes.end()) {
        homes.push_back(s);
      }
      i = (i + 1) % ring_.size();
    }
    return homes;
  }

  StationId TargetFor(const ObjectName& name,
                      const std::vector<Member>& members,
                      StationId avoid) const override {
    EnsureRing(members);
    if (ring_.empty()) {
      return kNoStation;
    }
    bool any_other = false;
    for (const Member& m : members) {
      if (m.station != avoid) {
        any_other = true;
        break;
      }
    }
    if (!any_other) {
      return kNoStation;
    }
    const uint64_t point = NamePoint(name);
    size_t i = LowerBound(point);
    for (size_t walked = 0; walked < ring_.size(); ++walked) {
      const StationId s = ring_[i].second;
      if (s != avoid) {
        return s;
      }
      i = (i + 1) % ring_.size();
    }
    return kNoStation;
  }

  void OnMembershipChange(const std::vector<Member>& /*members*/) override {
    fingerprint_ = 0;  // force rebuild on next query
  }

 private:
  static uint64_t NamePoint(const ObjectName& name) {
    return Mix64(static_cast<uint64_t>(ObjectNameHash{}(name)));
  }

  void EnsureRing(const std::vector<Member>& members) const {
    const uint64_t fp = MembersFingerprint(members);
    if (fp == fingerprint_ && !members.empty()) {
      return;
    }
    fingerprint_ = fp;
    ring_.clear();
    ring_.reserve(members.size() * kVnodes);
    for (const Member& m : members) {
      for (int v = 0; v < kVnodes; ++v) {
        const uint64_t point =
            Mix64((static_cast<uint64_t>(m.station) << 16) ^
                  static_cast<uint64_t>(v) ^ 0xede5ead0ull);
        ring_.emplace_back(point, m.station);
      }
    }
    std::sort(ring_.begin(), ring_.end());
  }

  size_t LowerBound(uint64_t point) const {
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point,
        [](const std::pair<uint64_t, StationId>& e, uint64_t p) {
          return e.first < p;
        });
    if (it == ring_.end()) {
      return 0;
    }
    return static_cast<size_t>(it - ring_.begin());
  }

  mutable uint64_t fingerprint_ = 0;
  mutable std::vector<std::pair<uint64_t, StationId>> ring_;
};

}  // namespace

const char* NodeLifecycleName(NodeLifecycle state) {
  switch (state) {
    case NodeLifecycle::kJoining:
      return "joining";
    case NodeLifecycle::kActive:
      return "active";
    case NodeLifecycle::kDraining:
      return "draining";
    case NodeLifecycle::kDeparted:
      return "departed";
  }
  return "?";
}

std::unique_ptr<Placement> Placement::Create(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kConsistentHash:
      return std::make_unique<ConsistentHashPlacement>();
    case PlacementPolicyKind::kModulo:
      break;
  }
  return std::make_unique<ModuloPlacement>();
}

}  // namespace eden
