// Background rebalancer (DESIGN.md §16): streams objects off draining (and,
// optionally, overloaded) nodes using the existing move + checkpoint-resite
// machinery, rate-limited so live traffic keeps its SLOs. Runs as a periodic
// simulation task owned by EdenSystem; parks itself when there is no work.
#ifndef EDEN_SRC_KERNEL_REBALANCER_H_
#define EDEN_SRC_KERNEL_REBALANCER_H_

#include <cstddef>
#include <set>

#include "src/kernel/name.h"
#include "src/net/lan.h"
#include "src/sim/time.h"

namespace eden {

class EdenSystem;

struct RebalanceConfig {
  // Pacing: one pass over the draining set per tick, with per-tick caps so
  // evacuation shares the wire with live invocations.
  SimDuration tick = Milliseconds(10);
  // In-flight object moves initiated by the rebalancer (across all drains).
  int max_moves_in_flight = 2;
  // Passive checkpoints re-activated (for evacuation) per tick.
  int max_activations_per_tick = 2;
  // Checkpoint chains re-sited away from draining stores per tick.
  int max_resites_per_tick = 2;
  // When > 0, the rebalancer also levels load between active members: while
  // the fullest member holds more than `spread_gap` objects above the
  // leanest, it moves one object per tick toward the leanest. This is what
  // refills a rejoined node after a rolling restart. 0 disables the pass.
  int spread_gap = 0;
  // Rate-aware spread (DESIGN.md §17): rank members by *observed load* — the
  // windowed per-node invocation-dispatch rate from the telemetry time
  // series — instead of by object count, so one node holding a few hot
  // objects sheds work to an idle peer holding many cold ones. Requires the
  // telemetry pipeline (EnableTelemetry); without it, or with this flag off
  // (the default), the pass is bit-identical to the count-based ranking.
  // The move happens when the fullest member's windowed dispatch count
  // exceeds the leanest's by more than spread_rate_gap events.
  bool spread_by_load = false;
  double spread_rate_gap = 64.0;
  // Window width in scrape ticks for the rate sums.
  size_t spread_rate_window = 8;
};

class Rebalancer {
 public:
  Rebalancer(EdenSystem& system, RebalanceConfig config);

  const RebalanceConfig& config() const { return config_; }
  void set_spread_gap(int gap) { config_.spread_gap = gap; }

  // Starts the periodic tick if it is not already running. Called whenever
  // membership changes create potential work (drain started, node joined).
  void EnsureRunning();

  // True when node `index` holds no state that departure would lose: no
  // active objects, no in-flight protocol entries and — when the drain
  // evacuates passively-stored state — no checkpoint chains either.
  bool DrainComplete(size_t index) const;

 private:
  void Tick();
  // Returns true if any work was found (keeps the tick loop alive).
  bool RunOnePass();
  bool EvacuateActives(size_t index);
  bool ReactivatePassives(size_t index);
  bool ResiteCheckpoints();
  bool SpreadLoad();
  // The spread_by_load variant: same one-move-per-tick pacing, members
  // ranked by windowed dispatch rate from the telemetry series.
  bool SpreadByLoad();
  // Starts one rebalancer move (drain_threshold 0: full quiesce) if a target
  // exists and the in-flight cap allows; returns whether it did.
  bool StartMove(size_t from_index, const ObjectName& name,
                 StationId destination);

  EdenSystem& system_;
  RebalanceConfig config_;
  bool running_ = false;
  int moves_in_flight_ = 0;
  // Objects whose checkpoint chain is being re-sited right now; guards
  // against re-issuing the (asynchronous) resite every tick.
  std::set<ObjectName> resites_in_flight_;
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_REBALANCER_H_
