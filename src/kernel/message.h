// Kernel-to-kernel wire messages. Each message is encoded with a one-byte
// kind tag followed by its fields; everything rides the reliable (or, for
// location broadcasts, best-effort) transport.
#ifndef EDEN_SRC_KERNEL_MESSAGE_H_
#define EDEN_SRC_KERNEL_MESSAGE_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/kernel/capability.h"
#include "src/kernel/checkpoint.h"
#include "src/kernel/invoke.h"
#include "src/kernel/representation.h"
#include "src/net/lan.h"
#include "src/trace/span.h"

namespace eden {

enum class MessageKind : uint8_t {
  kInvokeRequest = 1,
  kInvokeReply = 2,
  // "I don't host this object (any more); try `new_host`, or re-locate if I
  // have no forwarding address."
  kInvokeRedirect = 3,
  kLocateRequest = 4,   // broadcast
  kLocateReply = 5,
  kMoveTransfer = 6,
  kMoveAck = 7,
  kCheckpointPut = 8,   // remote write of long-term state to a checksite
  kCheckpointAck = 9,
  kCheckpointErase = 10,  // destroy: remove long-term state
  kReplicaFetch = 11,   // pull a frozen object's representation for caching
  kReplicaReply = 12,
  // Peer-health probe (DESIGN.md §11). Carries nothing: the transport-level
  // ack of this reliable send is the "peer is alive" answer, so no reply
  // message exists.
  kPing = 13,
  // Partitioned directory location service (DESIGN.md §13). All three ride
  // best-effort: a lost update or reply is repaired lazily by the broadcast
  // fallback, never retransmitted.
  kDirectoryUpdate = 14,  // residence publish to the object's home node(s)
  kDirectoryLookup = 15,
  kDirectoryReply = 16,
  // Lease-based read caching of mutable objects (DESIGN.md §15). The home
  // node pushes a grant (with a representation snapshot) to a reader; writes
  // recall outstanding leases, holders answer with a release. All three ride
  // the reliable transport — a recall lost under a partition is bounded by
  // the lease's expiry, never by an unbounded retry.
  kLeaseGrant = 17,
  kLeaseRecall = 18,
  kLeaseRelease = 19,
};

// Reads the kind tag without consuming the rest.
StatusOr<MessageKind> PeekMessageKind(BytesView message);

constexpr StationId kNoStationRequest = 0xfffffffeu;

struct InvokeRequestMsg {
  uint64_t invocation_id = 0;
  StationId reply_to = 0;
  Capability target;
  std::string operation;
  InvokeArgs args;
  // Hosts the invoker found dead or ignorant while chasing this object. The
  // receiving kernel invalidates any forwarding address pointing at one of
  // them (the active copy is gone; checkpoints are now authoritative).
  std::vector<StationId> avoid_hosts;
  // Causal context of the invoking client's span (DESIGN.md §12). Encoded
  // fixed-width — all-zero when tracing is off — so the message size never
  // depends on whether a collector is attached.
  SpanContext span;

  Bytes Encode() const;
  static StatusOr<InvokeRequestMsg> Decode(BytesView message);
};

struct InvokeReplyMsg {
  uint64_t invocation_id = 0;
  InvokeResult result;
  // Tells the invoking kernel the target is frozen, so it may cache a
  // replica (paper section 4.3).
  bool target_frozen = false;
  // Lease renewal piggyback (DESIGN.md §15): when nonzero, the home extends
  // the invoker's read lease on the target to this absolute expiry. Encoded
  // fixed-width — always present, zero when leases are off — so message
  // sizes never depend on the lease configuration.
  uint64_t lease_renew_expiry = 0;

  Bytes Encode() const;
  static StatusOr<InvokeReplyMsg> Decode(BytesView message);
};

constexpr StationId kNoStation = 0xfffffffeu;

struct InvokeRedirectMsg {
  uint64_t invocation_id = 0;
  ObjectName name;
  // kNoStation when the sender has no forwarding address.
  StationId new_host = kNoStation;
  // Version stamp of the forwarding hint: the time `new_host` acquired the
  // object, as reported by its move ack. The invoker's location cache merges
  // by epoch (newer wins), so a hint older than what the cache already holds
  // is dropped rather than followed. 0 = unversioned.
  uint64_t epoch = 0;

  Bytes Encode() const;
  static StatusOr<InvokeRedirectMsg> Decode(BytesView message);
};

struct LocateRequestMsg {
  uint64_t query_id = 0;
  StationId reply_to = 0;
  ObjectName name;
  // Causal context of the locate span driving this broadcast (fixed-width).
  SpanContext span;

  Bytes Encode() const;
  static StatusOr<LocateRequestMsg> Decode(BytesView message);
};

struct LocateReplyMsg {
  uint64_t query_id = 0;
  ObjectName name;
  StationId host = 0;
  // True if the object is active at `host`; false if `host` merely holds its
  // checkpoint (and would reincarnate it on demand).
  bool active = false;
  // Residence-acquisition time at `host` (0 for passive holders): lets the
  // directory backend push a correctly-versioned repair to the home node
  // after a fallback broadcast.
  uint64_t epoch = 0;

  Bytes Encode() const;
  static StatusOr<LocateReplyMsg> Decode(BytesView message);
};

struct MoveTransferMsg {
  uint64_t transfer_id = 0;
  StationId source = 0;
  ObjectName name;
  std::string type_name;
  Representation representation;
  CheckpointPolicy policy;
  bool frozen = false;
  // Causal context of the source-side move span (fixed-width).
  SpanContext span;
  // The source's at-most-once reply cache entries for this object, carried
  // so a retried request that lands at the new home after the move is
  // re-replied there instead of re-executed.
  struct CachedReplyEntry {
    uint64_t invocation_id = 0;
    InvokeResult result;
    bool frozen = false;
  };
  std::vector<CachedReplyEntry> cached_replies;

  Bytes Encode() const;
  static StatusOr<MoveTransferMsg> Decode(BytesView message);
};

struct MoveAckMsg {
  uint64_t transfer_id = 0;
  ObjectName name;
  bool accepted = false;
  // The residence epoch the destination minted at move-in (0 on refusal).
  // The source stamps its forwarding hint with this — not with its own
  // clock, which could overtake a later move's epoch and pin a stale hint.
  uint64_t epoch = 0;

  Bytes Encode() const;
  static StatusOr<MoveAckMsg> Decode(BytesView message);
};

struct CheckpointPutMsg {
  uint64_t request_id = 0;
  StationId reply_to = 0;
  ObjectName name;
  // Encoded checkpoint record: a base record (full representation) when
  // delta_seq == 0, else link `delta_seq` of the object's delta chain.
  // Refcounted so the receiving checksite stores it without another copy.
  SharedBytes record;
  // Mirror copies are redundancy only: they do not answer locate queries, so
  // a mirrored object still has a single authoritative passive home.
  bool is_mirror = false;
  // 0 = base record; k > 0 = k-th delta since the last base. The checksite
  // rejects a delta whose predecessor is missing, so stored chains are
  // always contiguous.
  uint64_t delta_seq = 0;
  // Causal context of the checkpoint span at the object's host, so the
  // checksite's store-write span links across nodes (fixed-width).
  SpanContext span;

  Bytes Encode() const;
  static StatusOr<CheckpointPutMsg> Decode(BytesView message);
};

struct CheckpointAckMsg {
  uint64_t request_id = 0;
  bool ok = false;

  Bytes Encode() const;
  static StatusOr<CheckpointAckMsg> Decode(BytesView message);
};

struct CheckpointEraseMsg {
  ObjectName name;

  Bytes Encode() const;
  static StatusOr<CheckpointEraseMsg> Decode(BytesView message);
};

struct ReplicaFetchMsg {
  uint64_t request_id = 0;
  StationId reply_to = 0;
  ObjectName name;
  // Causal context of the invocation whose reply prompted the fetch.
  SpanContext span;

  Bytes Encode() const;
  static StatusOr<ReplicaFetchMsg> Decode(BytesView message);
};

struct ReplicaReplyMsg {
  uint64_t request_id = 0;
  ObjectName name;
  bool ok = false;
  std::string type_name;
  Representation representation;

  Bytes Encode() const;
  static StatusOr<ReplicaReplyMsg> Decode(BytesView message);
};

struct PingMsg {
  Bytes Encode() const;
  static StatusOr<PingMsg> Decode(BytesView message);
};

// Residence publish to a home node (DESIGN.md §13). Sent by the host that
// acquired the object (create, move-in, reincarnation), by a fallback
// resolver repairing the directory, or — with `removal` — by the destroyer.
struct DirectoryUpdateMsg {
  ObjectName name;
  StationId host = kNoStation;
  // Residence-acquisition time at `host`; the home merges by epoch (strictly
  // newer wins, equal-epoch active beats passive, 0 only fills empty slots).
  uint64_t epoch = 0;
  bool active = false;
  // Tombstone: drop the record if its epoch is <= this update's epoch.
  bool removal = false;

  Bytes Encode() const;
  static StatusOr<DirectoryUpdateMsg> Decode(BytesView message);
};

struct DirectoryLookupMsg {
  uint64_t query_id = 0;
  StationId reply_to = 0;
  ObjectName name;
  // Hosts the querying invocations proved dead: the home drops a record
  // pointing at one of them instead of returning the stale answer.
  std::vector<StationId> avoid_hosts;
  // Causal context of the locate round driving this lookup (fixed-width).
  SpanContext span;

  Bytes Encode() const;
  static StatusOr<DirectoryLookupMsg> Decode(BytesView message);
};

// Read-lease grant pushed by an object's home node (DESIGN.md §15). Carries
// a snapshot of the representation; the holder installs it as a local cached
// copy and serves read-class invocations from it until `expiry`.
struct LeaseGrantMsg {
  ObjectName name;
  std::string type_name;
  Representation representation;
  // Absolute virtual-time expiry of the lease.
  uint64_t expiry = 0;
  // Lease version: (epoch, seq) compared lexicographically. `epoch` is the
  // home's residence epoch for the object (so grants from a pre-move or
  // pre-crash home lose to later recalls); `seq` is a per-object counter at
  // that home. A holder that released in answer to recall (e, s) refuses any
  // grant versioned <= (e, s) — a late grant can never resurrect a lease the
  // writer already believes recalled.
  uint64_t epoch = 0;
  uint64_t seq = 0;

  Bytes Encode() const;
  static StatusOr<LeaseGrantMsg> Decode(BytesView message);
};

// Home -> holder: give the lease back (a write is waiting). The holder drops
// its cached copy immediately and answers with LeaseRelease; if this message
// is lost (partition), the home's backstop timer waits out the lease expiry
// instead — the writer is delayed, never fed stale state.
struct LeaseRecallMsg {
  ObjectName name;
  uint64_t epoch = 0;
  uint64_t seq = 0;
  // Causal context of the home-side kLease span (fixed-width), so the
  // recall's wire legs and the holder-side handling link into the writing
  // invocation's trace.
  SpanContext span;

  Bytes Encode() const;
  static StatusOr<LeaseRecallMsg> Decode(BytesView message);
};

// Holder -> home: lease dropped. Sent in answer to a recall (echoing its
// version) and voluntarily when a holder discards an expired entry.
struct LeaseReleaseMsg {
  ObjectName name;
  StationId holder = kNoStation;
  uint64_t epoch = 0;
  uint64_t seq = 0;

  Bytes Encode() const;
  static StatusOr<LeaseReleaseMsg> Decode(BytesView message);
};

struct DirectoryReplyMsg {
  uint64_t query_id = 0;
  ObjectName name;
  // False when the home has no record: the querier falls back to one
  // broadcast round and repairs the home from whatever answers.
  bool known = false;
  StationId host = kNoStation;
  uint64_t epoch = 0;
  bool active = false;

  Bytes Encode() const;
  static StatusOr<DirectoryReplyMsg> Decode(BytesView message);
};

}  // namespace eden

#endif  // EDEN_SRC_KERNEL_MESSAGE_H_
