// Synthetic workload generation for benchmarks and system tests: closed-loop
// clients (think-time model, one outstanding request each) and open-loop
// Poisson arrival drivers, plus a latency recorder with fixed power-of-two
// buckets. All time is virtual; all randomness is seeded through the
// simulation, so workloads are reproducible.
#ifndef EDEN_SRC_WORKLOAD_WORKLOAD_H_
#define EDEN_SRC_WORKLOAD_WORKLOAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/eden_system.h"

namespace eden {

// Latency statistics with 20 power-of-two buckets from 1 us up.
class LatencyRecorder {
 public:
  void Record(SimDuration latency);
  // Folds another recorder's samples into this one (sharded runs keep one
  // recorder per client, merged in client order after the run).
  void Merge(const LatencyRecorder& other);

  uint64_t count() const { return count_; }
  SimDuration mean() const {
    return count_ == 0 ? 0 : total_ / static_cast<SimDuration>(count_);
  }
  SimDuration max() const { return max_; }
  SimDuration min() const { return count_ == 0 ? 0 : min_; }
  // Latency below which `fraction` (0..1) of samples fall (bucket-resolution).
  SimDuration Percentile(double fraction) const;
  std::string Histogram() const;

 private:
  static constexpr size_t kBuckets = 20;
  uint64_t count_ = 0;
  SimDuration total_ = 0;
  SimDuration max_ = 0;
  SimDuration min_ = 0;
  uint64_t buckets_[kBuckets] = {};
};

// What one client issues: given the issuing client index and a sequence
// number, produce (target, operation, args). A non-empty metrics_class tags
// the invocation for per-class latency/error accounting — the series the
// telemetry SLO engine evaluates (DESIGN.md §17).
struct WorkItem {
  Capability target;
  std::string operation;
  InvokeArgs args;
  // Defaulted explicitly so three-field aggregate initialization at existing
  // call sites stays warning-free.
  std::string metrics_class = {};
};
using WorkFactory = std::function<WorkItem(size_t client, uint64_t seq)>;

struct WorkloadStats {
  uint64_t completed = 0;
  uint64_t failed = 0;
  LatencyRecorder latency;

  double ThroughputPerVirtualSecond(SimDuration window) const {
    return static_cast<double>(completed) / ToSeconds(window);
  }
  double AvailabilityPercent() const {
    uint64_t total = completed + failed;
    return total == 0 ? 100.0
                      : 100.0 * static_cast<double>(completed) /
                            static_cast<double>(total);
  }
};

// Closed loop: `client_nodes.size()` clients, each with one outstanding
// invocation and exponentially-distributed think time between requests.
// Runs for `duration` of virtual time and returns aggregate stats.
//
// Under the parallel sharded engine the clients run on their nodes' shard
// clocks with per-client think rngs (seeded from the system seed and the
// client index, so draws are independent of the shard layout), the bulk of
// the window executes threaded, and per-client stats merge in client order —
// aggregate results are deterministic and layout-independent.
WorkloadStats RunClosedLoop(EdenSystem& system,
                            const std::vector<size_t>& client_nodes,
                            WorkFactory factory, SimDuration duration,
                            SimDuration mean_think_time = 0,
                            SimDuration per_request_timeout = Seconds(10));

// Elastic closed loop (DESIGN.md §16): like RunClosedLoop, but clients are
// not pinned to nodes — each client re-picks its issuing node every
// iteration from the current live member set (joining + active, not failed),
// so traffic follows membership through drains, departures and rejoins. If
// no member is live, the client naps briefly and retries rather than dying.
// Single-threaded systems only (membership operations are too).
WorkloadStats RunClosedLoopElastic(EdenSystem& system, size_t clients,
                                   WorkFactory factory, SimDuration duration,
                                   SimDuration mean_think_time = 0,
                                   SimDuration per_request_timeout =
                                       Seconds(10));

// Open loop: Poisson arrivals at `rate_per_sec` aggregate, issued round-robin
// from `client_nodes`, independent of completions. Returns once every issued
// request resolves (so tail latencies under overload are captured).
// Single-threaded systems only (the central arrival process would serialize
// the shards anyway).
WorkloadStats RunOpenLoop(EdenSystem& system,
                          const std::vector<size_t>& client_nodes,
                          WorkFactory factory, double rate_per_sec,
                          SimDuration duration,
                          SimDuration per_request_timeout = Seconds(10));

}  // namespace eden

#endif  // EDEN_SRC_WORKLOAD_WORKLOAD_H_
