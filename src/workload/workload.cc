#include "src/workload/workload.h"

#include <cassert>
#include <cstdio>
#include <utility>

#include "src/common/log.h"

namespace eden {

void LatencyRecorder::Record(SimDuration latency) {
  if (count_ == 0 || latency < min_) {
    min_ = latency;
  }
  if (latency > max_) {
    max_ = latency;
  }
  count_++;
  total_ += latency;
  // Bucket i holds latencies in [2^i, 2^(i+1)) microseconds.
  SimDuration us = latency / 1000;
  size_t bucket = 0;
  while (bucket + 1 < kBuckets && us >= (1ll << (bucket + 1))) {
    bucket++;
  }
  buckets_[bucket]++;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
  count_ += other.count_;
  total_ += other.total_;
  for (size_t i = 0; i < kBuckets; i++) {
    buckets_[i] += other.buckets_[i];
  }
}

SimDuration LatencyRecorder::Percentile(double fraction) const {
  if (count_ == 0) {
    return 0;
  }
  uint64_t want = static_cast<uint64_t>(fraction * static_cast<double>(count_));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; i++) {
    seen += buckets_[i];
    if (seen > want) {
      return Microseconds(1ll << (i + 1));  // bucket upper bound
    }
  }
  return max_;
}

std::string LatencyRecorder::Histogram() const {
  std::string out;
  for (size_t i = 0; i < kBuckets; i++) {
    if (buckets_[i] == 0) {
      continue;
    }
    char line[96];
    std::snprintf(line, sizeof(line), "  [%6lld us - %6lld us): %llu\n",
                  static_cast<long long>(1ll << i),
                  static_cast<long long>(1ll << (i + 1)),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  return out;
}

namespace {

struct SharedRun {
  WorkloadStats stats;
  int live_clients = 0;
  uint64_t outstanding = 0;
  bool issuing_done = false;
};

// One closed-loop client. Parameters (not captures) so the frame owns them.
Task<void> ClosedLoopClient(EdenSystem* system, size_t client_index,
                            size_t node_index, WorkFactory factory,
                            SimTime deadline, SimDuration mean_think,
                            SimDuration timeout,
                            std::shared_ptr<SharedRun> run) {
  uint64_t seq = 0;
  // Named local, not an inline temporary: see the note on kDefaultInvokeOptions.
  InvokeOptions options = InvokeOptions::WithTimeout(timeout);
  while (system->sim().now() < deadline) {
    WorkItem item = factory(client_index, seq++);
    options.metrics_class = item.metrics_class;
    SimTime start = system->sim().now();
    InvokeResult result = co_await system->node(node_index)
                              .Invoke(item.target, item.operation,
                                      std::move(item.args), options);
    if (result.ok()) {
      run->stats.completed++;
      run->stats.latency.Record(system->sim().now() - start);
    } else {
      run->stats.failed++;
    }
    if (mean_think > 0) {
      SimDuration think = static_cast<SimDuration>(
          system->sim().rng().NextExponential(static_cast<double>(mean_think)));
      co_await SleepFor(system->sim(), think);
    }
  }
  run->live_clients--;
}

// One elastic closed-loop client: re-picks its issuing node from the live
// member set before every request, so it keeps driving load while nodes
// drain, depart and rejoin underneath it.
Task<void> ElasticClosedLoopClient(EdenSystem* system, size_t client_index,
                                   WorkFactory factory, SimTime deadline,
                                   SimDuration mean_think, SimDuration timeout,
                                   std::shared_ptr<SharedRun> run) {
  uint64_t seq = 0;
  // Named local, not an inline temporary: see the note on kDefaultInvokeOptions.
  InvokeOptions options = InvokeOptions::WithTimeout(timeout);
  while (system->sim().now() < deadline) {
    std::vector<size_t> live;
    for (const Member& m : system->members()) {
      if (!system->node(m.node).failed()) {
        live.push_back(m.node);
      }
    }
    if (live.empty()) {
      co_await SleepFor(system->sim(), Milliseconds(1));
      continue;
    }
    // Deterministic spread: client c sticks to the (c mod live)-th live
    // member until membership shifts under it.
    size_t node_index = live[client_index % live.size()];
    WorkItem item = factory(client_index, seq++);
    options.metrics_class = item.metrics_class;
    SimTime start = system->sim().now();
    InvokeResult result = co_await system->node(node_index)
                              .Invoke(item.target, item.operation,
                                      std::move(item.args), options);
    if (result.ok()) {
      run->stats.completed++;
      run->stats.latency.Record(system->sim().now() - start);
    } else {
      run->stats.failed++;
    }
    if (mean_think > 0) {
      SimDuration think = static_cast<SimDuration>(
          system->sim().rng().NextExponential(static_cast<double>(mean_think)));
      co_await SleepFor(system->sim(), think);
    }
  }
  run->live_clients--;
}

// One open-loop request (fire-and-record).
Task<void> OpenLoopRequest(EdenSystem* system, size_t node_index, WorkItem item,
                           SimDuration timeout, std::shared_ptr<SharedRun> run) {
  SimTime start = system->sim().now();
  // Named local, not an inline temporary: see the note on kDefaultInvokeOptions.
  InvokeOptions options = InvokeOptions::WithTimeout(timeout);
  options.metrics_class = item.metrics_class;
  InvokeResult result =
      co_await system->node(node_index)
          .Invoke(item.target, item.operation, std::move(item.args), options);
  if (result.ok()) {
    run->stats.completed++;
    run->stats.latency.Record(system->sim().now() - start);
  } else {
    run->stats.failed++;
  }
  run->outstanding--;
}

// Per-client state for the sharded path. Each client writes only its own
// entry, and only from its node's shard thread, so the threaded window needs
// no synchronization; `done` is read by the driver after the worker threads
// join (RunUntil) or between single-threaded rounds (DriveWhile).
struct ShardedClientRun {
  WorkloadStats stats;
  bool done = false;
  // Think-time draws come from here instead of the shared simulation rng:
  // seeded by system seed and client index only, so each client's draw
  // sequence is identical under any shard layout.
  Rng rng{1};
};

// The sharded counterpart of ClosedLoopClient: clocked by the node's shard
// simulation and recording into its private ShardedClientRun.
Task<void> ShardedClosedLoopClient(EdenSystem* system, size_t client_index,
                                   size_t node_index, WorkFactory factory,
                                   SimTime deadline, SimDuration mean_think,
                                   SimDuration timeout,
                                   std::shared_ptr<std::vector<ShardedClientRun>> runs) {
  NodeKernel& node = system->node(node_index);
  Simulation& clock = node.sim();
  ShardedClientRun& run = (*runs)[client_index];
  uint64_t seq = 0;
  InvokeOptions options = InvokeOptions::WithTimeout(timeout);
  while (clock.now() < deadline) {
    WorkItem item = factory(client_index, seq++);
    options.metrics_class = item.metrics_class;
    SimTime start = clock.now();
    InvokeResult result = co_await node.Invoke(item.target, item.operation,
                                               std::move(item.args), options);
    if (result.ok()) {
      run.stats.completed++;
      run.stats.latency.Record(clock.now() - start);
    } else {
      run.stats.failed++;
    }
    if (mean_think > 0) {
      SimDuration think = static_cast<SimDuration>(
          run.rng.NextExponential(static_cast<double>(mean_think)));
      co_await SleepFor(clock, think);
    }
  }
  run.done = true;
}

WorkloadStats RunShardedClosedLoop(EdenSystem& system,
                                   const std::vector<size_t>& client_nodes,
                                   WorkFactory factory, SimDuration duration,
                                   SimDuration mean_think_time,
                                   SimDuration per_request_timeout) {
  auto runs =
      std::make_shared<std::vector<ShardedClientRun>>(client_nodes.size());
  SimTime deadline = system.sim().now() + duration;
  for (size_t c = 0; c < client_nodes.size(); c++) {
    (*runs)[c].rng =
        Rng(system.config().seed ^ (0x9e3779b97f4a7c15ULL * (c + 1)));
  }
  for (size_t c = 0; c < client_nodes.size(); c++) {
    Spawn(ShardedClosedLoopClient(&system, c, client_nodes[c], factory,
                                  deadline, mean_think_time,
                                  per_request_timeout, runs));
  }
  // Bulk of the window runs threaded; the tail (requests in flight at the
  // deadline) drains in conservative single-threaded rounds. Any such split
  // executes the identical event sequence (DESIGN.md §14).
  system.RunUntil(deadline);
  bool done = system.DriveWhile([runs] {
    for (const ShardedClientRun& r : *runs) {
      if (!r.done) {
        return true;
      }
    }
    return false;
  });
  assert(done && "sharded closed-loop workload deadlocked");
  (void)done;
  WorkloadStats total;
  for (const ShardedClientRun& r : *runs) {
    total.completed += r.stats.completed;
    total.failed += r.stats.failed;
    total.latency.Merge(r.stats.latency);
  }
  return total;
}

}  // namespace

WorkloadStats RunClosedLoop(EdenSystem& system,
                            const std::vector<size_t>& client_nodes,
                            WorkFactory factory, SimDuration duration,
                            SimDuration mean_think_time,
                            SimDuration per_request_timeout) {
  if (system.sharded()) {
    return RunShardedClosedLoop(system, client_nodes, std::move(factory),
                                duration, mean_think_time,
                                per_request_timeout);
  }
  auto run = std::make_shared<SharedRun>();
  run->live_clients = static_cast<int>(client_nodes.size());
  SimTime deadline = system.sim().now() + duration;
  for (size_t c = 0; c < client_nodes.size(); c++) {
    Spawn(ClosedLoopClient(&system, c, client_nodes[c], factory, deadline,
                           mean_think_time, per_request_timeout, run));
  }
  system.sim().RunWhile([run] { return run->live_clients > 0; });
  return run->stats;
}

WorkloadStats RunClosedLoopElastic(EdenSystem& system, size_t clients,
                                   WorkFactory factory, SimDuration duration,
                                   SimDuration mean_think_time,
                                   SimDuration per_request_timeout) {
  if (system.sharded()) {
    FatalError(
        "RunClosedLoopElastic: elastic membership requires the "
        "single-threaded world (shards == 0); use RunClosedLoop on sharded "
        "systems");
  }
  auto run = std::make_shared<SharedRun>();
  run->live_clients = static_cast<int>(clients);
  SimTime deadline = system.sim().now() + duration;
  for (size_t c = 0; c < clients; c++) {
    Spawn(ElasticClosedLoopClient(&system, c, factory, deadline,
                                  mean_think_time, per_request_timeout, run));
  }
  system.sim().RunWhile([run] { return run->live_clients > 0; });
  return run->stats;
}

WorkloadStats RunOpenLoop(EdenSystem& system,
                          const std::vector<size_t>& client_nodes,
                          WorkFactory factory, double rate_per_sec,
                          SimDuration duration,
                          SimDuration per_request_timeout) {
  if (system.sharded()) {
    FatalError(
        "RunOpenLoop: the central arrival process serializes on the primary "
        "clock and requires the single-threaded world (shards == 0); use "
        "RunClosedLoop on sharded systems");
  }
  auto run = std::make_shared<SharedRun>();
  SimTime deadline = system.sim().now() + duration;
  double mean_gap_ns = 1e9 / rate_per_sec;

  // Arrival process: schedule the next arrival recursively.
  auto seq = std::make_shared<uint64_t>(0);
  std::shared_ptr<std::function<void()>> arrive =
      std::make_shared<std::function<void()>>();
  // Weak self-capture: a strong one would make the closure own itself and
  // leak the whole run state. Each scheduled tick re-locks it, so the chain
  // of pending arrival events keeps the closure alive exactly as long as the
  // arrival process is running.
  std::weak_ptr<std::function<void()>> weak_arrive = arrive;
  *arrive = [&system, client_nodes, factory, deadline, mean_gap_ns, seq, run,
             per_request_timeout, weak_arrive] {
    if (system.sim().now() >= deadline) {
      run->issuing_done = true;
      return;
    }
    uint64_t n = (*seq)++;
    size_t node_index = client_nodes[n % client_nodes.size()];
    run->outstanding++;
    Spawn(OpenLoopRequest(&system, node_index,
                          factory(n % client_nodes.size(), n),
                          per_request_timeout, run));
    SimDuration gap = static_cast<SimDuration>(
        system.sim().rng().NextExponential(mean_gap_ns));
    system.sim().Schedule(gap,
                          [arrive = weak_arrive.lock()] { (*arrive)(); });
  };
  (*arrive)();
  system.sim().RunWhile(
      [run] { return !run->issuing_done || run->outstanding > 0; });
  return run->stats;
}

}  // namespace eden
