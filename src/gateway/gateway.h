// The gateway object type: wraps a ForeignMachine in an "object-like
// interface" (paper section 2). From the outside it is an ordinary Eden
// object — capability-named, location-independent, rights-checked. Inside,
// its operations translate invocations into the foreign host's private
// protocol and relay the answers. The relationship is asymmetric by design:
// the foreign machine can never invoke Eden objects.
//
// Operations:
//   submit (service_name, payload)  -> [response]     queue a foreign job
//   status ()                       -> [hostname, queue_depth, served]
//
// The gateway is also a worked example of a type whose *implementation* holds
// node-local resources (the serial link): it pins itself by refusing move_to
// (overriding the inherited operation) — exactly the sort of
// location-sensitive implementation decision section 4.3 assigns to the type
// programmer.
#ifndef EDEN_SRC_GATEWAY_GATEWAY_H_
#define EDEN_SRC_GATEWAY_GATEWAY_H_

#include <memory>

#include "src/gateway/foreign_machine.h"
#include "src/types/abstract_type.h"

namespace eden {

class EdenSystem;

// Builds the "gateway" abstract type bound to one foreign machine. Each
// gateway type instance fronts exactly one host (register one type per host,
// e.g. "gateway.vax1"); all object instances of that type share it, matching
// the paper's type-manager-holds-the-code model.
std::shared_ptr<AbstractType> GatewayType(std::string type_name,
                                          std::shared_ptr<ForeignMachine> host);

// Convenience: registers the type and creates one gateway object on `node`.
StatusOr<Capability> AttachForeignMachine(EdenSystem& system, size_t node,
                                          std::shared_ptr<ForeignMachine> host);

}  // namespace eden

#endif  // EDEN_SRC_GATEWAY_GATEWAY_H_
