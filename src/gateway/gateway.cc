#include "src/gateway/gateway.h"

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {

std::shared_ptr<AbstractType> GatewayType(std::string type_name,
                                          std::shared_ptr<ForeignMachine> host) {
  auto type = std::make_shared<AbstractType>(std::move(type_name), StdObjectType());
  // The foreign host serializes jobs anyway; let several invocations queue
  // inside it rather than in the object (limit sized to the host queue).
  type->AddClass("relay", 16);

  type->AddOperation(AbstractOperation{
      .name = "submit",
      .handler = [host](InvokeContext& ctx) -> Task<InvokeResult> {
        auto service = ctx.args().StringAt(0);
        auto payload = ctx.args().StringAt(1);
        if (!service.ok() || !payload.ok()) {
          co_return InvokeResult::Error(
              InvalidArgumentError("submit(service, payload)"));
        }
        StatusOr<std::string> response =
            co_await host->Submit(*service + " " + *payload);
        if (!response.ok()) {
          co_return InvokeResult::Error(response.status());
        }
        co_return InvokeResult::Ok(InvokeArgs{}.AddString(*response));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "relay",
  });

  type->AddOperation(AbstractOperation{
      .name = "status",
      .handler = [host](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(InvokeArgs{}
                                       .AddString(host->hostname())
                                       .AddU64(host->queue_depth())
                                       .AddU64(host->requests_served()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "relay",
      .read_only = true,
  });

  // The serial link is soldered to one node machine: override the inherited
  // move_to so the kernel never ships this object elsewhere.
  type->AddOperation(AbstractOperation{
      .name = "move_to",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Error(FailedPreconditionError(
            "gateway objects are pinned to their link's node"));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kMove),
  });

  return type;
}

StatusOr<Capability> AttachForeignMachine(EdenSystem& system, size_t node,
                                          std::shared_ptr<ForeignMachine> host) {
  std::string type_name = "gateway." + host->hostname();
  system.RegisterType(GatewayType(type_name, host)->BuildTypeManager());
  return system.node(node).CreateObject(type_name, Representation{});
}

}  // namespace eden
