#include "src/gateway/foreign_machine.h"

namespace eden {

ForeignMachine::ForeignMachine(Simulation& sim, std::string hostname,
                               ForeignMachineConfig config)
    : sim_(sim), hostname_(std::move(hostname)), config_(config) {}

void ForeignMachine::InstallService(const std::string& service,
                                    ForeignService handler) {
  services_[service] = std::move(handler);
}

Future<StatusOr<std::string>> ForeignMachine::Submit(
    const std::string& request_line, SimDuration service_weight) {
  Promise<StatusOr<std::string>> promise;
  Future<StatusOr<std::string>> future = promise.GetFuture();
  if (!powered_) {
    promise.Set(StatusOr<std::string>(
        UnavailableError(hostname_ + " is not responding")));
    return future;
  }
  if (queue_.size() >= config_.queue_limit) {
    promise.Set(StatusOr<std::string>(
        ResourceExhaustedError(hostname_ + " batch queue full")));
    return future;
  }
  // Serial-link transfer time for the request text.
  SimDuration link_time = static_cast<SimDuration>(
      static_cast<double>(request_line.size()) / config_.link_bytes_per_sec * 1e9);
  uint64_t generation = generation_;
  sim_.Schedule(link_time, [this, generation, request_line, service_weight,
                            promise]() mutable {
    if (!powered_ || generation != generation_) {
      promise.Set(StatusOr<std::string>(
          UnavailableError(hostname_ + " is not responding")));
      return;
    }
    queue_.push_back(Job{request_line, service_weight, std::move(promise)});
    PumpQueue();
  });
  return future;
}

void ForeignMachine::PumpQueue() {
  if (busy_ || queue_.empty() || !powered_) {
    return;
  }
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  uint64_t generation = generation_;
  SimDuration service = config_.base_service_time + job.weight;
  sim_.Schedule(service, [this, generation, job = std::move(job)]() mutable {
    if (generation != generation_) {
      job.reply.Set(StatusOr<std::string>(
          UnavailableError(hostname_ + " power-cycled mid-job")));
      return;
    }
    busy_ = false;
    if (!powered_) {
      job.reply.Set(StatusOr<std::string>(
          UnavailableError(hostname_ + " crashed mid-job")));
    } else {
      requests_served_++;
      StatusOr<std::string> result = RunService(job.request_line);
      if (result.ok()) {
        // Response rides the serial link back.
        SimDuration link_time = static_cast<SimDuration>(
            static_cast<double>(result->size()) / config_.link_bytes_per_sec *
            1e9);
        sim_.Schedule(link_time, [reply = std::move(job.reply),
                                  result = std::move(result)]() mutable {
          reply.Set(std::move(result));
        });
      } else {
        job.reply.Set(std::move(result));
      }
    }
    PumpQueue();
  });
}

StatusOr<std::string> ForeignMachine::RunService(const std::string& request_line) {
  size_t space = request_line.find(' ');
  std::string service = request_line.substr(0, space);
  std::string payload =
      space == std::string::npos ? "" : request_line.substr(space + 1);
  auto it = services_.find(service);
  if (it == services_.end()) {
    return NotFoundError(hostname_ + ": no such service \"" + service + "\"");
  }
  return it->second(payload);
}

void ForeignMachine::PowerCycle() {
  generation_++;
  powered_ = false;
  auto queue = std::move(queue_);
  queue_.clear();
  for (Job& job : queue) {
    job.reply.Set(StatusOr<std::string>(
        UnavailableError(hostname_ + " power-cycled")));
  }
  busy_ = false;
  powered_ = true;
}

}  // namespace eden
