// A simulated "foreign machine" (paper section 2): "Special-purpose servers
// such as conventional time-sharing computers... are interfaced to the system
// through node machines. Eden users can invoke services on foreign machines
// through an 'object-like' interface, but the relationship will not be
// symmetric."
//
// ForeignMachine models a conventional time-sharing host hanging off one node
// machine over a serial-style link: it speaks its own ad-hoc request/response
// protocol (NOT Eden invocation), has its own queueing discipline (one batch
// queue, FCFS, a configurable service rate), and knows nothing about
// capabilities, objects or the LAN. The gateway object type in gateway.h is
// what makes it look like an Eden object.
#ifndef EDEN_SRC_GATEWAY_FOREIGN_MACHINE_H_
#define EDEN_SRC_GATEWAY_FOREIGN_MACHINE_H_

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace eden {

struct ForeignMachineConfig {
  // Serial link to the hosting node machine (9600 baud era-appropriate).
  double link_bytes_per_sec = 960.0;
  // CPU seconds charged per request, scaled by request weight.
  SimDuration base_service_time = Milliseconds(50);
  // The machine runs one job at a time (a batch time-sharing system).
  size_t queue_limit = 64;
};

// A registered foreign "service" (think: a program on the time-sharing host).
// Takes the raw request line, returns the raw response line.
using ForeignService =
    std::function<StatusOr<std::string>(const std::string& request)>;

class ForeignMachine {
 public:
  ForeignMachine(Simulation& sim, std::string hostname,
                 ForeignMachineConfig config = {});

  const std::string& hostname() const { return hostname_; }

  // Installs a service program under a name ("finger", "troff", ...).
  void InstallService(const std::string& service, ForeignService handler);

  // Submits a request line over the serial link: "<service> <payload>".
  // Resolves with the response after link transfer + queueing + service.
  Future<StatusOr<std::string>> Submit(const std::string& request_line,
                                       SimDuration service_weight = 0);

  // Power-cycle: queued requests fail with kUnavailable.
  void PowerCycle();
  bool powered() const { return powered_; }
  void set_powered(bool on) { powered_ = on; }

  uint64_t requests_served() const { return requests_served_; }
  size_t queue_depth() const { return queue_.size(); }

 private:
  struct Job {
    std::string request_line;
    SimDuration weight;
    Promise<StatusOr<std::string>> reply;
  };

  void PumpQueue();
  StatusOr<std::string> RunService(const std::string& request_line);

  Simulation& sim_;
  std::string hostname_;
  ForeignMachineConfig config_;
  std::map<std::string, ForeignService> services_;
  std::deque<Job> queue_;
  bool busy_ = false;
  bool powered_ = true;
  // Bumped by PowerCycle: work belonging to an earlier power generation
  // (on the link or mid-service) dies with it.
  uint64_t generation_ = 0;
  uint64_t requests_served_ = 0;
};

}  // namespace eden

#endif  // EDEN_SRC_GATEWAY_FOREIGN_MACHINE_H_
