// Kernel event tracing. The paper's project plan ends with "additional
// functions can be moved into the kernel if measurements indicate that
// significant performance gains will result" (section 4.5) — which
// presupposes the ability to measure. TraceBuffer is that instrument: a
// bounded ring of structured events (invocation lifecycle, location protocol,
// activations, checkpoints, moves) that costs nothing when disabled and can
// be dumped or summarized after a run.
//
// Usage:
//   TraceBuffer trace(4096);
//   kernel.set_trace(&trace);          // any subset of kernels
//   ... run workload ...
//   trace.Summary()                    // counts + latency per event kind
//   trace.Dump(16)                     // last 16 events, human-readable
#ifndef EDEN_SRC_TRACE_TRACE_H_
#define EDEN_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/kernel/name.h"
#include "src/metrics/metrics.h"
#include "src/net/lan.h"
#include "src/sim/time.h"

namespace eden {

enum class TraceEventKind : uint8_t {
  kInvokeStart = 0,       // client kernel accepted an Invoke
  kInvokeComplete = 1,    // reply (or timeout/unavailable) delivered
  kDispatch = 2,          // coordinator started an operation
  kLocateBroadcast = 3,
  kRedirectFollowed = 4,
  kActivation = 5,        // reincarnation began
  kCheckpoint = 6,
  kMoveOut = 7,
  kMoveIn = 8,
  kObjectCrash = 9,
  kNodeFailure = 10,
  kNodeRestart = 11,
  kFaultInjected = 12,    // chaos layer injected a fault (detail = fault kind)
  kFallbackRestore = 13,  // activation recovered via mirror/prefix fallback
  kPeerSuspect = 14,      // peer marked suspect after consecutive failures
  kPeerProbe = 15,        // health probe sent to a suspect peer
  kPeerRecovered = 16,    // suspect peer answered; normal traffic resumes
  kDirectoryLookup = 17,  // directory lookup round sent to home node(s)
  kDirectoryUpdate = 18,  // residence update applied to this home partition
  kLeaseGrant = 19,       // read lease granted (or renewed) by the home node
  kLeaseRecall = 20,      // recall started: a write waits for lease holders
};

std::string_view TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  SimTime when = 0;
  TraceEventKind kind = TraceEventKind::kInvokeStart;
  StationId node = 0;
  ObjectName object;       // null when not applicable
  uint64_t id = 0;         // invocation/transfer id when applicable
  std::string detail;      // operation name, status, ...
};

class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 4096) : capacity_(capacity) {}

  void Record(TraceEvent event);

  size_t size() const { return events_.size(); }
  uint64_t total_recorded() const { return total_recorded_; }
  // Events evicted by the ring wrapping (previously a silent overwrite), and
  // the largest population the ring ever reached.
  uint64_t dropped() const { return dropped_; }
  size_t high_water() const { return high_water_; }
  const std::deque<TraceEvent>& events() const { return events_; }
  void Clear();

  // Mirrors the buffer's occupancy into `registry`: trace.buffer.recorded /
  // trace.buffer.dropped counters plus trace.buffer.high_water and
  // trace.buffer.size gauges, updated on every Record. The registry must
  // outlive this buffer; nullptr detaches.
  void set_metrics(MetricsRegistry* registry);

  // Events per kind since the last Clear (counts survive ring eviction).
  const std::map<TraceEventKind, uint64_t>& counts() const { return counts_; }

  // Human-readable tail of the buffer.
  std::string Dump(size_t last_n = 32) const;

  // One line per event kind: "INVOKE_COMPLETE x120".
  std::string Summary() const;

  // Matches kInvokeStart/kInvokeComplete pairs by id and returns the mean
  // virtual latency (0 if no pairs are present in the buffer window).
  SimDuration MeanInvocationLatency() const;

  // Chrome trace-event JSON ({"traceEvents":[...]}), loadable in
  // chrome://tracing or Perfetto. Invocation start/complete pairs become "X"
  // duration events (pid = node, tid = invocation id); everything else is an
  // instant event. Timestamps are microseconds of virtual time.
  std::string ExportChromeTrace() const;

 private:
  size_t capacity_;
  std::deque<TraceEvent> events_;
  std::map<TraceEventKind, uint64_t> counts_;
  uint64_t total_recorded_ = 0;
  uint64_t dropped_ = 0;
  size_t high_water_ = 0;

  Counter* recorded_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Gauge* high_water_gauge_ = nullptr;
  Gauge* size_gauge_ = nullptr;
};

}  // namespace eden

#endif  // EDEN_SRC_TRACE_TRACE_H_
