#include "src/trace/span.h"

#include <algorithm>
#include <cstdio>

#include "src/metrics/json_writer.h"

namespace eden {

void SpanContext::Encode(BufferWriter& writer) const {
  writer.WriteU64(trace_id);
  writer.WriteU64(span_id);
  writer.WriteU64(parent_span_id);
}

StatusOr<SpanContext> SpanContext::Decode(BufferReader& reader) {
  SpanContext ctx;
  EDEN_ASSIGN_OR_RETURN(ctx.trace_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(ctx.span_id, reader.ReadU64());
  EDEN_ASSIGN_OR_RETURN(ctx.parent_span_id, reader.ReadU64());
  return ctx;
}

std::string_view SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kInvocation:
      return "invoke";
    case SpanKind::kLocate:
      return "locate";
    case SpanKind::kWire:
      return "wire";
    case SpanKind::kDispatch:
      return "dispatch";
    case SpanKind::kActivation:
      return "activation";
    case SpanKind::kStoreRead:
      return "store_read";
    case SpanKind::kStoreWrite:
      return "store_write";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kMove:
      return "move";
    case SpanKind::kDirectory:
      return "directory";
    case SpanKind::kLease:
      return "lease";
  }
  return "unknown";
}

const Span* TraceTree::Find(uint64_t span_id) const {
  for (const Span& span : spans) {
    if (span.span_id == span_id) {
      return &span;
    }
  }
  return nullptr;
}

SpanCollector::SpanCollector(SpanCollectorConfig config)
    : config_(config) {}

SpanContext SpanCollector::StartSpan(const SpanContext& parent, SpanKind kind,
                                     StationId node, const ObjectName& object,
                                     std::string_view label, SimTime now) {
  uint64_t id = next_id_++;
  SpanContext ctx;
  ctx.span_id = id;
  LiveTrace* trace = nullptr;
  if (parent.valid()) {
    ctx.trace_id = parent.trace_id;
    ctx.parent_span_id = parent.span_id;
    trace = FindLive(parent);
    if (trace == nullptr) {
      if (!fragments_enabled_) {
        // Parent trace already finalized (or was dropped): the late child
        // cannot be attached, so it is dropped rather than resurrected.
        stats_.spans_dropped++;
        return SpanContext{};
      }
      // Shard-local collection: the parent's trace is rooted in another
      // shard's collector. Open a fragment here; Absorb joins it back to
      // its root by trace_id after the run.
      if (live_.size() >= config_.max_live_traces) {
        stats_.spans_dropped++;
        return SpanContext{};
      }
      trace = &live_[ctx.trace_id];
      trace->tree.trace_id = ctx.trace_id;
      trace->fragment = true;
      CacheLive(ctx.trace_id, trace);
    }
    if (trace->tree.spans.size() >= config_.max_spans_per_trace) {
      stats_.spans_dropped++;
      return SpanContext{};
    }
  } else {
    ctx.trace_id = id;
    if (live_.size() >= config_.max_live_traces) {
      stats_.spans_dropped++;
      return SpanContext{};
    }
    if (!spare_nodes_.empty()) {
      auto node = std::move(spare_nodes_.back());
      spare_nodes_.pop_back();
      node.key() = id;
      LiveTrace& fresh = node.mapped();
      fresh.tree.trace_id = id;
      fresh.tree.spans.clear();
      fresh.open_spans = 0;
      fresh.root_closed = false;
      trace = &live_.insert(std::move(node)).position->second;
    } else {
      trace = &live_[id];
      trace->tree.trace_id = id;
    }
    if (trace->tree.spans.capacity() == 0) {
      if (!spare_spans_.empty()) {
        trace->tree.spans = std::move(spare_spans_.back());
        spare_spans_.pop_back();
      } else {
        trace->tree.spans.reserve(8);
      }
    }
    CacheLive(id, trace);
    stats_.traces_started++;
  }

  ctx.slot = static_cast<uint32_t>(trace->tree.spans.size());
  Span& span = trace->tree.spans.emplace_back();
  span.trace_id = ctx.trace_id;
  span.span_id = id;
  span.parent_span_id = ctx.parent_span_id;
  span.kind = kind;
  span.node = node;
  span.object = object;
  span.label = label;
  span.start = now;
  span.end = now;
  trace->open_spans++;
  stats_.spans_started++;
  HoldSpans(1);
  return ctx;
}

void SpanCollector::HoldSpans(size_t n) {
  // Per-span hot path: no gauge write here. The held gauge refreshes on
  // release (every finalize), which is as often as its value can shrink;
  // the high-water gauge only on an actual new peak.
  held_spans_ += n;
  if (held_spans_ > stats_.spans_held_high_water) {
    stats_.spans_held_high_water = held_spans_;
    if (spans_high_water_gauge_ != nullptr) {
      spans_high_water_gauge_->Set(
          static_cast<int64_t>(stats_.spans_held_high_water));
    }
  }
}

void SpanCollector::ReleaseSpans(size_t n) {
  held_spans_ -= n;
  if (spans_held_gauge_ != nullptr) {
    spans_held_gauge_->Set(static_cast<int64_t>(held_spans_));
  }
}

SpanCollector::LiveTrace* SpanCollector::FindLive(const SpanContext& ctx) {
  if (!ctx.valid()) {
    return nullptr;
  }
  size_t slot = ctx.trace_id & (kLiveCacheSize - 1);
  if (live_cache_ids_[slot] == ctx.trace_id && live_cache_[slot] != nullptr) {
    return live_cache_[slot];
  }
  auto it = live_.find(ctx.trace_id);
  if (it == live_.end()) {
    return nullptr;
  }
  CacheLive(ctx.trace_id, &it->second);
  return &it->second;
}

Span* SpanCollector::FindOpen(LiveTrace* trace, uint64_t span_id) {
  if (trace == nullptr) {
    return nullptr;
  }
  // Spans per trace are few and closers are usually recent: scan from the
  // back.
  auto& spans = trace->tree.spans;
  for (size_t i = spans.size(); i-- > 0;) {
    if (spans[i].span_id == span_id) {
      return &spans[i];
    }
  }
  return nullptr;
}

Span* SpanCollector::FindOpen(LiveTrace* trace, const SpanContext& ctx) {
  if (trace == nullptr) {
    return nullptr;
  }
  // Fast path via the context's slot hint (stable while the trace is live);
  // fall back to the scan for contexts that lost it (e.g. decoded ones).
  auto& spans = trace->tree.spans;
  if (ctx.slot < spans.size() && spans[ctx.slot].span_id == ctx.span_id) {
    return &spans[ctx.slot];
  }
  return FindOpen(trace, ctx.span_id);
}

void SpanCollector::Annotate(const SpanContext& ctx, SimTime now,
                             std::string_view note) {
  Span* span = FindOpen(FindLive(ctx), ctx);
  if (span == nullptr) {
    if (ctx.valid()) {
      stats_.orphan_events++;
    }
    return;
  }
  span->notes.push_back(SpanNote{now, std::string(note)});
}

void SpanCollector::EndSpan(const SpanContext& ctx, SimTime now,
                            std::string_view status) {
  LiveTrace* trace = FindLive(ctx);
  if (trace == nullptr) {
    if (ctx.valid()) {
      stats_.orphan_events++;
    }
    return;
  }
  Span* span = FindOpen(trace, ctx);
  if (span == nullptr || !span->open) {
    stats_.orphan_events++;
    return;
  }
  span->open = false;
  span->end = now;
  span->status = status;
  stats_.spans_closed++;
  trace->open_spans--;
  if (span->parent_span_id == 0) {
    trace->root_closed = true;
  }
  MaybeFinalize(ctx.trace_id, *trace);
}

void SpanCollector::MaybeFinalize(uint64_t trace_id, LiveTrace& trace) {
  if (trace.open_spans != 0 || !(trace.root_closed || trace.fragment)) {
    return;
  }
  // Extract instead of erase: the map node is recycled for the next trace,
  // so the traced steady state performs no per-trace node allocation. This
  // runs once per trace; the per-span fast path never touches iterators.
  UncacheLive(trace_id);
  auto node = live_.extract(trace_id);
  if (node.empty()) {
    return;
  }
  Finalize(node.key(), std::move(node.mapped()));
  constexpr size_t kMaxSpareNodes = 32;
  if (spare_nodes_.size() < kMaxSpareNodes) {
    spare_nodes_.push_back(std::move(node));
  }
}

void SpanCollector::Flush(SimTime now) {
  // Two passes: close stragglers first, then finalize, so iteration never
  // touches live_ while erasing.
  std::vector<uint64_t> ready;
  for (auto& [trace_id, trace] : live_) {
    for (Span& span : trace.tree.spans) {
      if (span.open) {
        span.open = false;
        span.end = std::max(span.start, now);
        span.status = "unclosed";
        stats_.spans_closed++;
        trace.open_spans--;
        if (span.parent_span_id == 0) {
          trace.root_closed = true;
        }
      }
    }
    if ((trace.root_closed || trace.fragment) && trace.open_spans == 0) {
      ready.push_back(trace_id);
    }
  }
  // Deterministic finalize order (live_ is unordered, but nothing here feeds
  // back into the simulation; sorting keeps dumps/export stable anyway).
  std::sort(ready.begin(), ready.end());
  for (uint64_t trace_id : ready) {
    auto it = live_.find(trace_id);
    if (it != live_.end()) {
      MaybeFinalize(trace_id, it->second);
    }
  }
}

void SpanCollector::Finalize(uint64_t trace_id, LiveTrace&& trace) {
  // Fragments carry no root, so their end-to-end duration is unknowable
  // here: they retire into completed_ for Absorb to rejoin, but record no
  // phase metrics and count as no completed trace.
  bool has_root = !trace.tree.spans.empty() &&
                  trace.tree.spans[0].parent_span_id == 0;
  if (has_root) {
    stats_.traces_completed++;
    SimDuration e2e = trace.tree.spans[0].duration();
    if (config_.tail.enabled && !RetainUnderTailPolicy(trace.tree, e2e)) {
      // Flight-recorder discard: the e2e histogram stays complete (recorded
      // from the root alone), but the trace pays neither the critical-path
      // sweep nor retention memory. Phase histograms are tail-sampled.
      stats_.traces_discarded++;
      if (e2e_hist_ != nullptr) {
        e2e_hist_->Record(e2e);
      }
      if (traces_completed_counter_ != nullptr) {
        traces_completed_counter_->Increment();
      }
      if (tail_discarded_counter_ != nullptr) {
        tail_discarded_counter_->Increment();
      }
      ReleaseSpans(trace.tree.spans.size());
      Recycle(std::move(trace.tree));
      (void)trace_id;
      return;
    }
    if (config_.tail.enabled) {
      stats_.traces_retained++;
      if (tail_retained_counter_ != nullptr) {
        tail_retained_counter_->Increment();
      }
    }
    PhaseBreakdown breakdown = CriticalPath(trace.tree);
    RecordPhaseMetrics(breakdown);
    KeepExemplar(trace.tree);
  }
  completed_.push_back(std::move(trace.tree));
  while (completed_.size() > config_.retain_completed) {
    ReleaseSpans(completed_.front().spans.size());
    Recycle(std::move(completed_.front()));
    completed_.pop_front();
  }
  (void)trace_id;
}

bool SpanCollector::RetainUnderTailPolicy(const TraceTree& tree,
                                          SimDuration e2e) {
  // Every root duration feeds the tail distribution, retained or not: the
  // top-p threshold must see the full population to mean anything.
  tail_durations_.Record(e2e);
  const SpanCollectorConfig::Tail& tail = config_.tail;
  // Deterministic 1-in-N baseline: trace ids come from the collector-private
  // counter, so this decision is a pure function of the execution.
  if (tail.one_in_n > 0 && tree.trace_id % tail.one_in_n == 0) {
    return true;
  }
  if (tail_durations_.count() <= tail.warmup) {
    return true;  // distribution too thin to call anything fast yet
  }
  // The top-p threshold is a histogram bucket walk; recomputing it for every
  // finalized root is the dominant per-trace cost at saturation. Refresh it
  // every kTailThresholdRefresh roots instead — keyed on the population
  // count, so the decision sequence stays a pure function of the execution —
  // and accept a threshold at most that many samples stale.
  if (tail_threshold_ < 0 ||
      tail_durations_.count() % kTailThresholdRefresh == 0) {
    tail_threshold_ = tail_durations_.Percentile(1.0 - tail.top_p);
  }
  if (e2e >= tail_threshold_) {
    return true;
  }
  // Fault/retry-annotated: any span that closed dirty or carries notes
  // (retransmits, redirects, injected faults, backoff decisions).
  for (const Span& span : tree.spans) {
    if (!span.status.empty() || !span.notes.empty()) {
      return true;
    }
  }
  return false;
}

void SpanCollector::Recycle(TraceTree&& tree) {
  constexpr size_t kMaxSpare = 64;
  if (spare_spans_.size() < kMaxSpare && tree.spans.capacity() > 0) {
    tree.spans.clear();
    spare_spans_.push_back(std::move(tree.spans));
  }
}

void SpanCollector::RecordPhaseMetrics(const PhaseBreakdown& breakdown) {
  if (registry_ == nullptr) {
    return;
  }
  for (size_t k = 0; k < kSpanKindCount; k++) {
    if (breakdown.by_kind[k] > 0 && phase_hist_[k] != nullptr) {
      phase_hist_[k]->Record(breakdown.by_kind[k]);
    }
  }
  if (e2e_hist_ != nullptr) {
    e2e_hist_->Record(breakdown.total);
  }
  if (traces_completed_counter_ != nullptr) {
    traces_completed_counter_->Increment();
  }
}

void SpanCollector::KeepExemplar(const TraceTree& tree) {
  if (config_.slow_exemplars == 0 || tree.root() == nullptr) {
    return;
  }
  SimDuration duration = tree.root()->duration();
  if (exemplars_.size() >= config_.slow_exemplars &&
      duration <= exemplars_.back().root()->duration()) {
    return;
  }
  exemplars_.push_back(tree);
  HoldSpans(tree.spans.size());  // exemplars are copies: they hold memory too
  std::sort(exemplars_.begin(), exemplars_.end(),
            [](const TraceTree& a, const TraceTree& b) {
              if (a.root()->duration() != b.root()->duration()) {
                return a.root()->duration() > b.root()->duration();
              }
              return a.trace_id < b.trace_id;
            });
  while (exemplars_.size() > config_.slow_exemplars) {
    ReleaseSpans(exemplars_.back().spans.size());
    Recycle(std::move(exemplars_.back()));
    exemplars_.pop_back();
  }
}

void SpanCollector::Absorb(SpanCollector& other) {
  if (&other == this) {
    return;
  }
  std::unordered_map<uint64_t, size_t> index;
  for (size_t i = 0; i < completed_.size(); i++) {
    index[completed_[i].trace_id] = i;
  }
  for (TraceTree& tree : other.completed_) {
    auto it = index.find(tree.trace_id);
    if (it == index.end()) {
      index[tree.trace_id] = completed_.size();
      completed_.push_back(std::move(tree));
      continue;
    }
    // Same trace seen by both collectors: join the span sets, keeping a
    // true root (parent_span_id == 0) at spans[0] so tree.root() holds.
    TraceTree& dst = completed_[it->second];
    bool incoming_has_root =
        !tree.spans.empty() && tree.spans[0].parent_span_id == 0;
    bool dst_has_root =
        !dst.spans.empty() && dst.spans[0].parent_span_id == 0;
    if (incoming_has_root && !dst_has_root) {
      tree.spans.insert(tree.spans.end(),
                        std::make_move_iterator(dst.spans.begin()),
                        std::make_move_iterator(dst.spans.end()));
      dst.spans = std::move(tree.spans);
    } else {
      dst.spans.insert(dst.spans.end(),
                       std::make_move_iterator(tree.spans.begin()),
                       std::make_move_iterator(tree.spans.end()));
    }
  }
  other.completed_.clear();

  stats_.spans_started += other.stats_.spans_started;
  stats_.spans_closed += other.stats_.spans_closed;
  stats_.traces_started += other.stats_.traces_started;
  stats_.traces_completed += other.stats_.traces_completed;
  stats_.spans_dropped += other.stats_.spans_dropped;
  stats_.orphan_events += other.stats_.orphan_events;
  stats_.traces_retained += other.stats_.traces_retained;
  stats_.traces_discarded += other.stats_.traces_discarded;
  // High-water marks are per-collector instantaneous peaks; the merged
  // figure reports the worst single collector rather than a sum of peaks
  // that never coexisted meaningfully.
  stats_.spans_held_high_water =
      std::max(stats_.spans_held_high_water, other.stats_.spans_held_high_water);
  other.stats_ = SpanCollectorStats{};

  // Joined trees may now carry spans their original ranking never saw;
  // re-rank the exemplars over the merged retained window.
  for (const TraceTree& tree : exemplars_) {
    ReleaseSpans(tree.spans.size());
  }
  exemplars_.clear();
  for (const TraceTree& tree : completed_) {
    if (!tree.spans.empty() && tree.spans[0].parent_span_id == 0) {
      KeepExemplar(tree);
    }
  }
  // Span ownership moved wholesale between collectors: recompute the held
  // count from what each side actually retains now.
  RecountHeldSpans();
  other.RecountHeldSpans();
}

void SpanCollector::RecountHeldSpans() {
  size_t held = 0;
  for (const auto& [trace_id, trace] : live_) {
    held += trace.tree.spans.size();
  }
  for (const TraceTree& tree : completed_) {
    held += tree.spans.size();
  }
  for (const TraceTree& tree : exemplars_) {
    held += tree.spans.size();
  }
  held_spans_ = held;
  if (held_spans_ > stats_.spans_held_high_water) {
    stats_.spans_held_high_water = held_spans_;
  }
  if (spans_held_gauge_ != nullptr) {
    spans_held_gauge_->Set(static_cast<int64_t>(held_spans_));
  }
  if (spans_high_water_gauge_ != nullptr) {
    spans_high_water_gauge_->Set(
        static_cast<int64_t>(stats_.spans_held_high_water));
  }
}

const TraceTree* SpanCollector::FindTrace(uint64_t trace_id,
                                          TraceTree& scratch) const {
  for (const TraceTree& tree : completed_) {
    if (tree.trace_id == trace_id) {
      return &tree;
    }
  }
  auto it = live_.find(trace_id);
  if (it != live_.end()) {
    scratch = it->second.tree;
    return &scratch;
  }
  return nullptr;
}

PhaseBreakdown SpanCollector::CriticalPath(const TraceTree& tree) {
  PhaseBreakdown out;
  const Span* root = tree.root();
  if (root == nullptr) {
    return out;
  }
  SimTime lo = root->start;
  SimTime hi = std::max(root->start, root->end);
  out.total = hi - lo;
  if (out.total == 0) {
    return out;
  }

  // Depth of each span (root = 0); a span whose parent is unknown (dropped
  // by a cap) hangs off the root. This runs once per finalized trace on the
  // traced hot path, so it avoids the heap for typical trees: StartSpan
  // appends children strictly after their parents, so one forward pass with
  // a backward parent scan resolves every depth.
  size_t n = tree.spans.size();
  constexpr size_t kInlineSpans = 64;
  int depth_inline[kInlineSpans];
  std::vector<int> depth_heap;
  int* depth = depth_inline;
  if (n > kInlineSpans) {
    depth_heap.resize(n);
    depth = depth_heap.data();
  }
  depth[0] = 0;
  for (size_t i = 1; i < n; i++) {
    depth[i] = 1;  // orphan default: treat as a child of the root
    uint64_t parent = tree.spans[i].parent_span_id;
    for (size_t j = i; j-- > 0;) {
      if (tree.spans[j].span_id == parent) {
        depth[i] = depth[j] + 1;
        break;
      }
    }
  }

  // Sweep the root interval; each segment between adjacent boundaries is
  // charged to the deepest covering span (ties: the later-started one).
  SimTime bounds_inline[2 * kInlineSpans + 2];
  std::vector<SimTime> bounds_heap;
  SimTime* bounds = bounds_inline;
  if (n > kInlineSpans) {
    bounds_heap.resize(2 * n + 2);
    bounds = bounds_heap.data();
  }
  size_t bound_count = 0;
  for (const Span& span : tree.spans) {
    SimTime s = std::clamp(span.start, lo, hi);
    SimTime e = std::clamp(std::max(span.start, span.end), lo, hi);
    if (e > s) {
      bounds[bound_count++] = s;
      bounds[bound_count++] = e;
    }
  }
  bounds[bound_count++] = lo;
  bounds[bound_count++] = hi;
  std::sort(bounds, bounds + bound_count);
  bound_count = static_cast<size_t>(
      std::unique(bounds, bounds + bound_count) - bounds);

  for (size_t b = 0; b + 1 < bound_count; b++) {
    SimTime seg_lo = bounds[b];
    SimTime seg_hi = bounds[b + 1];
    int best_depth = -1;
    SimTime best_start = 0;
    SpanKind best_kind = root->kind;
    for (size_t i = 0; i < n; i++) {
      const Span& span = tree.spans[i];
      SimTime s = std::clamp(span.start, lo, hi);
      SimTime e = std::clamp(std::max(span.start, span.end), lo, hi);
      if (s > seg_lo || e < seg_hi || e == s) {
        continue;  // does not cover the whole segment
      }
      if (depth[i] > best_depth ||
          (depth[i] == best_depth && span.start > best_start)) {
        best_depth = depth[i];
        best_start = span.start;
        best_kind = span.kind;
      }
    }
    out.by_kind[static_cast<size_t>(best_kind)] += seg_hi - seg_lo;
  }
  return out;
}

std::string SpanCollector::FormatBreakdown(const PhaseBreakdown& breakdown) {
  std::string out;
  double total_ms = ToMilliseconds(breakdown.total);
  for (size_t k = 0; k < kSpanKindCount; k++) {
    if (breakdown.by_kind[k] == 0) {
      continue;
    }
    double ms = ToMilliseconds(breakdown.by_kind[k]);
    char line[96];
    std::snprintf(line, sizeof(line), "  %-11s %9.3fms %5.1f%%\n",
                  std::string(SpanKindName(static_cast<SpanKind>(k))).c_str(),
                  ms, total_ms > 0 ? 100.0 * ms / total_ms : 0.0);
    out += line;
  }
  char line[64];
  std::snprintf(line, sizeof(line), "  %-11s %9.3fms\n", "total", total_ms);
  out += line;
  return out;
}

std::string SpanCollector::DumpSlowTraces() const {
  std::string out;
  for (const TraceTree& tree : exemplars_) {
    const Span* root = tree.root();
    char head[160];
    std::snprintf(head, sizeof(head),
                  "trace %llu: %s %s — %.3fms, %zu spans\n",
                  static_cast<unsigned long long>(tree.trace_id),
                  std::string(SpanKindName(root->kind)).c_str(),
                  root->label.c_str(), ToMilliseconds(root->duration()),
                  tree.spans.size());
    out += head;
    for (const Span& span : tree.spans) {
      char line[224];
      std::snprintf(line, sizeof(line),
                    "  [%12.3fms +%9.3fms] node%-2u %-11s %-12s %s%s%s\n",
                    ToMilliseconds(span.start),
                    ToMilliseconds(span.duration()), span.node,
                    std::string(SpanKindName(span.kind)).c_str(),
                    span.object.IsNull() ? "-" : span.object.ToString().c_str(),
                    span.label.c_str(), span.status.empty() ? "" : " !",
                    span.status.c_str());
      out += line;
    }
    out += "critical path:\n";
    out += FormatBreakdown(CriticalPath(tree));
  }
  return out;
}

std::string SpanCollector::ExportChromeTrace() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (const TraceTree& tree : completed_) {
    for (const Span& span : tree.spans) {
      json.BeginObject();
      json.Key("ph");
      json.String("X");
      json.Key("name");
      std::string name(SpanKindName(span.kind));
      if (!span.object.IsNull()) {
        name += " " + span.object.ToString();
      }
      if (!span.label.empty()) {
        name += " (" + span.label + ")";
      }
      json.String(name);
      json.Key("ts");
      json.Double(static_cast<double>(span.start) / 1000.0);
      json.Key("dur");
      json.Double(static_cast<double>(span.duration()) / 1000.0);
      json.Key("pid");
      json.U64(span.node);
      json.Key("tid");
      json.U64(span.trace_id);
      json.Key("args");
      json.BeginObject();
      json.Key("span");
      json.U64(span.span_id);
      json.Key("parent");
      json.U64(span.parent_span_id);
      if (!span.status.empty()) {
        json.Key("status");
        json.String(span.status);
      }
      json.EndObject();
      json.EndObject();

      // Cross-node causality as a flow arrow from the parent's slice to this
      // one (both ends at the child's start time in virtual time).
      const Span* parent =
          span.parent_span_id != 0 ? tree.Find(span.parent_span_id) : nullptr;
      if (parent != nullptr && parent->node != span.node) {
        json.BeginObject();
        json.Key("ph");
        json.String("s");
        json.Key("id");
        json.U64(span.span_id);
        json.Key("name");
        json.String("causal");
        json.Key("cat");
        json.String("causal");
        json.Key("ts");
        json.Double(static_cast<double>(span.start) / 1000.0);
        json.Key("pid");
        json.U64(parent->node);
        json.Key("tid");
        json.U64(span.trace_id);
        json.EndObject();
        json.BeginObject();
        json.Key("ph");
        json.String("f");
        json.Key("bp");
        json.String("e");
        json.Key("id");
        json.U64(span.span_id);
        json.Key("name");
        json.String("causal");
        json.Key("cat");
        json.String("causal");
        json.Key("ts");
        json.Double(static_cast<double>(span.start) / 1000.0);
        json.Key("pid");
        json.U64(span.node);
        json.Key("tid");
        json.U64(span.trace_id);
        json.EndObject();
      }
      for (const SpanNote& note : span.notes) {
        json.BeginObject();
        json.Key("ph");
        json.String("i");
        json.Key("s");
        json.String("t");
        json.Key("name");
        json.String(note.text);
        json.Key("ts");
        json.Double(static_cast<double>(note.when) / 1000.0);
        json.Key("pid");
        json.U64(span.node);
        json.Key("tid");
        json.U64(span.trace_id);
        json.EndObject();
      }
    }
  }
  json.EndArray();
  json.EndObject();
  return json.Take();
}

void SpanCollector::set_metrics(MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    for (size_t k = 0; k < kSpanKindCount; k++) {
      phase_hist_[k] = nullptr;
    }
    e2e_hist_ = nullptr;
    traces_completed_counter_ = nullptr;
    tail_retained_counter_ = nullptr;
    tail_discarded_counter_ = nullptr;
    spans_held_gauge_ = nullptr;
    spans_high_water_gauge_ = nullptr;
    return;
  }
  for (size_t k = 0; k < kSpanKindCount; k++) {
    phase_hist_[k] = &registry->histogram(
        "trace.phase." + std::string(SpanKindName(static_cast<SpanKind>(k))) +
        ".latency");
  }
  e2e_hist_ = &registry->histogram("trace.e2e.latency");
  traces_completed_counter_ = &registry->counter("trace.traces_completed");
  tail_retained_counter_ = &registry->counter("trace.tail.retained");
  tail_discarded_counter_ = &registry->counter("trace.tail.discarded");
  spans_held_gauge_ = &registry->gauge("trace.spans.held");
  spans_high_water_gauge_ = &registry->gauge("trace.spans.high_water");
  spans_held_gauge_->Set(static_cast<int64_t>(held_spans_));
  spans_high_water_gauge_->Set(
      static_cast<int64_t>(stats_.spans_held_high_water));
}

void SpanCollector::Clear() {
  live_.clear();
  live_cache_ids_.fill(0);
  live_cache_.fill(nullptr);
  completed_.clear();
  exemplars_.clear();
  spare_spans_.clear();
  spare_nodes_.clear();
  stats_ = SpanCollectorStats{};
  held_spans_ = 0;
  tail_durations_ = Histogram{};
  tail_threshold_ = -1;
  if (spans_held_gauge_ != nullptr) {
    spans_held_gauge_->Set(0);
  }
  if (spans_high_water_gauge_ != nullptr) {
    spans_high_water_gauge_->Set(0);
  }
}

}  // namespace eden
