#include "src/trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "src/metrics/json_writer.h"

namespace eden {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kInvokeStart:
      return "INVOKE_START";
    case TraceEventKind::kInvokeComplete:
      return "INVOKE_COMPLETE";
    case TraceEventKind::kDispatch:
      return "DISPATCH";
    case TraceEventKind::kLocateBroadcast:
      return "LOCATE_BROADCAST";
    case TraceEventKind::kRedirectFollowed:
      return "REDIRECT_FOLLOWED";
    case TraceEventKind::kActivation:
      return "ACTIVATION";
    case TraceEventKind::kCheckpoint:
      return "CHECKPOINT";
    case TraceEventKind::kMoveOut:
      return "MOVE_OUT";
    case TraceEventKind::kMoveIn:
      return "MOVE_IN";
    case TraceEventKind::kObjectCrash:
      return "OBJECT_CRASH";
    case TraceEventKind::kNodeFailure:
      return "NODE_FAILURE";
    case TraceEventKind::kNodeRestart:
      return "NODE_RESTART";
    case TraceEventKind::kFaultInjected:
      return "FAULT_INJECTED";
    case TraceEventKind::kFallbackRestore:
      return "FALLBACK_RESTORE";
    case TraceEventKind::kPeerSuspect:
      return "PEER_SUSPECT";
    case TraceEventKind::kPeerProbe:
      return "PEER_PROBE";
    case TraceEventKind::kPeerRecovered:
      return "PEER_RECOVERED";
    case TraceEventKind::kDirectoryLookup:
      return "DIRECTORY_LOOKUP";
    case TraceEventKind::kDirectoryUpdate:
      return "DIRECTORY_UPDATE";
    case TraceEventKind::kLeaseGrant:
      return "LEASE_GRANT";
    case TraceEventKind::kLeaseRecall:
      return "LEASE_RECALL";
  }
  return "UNKNOWN";
}

void TraceBuffer::Record(TraceEvent event) {
  counts_[event.kind]++;
  total_recorded_++;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
    dropped_++;
    if (dropped_counter_ != nullptr) {
      dropped_counter_->Increment();
    }
  }
  high_water_ = std::max(high_water_, events_.size());
  if (recorded_counter_ != nullptr) {
    recorded_counter_->Increment();
  }
  if (high_water_gauge_ != nullptr) {
    high_water_gauge_->Set(static_cast<int64_t>(high_water_));
  }
  if (size_gauge_ != nullptr) {
    size_gauge_->Set(static_cast<int64_t>(events_.size()));
  }
}

void TraceBuffer::Clear() {
  events_.clear();
  counts_.clear();
  total_recorded_ = 0;
  dropped_ = 0;
  high_water_ = 0;
  if (size_gauge_ != nullptr) {
    size_gauge_->Set(0);
  }
  if (high_water_gauge_ != nullptr) {
    high_water_gauge_->Set(0);
  }
}

void TraceBuffer::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    recorded_counter_ = nullptr;
    dropped_counter_ = nullptr;
    high_water_gauge_ = nullptr;
    size_gauge_ = nullptr;
    return;
  }
  recorded_counter_ = &registry->counter("trace.buffer.recorded");
  dropped_counter_ = &registry->counter("trace.buffer.dropped");
  high_water_gauge_ = &registry->gauge("trace.buffer.high_water");
  size_gauge_ = &registry->gauge("trace.buffer.size");
}

std::string TraceBuffer::Dump(size_t last_n) const {
  std::string out;
  size_t start = events_.size() > last_n ? events_.size() - last_n : 0;
  for (size_t i = start; i < events_.size(); i++) {
    const TraceEvent& event = events_[i];
    char line[256];
    std::snprintf(line, sizeof(line), "[%12.3fms] node%-2u %-18s %-12s %s\n",
                  ToMilliseconds(event.when), event.node,
                  std::string(TraceEventKindName(event.kind)).c_str(),
                  event.object.IsNull() ? "-" : event.object.ToString().c_str(),
                  event.detail.c_str());
    out += line;
  }
  return out;
}

std::string TraceBuffer::Summary() const {
  std::string out;
  for (const auto& [kind, count] : counts_) {
    char line[96];
    std::snprintf(line, sizeof(line), "%-18s x%llu\n",
                  std::string(TraceEventKindName(kind)).c_str(),
                  static_cast<unsigned long long>(count));
    out += line;
  }
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "(ring: %zu/%zu, high-water %zu, dropped %llu)\n",
                events_.size(), capacity_, high_water_,
                static_cast<unsigned long long>(dropped_));
  out += tail;
  return out;
}

SimDuration TraceBuffer::MeanInvocationLatency() const {
  std::map<uint64_t, SimTime> starts;
  SimDuration total = 0;
  uint64_t pairs = 0;
  for (const TraceEvent& event : events_) {
    if (event.kind == TraceEventKind::kInvokeStart) {
      starts[event.id] = event.when;
    } else if (event.kind == TraceEventKind::kInvokeComplete) {
      auto it = starts.find(event.id);
      if (it != starts.end()) {
        total += event.when - it->second;
        pairs++;
        starts.erase(it);
      }
    }
  }
  if (pairs == 0) {
    return 0;
  }
  return total / static_cast<SimDuration>(pairs);
}

std::string TraceBuffer::ExportChromeTrace() const {
  // First pass: pair up invocation starts and completions still in the
  // window so they can be rendered as duration ("X") events.
  struct OpenInvocation {
    size_t start_index;
    SimTime started;
  };
  std::map<uint64_t, OpenInvocation> open;
  std::map<size_t, SimDuration> durations;  // start event index -> duration
  std::set<size_t> folded;                  // completion indices absorbed
  for (size_t i = 0; i < events_.size(); i++) {
    const TraceEvent& event = events_[i];
    if (event.kind == TraceEventKind::kInvokeStart) {
      open[event.id] = OpenInvocation{i, event.when};
    } else if (event.kind == TraceEventKind::kInvokeComplete) {
      auto it = open.find(event.id);
      if (it != open.end()) {
        durations[it->second.start_index] = event.when - it->second.started;
        folded.insert(i);
        open.erase(it);
      }
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  for (size_t i = 0; i < events_.size(); i++) {
    const TraceEvent& event = events_[i];
    // Completion of a paired invocation is folded into its "X" event; only
    // unpaired completions (start evicted from the ring) appear alone.
    if (folded.count(i) > 0) {
      continue;
    }
    json.BeginObject();
    auto duration_it = durations.find(i);
    if (duration_it != durations.end()) {
      json.Key("ph");
      json.String("X");
      json.Key("dur");
      json.Double(static_cast<double>(duration_it->second) / 1000.0);
    } else {
      json.Key("ph");
      json.String("i");
      json.Key("s");
      json.String("t");
    }
    json.Key("name");
    // A paired start/complete renders as one duration slice covering the
    // whole invocation, so drop the "_START" suffix from its label.
    std::string name(duration_it != durations.end()
                         ? "INVOKE"
                         : TraceEventKindName(event.kind));
    if (!event.object.IsNull()) {
      name += " " + event.object.ToString();
    }
    if (!event.detail.empty()) {
      name += " (" + event.detail + ")";
    }
    json.String(name);
    json.Key("ts");
    json.Double(static_cast<double>(event.when) / 1000.0);
    json.Key("pid");
    json.U64(event.node);
    json.Key("tid");
    json.U64(event.id);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.Take();
}

}  // namespace eden
