#include "src/trace/trace.h"

#include <cstdio>
#include <map>

namespace eden {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kInvokeStart:
      return "INVOKE_START";
    case TraceEventKind::kInvokeComplete:
      return "INVOKE_COMPLETE";
    case TraceEventKind::kDispatch:
      return "DISPATCH";
    case TraceEventKind::kLocateBroadcast:
      return "LOCATE_BROADCAST";
    case TraceEventKind::kRedirectFollowed:
      return "REDIRECT_FOLLOWED";
    case TraceEventKind::kActivation:
      return "ACTIVATION";
    case TraceEventKind::kCheckpoint:
      return "CHECKPOINT";
    case TraceEventKind::kMoveOut:
      return "MOVE_OUT";
    case TraceEventKind::kMoveIn:
      return "MOVE_IN";
    case TraceEventKind::kObjectCrash:
      return "OBJECT_CRASH";
    case TraceEventKind::kNodeFailure:
      return "NODE_FAILURE";
    case TraceEventKind::kNodeRestart:
      return "NODE_RESTART";
  }
  return "UNKNOWN";
}

void TraceBuffer::Record(TraceEvent event) {
  counts_[event.kind]++;
  total_recorded_++;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
  }
}

void TraceBuffer::Clear() {
  events_.clear();
  counts_.clear();
  total_recorded_ = 0;
}

std::string TraceBuffer::Dump(size_t last_n) const {
  std::string out;
  size_t start = events_.size() > last_n ? events_.size() - last_n : 0;
  for (size_t i = start; i < events_.size(); i++) {
    const TraceEvent& event = events_[i];
    char line[256];
    std::snprintf(line, sizeof(line), "[%12.3fms] node%-2u %-18s %-12s %s\n",
                  ToMilliseconds(event.when), event.node,
                  std::string(TraceEventKindName(event.kind)).c_str(),
                  event.object.IsNull() ? "-" : event.object.ToString().c_str(),
                  event.detail.c_str());
    out += line;
  }
  return out;
}

std::string TraceBuffer::Summary() const {
  std::string out;
  for (const auto& [kind, count] : counts_) {
    char line[96];
    std::snprintf(line, sizeof(line), "%-18s x%llu\n",
                  std::string(TraceEventKindName(kind)).c_str(),
                  static_cast<unsigned long long>(count));
    out += line;
  }
  return out;
}

SimDuration TraceBuffer::MeanInvocationLatency() const {
  std::map<uint64_t, SimTime> starts;
  SimDuration total = 0;
  uint64_t pairs = 0;
  for (const TraceEvent& event : events_) {
    if (event.kind == TraceEventKind::kInvokeStart) {
      starts[event.id] = event.when;
    } else if (event.kind == TraceEventKind::kInvokeComplete) {
      auto it = starts.find(event.id);
      if (it != starts.end()) {
        total += event.when - it->second;
        pairs++;
        starts.erase(it);
      }
    }
  }
  if (pairs == 0) {
    return 0;
  }
  return total / static_cast<SimDuration>(pairs);
}

}  // namespace eden
