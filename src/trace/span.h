// Causal spans: cross-node invocation tracing (DESIGN.md §12).
//
// TraceBuffer (trace.h) records flat per-node events; it cannot say where a
// location-independent invocation spent its time once the kernel fans out
// across locates, redirects, activations, checkpoint writes and retries on
// several nodes. Spans fix that: every unit of kernel work is a Span with a
// causal parent, identified by a SpanContext that rides inside the kernel's
// wire messages, so work performed on a remote node links to the invocation
// (or checkpoint, or move) that caused it. A SpanCollector shared by all node
// kernels assembles the spans of one trace into a tree, attributes the
// end-to-end latency to typed phases along the critical path, feeds
// trace.phase.* histograms, exports flame-style Chrome trace JSON with flow
// events between nodes, and keeps the K worst complete traces as exemplars.
//
// Determinism contract (determinism_test relies on this): tracing never
// schedules simulation events, never consumes simulation randomness (span
// ids come from a collector-private counter), and SpanContext encodes
// FIXED-WIDTH on the wire — zeros when tracing is off — so message sizes,
// serialize costs, fragmentation and therefore the execution trace are
// bit-identical whether a collector is attached or not.
#ifndef EDEN_SRC_TRACE_SPAN_H_
#define EDEN_SRC_TRACE_SPAN_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/kernel/name.h"
#include "src/metrics/metrics.h"
#include "src/net/lan.h"
#include "src/sim/time.h"

namespace eden {

// The causal identity carried on kernel messages. A zero span_id means "no
// tracing"; receivers then create no child spans.
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  // Local-only hint: index of this span in its trace's span array. Spans are
  // append-only while live, so the index is stable. NOT encoded on the wire;
  // a decoded context (slot unknown) is only ever used as a parent. EndSpan/
  // Annotate verify span_id before trusting it.
  uint32_t slot = 0;

  bool valid() const { return span_id != 0; }

  // Fixed-width (3 x u64, zeros when tracing is disabled) so message byte
  // sizes never depend on whether a collector is attached.
  void Encode(BufferWriter& writer) const;
  static StatusOr<SpanContext> Decode(BufferReader& reader);
};

// The typed phases of a distributed invocation. Each span has exactly one
// kind; critical-path attribution buckets time by kind, so these are also
// the trace.phase.* histogram names.
enum class SpanKind : uint8_t {
  kInvocation = 0,  // client-side Invoke: accepted -> completion (root/nested)
  kLocate = 1,      // location broadcast rounds on the invoking kernel
  kWire = 2,        // reliable send: first transmit -> ACK (or give-up)
  kDispatch = 3,    // coordinator: request accepted -> reply sent (incl. queue)
  kActivation = 4,  // passive -> active reincarnation
  kStoreRead = 5,   // stable-store read service (queue + seek + transfer)
  kStoreWrite = 6,  // stable-store write/delete service
  kCheckpoint = 7,  // one checkpoint operation (local or remote site)
  kMove = 8,        // object transfer, source side
  kDirectory = 9,   // one partitioned-directory lookup round (DESIGN.md §13)
  kLease = 10,      // lease recall window: write blocked -> leases cleared
};
constexpr size_t kSpanKindCount = 11;

std::string_view SpanKindName(SpanKind kind);

// A timestamped note on a span: retransmits, redirects followed, injected
// faults, backoff decisions.
struct SpanNote {
  SimTime when = 0;
  std::string text;
};

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 for a trace root
  SpanKind kind = SpanKind::kInvocation;
  StationId node = 0;
  ObjectName object;   // null when not applicable
  std::string label;   // operation, store key, peer, ...
  SimTime start = 0;
  SimTime end = 0;
  bool open = true;
  // Empty = closed clean; otherwise a short status ("timeout", "reset", ...).
  std::string status;
  std::vector<SpanNote> notes;

  SimDuration duration() const { return end - start; }
};

struct SpanCollectorConfig {
  // K worst complete traces kept (by root duration) for post-run dumps.
  size_t slow_exemplars = 4;
  // Most recent complete traces retained for export/inspection. Kept modest
  // by default: the retained trees are the traced hot path's largest cache
  // footprint (every finalized trace cycles through this window).
  size_t retain_completed = 64;
  // Safety caps; beyond them spans are counted as dropped, not recorded.
  size_t max_live_traces = 4096;
  size_t max_spans_per_trace = 512;

  // --- Flight recorder: tail-based retention (DESIGN.md §17) -----------------
  // When enabled, a finalized root trace is *retained* — critical-path
  // attribution, phase histograms, exemplar ranking, the completed() window —
  // only if it is interesting: slow (its end-to-end duration reaches the
  // top_p tail of the durations seen so far), annotated (any span closed
  // with a non-empty status or carries notes: faults, retries, timeouts),
  // or 1-in-N sampled by trace id (seed-stable — ids come from the
  // collector-private counter, never from simulation randomness). Every
  // other trace records its e2e latency (that histogram stays complete) and
  // is recycled on the spot, skipping the O(spans²) critical-path sweep —
  // the steady-state cost and memory of always-on tracing. Phase histograms
  // are therefore tail-sampled while this is on. Applies only to rooted
  // traces in an unsharded collector; per-shard fragment collectors keep
  // everything for Absorb to rejoin.
  struct Tail {
    bool enabled = false;
    double top_p = 0.05;     // retain the slowest top_p fraction
    uint64_t one_in_n = 64;  // deterministic baseline sample; 0 disables
    uint64_t warmup = 128;   // retain everything until this many roots seen
  };
  Tail tail;
};

struct SpanCollectorStats {
  uint64_t spans_started = 0;
  uint64_t spans_closed = 0;
  uint64_t traces_started = 0;
  uint64_t traces_completed = 0;
  uint64_t spans_dropped = 0;   // cap overflow
  uint64_t orphan_events = 0;   // End/Annotate for an unknown span
  // Flight-recorder accounting (zero unless tail.enabled): finalized root
  // traces kept vs recycled by the retention policy, and the most spans the
  // collector ever held at once (live + completed window + exemplar copies)
  // — the bounded-memory witness bench_tracing reports.
  uint64_t traces_retained = 0;
  uint64_t traces_discarded = 0;
  uint64_t spans_held_high_water = 0;
};

// Latency attribution for one trace: for every instant of the root span's
// lifetime, the time is charged to the kind of the *deepest* span covering
// that instant (ties: the later-started span). The per-kind times therefore
// sum exactly to the root's end-to-end duration. For a synchronous RPC chain
// this is the critical path; concurrent subtrees (e.g. mirrored checkpoint
// writes) are approximated by depth.
struct PhaseBreakdown {
  SimDuration by_kind[kSpanKindCount] = {};
  SimDuration total = 0;

  SimDuration of(SpanKind kind) const {
    return by_kind[static_cast<size_t>(kind)];
  }
};

// One assembled trace: every span sharing a trace_id, root first.
struct TraceTree {
  uint64_t trace_id = 0;
  std::vector<Span> spans;

  const Span* root() const { return spans.empty() ? nullptr : &spans[0]; }
  const Span* Find(uint64_t span_id) const;
};

// Shared by every node kernel (they are all one process); null pointers at
// the instrumentation sites mean tracing is off and cost one branch.
class SpanCollector {
 public:
  explicit SpanCollector(SpanCollectorConfig config = {});

  // Opens a span. An invalid `parent` starts a new trace rooted here.
  // Text parameters are string_views copied into the span only here, so hot
  // call sites pay no temporary std::string construction.
  SpanContext StartSpan(const SpanContext& parent, SpanKind kind,
                        StationId node, const ObjectName& object,
                        std::string_view label, SimTime now);
  void Annotate(const SpanContext& ctx, SimTime now, std::string_view note);
  // Closes a span; empty status = success. When this closes the last open
  // span of a trace whose root is closed, the trace is finalized: phase
  // histograms are recorded and the tree moves to completed()/exemplars.
  void EndSpan(const SpanContext& ctx, SimTime now,
               std::string_view status = {});

  // Force-closes every still-open span (status "unclosed") and finalizes
  // root-closed traces. Call after a run involving node failures, where
  // server-side spans on a dead node can never close normally.
  void Flush(SimTime now);

  // Completed traces, oldest first (bounded by retain_completed).
  const std::deque<TraceTree>& completed() const { return completed_; }
  // The K worst complete traces by root duration, worst first.
  const std::vector<TraceTree>& slow_exemplars() const { return exemplars_; }
  // Looks in completed traces first, then live ones; nullptr if unknown.
  // The returned tree for a live trace is a snapshot copy into `scratch`.
  const TraceTree* FindTrace(uint64_t trace_id, TraceTree& scratch) const;

  static PhaseBreakdown CriticalPath(const TraceTree& tree);

  // Human-readable per-phase table for one breakdown ("  wire 3.2ms 41%").
  static std::string FormatBreakdown(const PhaseBreakdown& breakdown);
  // Human-readable dump of the slow exemplars: per-trace span tree plus its
  // critical-path breakdown.
  std::string DumpSlowTraces() const;

  // Chrome trace-event JSON over the completed traces: every span is an "X"
  // slice (pid = node, tid = trace id), cross-node parent->child edges are
  // flow events, notes are instant events. Loadable in chrome://tracing.
  std::string ExportChromeTrace() const;

  // Mirrors phase attributions into `registry` as trace.phase.<kind>
  // histograms plus trace.e2e.latency, recorded when each trace finalizes,
  // and — when tail retention is on — trace.tail.{retained,discarded}
  // counters plus the trace.spans.{held,high_water} gauges. The registry
  // must outlive this collector; nullptr detaches.
  void set_metrics(MetricsRegistry* registry);

  const SpanCollectorConfig& config() const { return config_; }
  // Spans currently held (live + completed window + exemplar copies).
  size_t spans_held() const { return held_spans_; }

  // --- Shard-local collection (DESIGN.md §14) --------------------------------
  // Under the parallel engine each shard gets its own collector (collectors
  // are not thread-safe). set_id_base partitions the id space — shard s uses
  // (s << 56) | 1 — so span/trace ids never collide across collectors.
  void set_id_base(uint64_t base) { next_id_ = base; }
  // Fragment mode: a child span whose parent trace is unknown (its root
  // lives in another shard's collector) is recorded locally as a trace
  // fragment instead of being dropped; Absorb reunites fragments with their
  // roots by trace_id. Off by default — a plain collector keeps the legacy
  // late-child-is-dropped policy.
  void set_fragments_enabled(bool on) { fragments_enabled_ = on; }
  // Merges `other`'s completed traces (and stats) into this collector,
  // joining same-trace_id trees so cross-shard traces export as one tree,
  // and re-ranks the slow exemplars over the merged retained window.
  // `other` is left empty of completed traces. Flush `other` first if open
  // spans should be force-closed.
  void Absorb(SpanCollector& other);

  const SpanCollectorStats& stats() const { return stats_; }
  size_t live_traces() const { return live_.size(); }
  void Clear();

 private:
  struct LiveTrace {
    TraceTree tree;
    size_t open_spans = 0;
    bool root_closed = false;
    // Root lives in another shard's collector (see set_fragments_enabled);
    // finalizes when its local spans close, without a root.
    bool fragment = false;
  };
  using LiveMap = std::unordered_map<uint64_t, LiveTrace>;

  Span* FindOpen(LiveTrace* trace, uint64_t span_id);
  Span* FindOpen(LiveTrace* trace, const SpanContext& ctx);
  LiveTrace* FindLive(const SpanContext& ctx);
  // live_ lookup-cache maintenance (see live_cache_ below).
  void CacheLive(uint64_t trace_id, LiveTrace* trace) {
    size_t slot = trace_id & (kLiveCacheSize - 1);
    live_cache_ids_[slot] = trace_id;
    live_cache_[slot] = trace;
  }
  void UncacheLive(uint64_t trace_id) {
    size_t slot = trace_id & (kLiveCacheSize - 1);
    if (live_cache_ids_[slot] == trace_id) {
      live_cache_ids_[slot] = 0;
      live_cache_[slot] = nullptr;
    }
  }
  void MaybeFinalize(uint64_t trace_id, LiveTrace& trace);
  void Finalize(uint64_t trace_id, LiveTrace&& trace);
  // Flight-recorder decision for a finalized root trace (see config_.tail).
  // Records `e2e` into the tail-duration distribution either way.
  bool RetainUnderTailPolicy(const TraceTree& tree, SimDuration e2e);
  void RecordPhaseMetrics(const PhaseBreakdown& breakdown);
  void KeepExemplar(const TraceTree& tree);
  // held_spans_ bookkeeping: every span entering / leaving retained storage
  // passes through these, and the high-water mark updates on growth.
  void HoldSpans(size_t n);
  void ReleaseSpans(size_t n);
  // Rebuilds held_spans_ from retained storage after Absorb moves trees
  // wholesale between collectors.
  void RecountHeldSpans();
  // Returns a retiring tree's span storage to spare_spans_, so the traced
  // steady state allocates no per-trace vectors.
  void Recycle(TraceTree&& tree);

  SpanCollectorConfig config_;
  SpanCollectorStats stats_;
  uint64_t next_id_ = 1;
  bool fragments_enabled_ = false;

  LiveMap live_;
  // Direct-mapped lookup cache over live_: at saturation a closed-loop
  // client per node keeps that many traces interleaved, so a one-entry
  // cache thrashes while a small table keeps every in-flight trace's probe
  // a single compare. Node-based map pointers are stable across rehash and
  // insertion; extraction (finalize) and Clear invalidate the slot.
  static constexpr size_t kLiveCacheSize = 64;  // power of two
  std::array<uint64_t, kLiveCacheSize> live_cache_ids_ = {};
  std::array<LiveTrace*, kLiveCacheSize> live_cache_ = {};
  std::deque<TraceTree> completed_;
  std::vector<TraceTree> exemplars_;  // sorted worst-first
  // Recycled storage: the traced steady state starts a trace without any
  // allocation — map nodes and span vectors both come from retired traces.
  std::vector<std::vector<Span>> spare_spans_;
  std::vector<LiveMap::node_type> spare_nodes_;

  // Tail-retention state: the distribution of every finalized root's e2e
  // duration (fed whether or not the trace was retained — the top-p slow
  // threshold must see the full population), and the span-held accounting.
  Histogram tail_durations_;
  // Cached top-p slow threshold, refreshed every kTailThresholdRefresh
  // finalized roots (-1 = not yet computed). The refresh cadence is keyed on
  // tail_durations_.count(), so the retention decisions remain a pure
  // function of the execution.
  static constexpr uint64_t kTailThresholdRefresh = 64;
  SimDuration tail_threshold_ = -1;
  size_t held_spans_ = 0;

  MetricsRegistry* registry_ = nullptr;
  Histogram* phase_hist_[kSpanKindCount] = {};
  Histogram* e2e_hist_ = nullptr;
  Counter* traces_completed_counter_ = nullptr;
  Counter* tail_retained_counter_ = nullptr;
  Counter* tail_discarded_counter_ = nullptr;
  Gauge* spans_held_gauge_ = nullptr;
  Gauge* spans_high_water_gauge_ = nullptr;
};

}  // namespace eden

#endif  // EDEN_SRC_TRACE_SPAN_H_
