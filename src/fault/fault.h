// Chaos layer: declarative, seeded fault injection (DESIGN.md §11).
//
// A FaultPlan describes *what* can go wrong — wire corruption/duplication/
// delay probabilities, per-node disk fault mixes, a partition timeline and a
// crash-restart schedule. A FaultInjector turns the plan into the hook
// objects the Lan (WireFaultHook) and each node's StableStore (DiskFaultHook)
// consult on their normal paths, drawing every decision from rngs forked off
// the simulation seed, so a chaotic run is exactly as reproducible as a
// clean one. EdenSystem::EnableFaults installs the hooks and schedules the
// plan's timelines; the injector itself never reaches above the storage/net
// layer, which keeps the dependency graph acyclic (the kernel links fault,
// not the other way around).
//
// Everything injected is counted (FaultStats, fault.* metrics) and optionally
// narrated through an event sink so traces show faults interleaved with the
// recoveries they provoke.
#ifndef EDEN_SRC_FAULT_FAULT_H_
#define EDEN_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/net/lan.h"
#include "src/sim/simulation.h"
#include "src/storage/stable_store.h"

namespace eden {

// Per-delivery wire fault probabilities, applied after the Lan's base loss
// model (so they compose with LanConfig::loss_probability).
struct WireFaultConfig {
  double corrupt_probability = 0.0;    // one bit flips in flight
  double duplicate_probability = 0.0;  // frame delivered twice
  double delay_probability = 0.0;      // frame deferred (reorder jitter)
  SimDuration max_extra_delay = Milliseconds(2);
  double drop_probability = 0.0;       // extra loss beyond the base model
};

// One step in the partition timeline: at `at`, move the listed stations into
// their groups (everyone unlisted returns to group 0). An empty `groups`
// list is a full heal.
struct PartitionEpoch {
  SimTime at = 0;
  std::vector<std::pair<StationId, int>> groups;
};

// Per-node disk fault mix.
struct DiskFaultConfig {
  double write_error_probability = 0.0;   // flush fails, record torn, detected
  double torn_write_probability = 0.0;    // record torn, flush acks OK (silent)
  double read_soft_error_probability = 0.0;  // transparent retry, extra spin
  double latent_corruption_probability = 0.0;  // bit rot after a clean flush
  double degraded_probability = 0.0;      // this service runs on a tired arm
  double degraded_factor = 3.0;           // service-time multiplier when it does

  bool any() const {
    return write_error_probability > 0 || torn_write_probability > 0 ||
           read_soft_error_probability > 0 ||
           latent_corruption_probability > 0 || degraded_probability > 0;
  }
};

// One crash-restart cycle for a node (by EdenSystem node index).
struct CrashEvent {
  size_t node = 0;
  SimTime fail_at = 0;
  SimDuration down_for = Milliseconds(500);
};

struct FaultPlan {
  // Probabilistic faults fire only inside [start, end).
  SimTime start = 0;
  SimTime end = kSimTimeNever;

  WireFaultConfig wire;
  DiskFaultConfig disk;  // default mix for nodes without an override
  std::map<size_t, DiskFaultConfig> disk_overrides;  // by node index
  std::vector<PartitionEpoch> partitions;
  std::vector<CrashEvent> crashes;

  // The standardized fault storm the acceptance criteria and bench_chaos
  // measure against: wire corruption + duplication + delay on every link,
  // the full disk fault mix on the first `flaky_disks` nodes (leave mirrors
  // on clean disks so torn primaries stay recoverable), staggered
  // crash-restart cycles over the flaky nodes, and one partition/heal epoch
  // pair. Deterministic for a given argument tuple.
  static FaultPlan StandardStorm(size_t nodes, size_t flaky_disks,
                                 SimTime start, SimTime end);
};

struct FaultStats {
  uint64_t wire_corrupted = 0;
  uint64_t wire_duplicated = 0;
  uint64_t wire_delayed = 0;
  uint64_t wire_dropped = 0;
  uint64_t disk_write_errors = 0;
  uint64_t disk_torn_writes = 0;
  uint64_t disk_read_soft_errors = 0;
  uint64_t disk_latent_corruptions = 0;
  uint64_t disk_degraded_services = 0;
  uint64_t partition_epochs = 0;
  uint64_t node_failures = 0;
  uint64_t node_restarts = 0;
};

class FaultInjector : public WireFaultHook {
 public:
  FaultInjector(Simulation& sim, FaultPlan plan);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // WireFaultHook: one decision per frame delivery, seeded.
  Decision OnDeliver(StationId src, StationId dst, size_t wire_bytes) override;

  // The disk hook for node `node` (its config, shared injector rng/stats).
  // The pointer stays valid for the injector's lifetime.
  DiskFaultHook* DiskHookFor(size_t node);

  // True while the plan's probabilistic window is open.
  bool ActiveNow() const {
    SimTime now = sim_.now();
    return now >= plan_.start && now < plan_.end;
  }

  // Mirrors FaultStats into `registry` under fault.* names; nullptr detaches.
  void set_metrics(MetricsRegistry* registry);

  // Optional narration: called once per injected fault with a short kind tag
  // ("wire.corrupt", "disk.torn", "node.fail", ...) and the affected station
  // or node (kNoFaultSite when not applicable). EdenSystem routes this into
  // the trace buffer.
  static constexpr uint32_t kNoFaultSite = 0xffffffffu;
  using EventSink = std::function<void(const char* kind, uint32_t site)>;
  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

  // Timeline bookkeeping: EdenSystem applies the partition/crash schedules
  // (it owns the Lan and the kernels) and reports each application here so
  // stats, metrics and the sink see one coherent stream.
  void RecordPartitionEpoch();
  void RecordNodeFailure(size_t node);
  void RecordNodeRestart(size_t node);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  class NodeDiskHook;

  void Emit(const char* kind, uint32_t site);
  Counter* FaultCounter(const char* name);

  Simulation& sim_;
  FaultPlan plan_;
  Rng wire_rng_;
  Rng disk_rng_;
  FaultStats stats_;
  MetricsRegistry* registry_ = nullptr;
  EventSink sink_;
  std::vector<std::unique_ptr<NodeDiskHook>> disk_hooks_;
};

}  // namespace eden

#endif  // EDEN_SRC_FAULT_FAULT_H_
