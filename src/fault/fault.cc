#include "src/fault/fault.h"

namespace eden {

FaultPlan FaultPlan::StandardStorm(size_t nodes, size_t flaky_disks,
                                   SimTime start, SimTime end) {
  FaultPlan plan;
  plan.start = start;
  plan.end = end;

  // The acceptance storm's wire mix rides on top of the caller's base loss
  // (conventionally LanConfig::loss_probability = 0.02).
  plan.wire.corrupt_probability = 0.01;
  plan.wire.duplicate_probability = 0.01;
  plan.wire.delay_probability = 0.03;
  plan.wire.max_extra_delay = Milliseconds(2);

  DiskFaultConfig flaky;
  flaky.write_error_probability = 0.05;
  flaky.torn_write_probability = 0.02;
  flaky.read_soft_error_probability = 0.05;
  flaky.latent_corruption_probability = 0.01;
  flaky.degraded_probability = 0.10;
  flaky.degraded_factor = 3.0;
  // Flaky disks on the first `flaky_disks` nodes only: a deployment keeps
  // mirrors on different (here: clean) spindles, which is what makes torn
  // primary records recoverable rather than fatal.
  for (size_t i = 0; i < flaky_disks && i < nodes; i++) {
    plan.disk_overrides[i] = flaky;
  }

  SimDuration window = end == kSimTimeNever ? Seconds(10) : end - start;
  // One crash-restart cycle per flaky node, staggered across the window, so
  // reincarnation happens while the wire and disks are still misbehaving.
  for (size_t k = 0; k < flaky_disks && k < nodes; k++) {
    CrashEvent crash;
    crash.node = k;
    crash.fail_at =
        start + static_cast<SimDuration>(window * (k + 1) /
                                         (flaky_disks + 1));
    crash.down_for = Milliseconds(300);
    plan.crashes.push_back(crash);
  }

  // One partition/heal pair: the highest node drops out of the main group
  // for a sixth of the window.
  if (nodes >= 2) {
    PartitionEpoch split;
    split.at = start + window / 3;
    split.groups.emplace_back(static_cast<StationId>(nodes - 1), 1);
    plan.partitions.push_back(split);
    PartitionEpoch heal;
    heal.at = start + window / 2;
    plan.partitions.push_back(heal);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Per-node disk hook
// ---------------------------------------------------------------------------

class FaultInjector::NodeDiskHook : public DiskFaultHook {
 public:
  NodeDiskHook(FaultInjector* owner, size_t node, DiskFaultConfig config)
      : owner_(owner), node_(static_cast<uint32_t>(node)), config_(config) {}

  WriteFault OnWriteFlush(const std::string&) override {
    WriteFault fault;
    if (!Armed()) {
      return fault;
    }
    Rng& rng = owner_->disk_rng_;
    if (config_.write_error_probability > 0 &&
        rng.NextBool(config_.write_error_probability)) {
      fault.error = true;
      owner_->stats_.disk_write_errors++;
      owner_->Emit("disk.write_error", node_);
    } else if (config_.torn_write_probability > 0 &&
               rng.NextBool(config_.torn_write_probability)) {
      fault.torn = true;
      owner_->stats_.disk_torn_writes++;
      owner_->Emit("disk.torn_write", node_);
    }
    return fault;
  }

  bool CorruptAtRest(const std::string&) override {
    if (!Armed() || config_.latent_corruption_probability <= 0 ||
        !owner_->disk_rng_.NextBool(config_.latent_corruption_probability)) {
      return false;
    }
    owner_->stats_.disk_latent_corruptions++;
    owner_->Emit("disk.latent_corruption", node_);
    return true;
  }

  int ReadRetries(const std::string&) override {
    if (!Armed() || config_.read_soft_error_probability <= 0 ||
        !owner_->disk_rng_.NextBool(config_.read_soft_error_probability)) {
      return 0;
    }
    owner_->stats_.disk_read_soft_errors++;
    owner_->Emit("disk.read_soft_error", node_);
    return 1 + static_cast<int>(owner_->disk_rng_.NextBelow(3));
  }

  double ServiceFactor() override {
    if (!Armed() || config_.degraded_probability <= 0 ||
        !owner_->disk_rng_.NextBool(config_.degraded_probability)) {
      return 1.0;
    }
    owner_->stats_.disk_degraded_services++;
    owner_->Emit("disk.degraded", node_);
    return config_.degraded_factor;
  }

 private:
  bool Armed() const { return owner_->ActiveNow() && config_.any(); }

  FaultInjector* owner_;
  uint32_t node_;
  DiskFaultConfig config_;
};

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(Simulation& sim, FaultPlan plan)
    : sim_(sim),
      plan_(std::move(plan)),
      wire_rng_(sim.rng().Fork()),
      disk_rng_(sim.rng().Fork()) {}

FaultInjector::~FaultInjector() = default;

void FaultInjector::set_metrics(MetricsRegistry* registry) {
  registry_ = registry;
}

Counter* FaultInjector::FaultCounter(const char* name) {
  if (registry_ == nullptr) {
    return nullptr;
  }
  return &registry_->counter(std::string("fault.") + name);
}

void FaultInjector::Emit(const char* kind, uint32_t site) {
  if (Counter* counter = FaultCounter(kind)) {
    counter->Increment();
  }
  if (sink_) {
    sink_(kind, site);
  }
}

WireFaultHook::Decision FaultInjector::OnDeliver(StationId, StationId dst,
                                                size_t) {
  Decision decision;
  if (!ActiveNow()) {
    return decision;
  }
  const WireFaultConfig& wire = plan_.wire;
  if (wire.drop_probability > 0 && wire_rng_.NextBool(wire.drop_probability)) {
    decision.drop = true;
    stats_.wire_dropped++;
    Emit("wire.drop", dst);
    return decision;
  }
  if (wire.corrupt_probability > 0 &&
      wire_rng_.NextBool(wire.corrupt_probability)) {
    decision.corrupt = true;
    stats_.wire_corrupted++;
    Emit("wire.corrupt", dst);
  }
  if (wire.duplicate_probability > 0 &&
      wire_rng_.NextBool(wire.duplicate_probability)) {
    decision.duplicate = true;
    stats_.wire_duplicated++;
    Emit("wire.duplicate", dst);
  }
  if (wire.delay_probability > 0 && wire.max_extra_delay > 0 &&
      wire_rng_.NextBool(wire.delay_probability)) {
    decision.extra_delay =
        1 + static_cast<SimDuration>(
                wire_rng_.NextBelow(static_cast<uint64_t>(wire.max_extra_delay)));
    stats_.wire_delayed++;
    Emit("wire.delay", dst);
  }
  return decision;
}

DiskFaultHook* FaultInjector::DiskHookFor(size_t node) {
  if (disk_hooks_.size() <= node) {
    disk_hooks_.resize(node + 1);
  }
  if (disk_hooks_[node] == nullptr) {
    auto it = plan_.disk_overrides.find(node);
    DiskFaultConfig config =
        it != plan_.disk_overrides.end() ? it->second : plan_.disk;
    disk_hooks_[node] = std::make_unique<NodeDiskHook>(this, node, config);
  }
  return disk_hooks_[node].get();
}

void FaultInjector::RecordPartitionEpoch() {
  stats_.partition_epochs++;
  Emit("partition.epoch", kNoFaultSite);
}

void FaultInjector::RecordNodeFailure(size_t node) {
  stats_.node_failures++;
  Emit("node.fail", static_cast<uint32_t>(node));
}

void FaultInjector::RecordNodeRestart(size_t node) {
  stats_.node_restarts++;
  Emit("node.restart", static_cast<uint32_t>(node));
}

}  // namespace eden
