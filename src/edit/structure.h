// Structured representations for the object editor (paper section 5: "all
// objects (such as directories, source programs, queues, etc.) have a
// syntactically structured visual representation, and... all human
// interactions with objects are treated as editing operations applied to
// these visual representations").
//
// StructureNode is the syntax tree behind that idea: a labelled, ordered tree
// of string-valued nodes with a stable binary codec (so a structure can live
// in a representation segment and be checkpointed), path addressing for edit
// operations, and a text renderer standing in for the bit-map display the
// node machines never got.
#ifndef EDEN_SRC_EDIT_STRUCTURE_H_
#define EDEN_SRC_EDIT_STRUCTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace eden {

// A path addresses a node by child indices from the root: {} is the root,
// {0, 2} is the third child of the first child.
using StructurePath = std::vector<size_t>;

// Parses "0/2/1" (empty string = root). Rejects non-numeric segments.
StatusOr<StructurePath> ParseStructurePath(const std::string& text);
std::string FormatStructurePath(const StructurePath& path);

class StructureNode {
 public:
  StructureNode() = default;
  StructureNode(std::string label, std::string value)
      : label_(std::move(label)), value_(std::move(value)) {}

  const std::string& label() const { return label_; }
  const std::string& value() const { return value_; }
  void set_label(std::string label) { label_ = std::move(label); }
  void set_value(std::string value) { value_ = std::move(value); }

  size_t child_count() const { return children_.size(); }
  const StructureNode& child(size_t index) const { return children_.at(index); }
  StructureNode& mutable_child(size_t index) { return children_.at(index); }

  // Appends and returns the new child.
  StructureNode& AddChild(std::string label, std::string value);

  // --- Path operations ------------------------------------------------------
  // Resolves a path; error if any index is out of range.
  StatusOr<const StructureNode*> Find(const StructurePath& path) const;
  StatusOr<StructureNode*> FindMutable(const StructurePath& path);

  // Sets the value of the node at `path`.
  Status SetValueAt(const StructurePath& path, std::string value);

  // Inserts a new child under the node at `path`, before `index` (index may
  // equal the child count to append).
  Status InsertAt(const StructurePath& path, size_t index, std::string label,
                  std::string value);

  // Removes the node at `path` (the root cannot be removed).
  Status RemoveAt(const StructurePath& path);

  // --- Whole-tree operations ---------------------------------------------------
  size_t TotalNodes() const;
  void Encode(BufferWriter& writer) const;
  static StatusOr<StructureNode> Decode(BufferReader& reader);
  Bytes Serialize() const;
  static StatusOr<StructureNode> Deserialize(const Bytes& bytes);

  // Indented text rendering:
  //   label: value
  //     child-label: value
  std::string Render() const;

  bool operator==(const StructureNode& other) const {
    return label_ == other.label_ && value_ == other.value_ &&
           children_ == other.children_;
  }

 private:
  void RenderInto(std::string& out, int depth) const;
  static StatusOr<StructureNode> DecodeBounded(BufferReader& reader, int depth);

  std::string label_;
  std::string value_;
  std::vector<StructureNode> children_;
};

}  // namespace eden

#endif  // EDEN_SRC_EDIT_STRUCTURE_H_
