#include "src/edit/structure.h"

namespace eden {

namespace {
constexpr int kMaxDepth = 64;
constexpr size_t kMaxChildren = 1u << 16;
}  // namespace

StatusOr<StructurePath> ParseStructurePath(const std::string& text) {
  StructurePath path;
  if (text.empty()) {
    return path;
  }
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t slash = text.find('/', pos);
    std::string segment = text.substr(
        pos, slash == std::string::npos ? std::string::npos : slash - pos);
    if (segment.empty()) {
      return InvalidArgumentError("empty path segment in \"" + text + "\"");
    }
    size_t index = 0;
    for (char c : segment) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError("non-numeric path segment \"" + segment + "\"");
      }
      index = index * 10 + static_cast<size_t>(c - '0');
      if (index > kMaxChildren) {
        return InvalidArgumentError("path index too large");
      }
    }
    path.push_back(index);
    if (slash == std::string::npos) {
      break;
    }
    pos = slash + 1;
  }
  return path;
}

std::string FormatStructurePath(const StructurePath& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); i++) {
    if (i > 0) {
      out += '/';
    }
    out += std::to_string(path[i]);
  }
  return out;
}

StructureNode& StructureNode::AddChild(std::string label, std::string value) {
  children_.emplace_back(std::move(label), std::move(value));
  return children_.back();
}

StatusOr<const StructureNode*> StructureNode::Find(const StructurePath& path) const {
  const StructureNode* node = this;
  for (size_t index : path) {
    if (index >= node->children_.size()) {
      return NotFoundError("no node at path " + FormatStructurePath(path));
    }
    node = &node->children_[index];
  }
  return node;
}

StatusOr<StructureNode*> StructureNode::FindMutable(const StructurePath& path) {
  StructureNode* node = this;
  for (size_t index : path) {
    if (index >= node->children_.size()) {
      return NotFoundError("no node at path " + FormatStructurePath(path));
    }
    node = &node->children_[index];
  }
  return node;
}

Status StructureNode::SetValueAt(const StructurePath& path, std::string value) {
  EDEN_ASSIGN_OR_RETURN(StructureNode * node, FindMutable(path));
  node->set_value(std::move(value));
  return OkStatus();
}

Status StructureNode::InsertAt(const StructurePath& path, size_t index,
                               std::string label, std::string value) {
  EDEN_ASSIGN_OR_RETURN(StructureNode * node, FindMutable(path));
  if (index > node->children_.size()) {
    return InvalidArgumentError("insert index out of range");
  }
  if (node->children_.size() >= kMaxChildren) {
    return ResourceExhaustedError("too many children");
  }
  node->children_.insert(node->children_.begin() + static_cast<long>(index),
                         StructureNode(std::move(label), std::move(value)));
  return OkStatus();
}

Status StructureNode::RemoveAt(const StructurePath& path) {
  if (path.empty()) {
    return InvalidArgumentError("cannot remove the root node");
  }
  StructurePath parent_path(path.begin(), path.end() - 1);
  EDEN_ASSIGN_OR_RETURN(StructureNode * parent, FindMutable(parent_path));
  size_t index = path.back();
  if (index >= parent->children_.size()) {
    return NotFoundError("no node at path " + FormatStructurePath(path));
  }
  parent->children_.erase(parent->children_.begin() + static_cast<long>(index));
  return OkStatus();
}

size_t StructureNode::TotalNodes() const {
  size_t total = 1;
  for (const StructureNode& child : children_) {
    total += child.TotalNodes();
  }
  return total;
}

void StructureNode::Encode(BufferWriter& writer) const {
  writer.WriteString(label_);
  writer.WriteString(value_);
  writer.WriteVarint(children_.size());
  for (const StructureNode& child : children_) {
    child.Encode(writer);
  }
}

StatusOr<StructureNode> StructureNode::DecodeBounded(BufferReader& reader,
                                                     int depth) {
  if (depth > kMaxDepth) {
    return InvalidArgumentError("structure nesting too deep");
  }
  StructureNode node;
  EDEN_ASSIGN_OR_RETURN(node.label_, reader.ReadString());
  EDEN_ASSIGN_OR_RETURN(node.value_, reader.ReadString());
  EDEN_ASSIGN_OR_RETURN(uint64_t child_count, reader.ReadVarint());
  if (child_count > kMaxChildren) {
    return InvalidArgumentError("implausible child count");
  }
  node.children_.reserve(child_count);
  for (uint64_t i = 0; i < child_count; i++) {
    EDEN_ASSIGN_OR_RETURN(StructureNode child, DecodeBounded(reader, depth + 1));
    node.children_.push_back(std::move(child));
  }
  return node;
}

StatusOr<StructureNode> StructureNode::Decode(BufferReader& reader) {
  return DecodeBounded(reader, 0);
}

Bytes StructureNode::Serialize() const {
  BufferWriter writer;
  Encode(writer);
  return writer.Take();
}

StatusOr<StructureNode> StructureNode::Deserialize(const Bytes& bytes) {
  BufferReader reader(bytes);
  EDEN_ASSIGN_OR_RETURN(StructureNode node, Decode(reader));
  if (!reader.AtEnd()) {
    return InvalidArgumentError("trailing bytes after structure");
  }
  return node;
}

void StructureNode::RenderInto(std::string& out, int depth) const {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += label_;
  if (!value_.empty()) {
    out += ": ";
    out += value_;
  }
  out += '\n';
  for (const StructureNode& child : children_) {
    child.RenderInto(out, depth + 1);
  }
}

std::string StructureNode::Render() const {
  std::string out;
  RenderInto(out, 0);
  return out;
}

}  // namespace eden
