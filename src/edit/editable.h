// The "std.editable" abstract type: the object-editor paradigm as inheritable
// operations (paper section 5: the type hierarchy lets "display code for use
// with the object editor" be inherited).
//
// Any subtype that keeps a StructureNode in data segment 0 inherits:
//   edit.render ()                      -> [text]         the visual form
//   edit.get    (path)                  -> [label, value, children]
//   edit.set    (path, value)           -> []              edit a value
//   edit.insert (path, index, label, value) -> []          grow the structure
//   edit.remove (path)                  -> []              prune it
//   edit.count  ()                      -> [total nodes]
//
// Every mutation checkpoints (a user's edit must survive a crash). Paths are
// slash-separated child indices ("0/2"); the root is the empty path.
#ifndef EDEN_SRC_EDIT_EDITABLE_H_
#define EDEN_SRC_EDIT_EDITABLE_H_

#include <memory>

#include "src/edit/structure.h"
#include "src/kernel/context.h"
#include "src/types/abstract_type.h"

namespace eden {

class EdenSystem;

// The abstract editable base (subtype of std.object).
std::shared_ptr<AbstractType> StdEditableType();

// A ready-made concrete subtype: "edit.document", an editable outline
// document with nothing beyond the inherited behavior.
std::shared_ptr<AbstractType> EditDocumentType();

// "edit.outline": a subtype that OVERRIDES the inherited display code
// (edit.render) with numbered section headings — the paper's example of an
// attribute "that might usefully be inherited" being specialized per type.
std::shared_ptr<AbstractType> EditOutlineType();

void RegisterEditTypes(EdenSystem& system);

// Helpers for type programmers storing structures in representations.
StatusOr<StructureNode> LoadStructure(const InvokeContext& ctx);
void StoreStructure(InvokeContext& ctx, const StructureNode& root);

// Builds a Representation holding `root` (for CreateObject).
Representation StructureRep(const StructureNode& root);

}  // namespace eden

#endif  // EDEN_SRC_EDIT_EDITABLE_H_
