#include "src/edit/editable.h"

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {

StatusOr<StructureNode> LoadStructure(const InvokeContext& ctx) {
  if (ctx.rep().data_segment_count() == 0 || ctx.rep().data(0).empty()) {
    return StructureNode("root", "");
  }
  return StructureNode::Deserialize(ctx.rep().data(0));
}

void StoreStructure(InvokeContext& ctx, const StructureNode& root) {
  ctx.rep().set_data(0, root.Serialize());
}

Representation StructureRep(const StructureNode& root) {
  Representation rep;
  rep.set_data(0, root.Serialize());
  return rep;
}

std::shared_ptr<AbstractType> StdEditableType() {
  auto type = std::make_shared<AbstractType>("std.editable", StdObjectType());
  type->AddClass("editors", 1);   // edits are serialized
  type->AddClass("viewers", 8);   // rendering is concurrent

  type->AddOperation(AbstractOperation{
      .name = "edit.render",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto root = LoadStructure(ctx);
        if (!root.ok()) {
          co_return InvokeResult::Error(root.status());
        }
        co_return InvokeResult::Ok(InvokeArgs{}.AddString(root->Render()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "viewers",
      .read_only = true,
  });

  type->AddOperation(AbstractOperation{
      .name = "edit.get",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto path_text = ctx.args().StringAt(0);
        if (!path_text.ok()) {
          co_return InvokeResult::Error(path_text.status());
        }
        auto path = ParseStructurePath(*path_text);
        if (!path.ok()) {
          co_return InvokeResult::Error(path.status());
        }
        auto root = LoadStructure(ctx);
        if (!root.ok()) {
          co_return InvokeResult::Error(root.status());
        }
        auto node = root->Find(*path);
        if (!node.ok()) {
          co_return InvokeResult::Error(node.status());
        }
        co_return InvokeResult::Ok(InvokeArgs{}
                                       .AddString((*node)->label())
                                       .AddString((*node)->value())
                                       .AddU64((*node)->child_count()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "viewers",
      .read_only = true,
  });

  type->AddOperation(AbstractOperation{
      .name = "edit.set",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto path_text = ctx.args().StringAt(0);
        auto value = ctx.args().StringAt(1);
        if (!path_text.ok() || !value.ok()) {
          co_return InvokeResult::Error(
              InvalidArgumentError("edit.set(path, value)"));
        }
        auto path = ParseStructurePath(*path_text);
        if (!path.ok()) {
          co_return InvokeResult::Error(path.status());
        }
        auto root = LoadStructure(ctx);
        if (!root.ok()) {
          co_return InvokeResult::Error(root.status());
        }
        Status applied = root->SetValueAt(*path, *value);
        if (!applied.ok()) {
          co_return InvokeResult::Error(applied);
        }
        StoreStructure(ctx, *root);
        Status durable = co_await ctx.Checkpoint();
        co_return InvokeResult{durable, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "editors",
  });

  type->AddOperation(AbstractOperation{
      .name = "edit.insert",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto path_text = ctx.args().StringAt(0);
        auto index = ctx.args().U64At(1);
        auto label = ctx.args().StringAt(2);
        auto value = ctx.args().StringAt(3);
        if (!path_text.ok() || !index.ok() || !label.ok() || !value.ok()) {
          co_return InvokeResult::Error(
              InvalidArgumentError("edit.insert(path, index, label, value)"));
        }
        auto path = ParseStructurePath(*path_text);
        if (!path.ok()) {
          co_return InvokeResult::Error(path.status());
        }
        auto root = LoadStructure(ctx);
        if (!root.ok()) {
          co_return InvokeResult::Error(root.status());
        }
        Status applied = root->InsertAt(*path, *index, *label, *value);
        if (!applied.ok()) {
          co_return InvokeResult::Error(applied);
        }
        StoreStructure(ctx, *root);
        Status durable = co_await ctx.Checkpoint();
        co_return InvokeResult{durable, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "editors",
  });

  type->AddOperation(AbstractOperation{
      .name = "edit.remove",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto path_text = ctx.args().StringAt(0);
        if (!path_text.ok()) {
          co_return InvokeResult::Error(path_text.status());
        }
        auto path = ParseStructurePath(*path_text);
        if (!path.ok()) {
          co_return InvokeResult::Error(path.status());
        }
        auto root = LoadStructure(ctx);
        if (!root.ok()) {
          co_return InvokeResult::Error(root.status());
        }
        Status applied = root->RemoveAt(*path);
        if (!applied.ok()) {
          co_return InvokeResult::Error(applied);
        }
        StoreStructure(ctx, *root);
        Status durable = co_await ctx.Checkpoint();
        co_return InvokeResult{durable, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "editors",
  });

  type->AddOperation(AbstractOperation{
      .name = "edit.count",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto root = LoadStructure(ctx);
        if (!root.ok()) {
          co_return InvokeResult::Error(root.status());
        }
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(root->TotalNodes()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "viewers",
      .read_only = true,
  });

  return type;
}

std::shared_ptr<AbstractType> EditDocumentType() {
  return std::make_shared<AbstractType>("edit.document", StdEditableType());
}

namespace {

void RenderOutline(const StructureNode& node, std::string& out,
                   std::vector<size_t>& numbering) {
  if (!numbering.empty()) {
    for (size_t i = 0; i < numbering.size(); i++) {
      out += std::to_string(numbering[i]);
      out += '.';
    }
    out += ' ';
  }
  out += node.value().empty() ? node.label() : node.value();
  out += '\n';
  for (size_t i = 0; i < node.child_count(); i++) {
    numbering.push_back(i + 1);
    RenderOutline(node.child(i), out, numbering);
    numbering.pop_back();
  }
}

}  // namespace

std::shared_ptr<AbstractType> EditOutlineType() {
  auto type = std::make_shared<AbstractType>("edit.outline", StdEditableType());
  // Override the inherited display code: dotted section numbers instead of
  // indentation.
  type->AddOperation(AbstractOperation{
      .name = "edit.render",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto root = LoadStructure(ctx);
        if (!root.ok()) {
          co_return InvokeResult::Error(root.status());
        }
        std::string out;
        std::vector<size_t> numbering;
        RenderOutline(*root, out, numbering);
        co_return InvokeResult::Ok(InvokeArgs{}.AddString(out));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "viewers",
      .read_only = true,
  });
  return type;
}

void RegisterEditTypes(EdenSystem& system) {
  system.RegisterType(StdEditableType()->BuildTypeManager());
  system.RegisterType(EditDocumentType()->BuildTypeManager());
  system.RegisterType(EditOutlineType()->BuildTypeManager());
}

}  // namespace eden
