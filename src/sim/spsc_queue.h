// Unbounded single-producer / single-consumer queue for cross-shard frame
// channels (sharded_engine.h). One producer thread pushes, one consumer
// thread pops; the only synchronization is one release store / acquire load
// per node, so a push costs an allocation and two atomic operations and a pop
// costs one load plus a delete.
//
// This is the classic two-lock-free linked design (a stub node separates the
// producer-owned tail from the consumer-owned head), which is all the
// conservative synchronizer needs: channel contents only become *visible*
// work when the consumer's shard reaches the delivery window, and the
// engine's horizon protocol (publish-after-push with release/acquire on the
// horizon atomics) already guarantees every frame inside a window is pushed
// before the window is processed.
#ifndef EDEN_SRC_SIM_SPSC_QUEUE_H_
#define EDEN_SRC_SIM_SPSC_QUEUE_H_

#include <atomic>
#include <utility>

namespace eden {

template <typename T>
class SpscQueue {
 public:
  SpscQueue() {
    Node* stub = new Node();
    head_ = stub;
    tail_ = stub;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  // Producer side.
  void Push(T value) {
    Node* node = new Node(std::move(value));
    tail_->next.store(node, std::memory_order_release);
    tail_ = node;
  }

  // Consumer side. Returns false when the queue is (currently) empty.
  bool Pop(T& out) {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      return false;
    }
    out = std::move(next->value);
    delete head_;
    head_ = next;
    return true;
  }

  // Consumer side (or any thread after the producer has quiesced).
  bool Empty() const {
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value;
  };

  Node* head_;  // consumer-owned; points at the current stub
  Node* tail_;  // producer-owned
};

}  // namespace eden

#endif  // EDEN_SRC_SIM_SPSC_QUEUE_H_
