#include "src/sim/simulation.h"

#include <cassert>
#include <cstdio>

namespace eden {

std::string FormatDuration(SimDuration d) {
  char buf[32];
  if (d < Microseconds(1)) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  } else if (d < Milliseconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ToMicroseconds(d));
  } else if (d < Seconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMilliseconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(d));
  }
  return buf;
}

Simulation::Simulation(uint64_t seed) : rng_(seed) {}

EventId Simulation::Schedule(SimDuration delay, std::function<void()> fn) {
  assert(delay >= 0 && "cannot schedule into the past");
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulation::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  live_[id] = true;
  return id;
}

void Simulation::Cancel(EventId id) {
  auto it = live_.find(id);
  if (it != live_.end()) {
    it->second = false;
  }
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    auto it = live_.find(event.id);
    bool alive = (it != live_.end()) && it->second;
    if (it != live_.end()) {
      live_.erase(it);
    }
    if (!alive) {
      continue;
    }
    assert(event.when >= now_);
    now_ = event.when;
    events_executed_++;
    event.fn();
    return true;
  }
  return false;
}

void Simulation::Run(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; i++) {
    if (!Step()) {
      return;
    }
  }
}

void Simulation::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    auto it = live_.find(top.id);
    bool alive = (it != live_.end()) && it->second;
    if (!alive) {
      queue_.pop();
      if (it != live_.end()) {
        live_.erase(it);
      }
      continue;
    }
    if (top.when > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulation::RunWhile(const std::function<bool()>& pending) {
  while (pending()) {
    if (!Step()) {
      return !pending();
    }
  }
  return true;
}

}  // namespace eden
