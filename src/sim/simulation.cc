#include "src/sim/simulation.h"

#include <cassert>
#include <cstdio>

namespace eden {

std::string FormatDuration(SimDuration d) {
  char buf[32];
  if (d < Microseconds(1)) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  } else if (d < Milliseconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ToMicroseconds(d));
  } else if (d < Seconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMilliseconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(d));
  }
  return buf;
}

Simulation::Simulation(uint64_t seed) : rng_(seed) {
  domain_seq_.push_back(1);  // domain 0: the legacy global FIFO counter
}

uint32_t Simulation::AllocSlot() {
  if (free_head_ != kNoSlot) {
    uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulation::ReleaseSlot(uint32_t index) {
  Slot& slot = slots_[index];
  slot.generation++;  // invalidates every outstanding id/queue entry
  slot.armed = false;
  slot.next_free = free_head_;
  free_head_ = index;
}

uint64_t Simulation::NextDomainSeq(uint32_t domain) {
  if (domain >= domain_seq_.size()) {
    domain_seq_.resize(domain + 1, 1);
  }
  return domain_seq_[domain]++;
}

EventId Simulation::Schedule(SimDuration delay, EventFn fn) {
  assert(delay >= 0 && "cannot schedule into the past");
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulation::ScheduleAt(SimTime when, EventFn fn) {
  return Push(when, current_domain_, 0, NextDomainSeq(current_domain_),
              std::move(fn));
}

EventId Simulation::ScheduleAtKeyed(SimTime when, uint32_t domain,
                                    uint32_t stream, uint64_t seq,
                                    EventFn fn) {
  return Push(when, domain, stream, seq, std::move(fn));
}

EventId Simulation::Push(SimTime when, uint32_t domain, uint32_t stream,
                         uint64_t seq, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  uint32_t index = AllocSlot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.armed = true;
  queue_.push(QueueEntry{when, seq, domain, stream, index, slot.generation});
  live_count_++;
  return MakeId(slot.generation, index);
}

void Simulation::Cancel(EventId id) {
  uint32_t index = static_cast<uint32_t>(id);
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (index >= slots_.size()) {
    return;
  }
  Slot& slot = slots_[index];
  if (slot.generation != generation || !slot.armed) {
    return;  // already fired, already cancelled, or never existed
  }
  slot.fn.Reset();  // release captures now, not when the entry surfaces
  live_count_--;
  ReleaseSlot(index);
}

void Simulation::Execute(const QueueEntry& top) {
  Slot& slot = slots_[top.slot];
  assert(top.when >= now_);
  now_ = top.when;
  // Fingerprint the execution order. Two runs with equal seeds must pop an
  // identical (when, key) sequence; mixing the sequence number catches a
  // same-timestamp FIFO swap that mixing the timestamp alone would miss.
  // Unkeyed events mix exactly (when, seq) as they always have; keyed events
  // additionally mix their (domain, stream) so distinct streams cannot alias.
  trace_.Mix(static_cast<uint64_t>(top.when));
  trace_.Mix(top.seq);
  if ((top.domain | top.stream) != 0) {
    trace_.Mix((static_cast<uint64_t>(top.domain) << 32) | top.stream);
  }
  events_executed_++;
  live_count_--;
  // Free the slot before invoking so the callback can schedule into it;
  // the generation bump keeps this entry's id from resurrecting.
  EventFn fn = std::move(slot.fn);
  ReleaseSlot(top.slot);
  current_domain_ = top.domain;
  fn();
  current_domain_ = 0;
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    QueueEntry top = queue_.top();
    queue_.pop();
    Slot& slot = slots_[top.slot];
    if (slot.generation != top.generation || !slot.armed) {
      continue;  // cancelled: its slot was already recycled
    }
    Execute(top);
    return true;
  }
  return false;
}

void Simulation::Run(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; i++) {
    if (!Step()) {
      return;
    }
  }
}

void Simulation::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    const Slot& slot = slots_[top.slot];
    if (slot.generation != top.generation || !slot.armed) {
      queue_.pop();  // drop stale entries without advancing the clock
      continue;
    }
    if (top.when > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulation::RunEventsBefore(SimTime bound) {
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    const Slot& slot = slots_[top.slot];
    if (slot.generation != top.generation || !slot.armed) {
      queue_.pop();
      continue;
    }
    if (top.when >= bound) {
      break;
    }
    Step();
  }
}

SimTime Simulation::PeekNextEventTime() {
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    const Slot& slot = slots_[top.slot];
    if (slot.generation != top.generation || !slot.armed) {
      queue_.pop();
      continue;
    }
    return top.when;
  }
  return kSimTimeNever;
}

bool Simulation::RunWhile(const std::function<bool()>& pending) {
  while (pending()) {
    if (!Step()) {
      return !pending();
    }
  }
  return true;
}

}  // namespace eden
