// Virtual time for the discrete-event simulation. All kernel latencies,
// network delays and disk service times are expressed in SimDuration; the
// benchmarks report virtual microseconds, which is what makes results
// deterministic and machine-independent.
#ifndef EDEN_SRC_SIM_TIME_H_
#define EDEN_SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace eden {

// Nanoseconds since simulation start.
using SimTime = int64_t;
// Nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t n) { return n * 1000; }
constexpr SimDuration Milliseconds(int64_t n) { return n * 1000 * 1000; }
constexpr SimDuration Seconds(int64_t n) { return n * 1000 * 1000 * 1000; }

constexpr double ToMicroseconds(SimDuration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMilliseconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

constexpr SimTime kSimTimeNever = INT64_MAX;

// "12.345ms" style rendering for logs.
std::string FormatDuration(SimDuration d);

}  // namespace eden

#endif  // EDEN_SRC_SIM_TIME_H_
