// Conservative parallel driver for a set of Simulation shards (DESIGN.md
// §14). Each shard is one Simulation instance owning a subset of the
// simulated nodes; cross-shard traffic travels through per-shard-pair SPSC
// channels stamped with delivery virtual time, and each shard advances to
//
//     bound = min(peer horizons) + lookahead
//
// where `lookahead` is the minimum wire latency (the LAN's minimum
// transmission time plus propagation delay): a peer that has published
// horizon H can send nothing that arrives before H + lookahead, so every
// event strictly before `bound` is safe to execute. Horizons only grow, and
// the minimum horizon always has a runnable window, so the protocol cannot
// deadlock. This is the loosely-coupled-simulators design SimBricks uses
// between component simulators, applied to node shards.
//
// Determinism: a shard's execution is a pure function of its event queue —
// the window boundaries only chunk it. Cross-shard deliveries are scheduled
// with canonical (receiver, sender, per-pair-seq) order keys, so the merged
// order at a receiver is independent of the shard layout and of thread
// timing; parallel runs produce bit-identical per-node digests to the
// single-shard run (tests/parallel_sim_test.cc gates this).
//
// Two drive modes execute identical per-shard event sequences:
//   * RunUntil(deadline): one worker thread per shard, horizons exchanged
//     through padded atomics (threaded=false forces the round-robin loop).
//   * DriveWhile(pred): single-threaded round-robin windows, for setup and
//     drain phases whose predicate lives on the driver thread.
#ifndef EDEN_SRC_SIM_SHARDED_ENGINE_H_
#define EDEN_SRC_SIM_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/simulation.h"
#include "src/sim/spsc_queue.h"
#include "src/sim/time.h"

namespace eden {

// One cross-shard handoff: deliver `payload` (opaque to the engine; the LAN
// registers a deliver callback that decodes it) to `dst_entity` at virtual
// time `deliver_at`, ordered by (dst_entity, src_entity, seq) among
// same-instant deliveries.
struct CrossShardMsg {
  SimTime deliver_at = 0;
  uint32_t dst_entity = 0;
  uint32_t src_entity = 0;
  uint64_t seq = 0;
  std::shared_ptr<void> payload;
};

class ShardedEngine {
 public:
  // Runs on the destination shard's thread at the start of the window that
  // may contain `deliver_at`; must schedule the delivery into the
  // destination's Simulation (keyed) and nothing else.
  using Deliver = std::function<void(const CrossShardMsg&)>;

  // `sims[0]` is the primary shard (drives the world clock for RunFor);
  // `lookahead` must be a lower bound on every cross-shard latency.
  ShardedEngine(std::vector<Simulation*> sims, SimDuration lookahead);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  void set_deliver(Deliver deliver) { deliver_ = std::move(deliver); }

  size_t shard_count() const { return shards_.size(); }
  Simulation& shard(size_t i) { return *shards_[i].sim; }
  SimDuration lookahead() const { return lookahead_; }

  // Producer API, called from a source shard's thread (or the driver thread
  // between runs): enqueue a cross-shard message. `from`/`to` are shard
  // indices; `from == to` is a caller bug (deliver locally instead).
  void Push(uint32_t from, uint32_t to, CrossShardMsg msg);

  // Advances every shard through `deadline` inclusive and leaves every
  // shard clock at exactly `deadline`. Threaded by default; pass
  // threaded=false (or run with one shard) for the single-threaded
  // round-robin loop — both produce identical executions.
  void RunUntil(SimTime deadline, bool threaded = true);

  // Single-threaded round-robin windows while `pred()` is true, checked
  // between windows on the driver thread. Returns true when pred became
  // false; false when every shard drained and every channel emptied with
  // pred still true (the awaited condition can never be met).
  bool DriveWhile(const std::function<bool()>& pred);

  // Sum of events executed across all shards.
  uint64_t total_events() const;

 private:
  // Cache-line padded so horizon publishes don't false-share.
  struct alignas(64) Shard {
    Simulation* sim = nullptr;
    // Virtual time this shard has fully processed (exclusive): every event
    // strictly before `horizon` has executed, and nothing this shard sends
    // from now on can arrive anywhere before horizon + lookahead.
    std::atomic<SimTime> horizon{0};
  };

  SpscQueue<CrossShardMsg>& channel(uint32_t from, uint32_t to) {
    return *channels_[from * shards_.size() + to];
  }

  SimTime MinPeerHorizon(size_t me) const;
  // Ingests every pending message from all peers into shard `me`'s event
  // queue via the deliver callback. Only shard `me`'s owner thread may call.
  void Drain(size_t me);
  void Worker(size_t me, SimTime deadline);
  void RunUntilRoundRobin(SimTime deadline);

  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<SpscQueue<CrossShardMsg>>> channels_;
  SimDuration lookahead_;
  Deliver deliver_;
};

}  // namespace eden

#endif  // EDEN_SRC_SIM_SHARDED_ENGINE_H_
