// C++20 coroutine plumbing that models Eden "processes" (threads of control
// within objects, paper section 4.2) on top of the discrete-event simulation.
//
//  * Task<T>      - a lazy coroutine returning T; operation handlers and
//                   reincarnation handlers are Tasks. Awaiting a Task starts
//                   it; completion resumes the awaiter (symmetric transfer).
//  * DetachedTask - an eager fire-and-forget coroutine; the coordinator and
//                   behaviors run as DetachedTasks.
//  * Future<T> /
//    Promise<T>   - one-shot value channel; the kernel completes a Promise
//                   when an invocation reply (or timeout) arrives, resuming
//                   the blocked invoker. Multiple waiters are permitted.
//  * SleepFor     - awaitable virtual-time delay.
//
// The whole system is single-threaded; none of this is thread-safe and none
// of it needs to be.
#ifndef EDEN_SRC_SIM_TASK_H_
#define EDEN_SRC_SIM_TASK_H_

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace eden {

// Unit type for Future<void>-like uses.
struct Unit {
  bool operator==(const Unit&) const { return true; }
};

// ---------------------------------------------------------------------------
// Task<T>: lazy coroutine with continuation chaining.
// ---------------------------------------------------------------------------

template <typename T>
class Task;

namespace task_internal {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> handle) noexcept {
      std::coroutine_handle<> cont = handle.promise().continuation;
      if (cont) {
        return cont;
      }
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace task_internal

// A lazily-started coroutine producing a T. Must be co_awaited (or explicitly
// Started) exactly once; the Task owns the coroutine frame.
template <typename T>
class Task {
 public:
  struct promise_type : task_internal::TaskPromiseBase<T> {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }

  // Awaitable interface.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) noexcept {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  T await_resume() {
    assert(handle_.promise().value.has_value());
    return std::move(*handle_.promise().value);
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

// Task<void> specialization.
template <>
class Task<void> {
 public:
  struct promise_type : task_internal::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }

  // Top-level alternative to co_await: starts the task with no continuation.
  // On completion the frame suspends at final_suspend and waits for this
  // Task's destructor — unlike DetachedTask, the owner controls the frame's
  // lifetime, so a task still suspended at teardown is reclaimed rather than
  // leaked. `done()` tells the owner the frame is reapable.
  void Start() { handle_.resume(); }
  bool done() const { return handle_ != nullptr && handle_.done(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) noexcept {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {}

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

// ---------------------------------------------------------------------------
// DetachedTask: eager fire-and-forget coroutine.
// ---------------------------------------------------------------------------

// The coroutine starts running immediately when called and frees its own
// frame on completion. Used for top-level activities (coordinator dispatch,
// behaviors, test drivers).
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

// ---------------------------------------------------------------------------
// Future / Promise.
// ---------------------------------------------------------------------------

namespace task_internal {

template <typename T>
struct FutureState {
  std::optional<T> value;
  // Waiting coroutines and plain callbacks, resumed/invoked in FIFO order.
  std::vector<std::coroutine_handle<>> waiters;
  std::vector<std::function<void()>> callbacks;
};

}  // namespace task_internal

template <typename T>
class Future;

// The producer half. Copyable (shared state); Set must be called at most once.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<task_internal::FutureState<T>>()) {}

  bool fulfilled() const { return state_->value.has_value(); }

  // Completes the future and resumes all waiters (in registration order).
  void Set(T value) {
    assert(!state_->value.has_value() && "Promise::Set called twice");
    state_->value = std::move(value);
    auto waiters = std::move(state_->waiters);
    state_->waiters.clear();
    auto callbacks = std::move(state_->callbacks);
    state_->callbacks.clear();
    for (auto& callback : callbacks) {
      callback();
    }
    for (auto& handle : waiters) {
      handle.resume();
    }
  }

  Future<T> GetFuture() const;

 private:
  std::shared_ptr<task_internal::FutureState<T>> state_;
};

// The consumer half: awaitable. Copyable; all copies see the same value.
template <typename T>
class Future {
 public:
  Future() : state_(std::make_shared<task_internal::FutureState<T>>()) {}

  bool ready() const { return state_->value.has_value(); }

  // Valid only when ready().
  const T& Get() const {
    assert(ready());
    return *state_->value;
  }

  // Invokes `fn` when the value is set (immediately if already set).
  void OnReady(std::function<void()> fn) {
    if (ready()) {
      fn();
    } else {
      state_->callbacks.push_back(std::move(fn));
    }
  }

  // Like OnReady, but passes the value and — unlike capturing this Future in
  // an OnReady callback — does not keep the shared state alive from inside
  // its own callback list. Use this whenever the callback needs the result,
  // or when the future is also cached somewhere the callback references:
  // capturing the future there forms a reference cycle that leaks any
  // still-pending operation at teardown.
  void OnReadyValue(std::function<void(const T&)> fn) {
    if (ready()) {
      fn(*state_->value);
      return;
    }
    // The raw pointer is safe: the wrapper lives in this state's callback
    // list, so it can only run (or be destroyed) while the state is alive.
    auto* raw = state_.get();
    state_->callbacks.push_back(
        [raw, fn = std::move(fn)] { fn(*raw->value); });
  }

  // Awaitable interface.
  bool await_ready() const noexcept { return ready(); }
  void await_suspend(std::coroutine_handle<> handle) {
    state_->waiters.push_back(handle);
  }
  T await_resume() { return *state_->value; }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<task_internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<task_internal::FutureState<T>> state_;
};

template <typename T>
Future<T> Promise<T>::GetFuture() const {
  return Future<T>(state_);
}

// ---------------------------------------------------------------------------
// Virtual-time sleep.
// ---------------------------------------------------------------------------

// co_await SleepFor(sim, Microseconds(100));
inline Future<Unit> SleepFor(Simulation& sim, SimDuration delay) {
  Promise<Unit> promise;
  sim.Schedule(delay, [promise]() mutable { promise.Set(Unit{}); });
  return promise.GetFuture();
}

// Launches a Task<void> as a detached activity. The Task's frame is kept
// alive by the wrapper coroutine until it completes.
inline DetachedTask Spawn(Task<void> task) {
  co_await task;
}

// Launches a Task<T> and exposes its eventual result as a Future<T>. Lets
// callback-style drivers (tests, benchmarks) consume coroutine-style library
// code.
template <typename T>
Future<T> Launch(Task<T> task) {
  Promise<T> promise;
  [](Task<T> owned, Promise<T> done) -> DetachedTask {
    done.Set(co_await owned);
  }(std::move(task), promise);
  return promise.GetFuture();
}

}  // namespace eden

#endif  // EDEN_SRC_SIM_TASK_H_
