// Small-buffer-optimized, move-only callable for simulation events.
//
// The event loop is the hottest code in the repository: every frame hop,
// timer and retransmit allocates one of these. std::function heap-allocates
// any capture that is not trivially copyable (a lambda holding a shared_ptr,
// for instance), and always costs a type-erased copy even when it fits
// inline. EventFn instead stores any callable up to kInlineBytes directly in
// the object — enough for every lambda the kernel, LAN and transport
// schedule — and only falls back to the heap for oversized captures. It is
// move-only (events fire once; nothing ever copies them) and invocation is
// one indirect call, same as std::function.
#ifndef EDEN_SRC_SIM_EVENT_FN_H_
#define EDEN_SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace eden {

class EventFn {
 public:
  // Inline capture budget: this*2 + shared_ptr + a couple of ids covers the
  // largest lambdas on the hot path (see Lan::FinishTransmission).
  static constexpr size_t kInlineBytes = 48;

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &OpsFor<Fn, /*Inline=*/true>::ops;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &OpsFor<Fn, /*Inline=*/false>::ops;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(Target()); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Destroys the held callable (no-op when empty).
  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(Target());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs *self into dst and destroys *self (inline storage only).
    void (*relocate)(void* self, void* dst);
    void (*destroy)(void* self);
    bool stored_inline;
  };

  template <typename Fn, bool Inline>
  struct OpsFor {
    static void Invoke(void* self) { (*static_cast<Fn*>(self))(); }
    static void Relocate(void* self, void* dst) {
      ::new (dst) Fn(std::move(*static_cast<Fn*>(self)));
      static_cast<Fn*>(self)->~Fn();
    }
    static void Destroy(void* self) {
      if constexpr (Inline) {
        static_cast<Fn*>(self)->~Fn();
      } else {
        delete static_cast<Fn*>(self);
      }
    }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy, Inline};
  };

  void* Target() noexcept {
    return ops_->stored_inline ? static_cast<void*>(storage_) : heap_;
  }

  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) {
      return;
    }
    if (ops_->stored_inline) {
      ops_->relocate(other.storage_, storage_);
    } else {
      heap_ = other.heap_;
      other.heap_ = nullptr;
    }
    other.ops_ = nullptr;
  }

  union {
    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    void* heap_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace eden

#endif  // EDEN_SRC_SIM_EVENT_FN_H_
