// The discrete-event simulation driver. One Simulation instance is "a
// world": it owns virtual time and an event queue; node kernels, the LAN and
// stable stores all schedule work through it. Each instance is
// single-threaded and deterministic by construction; the parallel sharded
// engine (sharded_engine.h) runs several instances side by side, one per
// worker thread, and keeps them causally consistent with conservative
// lookahead synchronization.
//
// The event queue is allocation-free on the steady-state path: callbacks
// live in a free-list pool of generation-tagged slots (EventId = generation
// + slot index), so Schedule and Cancel are O(1) bookkeeping plus one
// priority-queue push, with no per-event node allocation and no tombstone
// map. Cancelled events are skipped lazily when they surface at the top of
// the heap, exactly as the old tombstone table did.
//
// Same-timestamp ordering is governed by a canonical key (domain, stream,
// seq) rather than a single global sequence number, so the order is a pure
// function of the simulated system's state and not of how the node set is
// partitioned across shards:
//   * Events scheduled without an explicit key inherit the domain of the
//     event currently executing (0 at top level) and draw a per-domain
//     sequence number. A purely serial run therefore keeps today's global
//     FIFO order bit-for-bit: everything is domain 0, and the domain-0
//     counter is the old global counter.
//   * Cross-entity handoffs that must order identically regardless of shard
//     layout (switched-LAN frame deliveries) are scheduled with an explicit
//     key: domain = receiver, stream = sender, seq = the sender's per-pair
//     frame count — all quantities independent of the partition.
// Trace digests are unchanged seed-for-seed for legacy (unkeyed) runs
// (tests/determinism_test.cc proves it).
#ifndef EDEN_SRC_SIM_SIMULATION_H_
#define EDEN_SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/sim/event_fn.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace eden {

// Identifies a scheduled event so it can be cancelled (e.g. invocation
// timeouts whose reply arrived in time). Encodes {generation, slot}; ids are
// never reused until a slot's 32-bit generation wraps.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run at now() + delay (delay >= 0). Returns an id that
  // can be passed to Cancel. The event inherits the currently-executing
  // event's ordering domain (see the header comment).
  EventId Schedule(SimDuration delay, EventFn fn);
  EventId ScheduleAt(SimTime when, EventFn fn);

  // Schedules with an explicit canonical order key. Same-timestamp events
  // order by (domain, stream, seq); the caller owns seq monotonicity within
  // its (domain, stream) pair. Used for cross-shard-safe handoffs whose
  // relative order must not depend on the shard layout.
  EventId ScheduleAtKeyed(SimTime when, uint32_t domain, uint32_t stream,
                          uint64_t seq, EventFn fn);

  // Cancels a pending event in O(1). Cancelling an already-fired or unknown
  // id is a no-op (the common race: a timeout firing at the same instant the
  // reply lands).
  void Cancel(EventId id);

  // Runs a single event. Returns false if the queue is empty.
  bool Step();

  // Runs events until the queue drains or `max_events` fire.
  void Run(uint64_t max_events = UINT64_MAX);

  // Runs events with timestamp <= deadline; clock ends at exactly `deadline`
  // if the queue drains or the next event is later.
  void RunUntil(SimTime deadline);
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Runs events while `pending()` is true. Returns true when the wait
  // succeeded (pending became false); returns false when the event queue
  // drained with `pending` still true — the caller's condition can then
  // never be met (a deadlock in the scenario under test).
  bool RunWhile(const std::function<bool()>& pending);

  // Conservative-window primitive for the sharded engine: runs every event
  // with timestamp strictly BEFORE `bound` and leaves the clock at the last
  // executed event (never advanced to `bound` — later windows may still
  // ingest cross-shard deliveries inside this one).
  void RunEventsBefore(SimTime bound);

  // Timestamp of the next live event, or kSimTimeNever if the queue is
  // empty. Pops stale (cancelled) heap entries as a side effect.
  SimTime PeekNextEventTime();

  uint64_t events_executed() const { return events_executed_; }
  // Live (scheduled, not cancelled, not fired) events.
  size_t pending_events() const { return live_count_; }

  // Trace digest: Step() mixes every executed event's (when, seq) — plus the
  // order key for keyed events — into this, and components may Mix()
  // additional state transitions. Determinism tests assert equal digests for
  // equal seeds.
  Digest& trace() { return trace_; }

 private:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  // Callback storage, recycled through a free list. A slot's generation
  // bumps every time it is released, so a stale heap entry (cancelled or
  // superseded event) is recognized and skipped when popped.
  struct Slot {
    uint32_t generation = 1;
    bool armed = false;
    uint32_t next_free = kNoSlot;
    EventFn fn;
  };

  // What actually sits in the priority queue: 32 bytes, no callable.
  struct QueueEntry {
    SimTime when;
    uint64_t seq;  // FIFO tiebreak within (when, domain, stream)
    uint32_t domain;
    uint32_t stream;
    uint32_t slot;
    uint32_t generation;

    bool operator>(const QueueEntry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      if (domain != other.domain) {
        return domain > other.domain;
      }
      if (stream != other.stream) {
        return stream > other.stream;
      }
      return seq > other.seq;
    }
  };

  static EventId MakeId(uint32_t generation, uint32_t slot) {
    return (static_cast<uint64_t>(generation) << 32) | slot;
  }

  uint32_t AllocSlot();
  void ReleaseSlot(uint32_t index);
  uint64_t NextDomainSeq(uint32_t domain);
  EventId Push(SimTime when, uint32_t domain, uint32_t stream, uint64_t seq,
               EventFn fn);
  void Execute(const QueueEntry& top);

  SimTime now_ = 0;
  uint64_t events_executed_ = 0;
  size_t live_count_ = 0;
  // Domain the currently-executing event belongs to; inherited by events it
  // schedules without an explicit key. 0 between events.
  uint32_t current_domain_ = 0;
  // Per-domain FIFO counters; index 0 is the legacy global counter.
  std::vector<uint64_t> domain_seq_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoSlot;
  Rng rng_;
  Digest trace_;
};

}  // namespace eden

#endif  // EDEN_SRC_SIM_SIMULATION_H_
