// The discrete-event simulation driver. One Simulation instance is "the
// world": it owns virtual time and the event queue; node kernels, the LAN and
// stable stores all schedule work through it. Single-threaded and
// deterministic by construction.
//
// The event queue is allocation-free on the steady-state path: callbacks
// live in a free-list pool of generation-tagged slots (EventId = generation
// + slot index), so Schedule and Cancel are O(1) bookkeeping plus one
// priority-queue push, with no per-event node allocation and no tombstone
// map. Cancelled events are skipped lazily when they surface at the top of
// the heap, exactly as the old tombstone table did, and the global sequence
// number keeps same-timestamp events FIFO — trace digests are unchanged
// seed-for-seed across the rewrite (tests/determinism_test.cc proves it).
#ifndef EDEN_SRC_SIM_SIMULATION_H_
#define EDEN_SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/sim/event_fn.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace eden {

// Identifies a scheduled event so it can be cancelled (e.g. invocation
// timeouts whose reply arrived in time). Encodes {generation, slot}; ids are
// never reused until a slot's 32-bit generation wraps.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run at now() + delay (delay >= 0). Returns an id that
  // can be passed to Cancel.
  EventId Schedule(SimDuration delay, EventFn fn);
  EventId ScheduleAt(SimTime when, EventFn fn);

  // Cancels a pending event in O(1). Cancelling an already-fired or unknown
  // id is a no-op (the common race: a timeout firing at the same instant the
  // reply lands).
  void Cancel(EventId id);

  // Runs a single event. Returns false if the queue is empty.
  bool Step();

  // Runs events until the queue drains or `max_events` fire.
  void Run(uint64_t max_events = UINT64_MAX);

  // Runs events with timestamp <= deadline; clock ends at exactly `deadline`
  // if the queue drains or the next event is later.
  void RunUntil(SimTime deadline);
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Runs until `done` returns true or the queue drains. Returns done().
  bool RunWhile(const std::function<bool()>& pending);

  uint64_t events_executed() const { return events_executed_; }
  // Live (scheduled, not cancelled, not fired) events.
  size_t pending_events() const { return live_count_; }

  // Trace digest: Step() mixes every executed event's (when, seq) into this,
  // and components may Mix() additional state transitions. Determinism tests
  // assert equal digests for equal seeds.
  Digest& trace() { return trace_; }

 private:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  // Callback storage, recycled through a free list. A slot's generation
  // bumps every time it is released, so a stale heap entry (cancelled or
  // superseded event) is recognized and skipped when popped.
  struct Slot {
    uint32_t generation = 1;
    bool armed = false;
    uint32_t next_free = kNoSlot;
    EventFn fn;
  };

  // What actually sits in the priority queue: 24 bytes, no callable.
  struct QueueEntry {
    SimTime when;
    uint64_t seq;  // FIFO tiebreak for same-timestamp events
    uint32_t slot;
    uint32_t generation;

    bool operator>(const QueueEntry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  static EventId MakeId(uint32_t generation, uint32_t slot) {
    return (static_cast<uint64_t>(generation) << 32) | slot;
  }

  uint32_t AllocSlot();
  void ReleaseSlot(uint32_t index);

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
  size_t live_count_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoSlot;
  Rng rng_;
  Digest trace_;
};

}  // namespace eden

#endif  // EDEN_SRC_SIM_SIMULATION_H_
