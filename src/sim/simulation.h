// The discrete-event simulation driver. One Simulation instance is "the
// world": it owns virtual time and the event queue; node kernels, the LAN and
// stable stores all schedule work through it. Single-threaded and
// deterministic by construction.
#ifndef EDEN_SRC_SIM_SIMULATION_H_
#define EDEN_SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace eden {

// Identifies a scheduled event so it can be cancelled (e.g. invocation
// timeouts whose reply arrived in time).
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run at now() + delay (delay >= 0). Returns an id that
  // can be passed to Cancel.
  EventId Schedule(SimDuration delay, std::function<void()> fn);
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op (the common race: a timeout firing at the same instant the reply
  // lands).
  void Cancel(EventId id);

  // Runs a single event. Returns false if the queue is empty.
  bool Step();

  // Runs events until the queue drains or `max_events` fire.
  void Run(uint64_t max_events = UINT64_MAX);

  // Runs events with timestamp <= deadline; clock ends at exactly `deadline`
  // if the queue drains or the next event is later.
  void RunUntil(SimTime deadline);
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Runs until `done` returns true or the queue drains. Returns done().
  bool RunWhile(const std::function<bool()>& pending);

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }

  // Trace digest: components Mix() interesting state transitions into this;
  // property tests assert equal digests for equal seeds.
  Digest& trace() { return trace_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // FIFO tiebreak for same-timestamp events
    EventId id;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  // Tombstones for cancelled events still sitting in the priority queue.
  std::map<EventId, bool> live_;
  Rng rng_;
  Digest trace_;
};

}  // namespace eden

#endif  // EDEN_SRC_SIM_SIMULATION_H_
