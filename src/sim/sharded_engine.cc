#include "src/sim/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <thread>

namespace eden {

ShardedEngine::ShardedEngine(std::vector<Simulation*> sims,
                             SimDuration lookahead)
    : shards_(sims.size()), lookahead_(lookahead) {
  assert(!sims.empty());
  assert(lookahead_ > 0 && "zero lookahead would serialize every window");
  for (size_t i = 0; i < sims.size(); i++) {
    shards_[i].sim = sims[i];
    shards_[i].horizon.store(sims[i]->now(), std::memory_order_relaxed);
  }
  channels_.resize(shards_.size() * shards_.size());
  for (auto& ch : channels_) {
    ch = std::make_unique<SpscQueue<CrossShardMsg>>();
  }
}

void ShardedEngine::Push(uint32_t from, uint32_t to, CrossShardMsg msg) {
  assert(from != to && "same-shard traffic must be scheduled locally");
  channel(from, to).Push(std::move(msg));
}

SimTime ShardedEngine::MinPeerHorizon(size_t me) const {
  SimTime min_h = kSimTimeNever;
  for (size_t i = 0; i < shards_.size(); i++) {
    if (i == me) {
      continue;
    }
    // Acquire pairs with the worker's release publish: once we observe
    // horizon H, every channel push that peer made before publishing H is
    // visible to our Drain.
    SimTime h = shards_[i].horizon.load(std::memory_order_acquire);
    min_h = std::min(min_h, h);
  }
  return min_h;
}

void ShardedEngine::Drain(size_t me) {
  for (size_t from = 0; from < shards_.size(); from++) {
    if (from == me) {
      continue;
    }
    SpscQueue<CrossShardMsg>& ch = channel(static_cast<uint32_t>(from),
                                           static_cast<uint32_t>(me));
    CrossShardMsg msg;
    while (ch.Pop(msg)) {
      deliver_(msg);
    }
  }
}

void ShardedEngine::Worker(size_t me, SimTime deadline) {
  Shard& self = shards_[me];
  Simulation& sim = *self.sim;
  for (;;) {
    // Read peer horizons BEFORE draining: any message that could arrive
    // inside [now, bound) was pushed before its sender published past the
    // send time, so the acquire reads above make it visible to this Drain.
    SimTime horizon = MinPeerHorizon(me);
    SimTime bound = deadline;
    if (horizon != kSimTimeNever && horizon + lookahead_ < bound) {
      bound = horizon + lookahead_;
    }
    Drain(me);
    sim.RunEventsBefore(bound);
    SimTime prev = self.horizon.load(std::memory_order_relaxed);
    if (bound > prev) {
      self.horizon.store(bound, std::memory_order_release);
    }
    if (bound >= deadline) {
      break;
    }
    if (bound == prev) {
      std::this_thread::yield();  // waiting on the slowest peer
    }
  }
  // Inclusive final phase: events AT the deadline may receive cross-shard
  // traffic stamped exactly `deadline` (senders run their ==deadline events
  // only in this phase, and anything they emit lands >= deadline +
  // lookahead, i.e. strictly later — left in the channels for the next
  // run's first Drain). Wait for every peer to pass the exclusive phase,
  // ingest, then run the deadline instant and pin the clock.
  for (size_t i = 0; i < shards_.size(); i++) {
    while (shards_[i].horizon.load(std::memory_order_acquire) < deadline) {
      std::this_thread::yield();
    }
  }
  Drain(me);
  sim.RunUntil(deadline);
}

void ShardedEngine::RunUntilRoundRobin(SimTime deadline) {
  const size_t n = shards_.size();
  for (;;) {
    bool all_done = true;
    for (size_t s = 0; s < n; s++) {
      SimTime horizon = MinPeerHorizon(s);
      SimTime bound = deadline;
      if (horizon != kSimTimeNever && horizon + lookahead_ < bound) {
        bound = horizon + lookahead_;
      }
      Drain(s);
      shards_[s].sim->RunEventsBefore(bound);
      if (bound > shards_[s].horizon.load(std::memory_order_relaxed)) {
        shards_[s].horizon.store(bound, std::memory_order_relaxed);
      }
      if (bound < deadline) {
        all_done = false;
      }
    }
    if (all_done) {
      break;
    }
  }
  for (size_t s = 0; s < n; s++) {
    Drain(s);
    shards_[s].sim->RunUntil(deadline);
  }
}

void ShardedEngine::RunUntil(SimTime deadline, bool threaded) {
  assert(deliver_ && "set_deliver must be called before running");
  if (shards_.size() == 1) {
    // Exact pass-through: no channels, no windows — identical to an
    // unsharded Simulation::RunUntil.
    shards_[0].sim->RunUntil(deadline);
    shards_[0].horizon.store(deadline, std::memory_order_relaxed);
    return;
  }
  if (!threaded) {
    RunUntilRoundRobin(deadline);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); s++) {
    workers.emplace_back([this, s, deadline] { Worker(s, deadline); });
  }
  for (auto& w : workers) {
    w.join();
  }
}

bool ShardedEngine::DriveWhile(const std::function<bool()>& pred) {
  assert(deliver_ && "set_deliver must be called before running");
  const size_t n = shards_.size();
  if (n == 1) {
    return shards_[0].sim->RunWhile(pred);
  }
  while (pred()) {
    // One conservative round: ingest everything in flight, find the next
    // event anywhere, run every shard through that instant's safe window.
    for (size_t s = 0; s < n; s++) {
      Drain(s);
    }
    SimTime next = kSimTimeNever;
    for (size_t s = 0; s < n; s++) {
      next = std::min(next, shards_[s].sim->PeekNextEventTime());
    }
    if (next == kSimTimeNever) {
      bool idle = true;
      for (const auto& ch : channels_) {
        if (!ch->Empty()) {
          idle = false;
          break;
        }
      }
      if (idle) {
        return !pred();  // world fully drained; pred can never change
      }
      continue;  // messages still in flight — drain again
    }
    // Every cross-shard message emitted at `next` arrives >= next +
    // lookahead, so [.., next + lookahead) is a safe window for all shards
    // simultaneously.
    SimTime bound = next + lookahead_;
    for (size_t s = 0; s < n; s++) {
      shards_[s].sim->RunEventsBefore(bound);
      if (bound > shards_[s].horizon.load(std::memory_order_relaxed)) {
        shards_[s].horizon.store(bound, std::memory_order_relaxed);
      }
    }
  }
  return true;
}

uint64_t ShardedEngine::total_events() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.sim->events_executed();
  }
  return total;
}

}  // namespace eden
