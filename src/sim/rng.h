// Deterministic random number generation (SplitMix64). Every stochastic
// decision in the simulation (collision backoff, loss injection, workload
// arrival times) draws from an Rng seeded from the Simulation, so a given
// seed reproduces an identical run.
#ifndef EDEN_SRC_SIM_RNG_H_
#define EDEN_SRC_SIM_RNG_H_

#include <cmath>
#include <cstdint>

namespace eden {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  bool NextBool(double probability_true) { return NextDouble() < probability_true; }

  // Exponentially distributed with the given mean (Poisson inter-arrivals).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // Derives an independent stream (for per-component RNGs).
  Rng Fork() { return Rng(NextU64() ^ 0xa5a5a5a55a5a5a5aULL); }

 private:
  uint64_t state_;
};

}  // namespace eden

#endif  // EDEN_SRC_SIM_RNG_H_
