#include "src/efs/client.h"

#include <cassert>

#include "src/common/log.h"

namespace eden {

namespace {
// Store RPCs share one deadline. A namespace-scope constant (not an inline
// temporary) because these calls sit inside co_await expressions — see the
// note on kDefaultInvokeOptions.
const InvokeOptions kStoreRpcOptions = InvokeOptions::WithTimeout(Seconds(5));
}  // namespace

EfsClient::EfsClient(NodeKernel& kernel, std::vector<Capability> stores)
    : kernel_(kernel), stores_(std::move(stores)) {
  assert(!stores_.empty() && "EFS needs at least one store replica");
}

EfsClient::Transaction EfsClient::Begin() {
  stats_.transactions_started++;
  // Transaction ids must be unique system-wide; a random 64-bit id is the
  // same trick the transport uses for message ids.
  return Transaction(this, kernel_.sim().rng().NextU64() | 1);
}

EfsClient::Transaction& EfsClient::Transaction::Write(const std::string& path,
                                                      Bytes data) {
  assert(!finished_ && "transaction already committed");
  writes_.emplace_back(path, std::move(data));
  return *this;
}

Future<Status> EfsClient::Transaction::Commit() {
  assert(!finished_ && "transaction already committed");
  finished_ = true;
  return Launch(client_->CommitTask(id_, std::move(writes_)));
}

Future<Status> EfsClient::CreateFile(const std::string& path) {
  return Launch(CreateFileTask(path));
}

Future<StatusOr<Bytes>> EfsClient::Read(const std::string& path,
                                        uint64_t version) {
  return Launch(ReadTask(path, version));
}

Future<StatusOr<uint64_t>> EfsClient::Latest(const std::string& path) {
  return Launch(LatestTask(path));
}

Future<StatusOr<std::vector<std::string>>> EfsClient::List() {
  return Launch(ListTask());
}

Task<Status> EfsClient::CreateFileTask(std::string path) {
  for (const Capability& store : stores_) {
    InvokeResult result =
        co_await kernel_.Invoke(store, "create", InvokeArgs{}.AddString(path));
    if (!result.ok() && result.status.code() != StatusCode::kAlreadyExists) {
      co_return result.status;
    }
  }
  co_return OkStatus();
}

Task<StatusOr<Bytes>> EfsClient::ReadTask(std::string path, uint64_t version) {
  stats_.reads++;
  Status last_error = UnavailableError("no replica answered");
  for (size_t attempt = 0; attempt < stores_.size(); attempt++) {
    const Capability& store =
        stores_[(next_read_replica_ + attempt) % stores_.size()];
    InvokeResult result = co_await kernel_.Invoke(
        store, "read", InvokeArgs{}.AddString(path).AddU64(version),
        kStoreRpcOptions);
    if (result.ok()) {
      next_read_replica_ = (next_read_replica_ + attempt) % stores_.size();
      if (attempt > 0) {
        stats_.read_failovers++;
      }
      auto data = result.results.BytesAt(0);
      if (!data.ok()) {
        co_return data.status();
      }
      co_return std::move(*data);
    }
    if (result.status.code() == StatusCode::kNotFound) {
      co_return result.status;  // authoritative: the file/version is absent
    }
    last_error = result.status;
  }
  co_return last_error;
}

Task<StatusOr<uint64_t>> EfsClient::LatestTask(std::string path) {
  Status last_error = UnavailableError("no replica answered");
  for (size_t attempt = 0; attempt < stores_.size(); attempt++) {
    const Capability& store =
        stores_[(next_read_replica_ + attempt) % stores_.size()];
    InvokeResult result = co_await kernel_.Invoke(
        store, "latest", InvokeArgs{}.AddString(path), kStoreRpcOptions);
    if (result.ok()) {
      co_return result.results.U64At(0);
    }
    if (result.status.code() == StatusCode::kNotFound) {
      co_return result.status;
    }
    last_error = result.status;
  }
  co_return last_error;
}

Task<StatusOr<std::vector<std::string>>> EfsClient::ListTask() {
  InvokeResult result = co_await kernel_.Invoke(stores_[0], "list");
  if (!result.ok()) {
    co_return result.status;
  }
  std::vector<std::string> paths;
  for (size_t i = 0; i < result.results.data.size(); i++) {
    paths.push_back(ToString(result.results.data[i]));
  }
  co_return paths;
}

Task<Status> EfsClient::CommitTask(
    uint64_t txn_id, std::vector<std::pair<std::string, Bytes>> writes) {
  if (writes.empty()) {
    stats_.transactions_committed++;
    co_return OkStatus();
  }

  // Base versions: what "latest" was when the transaction decided to write.
  // Prepare re-validates these under each store's transaction mutex, so a
  // race between this read and the prepare aborts cleanly rather than
  // corrupting the chain.
  std::vector<uint64_t> base_versions;
  for (const auto& [path, data] : writes) {
    InvokeResult result =
        co_await kernel_.Invoke(stores_[0], "latest", InvokeArgs{}.AddString(path));
    if (!result.ok()) {
      stats_.transactions_aborted++;
      co_return result.status;
    }
    base_versions.push_back(result.results.U64At(0).value_or(0));
  }

  // Phase 1: prepare every write on every replica.
  Status failure = OkStatus();
  for (const Capability& store : stores_) {
    for (size_t w = 0; w < writes.size() && failure.ok(); w++) {
      InvokeResult result = co_await kernel_.Invoke(
          store, "prepare",
          InvokeArgs{}
              .AddU64(txn_id)
              .AddString(writes[w].first)
              .AddU64(base_versions[w])
              .AddBytes(writes[w].second));
      if (!result.ok()) {
        failure = result.status;
      }
    }
    if (!failure.ok()) {
      break;
    }
  }

  if (!failure.ok()) {
    // Abort everywhere (best effort; stores that never prepared no-op).
    for (const Capability& store : stores_) {
      co_await kernel_.Invoke(store, "abort", InvokeArgs{}.AddU64(txn_id),
                              kStoreRpcOptions);
    }
    stats_.transactions_aborted++;
    if (failure.code() == StatusCode::kAborted) {
      co_return failure;
    }
    co_return AbortedError("prepare failed: " + failure.ToString());
  }

  // Phase 2: commit everywhere. All replicas voted yes, so each applies the
  // same deterministic version bump.
  Status commit_status = OkStatus();
  for (const Capability& store : stores_) {
    InvokeResult result =
        co_await kernel_.Invoke(store, "commit", InvokeArgs{}.AddU64(txn_id));
    if (!result.ok() && commit_status.ok()) {
      // A replica that misses the commit retains the durable staging and can
      // be repaired by re-sending commit (idempotent); we surface the error.
      commit_status = result.status;
      EDEN_LOG(kWarning, "efs") << "commit incomplete on a replica: "
                                << result.status.ToString();
    }
  }
  if (commit_status.ok()) {
    stats_.transactions_committed++;
  } else {
    stats_.transactions_aborted++;
  }
  co_return commit_status;
}

}  // namespace eden
