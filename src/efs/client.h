// EFS client library: replicated reads and two-phase-commit transactions
// over a set of "efs.store" objects (paper section 5).
//
// The client is user-level code in the paper's sense: it is built purely on
// kernel-supplied invocation, with no special kernel support. A file "path"
// names a version chain present on every store replica; reads rotate across
// replicas (performance), commits run 2PC across all of them (reliability).
#ifndef EDEN_SRC_EFS_CLIENT_H_
#define EDEN_SRC_EFS_CLIENT_H_

#include <string>
#include <utility>
#include <vector>

#include "src/kernel/node_kernel.h"

namespace eden {

struct EfsStats {
  uint64_t transactions_started = 0;
  uint64_t transactions_committed = 0;
  uint64_t transactions_aborted = 0;
  uint64_t reads = 0;
  uint64_t read_failovers = 0;
};

class EfsClient {
 public:
  // `stores` are capabilities for efs.store objects holding replicas of the
  // same file set. One store = unreplicated EFS.
  EfsClient(NodeKernel& kernel, std::vector<Capability> stores);

  size_t replication_factor() const { return stores_.size(); }
  const EfsStats& stats() const { return stats_; }

  // Creates an (empty) file on every replica.
  Future<Status> CreateFile(const std::string& path);

  // Reads a version (0 = latest) from one replica, failing over to others.
  Future<StatusOr<Bytes>> Read(const std::string& path, uint64_t version = 0);

  // Latest committed version number of a file.
  Future<StatusOr<uint64_t>> Latest(const std::string& path);

  // All file paths known to the store set.
  Future<StatusOr<std::vector<std::string>>> List();

  // A write transaction. Writes are staged client-side; Commit runs
  // two-phase commit across every replica. First-preparer-wins concurrency
  // control: a competing transaction on the same file aborts cleanly.
  class Transaction {
   public:
    uint64_t id() const { return id_; }

    // Stages a whole-file write (EFS versions are immutable wholes).
    Transaction& Write(const std::string& path, Bytes data);

    // Runs 2PC. OK = all replicas committed; kAborted = a conflict was
    // detected during prepare and every replica dropped the staging.
    Future<Status> Commit();

   private:
    friend class EfsClient;
    Transaction(EfsClient* client, uint64_t id) : client_(client), id_(id) {}

    EfsClient* client_;
    uint64_t id_;
    std::vector<std::pair<std::string, Bytes>> writes_;
    bool finished_ = false;
  };

  Transaction Begin();

 private:
  Task<Status> CreateFileTask(std::string path);
  Task<StatusOr<Bytes>> ReadTask(std::string path, uint64_t version);
  Task<StatusOr<uint64_t>> LatestTask(std::string path);
  Task<StatusOr<std::vector<std::string>>> ListTask();
  Task<Status> CommitTask(uint64_t txn_id,
                          std::vector<std::pair<std::string, Bytes>> writes);

  NodeKernel& kernel_;
  std::vector<Capability> stores_;
  size_t next_read_replica_ = 0;
  EfsStats stats_;
};

}  // namespace eden

#endif  // EDEN_SRC_EFS_CLIENT_H_
