#include "src/efs/file_store.h"

#include <map>
#include <vector>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {

namespace {

// --- Representation layout --------------------------------------------------
// Segment 0: the file index      map<file_id, data segment number>
// Segment 1: staged transactions map<txn_id, vector<StagedWrite>>
// Segment 2+k: version chain of the file the index maps to segment 2+k
//
// Spreading files across segments keeps the kernel's per-segment dirty bits
// meaningful: a prepare dirties only the staging segment, a commit dirties
// staging plus the touched files — so the delta checkpoints that follow each
// transaction step write kilobytes, not the whole store.

struct StagedWrite {
  std::string file_id;
  uint64_t base_version = 0;
  Bytes data;
};

using FileIndex = std::map<std::string, uint64_t>;
using StagingTable = std::map<uint64_t, std::vector<StagedWrite>>;
using VersionChain = std::vector<Bytes>;

// The first representation segment used for file version chains.
constexpr uint64_t kFirstFileSegment = 2;

Bytes EncodeIndex(const FileIndex& index) {
  BufferWriter writer;
  writer.WriteVarint(index.size());
  for (const auto& [file_id, segment] : index) {
    writer.WriteString(file_id);
    writer.WriteVarint(segment);
  }
  return writer.Take();
}

FileIndex DecodeIndex(const Bytes& encoded) {
  FileIndex index;
  if (encoded.empty()) {
    return index;
  }
  BufferReader reader(encoded);
  auto count = reader.ReadVarint();
  if (!count.ok()) {
    return index;
  }
  for (uint64_t i = 0; i < *count; i++) {
    auto file_id = reader.ReadString();
    auto segment = reader.ReadVarint();
    if (!file_id.ok() || !segment.ok()) {
      return index;
    }
    index[*file_id] = *segment;
  }
  return index;
}

Bytes EncodeChain(const VersionChain& versions) {
  BufferWriter writer;
  writer.WriteVarint(versions.size());
  for (const Bytes& version : versions) {
    writer.WriteBytes(version);
  }
  return writer.Take();
}

VersionChain DecodeChain(const Bytes& encoded) {
  VersionChain versions;
  if (encoded.empty()) {
    return versions;
  }
  BufferReader reader(encoded);
  auto count = reader.ReadVarint();
  if (!count.ok()) {
    return versions;
  }
  for (uint64_t v = 0; v < *count; v++) {
    auto data = reader.ReadBytes();
    if (!data.ok()) {
      return versions;
    }
    versions.push_back(std::move(*data));
  }
  return versions;
}

Bytes EncodeStaging(const StagingTable& staging) {
  BufferWriter writer;
  writer.WriteVarint(staging.size());
  for (const auto& [txn_id, writes] : staging) {
    writer.WriteU64(txn_id);
    writer.WriteVarint(writes.size());
    for (const StagedWrite& write : writes) {
      writer.WriteString(write.file_id);
      writer.WriteU64(write.base_version);
      writer.WriteBytes(write.data);
    }
  }
  return writer.Take();
}

StagingTable DecodeStaging(const Bytes& encoded) {
  StagingTable staging;
  if (encoded.empty()) {
    return staging;
  }
  BufferReader reader(encoded);
  auto count = reader.ReadVarint();
  if (!count.ok()) {
    return staging;
  }
  for (uint64_t i = 0; i < *count; i++) {
    auto txn_id = reader.ReadU64();
    auto writes = reader.ReadVarint();
    if (!txn_id.ok() || !writes.ok()) {
      return staging;
    }
    std::vector<StagedWrite>& list = staging[*txn_id];
    for (uint64_t w = 0; w < *writes; w++) {
      StagedWrite write;
      auto file_id = reader.ReadString();
      auto base = reader.ReadU64();
      auto data = reader.ReadBytes();
      if (!file_id.ok() || !base.ok() || !data.ok()) {
        staging.erase(*txn_id);
        return staging;
      }
      write.file_id = std::move(*file_id);
      write.base_version = *base;
      write.data = std::move(*data);
      list.push_back(std::move(write));
    }
  }
  return staging;
}

// Read-only segment access: goes through the const accessor so the kernel's
// dirty tracking is not tripped by loads.
const Bytes* SegmentOrNull(InvokeContext& ctx, uint64_t segment) {
  const Representation& rep = ctx.rep();
  if (segment >= rep.data_segment_count()) {
    return nullptr;
  }
  return &rep.data(segment);
}

FileIndex LoadIndex(InvokeContext& ctx) {
  const Bytes* seg = SegmentOrNull(ctx, 0);
  return seg != nullptr ? DecodeIndex(*seg) : FileIndex{};
}

StagingTable LoadStaging(InvokeContext& ctx) {
  const Bytes* seg = SegmentOrNull(ctx, 1);
  return seg != nullptr ? DecodeStaging(*seg) : StagingTable{};
}

VersionChain LoadChain(InvokeContext& ctx, uint64_t segment) {
  const Bytes* seg = SegmentOrNull(ctx, segment);
  return seg != nullptr ? DecodeChain(*seg) : VersionChain{};
}

void StoreIndex(InvokeContext& ctx, const FileIndex& index) {
  ctx.rep().set_data(0, EncodeIndex(index));
}

void StoreStaging(InvokeContext& ctx, const StagingTable& staging) {
  ctx.rep().set_data(1, EncodeStaging(staging));
}

void StoreChain(InvokeContext& ctx, uint64_t segment,
                const VersionChain& versions) {
  ctx.rep().set_data(segment, EncodeChain(versions));
}

// True if any transaction other than `txn_id` has staged a write to the file.
bool FileLockedByOther(const StagingTable& staging, const std::string& file_id,
                       uint64_t txn_id) {
  for (const auto& [other_id, writes] : staging) {
    if (other_id == txn_id) {
      continue;
    }
    for (const StagedWrite& write : writes) {
      if (write.file_id == file_id) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::shared_ptr<AbstractType> EfsStoreType() {
  auto type = std::make_shared<AbstractType>("efs.store", StdObjectType());
  // Transaction-state mutations are strictly serialized (limit 1): this is
  // the store's concurrency control, encapsulated exactly as the paper
  // promises ("concurrency control will be encapsulated to facilitate
  // experimentation with alternate approaches").
  type->AddClass("txn", 1);
  type->AddClass("readers", 8);

  type->AddOperation(AbstractOperation{
      .name = "create",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto file_id = ctx.args().StringAt(0);
        if (!file_id.ok()) {
          co_return InvokeResult::Error(file_id.status());
        }
        FileIndex index = LoadIndex(ctx);
        if (index.count(*file_id) > 0) {
          co_return InvokeResult::Error(
              AlreadyExistsError("file exists: " + *file_id));
        }
        uint64_t segment = kFirstFileSegment + index.size();
        index[*file_id] = segment;
        StoreIndex(ctx, index);
        StoreChain(ctx, segment, {});
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  type->AddOperation(AbstractOperation{
      .name = "prepare",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto txn_id = ctx.args().U64At(0);
        auto file_id = ctx.args().StringAt(1);
        auto base_version = ctx.args().U64At(2);
        auto data = ctx.args().BytesAt(3);
        if (!txn_id.ok() || !file_id.ok() || !base_version.ok() || !data.ok()) {
          co_return InvokeResult::Error(
              InvalidArgumentError("prepare(txn, file, base, data)"));
        }
        FileIndex index = LoadIndex(ctx);
        auto file = index.find(*file_id);
        if (file == index.end()) {
          co_return InvokeResult::Error(
              NotFoundError("no such file: " + *file_id));
        }
        if (LoadChain(ctx, file->second).size() != *base_version) {
          co_return InvokeResult::Error(AbortedError(
              "stale base version for " + *file_id + " (txn lost the race)"));
        }
        StagingTable staging = LoadStaging(ctx);
        if (FileLockedByOther(staging, *file_id, *txn_id)) {
          co_return InvokeResult::Error(AbortedError(
              "write to " + *file_id + " already staged by another txn"));
        }
        staging[*txn_id].push_back(
            StagedWrite{*file_id, *base_version, std::move(*data)});
        StoreStaging(ctx, staging);
        // Durable vote: a prepared transaction survives a crash. Only the
        // staging segment is dirty, so the checkpoint delta is small.
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  type->AddOperation(AbstractOperation{
      .name = "commit",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto txn_id = ctx.args().U64At(0);
        if (!txn_id.ok()) {
          co_return InvokeResult::Error(txn_id.status());
        }
        StagingTable staging = LoadStaging(ctx);
        auto staged = staging.find(*txn_id);
        if (staged == staging.end()) {
          // Idempotent: the transaction was already committed (duplicate
          // commit after a lost reply) or never prepared here.
          co_return InvokeResult::Ok(InvokeArgs{}.AddU64(0));
        }
        FileIndex index = LoadIndex(ctx);
        bool index_grew = false;
        uint64_t applied = 0;
        for (StagedWrite& write : staged->second) {
          auto file = index.find(write.file_id);
          uint64_t segment;
          if (file == index.end()) {
            // Defensive: prepare guarantees existence, but a husk entry
            // keeps a duplicate-free commit idempotent anyway.
            segment = kFirstFileSegment + index.size();
            index[write.file_id] = segment;
            index_grew = true;
          } else {
            segment = file->second;
          }
          VersionChain versions = LoadChain(ctx, segment);
          versions.push_back(std::move(write.data));
          StoreChain(ctx, segment, versions);
          applied++;
        }
        staging.erase(staged);
        if (index_grew) {
          StoreIndex(ctx, index);
        }
        StoreStaging(ctx, staging);
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, InvokeArgs{}.AddU64(applied)};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  type->AddOperation(AbstractOperation{
      .name = "abort",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto txn_id = ctx.args().U64At(0);
        if (!txn_id.ok()) {
          co_return InvokeResult::Error(txn_id.status());
        }
        StagingTable staging = LoadStaging(ctx);
        if (staging.erase(*txn_id) > 0) {
          StoreStaging(ctx, staging);
          Status status = co_await ctx.Checkpoint();
          co_return InvokeResult{status, {}};
        }
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  // Version retirement: EFS versions are immutable, but disks are 300 MB.
  // prune(file_id, keep) discards all but the newest `keep` versions; version
  // NUMBERS are stable (version k remains version k), only old content goes.
  type->AddOperation(AbstractOperation{
      .name = "prune",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto file_id = ctx.args().StringAt(0);
        auto keep = ctx.args().U64At(1);
        if (!file_id.ok() || !keep.ok()) {
          co_return InvokeResult::Error(
              InvalidArgumentError("prune(file, keep)"));
        }
        FileIndex index = LoadIndex(ctx);
        auto file = index.find(*file_id);
        if (file == index.end()) {
          co_return InvokeResult::Error(
              NotFoundError("no such file: " + *file_id));
        }
        VersionChain versions = LoadChain(ctx, file->second);
        uint64_t dropped = 0;
        if (versions.size() > *keep) {
          uint64_t drop = versions.size() - *keep;
          for (uint64_t i = 0; i < drop; i++) {
            // Retired versions become empty husks; the chain keeps its
            // numbering so read(file, k) stays meaningful for live versions.
            if (!versions[i].empty()) {
              versions[i] = Bytes{};
              dropped++;
            }
          }
        }
        StoreChain(ctx, file->second, versions);
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, InvokeArgs{}.AddU64(dropped)};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  type->AddOperation(AbstractOperation{
      .name = "read",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto file_id = ctx.args().StringAt(0);
        auto version = ctx.args().U64At(1);
        if (!file_id.ok()) {
          co_return InvokeResult::Error(file_id.status());
        }
        FileIndex index = LoadIndex(ctx);
        auto file = index.find(*file_id);
        if (file == index.end()) {
          co_return InvokeResult::Error(
              NotFoundError("no such file: " + *file_id));
        }
        VersionChain versions = LoadChain(ctx, file->second);
        uint64_t want = version.value_or(0);
        if (want == 0) {
          want = versions.size();
        }
        if (want == 0 || want > versions.size()) {
          co_return InvokeResult::Error(NotFoundError(
              "no version " + std::to_string(want) + " of " + *file_id));
        }
        if (versions[want - 1].empty() && want < versions.size()) {
          co_return InvokeResult::Error(NotFoundError(
              "version " + std::to_string(want) + " of " + *file_id +
              " was pruned"));
        }
        co_return InvokeResult::Ok(
            InvokeArgs{}.AddBytes(versions[want - 1]).AddU64(want));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });

  type->AddOperation(AbstractOperation{
      .name = "latest",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto file_id = ctx.args().StringAt(0);
        if (!file_id.ok()) {
          co_return InvokeResult::Error(file_id.status());
        }
        FileIndex index = LoadIndex(ctx);
        auto file = index.find(*file_id);
        if (file == index.end()) {
          co_return InvokeResult::Error(
              NotFoundError("no such file: " + *file_id));
        }
        co_return InvokeResult::Ok(
            InvokeArgs{}.AddU64(LoadChain(ctx, file->second).size()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });

  type->AddOperation(AbstractOperation{
      .name = "list",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        InvokeArgs out;
        for (const auto& [file_id, segment] : LoadIndex(ctx)) {
          out.AddString(file_id);
        }
        co_return InvokeResult::Ok(std::move(out));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });

  return type;
}

void RegisterEfsTypes(EdenSystem& system) {
  system.RegisterType(EfsStoreType()->BuildTypeManager());
}

}  // namespace eden
