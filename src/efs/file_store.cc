#include "src/efs/file_store.h"

#include <map>
#include <vector>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {

namespace {

// --- Representation layout --------------------------------------------------
// Segment 0: the file table      map<file_id, vector<version bytes>>
// Segment 1: staged transactions map<txn_id, vector<StagedWrite>>

struct StagedWrite {
  std::string file_id;
  uint64_t base_version = 0;
  Bytes data;
};

using FileTable = std::map<std::string, std::vector<Bytes>>;
using StagingTable = std::map<uint64_t, std::vector<StagedWrite>>;

Bytes EncodeFileTable(const FileTable& files) {
  BufferWriter writer;
  writer.WriteVarint(files.size());
  for (const auto& [file_id, versions] : files) {
    writer.WriteString(file_id);
    writer.WriteVarint(versions.size());
    for (const Bytes& version : versions) {
      writer.WriteBytes(version);
    }
  }
  return writer.Take();
}

FileTable DecodeFileTable(const Bytes& encoded) {
  FileTable files;
  if (encoded.empty()) {
    return files;
  }
  BufferReader reader(encoded);
  auto count = reader.ReadVarint();
  if (!count.ok()) {
    return files;
  }
  for (uint64_t i = 0; i < *count; i++) {
    auto file_id = reader.ReadString();
    auto versions = reader.ReadVarint();
    if (!file_id.ok() || !versions.ok()) {
      return files;
    }
    std::vector<Bytes>& chain = files[*file_id];
    for (uint64_t v = 0; v < *versions; v++) {
      auto data = reader.ReadBytes();
      if (!data.ok()) {
        return files;
      }
      chain.push_back(std::move(*data));
    }
  }
  return files;
}

Bytes EncodeStaging(const StagingTable& staging) {
  BufferWriter writer;
  writer.WriteVarint(staging.size());
  for (const auto& [txn_id, writes] : staging) {
    writer.WriteU64(txn_id);
    writer.WriteVarint(writes.size());
    for (const StagedWrite& write : writes) {
      writer.WriteString(write.file_id);
      writer.WriteU64(write.base_version);
      writer.WriteBytes(write.data);
    }
  }
  return writer.Take();
}

StagingTable DecodeStaging(const Bytes& encoded) {
  StagingTable staging;
  if (encoded.empty()) {
    return staging;
  }
  BufferReader reader(encoded);
  auto count = reader.ReadVarint();
  if (!count.ok()) {
    return staging;
  }
  for (uint64_t i = 0; i < *count; i++) {
    auto txn_id = reader.ReadU64();
    auto writes = reader.ReadVarint();
    if (!txn_id.ok() || !writes.ok()) {
      return staging;
    }
    std::vector<StagedWrite>& list = staging[*txn_id];
    for (uint64_t w = 0; w < *writes; w++) {
      StagedWrite write;
      auto file_id = reader.ReadString();
      auto base = reader.ReadU64();
      auto data = reader.ReadBytes();
      if (!file_id.ok() || !base.ok() || !data.ok()) {
        staging.erase(*txn_id);
        return staging;
      }
      write.file_id = std::move(*file_id);
      write.base_version = *base;
      write.data = std::move(*data);
      list.push_back(std::move(write));
    }
  }
  return staging;
}

FileTable LoadFiles(InvokeContext& ctx) {
  return ctx.rep().data_segment_count() > 0 ? DecodeFileTable(ctx.rep().data(0))
                                            : FileTable{};
}

StagingTable LoadStaging(InvokeContext& ctx) {
  return ctx.rep().data_segment_count() > 1 ? DecodeStaging(ctx.rep().data(1))
                                            : StagingTable{};
}

void StoreFiles(InvokeContext& ctx, const FileTable& files) {
  ctx.rep().set_data(0, EncodeFileTable(files));
}

void StoreStaging(InvokeContext& ctx, const StagingTable& staging) {
  ctx.rep().set_data(1, EncodeStaging(staging));
}

// True if any transaction other than `txn_id` has staged a write to the file.
bool FileLockedByOther(const StagingTable& staging, const std::string& file_id,
                       uint64_t txn_id) {
  for (const auto& [other_id, writes] : staging) {
    if (other_id == txn_id) {
      continue;
    }
    for (const StagedWrite& write : writes) {
      if (write.file_id == file_id) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::shared_ptr<AbstractType> EfsStoreType() {
  auto type = std::make_shared<AbstractType>("efs.store", StdObjectType());
  // Transaction-state mutations are strictly serialized (limit 1): this is
  // the store's concurrency control, encapsulated exactly as the paper
  // promises ("concurrency control will be encapsulated to facilitate
  // experimentation with alternate approaches").
  type->AddClass("txn", 1);
  type->AddClass("readers", 8);

  type->AddOperation(AbstractOperation{
      .name = "create",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto file_id = ctx.args().StringAt(0);
        if (!file_id.ok()) {
          co_return InvokeResult::Error(file_id.status());
        }
        FileTable files = LoadFiles(ctx);
        if (files.count(*file_id) > 0) {
          co_return InvokeResult::Error(
              AlreadyExistsError("file exists: " + *file_id));
        }
        files[*file_id] = {};
        StoreFiles(ctx, files);
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  type->AddOperation(AbstractOperation{
      .name = "prepare",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto txn_id = ctx.args().U64At(0);
        auto file_id = ctx.args().StringAt(1);
        auto base_version = ctx.args().U64At(2);
        auto data = ctx.args().BytesAt(3);
        if (!txn_id.ok() || !file_id.ok() || !base_version.ok() || !data.ok()) {
          co_return InvokeResult::Error(
              InvalidArgumentError("prepare(txn, file, base, data)"));
        }
        FileTable files = LoadFiles(ctx);
        auto file = files.find(*file_id);
        if (file == files.end()) {
          co_return InvokeResult::Error(
              NotFoundError("no such file: " + *file_id));
        }
        if (file->second.size() != *base_version) {
          co_return InvokeResult::Error(AbortedError(
              "stale base version for " + *file_id + " (txn lost the race)"));
        }
        StagingTable staging = LoadStaging(ctx);
        if (FileLockedByOther(staging, *file_id, *txn_id)) {
          co_return InvokeResult::Error(AbortedError(
              "write to " + *file_id + " already staged by another txn"));
        }
        staging[*txn_id].push_back(
            StagedWrite{*file_id, *base_version, std::move(*data)});
        StoreStaging(ctx, staging);
        // Durable vote: a prepared transaction survives a crash.
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  type->AddOperation(AbstractOperation{
      .name = "commit",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto txn_id = ctx.args().U64At(0);
        if (!txn_id.ok()) {
          co_return InvokeResult::Error(txn_id.status());
        }
        StagingTable staging = LoadStaging(ctx);
        auto staged = staging.find(*txn_id);
        if (staged == staging.end()) {
          // Idempotent: the transaction was already committed (duplicate
          // commit after a lost reply) or never prepared here.
          co_return InvokeResult::Ok(InvokeArgs{}.AddU64(0));
        }
        FileTable files = LoadFiles(ctx);
        uint64_t applied = 0;
        for (StagedWrite& write : staged->second) {
          files[write.file_id].push_back(std::move(write.data));
          applied++;
        }
        staging.erase(staged);
        StoreFiles(ctx, files);
        StoreStaging(ctx, staging);
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, InvokeArgs{}.AddU64(applied)};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  type->AddOperation(AbstractOperation{
      .name = "abort",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto txn_id = ctx.args().U64At(0);
        if (!txn_id.ok()) {
          co_return InvokeResult::Error(txn_id.status());
        }
        StagingTable staging = LoadStaging(ctx);
        if (staging.erase(*txn_id) > 0) {
          StoreStaging(ctx, staging);
          Status status = co_await ctx.Checkpoint();
          co_return InvokeResult{status, {}};
        }
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  // Version retirement: EFS versions are immutable, but disks are 300 MB.
  // prune(file_id, keep) discards all but the newest `keep` versions; version
  // NUMBERS are stable (version k remains version k), only old content goes.
  type->AddOperation(AbstractOperation{
      .name = "prune",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto file_id = ctx.args().StringAt(0);
        auto keep = ctx.args().U64At(1);
        if (!file_id.ok() || !keep.ok()) {
          co_return InvokeResult::Error(
              InvalidArgumentError("prune(file, keep)"));
        }
        FileTable files = LoadFiles(ctx);
        auto file = files.find(*file_id);
        if (file == files.end()) {
          co_return InvokeResult::Error(
              NotFoundError("no such file: " + *file_id));
        }
        uint64_t dropped = 0;
        if (file->second.size() > *keep) {
          uint64_t drop = file->second.size() - *keep;
          for (uint64_t i = 0; i < drop; i++) {
            // Retired versions become empty husks; the chain keeps its
            // numbering so read(file, k) stays meaningful for live versions.
            if (!file->second[i].empty()) {
              file->second[i] = Bytes{};
              dropped++;
            }
          }
        }
        StoreFiles(ctx, files);
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, InvokeArgs{}.AddU64(dropped)};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "txn",
  });

  type->AddOperation(AbstractOperation{
      .name = "read",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto file_id = ctx.args().StringAt(0);
        auto version = ctx.args().U64At(1);
        if (!file_id.ok()) {
          co_return InvokeResult::Error(file_id.status());
        }
        FileTable files = LoadFiles(ctx);
        auto file = files.find(*file_id);
        if (file == files.end()) {
          co_return InvokeResult::Error(
              NotFoundError("no such file: " + *file_id));
        }
        uint64_t want = version.value_or(0);
        if (want == 0) {
          want = file->second.size();
        }
        if (want == 0 || want > file->second.size()) {
          co_return InvokeResult::Error(NotFoundError(
              "no version " + std::to_string(want) + " of " + *file_id));
        }
        if (file->second[want - 1].empty() && want < file->second.size()) {
          co_return InvokeResult::Error(NotFoundError(
              "version " + std::to_string(want) + " of " + *file_id +
              " was pruned"));
        }
        co_return InvokeResult::Ok(
            InvokeArgs{}.AddBytes(file->second[want - 1]).AddU64(want));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });

  type->AddOperation(AbstractOperation{
      .name = "latest",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto file_id = ctx.args().StringAt(0);
        if (!file_id.ok()) {
          co_return InvokeResult::Error(file_id.status());
        }
        FileTable files = LoadFiles(ctx);
        auto file = files.find(*file_id);
        if (file == files.end()) {
          co_return InvokeResult::Error(
              NotFoundError("no such file: " + *file_id));
        }
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(file->second.size()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });

  type->AddOperation(AbstractOperation{
      .name = "list",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        InvokeArgs out;
        for (const auto& [file_id, versions] : LoadFiles(ctx)) {
          out.AddString(file_id);
        }
        co_return InvokeResult::Ok(std::move(out));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });

  return type;
}

void RegisterEfsTypes(EdenSystem& system) {
  system.RegisterType(EfsStoreType()->BuildTypeManager());
}

}  // namespace eden
