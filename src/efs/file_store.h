// The Eden File System store object (paper section 5): "EFS will be
// transaction-based, storing immutable versions that may be replicated at
// multiple sites for reliability or performance enhancement."
//
// An "efs.store" object holds immutable version chains for a set of files at
// one site. Transactions use two-phase commit driven by the client library
// (src/efs/client.h): `prepare` stages a write and durably checkpoints it
// (the vote), `commit` turns staged writes into new immutable versions, and
// `abort` discards them. Prepare conflicts (stale base version, or a write
// already staged by another transaction) make the store vote no — first
// preparer wins, so committed version chains are serializable.
//
// Operations (data parameters in order):
//   create  (file_id)                         -> []
//   prepare (txn_id, file_id, base_version, data) -> []
//   commit  (txn_id)                          -> [new version count]
//   abort   (txn_id)                          -> []
//   read    (file_id, version; 0 = latest)    -> [data, version]
//   latest  (file_id)                         -> [version]
//   list    ()                                -> [file_id...]
#ifndef EDEN_SRC_EFS_FILE_STORE_H_
#define EDEN_SRC_EFS_FILE_STORE_H_

#include <memory>

#include "src/types/abstract_type.h"

namespace eden {

class EdenSystem;

// Abstract type "efs.store" (subtype of std.object). Register via
// RegisterEfsTypes.
std::shared_ptr<AbstractType> EfsStoreType();

void RegisterEfsTypes(EdenSystem& system);

}  // namespace eden

#endif  // EDEN_SRC_EFS_FILE_STORE_H_
