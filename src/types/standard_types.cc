#include "src/types/standard_types.h"

namespace eden {

uint64_t RepReadU64(const Representation& rep, size_t index) {
  if (index >= rep.data_segment_count()) {
    return 0;
  }
  BufferReader reader(rep.data(index));
  auto value = reader.ReadU64();
  return value.ok() ? *value : 0;
}

void RepWriteU64(Representation& rep, size_t index, uint64_t value) {
  BufferWriter writer;
  writer.WriteU64(value);
  rep.set_data(index, writer.Take());
}

Bytes EncodeBytesList(const std::vector<Bytes>& items) {
  BufferWriter writer;
  writer.WriteVarint(items.size());
  for (const Bytes& item : items) {
    writer.WriteBytes(item);
  }
  return writer.Take();
}

StatusOr<std::vector<Bytes>> DecodeBytesList(const Bytes& encoded) {
  std::vector<Bytes> items;
  if (encoded.empty()) {
    return items;
  }
  BufferReader reader(encoded);
  EDEN_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  if (count > 1u << 20) {
    return InvalidArgumentError("implausible list length");
  }
  items.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    EDEN_ASSIGN_OR_RETURN(Bytes item, reader.ReadBytes());
    items.push_back(std::move(item));
  }
  return items;
}

Bytes EncodeStringList(const std::vector<std::string>& items) {
  BufferWriter writer;
  writer.WriteVarint(items.size());
  for (const std::string& item : items) {
    writer.WriteString(item);
  }
  return writer.Take();
}

StatusOr<std::vector<std::string>> DecodeStringList(const Bytes& encoded) {
  std::vector<std::string> items;
  if (encoded.empty()) {
    return items;
  }
  BufferReader reader(encoded);
  EDEN_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  if (count > 1u << 20) {
    return InvalidArgumentError("implausible list length");
  }
  items.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    EDEN_ASSIGN_OR_RETURN(std::string item, reader.ReadString());
    items.push_back(std::move(item));
  }
  return items;
}

// ---------------------------------------------------------------------------
// std.object: generic kernel operations, inherited by every standard type.
// ---------------------------------------------------------------------------

std::shared_ptr<AbstractType> StdObjectType() {
  auto type = std::make_shared<AbstractType>("std.object");
  type->AddClass("kernel_ops", 2);

  type->AddOperation(AbstractOperation{
      .name = "checkpoint",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kCheckpoint),
      .invocation_class = "kernel_ops",
      .mutates = false,
  });
  type->AddOperation(AbstractOperation{
      .name = "crash",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        ctx.Crash();
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kOwner),
      .invocation_class = "kernel_ops",
      .mutates = false,
  });
  type->AddOperation(AbstractOperation{
      .name = "destroy",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        ctx.Destroy();
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kDestroy),
      .invocation_class = "kernel_ops",
      .mutates = false,
  });
  type->AddOperation(AbstractOperation{
      .name = "move_to",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto station = ctx.args().U64At(0);
        if (!station.ok()) {
          co_return InvokeResult::Error(station.status());
        }
        Status status =
            co_await ctx.RequestMove(static_cast<StationId>(*station));
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kMove),
      .invocation_class = "kernel_ops",
      .mutates = false,
  });
  type->AddOperation(AbstractOperation{
      .name = "freeze",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult{ctx.Freeze(), {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kOwner),
      .invocation_class = "kernel_ops",
      .mutates = false,
  });
  type->AddOperation(AbstractOperation{
      .name = "where",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(ctx.node()));
      },
      .invocation_class = "kernel_ops",
      .read_only = true,
  });
  type->AddOperation(AbstractOperation{
      .name = "describe",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(
            InvokeArgs{}
                .AddString(ctx.object()->type->name())
                .AddU64(ctx.rep().ByteSize()));
      },
      .invocation_class = "kernel_ops",
      .read_only = true,
  });
  return type;
}

// ---------------------------------------------------------------------------
// std.counter
// ---------------------------------------------------------------------------

std::shared_ptr<AbstractType> StdCounterType() {
  auto type = std::make_shared<AbstractType>("std.counter", StdObjectType());
  type->AddClass("writers", 1);
  type->AddClass("readers", 4);
  type->AddOperation(AbstractOperation{
      .name = "increment",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        uint64_t delta = ctx.args().U64At(0).value_or(1);
        uint64_t value = RepReadU64(ctx.rep(), 0) + delta;
        RepWriteU64(ctx.rep(), 0, value);
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(value));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "writers",
  });
  type->AddOperation(AbstractOperation{
      .name = "read",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(RepReadU64(ctx.rep(), 0)));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });
  type->AddOperation(AbstractOperation{
      .name = "reset",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        RepWriteU64(ctx.rep(), 0, 0);
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "writers",
  });
  return type;
}

// ---------------------------------------------------------------------------
// std.data: an uninterpreted byte container.
// ---------------------------------------------------------------------------

std::shared_ptr<AbstractType> StdDataType() {
  auto type = std::make_shared<AbstractType>("std.data", StdObjectType());
  type->AddClass("writers", 1);
  type->AddClass("readers", 8);
  type->AddOperation(AbstractOperation{
      .name = "get",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Bytes content =
            ctx.rep().data_segment_count() > 0 ? ctx.rep().data(0) : Bytes{};
        co_return InvokeResult::Ok(InvokeArgs{}.AddBytes(std::move(content)));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });
  type->AddOperation(AbstractOperation{
      .name = "put",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto content = ctx.args().BytesAt(0);
        if (!content.ok()) {
          co_return InvokeResult::Error(content.status());
        }
        ctx.rep().set_data(0, std::move(*content));
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "writers",
  });
  type->AddOperation(AbstractOperation{
      .name = "append",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto content = ctx.args().BytesAt(0);
        if (!content.ok()) {
          co_return InvokeResult::Error(content.status());
        }
        Bytes& segment = ctx.rep().mutable_data(0);
        segment.insert(segment.end(), content->begin(), content->end());
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(segment.size()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "writers",
  });
  type->AddOperation(AbstractOperation{
      .name = "size",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        uint64_t size =
            ctx.rep().data_segment_count() > 0 ? ctx.rep().data(0).size() : 0;
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(size));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });
  return type;
}

// ---------------------------------------------------------------------------
// std.queue: FIFO with blocking dequeue.
// ---------------------------------------------------------------------------

namespace {

std::vector<Bytes> QueueItems(const Representation& rep) {
  if (rep.data_segment_count() == 0) {
    return {};
  }
  auto items = DecodeBytesList(rep.data(0));
  return items.ok() ? std::move(*items) : std::vector<Bytes>{};
}

void SetQueueItems(Representation& rep, const std::vector<Bytes>& items) {
  rep.set_data(0, EncodeBytesList(items));
}

}  // namespace

std::shared_ptr<AbstractType> StdQueueType() {
  auto type = std::make_shared<AbstractType>("std.queue", StdObjectType());
  type->AddClass("producers", 1);
  type->AddClass("consumers", 8);
  type->AddClass("observers", 4);

  // The "items" semaphore counts queued entries; it is short-term state and
  // must be rebuilt from the representation on reincarnation — a textbook
  // reincarnation condition handler.
  type->SetReincarnation([](InvokeContext& ctx) -> Task<Status> {
    size_t count = QueueItems(ctx.rep()).size();
    Semaphore& items = ctx.semaphore("items", 0);
    for (size_t i = 0; i < count; i++) {
      items.V();
    }
    co_return OkStatus();
  });

  type->AddOperation(AbstractOperation{
      .name = "enqueue",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto item = ctx.args().BytesAt(0);
        if (!item.ok()) {
          co_return InvokeResult::Error(item.status());
        }
        std::vector<Bytes> items = QueueItems(ctx.rep());
        items.push_back(std::move(*item));
        SetQueueItems(ctx.rep(), items);
        ctx.semaphore("items", 0).V();
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(items.size()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "producers",
  });
  type->AddOperation(AbstractOperation{
      .name = "dequeue",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Status acquired = co_await ctx.semaphore("items", 0).P();
        if (!acquired.ok()) {
          co_return InvokeResult::Error(acquired);
        }
        std::vector<Bytes> items = QueueItems(ctx.rep());
        if (items.empty()) {
          co_return InvokeResult::Error(
              InternalError("semaphore/queue desynchronized"));
        }
        Bytes front = std::move(items.front());
        items.erase(items.begin());
        SetQueueItems(ctx.rep(), items);
        co_return InvokeResult::Ok(InvokeArgs{}.AddBytes(std::move(front)));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "consumers",
  });
  type->AddOperation(AbstractOperation{
      .name = "length",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(
            InvokeArgs{}.AddU64(QueueItems(ctx.rep()).size()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "observers",
      .read_only = true,
  });
  return type;
}

// ---------------------------------------------------------------------------
// std.directory: name -> capability bindings, write-through checkpointing.
// ---------------------------------------------------------------------------

namespace {

// The directory's representation: segment 0 holds names; the capability
// segment holds the parallel capabilities.
std::vector<std::string> DirNames(const Representation& rep) {
  if (rep.data_segment_count() == 0) {
    return {};
  }
  auto names = DecodeStringList(rep.data(0));
  return names.ok() ? std::move(*names) : std::vector<std::string>{};
}

}  // namespace

std::shared_ptr<AbstractType> StdDirectoryType() {
  auto type = std::make_shared<AbstractType>("std.directory", StdObjectType());
  type->AddClass("mutators", 1);
  type->AddClass("readers", 8);

  type->AddOperation(AbstractOperation{
      .name = "bind",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto name = ctx.args().StringAt(0);
        auto cap = ctx.args().CapabilityAt(0);
        if (!name.ok() || !cap.ok()) {
          co_return InvokeResult::Error(InvalidArgumentError(
              "bind needs a name and a capability"));
        }
        std::vector<std::string> names = DirNames(ctx.rep());
        std::vector<Capability> caps = ctx.rep().capabilities();
        bool replaced = false;
        for (size_t i = 0; i < names.size(); i++) {
          if (names[i] == *name) {
            caps[i] = *cap;
            replaced = true;
            break;
          }
        }
        if (!replaced) {
          names.push_back(*name);
          caps.push_back(*cap);
        }
        ctx.rep().set_data(0, EncodeStringList(names));
        ctx.rep().ClearCapabilities();
        for (const Capability& c : caps) {
          ctx.rep().AddCapability(c);
        }
        // Directories are write-through: a binding survives any crash.
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "mutators",
  });
  type->AddOperation(AbstractOperation{
      .name = "lookup",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto name = ctx.args().StringAt(0);
        if (!name.ok()) {
          co_return InvokeResult::Error(name.status());
        }
        std::vector<std::string> names = DirNames(ctx.rep());
        for (size_t i = 0; i < names.size(); i++) {
          if (names[i] == *name && i < ctx.rep().capability_count()) {
            co_return InvokeResult::Ok(
                InvokeArgs{}.AddCapability(ctx.rep().capability(i)));
          }
        }
        co_return InvokeResult::Error(
            NotFoundError("no binding for \"" + *name + "\""));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });
  type->AddOperation(AbstractOperation{
      .name = "unbind",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto name = ctx.args().StringAt(0);
        if (!name.ok()) {
          co_return InvokeResult::Error(name.status());
        }
        std::vector<std::string> names = DirNames(ctx.rep());
        std::vector<Capability> caps = ctx.rep().capabilities();
        bool found = false;
        for (size_t i = 0; i < names.size(); i++) {
          if (names[i] == *name) {
            names.erase(names.begin() + i);
            caps.erase(caps.begin() + i);
            found = true;
            break;
          }
        }
        if (!found) {
          co_return InvokeResult::Error(
              NotFoundError("no binding for \"" + *name + "\""));
        }
        ctx.rep().set_data(0, EncodeStringList(names));
        ctx.rep().ClearCapabilities();
        for (const Capability& c : caps) {
          ctx.rep().AddCapability(c);
        }
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "mutators",
  });
  type->AddOperation(AbstractOperation{
      .name = "list",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        InvokeArgs out;
        for (const std::string& name : DirNames(ctx.rep())) {
          out.AddString(name);
        }
        co_return InvokeResult::Ok(std::move(out));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "readers",
      .read_only = true,
  });
  return type;
}

// ---------------------------------------------------------------------------
// std.mailbox: deposit / blocking retrieve.
// ---------------------------------------------------------------------------

namespace {

Bytes EncodeMessage(const std::string& from, const Bytes& body) {
  BufferWriter writer;
  writer.WriteString(from);
  writer.WriteBytes(body);
  return writer.Take();
}

}  // namespace

std::shared_ptr<AbstractType> StdMailboxType() {
  auto type = std::make_shared<AbstractType>("std.mailbox", StdObjectType());
  type->AddClass("depositors", 1);
  type->AddClass("retrievers", 4);
  type->AddClass("observers", 4);

  type->SetReincarnation([](InvokeContext& ctx) -> Task<Status> {
    size_t count = QueueItems(ctx.rep()).size();
    Semaphore& mail = ctx.semaphore("mail", 0);
    for (size_t i = 0; i < count; i++) {
      mail.V();
    }
    co_return OkStatus();
  });

  type->AddOperation(AbstractOperation{
      .name = "deposit",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto from = ctx.args().StringAt(0);
        auto body = ctx.args().BytesAt(1);
        if (!from.ok() || !body.ok()) {
          co_return InvokeResult::Error(
              InvalidArgumentError("deposit needs sender and body"));
        }
        std::vector<Bytes> messages = QueueItems(ctx.rep());
        messages.push_back(EncodeMessage(*from, *body));
        SetQueueItems(ctx.rep(), messages);
        ctx.semaphore("mail", 0).V();
        // Mail must survive crashes: write-through.
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, InvokeArgs{}.AddU64(messages.size())};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "depositors",
  });
  type->AddOperation(AbstractOperation{
      .name = "retrieve",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Status acquired = co_await ctx.semaphore("mail", 0).P();
        if (!acquired.ok()) {
          co_return InvokeResult::Error(acquired);
        }
        std::vector<Bytes> messages = QueueItems(ctx.rep());
        if (messages.empty()) {
          co_return InvokeResult::Error(
              InternalError("semaphore/mailbox desynchronized"));
        }
        Bytes envelope = std::move(messages.front());
        messages.erase(messages.begin());
        SetQueueItems(ctx.rep(), messages);
        BufferReader reader(envelope);
        auto from = reader.ReadString();
        auto body = from.ok() ? reader.ReadBytes() : StatusOr<Bytes>(from.status());
        if (!body.ok()) {
          co_return InvokeResult::Error(body.status());
        }
        co_return InvokeResult::Ok(
            InvokeArgs{}.AddString(*from).AddBytes(std::move(*body)));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "retrievers",
  });
  type->AddOperation(AbstractOperation{
      .name = "count",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(
            InvokeArgs{}.AddU64(QueueItems(ctx.rep()).size()));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = "observers",
      .read_only = true,
  });
  return type;
}

void RegisterStandardTypes(EdenSystem& system) {
  system.RegisterType(StdObjectType()->BuildTypeManager());
  system.RegisterType(StdCounterType()->BuildTypeManager());
  system.RegisterType(StdDataType()->BuildTypeManager());
  system.RegisterType(StdQueueType()->BuildTypeManager());
  system.RegisterType(StdDirectoryType()->BuildTypeManager());
  system.RegisterType(StdMailboxType()->BuildTypeManager());
}

}  // namespace eden
