#include "src/types/abstract_type.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace eden {

AbstractType& AbstractType::AddClass(std::string class_name, int concurrency_limit,
                                     size_t queue_limit) {
  classes_.push_back(ClassDef{std::move(class_name), concurrency_limit, queue_limit});
  return *this;
}

AbstractType& AbstractType::AddOperation(AbstractOperation op) {
  assert(op.handler && "operation needs a handler");
  operations_.push_back(std::move(op));
  return *this;
}

AbstractType& AbstractType::SetReincarnation(ReincarnationHandler handler) {
  reincarnation_ = std::move(handler);
  return *this;
}

AbstractType& AbstractType::AddBehavior(std::string behavior_name, BehaviorBody body) {
  behaviors_.emplace_back(std::move(behavior_name), std::move(body));
  return *this;
}

bool AbstractType::IsSubtypeOf(const AbstractType& ancestor) const {
  const AbstractType* current = this;
  while (current != nullptr) {
    if (current == &ancestor || current->name_ == ancestor.name_) {
      return true;
    }
    current = current->supertype_.get();
  }
  return false;
}

size_t AbstractType::Depth() const {
  size_t depth = 0;
  const AbstractType* current = supertype_.get();
  while (current != nullptr) {
    depth++;
    current = current->supertype_.get();
  }
  return depth;
}

std::shared_ptr<TypeManager> AbstractType::BuildTypeManager() const {
  // Collect the chain root-first, so derived definitions override.
  std::vector<const AbstractType*> chain;
  for (const AbstractType* current = this; current != nullptr;
       current = current->supertype_.get()) {
    chain.push_back(current);
  }
  std::reverse(chain.begin(), chain.end());

  // Merge class definitions by name (derived wins).
  std::vector<ClassDef> merged_classes;
  merged_classes.push_back(ClassDef{"default", 1, 1024});
  auto upsert_class = [&merged_classes](const ClassDef& def) {
    for (ClassDef& existing : merged_classes) {
      if (existing.name == def.name) {
        existing = def;
        return;
      }
    }
    merged_classes.push_back(def);
  };

  // Merge operations by name (derived wins), behaviors accumulate, and the
  // most-derived reincarnation handler applies.
  std::map<std::string, AbstractOperation> merged_ops;
  std::vector<std::pair<std::string, BehaviorBody>> merged_behaviors;
  ReincarnationHandler reincarnation;
  for (const AbstractType* level : chain) {
    for (const ClassDef& def : level->classes_) {
      upsert_class(def);
    }
    for (const AbstractOperation& op : level->operations_) {
      merged_ops[op.name] = op;
    }
    for (const auto& behavior : level->behaviors_) {
      merged_behaviors.push_back(behavior);
    }
    if (level->reincarnation_) {
      reincarnation = level->reincarnation_;
    }
  }

  auto type = std::make_shared<TypeManager>(name_);
  std::map<std::string, size_t> class_index;
  class_index["default"] = 0;
  for (const ClassDef& def : merged_classes) {
    if (def.name == "default") {
      continue;
    }
    class_index[def.name] =
        type->AddClass(def.name, def.concurrency_limit, def.queue_limit);
  }
  for (auto& [op_name, op] : merged_ops) {
    auto found = class_index.find(op.invocation_class);
    assert(found != class_index.end() && "operation references unknown class");
    type->AddOperation(OperationSpec{
        .name = op.name,
        .handler = op.handler,
        .required_rights = op.required_rights,
        .invocation_class = found->second,
        .read_only = op.read_only,
        .mutates = op.mutates,
    });
  }
  if (reincarnation) {
    type->SetReincarnation(std::move(reincarnation));
  }
  for (auto& [behavior_name, body] : merged_behaviors) {
    type->AddBehavior(behavior_name, body);
  }
  return type;
}

}  // namespace eden
