// Abstract type hierarchy (paper section 5): "One type may be declared as a
// subtype of another, so that the subtype inherits the operations of its
// supertype... a convenient mechanism for factoring information and for
// defining defaults."
//
// An AbstractType is a *description*; BuildTypeManager() flattens the
// inheritance chain into the concrete TypeManager the kernel executes.
// Subtypes may add invocation classes and operations, and may override
// inherited operations (including their rights, class and handler).
#ifndef EDEN_SRC_TYPES_ABSTRACT_TYPE_H_
#define EDEN_SRC_TYPES_ABSTRACT_TYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kernel/type_manager.h"

namespace eden {

// Like OperationSpec but naming its invocation class symbolically, so that a
// subtype can re-home inherited operations by redefining the class.
struct AbstractOperation {
  std::string name;
  OperationHandler handler;
  Rights required_rights = Rights(Rights::kInvoke);
  std::string invocation_class = "default";
  bool read_only = false;
  bool mutates = true;  // see OperationSpec::mutates
};

class AbstractType : public std::enable_shared_from_this<AbstractType> {
 public:
  explicit AbstractType(std::string name,
                        std::shared_ptr<const AbstractType> supertype = nullptr)
      : name_(std::move(name)), supertype_(std::move(supertype)) {}

  const std::string& name() const { return name_; }
  const std::shared_ptr<const AbstractType>& supertype() const { return supertype_; }

  // --- Definition (builder style) ------------------------------------------
  AbstractType& AddClass(std::string class_name, int concurrency_limit,
                         size_t queue_limit = 1024);
  AbstractType& AddOperation(AbstractOperation op);
  AbstractType& SetReincarnation(ReincarnationHandler handler);
  AbstractType& AddBehavior(std::string behavior_name, BehaviorBody body);

  // --- Queries ----------------------------------------------------------------
  // True if this type equals `ancestor` or inherits from it (walks the chain).
  bool IsSubtypeOf(const AbstractType& ancestor) const;

  // The inheritance distance to the root (root = 0).
  size_t Depth() const;

  // Flattens supertype chain into a concrete TypeManager: most-derived
  // definitions win for same-named operations and classes; the most-derived
  // non-null reincarnation handler is used; behaviors accumulate root-first.
  std::shared_ptr<TypeManager> BuildTypeManager() const;

 private:
  struct ClassDef {
    std::string name;
    int concurrency_limit;
    size_t queue_limit;
  };

  std::string name_;
  std::shared_ptr<const AbstractType> supertype_;
  std::vector<ClassDef> classes_;
  std::vector<AbstractOperation> operations_;
  ReincarnationHandler reincarnation_;
  std::vector<std::pair<std::string, BehaviorBody>> behaviors_;
};

}  // namespace eden

#endif  // EDEN_SRC_TYPES_ABSTRACT_TYPE_H_
