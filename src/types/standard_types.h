// Standard object templates (paper section 4.1: "many type programmers in
// Eden will not be concerned with these details, because language subsystems
// will provide standard object templates").
//
// All templates inherit from the abstract base type "std.object", which
// provides the generic kernel operations every object wants (checkpoint,
// crash, destroy, move_to, freeze, where, describe). This exercises the
// abstract type hierarchy of paper section 5 in production code.
//
//   std.object
//     +-- std.counter    increment / read / reset
//     +-- std.data       get / put / append / size
//     +-- std.queue      enqueue / dequeue (blocking) / length
//     +-- std.directory  bind / lookup / unbind / list   (write-through)
//     +-- std.mailbox    deposit / retrieve (blocking) / count / peek
#ifndef EDEN_SRC_TYPES_STANDARD_TYPES_H_
#define EDEN_SRC_TYPES_STANDARD_TYPES_H_

#include <memory>

#include "src/kernel/eden_system.h"
#include "src/types/abstract_type.h"

namespace eden {

// The abstract root of the standard hierarchy.
std::shared_ptr<AbstractType> StdObjectType();

// Subtypes. Each takes the shared base so the hierarchy is a real DAG.
std::shared_ptr<AbstractType> StdCounterType();
std::shared_ptr<AbstractType> StdDataType();
std::shared_ptr<AbstractType> StdQueueType();
std::shared_ptr<AbstractType> StdDirectoryType();
std::shared_ptr<AbstractType> StdMailboxType();

// Builds and registers concrete TypeManagers for every standard type.
void RegisterStandardTypes(EdenSystem& system);

// --- Representation helpers used by the standard types (and reusable by
// --- application type programmers).

// Reads/writes a u64 stored in data segment `index` (missing segment = 0).
uint64_t RepReadU64(const Representation& rep, size_t index);
void RepWriteU64(Representation& rep, size_t index, uint64_t value);

// Serializes a list of byte strings into one data segment and back.
Bytes EncodeBytesList(const std::vector<Bytes>& items);
StatusOr<std::vector<Bytes>> DecodeBytesList(const Bytes& encoded);

// Serializes a list of strings.
Bytes EncodeStringList(const std::vector<std::string>& items);
StatusOr<std::vector<std::string>> DecodeStringList(const Bytes& encoded);

}  // namespace eden

#endif  // EDEN_SRC_TYPES_STANDARD_TYPES_H_
