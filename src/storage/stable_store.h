// Simulated stable storage: one Winchester-class disk per node machine
// (paper section 3: a 300 MB disk on the file-server node; smaller disks
// elsewhere). StableStore is the "reliable storage medium" of section 4.4:
// its contents survive node failures; only the service *time* is simulated.
//
// Operations are asynchronous futures with a single-arm queueing model:
// latency = queueing + seek + rotational + size / transfer rate.
#ifndef EDEN_SRC_STORAGE_STABLE_STORE_H_
#define EDEN_SRC_STORAGE_STABLE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/metrics/metrics.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace eden {

struct DiskConfig {
  // 1981-era Winchester drive.
  SimDuration average_seek = Milliseconds(30);
  SimDuration rotational_latency = Milliseconds(8);
  double transfer_bytes_per_sec = 1.0e6;
  uint64_t capacity_bytes = 300ull << 20;
};

struct StoreStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t deletes = 0;
  uint64_t read_bytes = 0;
  uint64_t written_bytes = 0;
  SimDuration busy_time = 0;
};

class StableStore {
 public:
  StableStore(Simulation& sim, DiskConfig config = {});

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  // Writes (or overwrites) a record. Completes when the data is durable.
  Future<Status> Put(const std::string& key, Bytes value);

  // Reads a record; NotFound if absent.
  Future<StatusOr<Bytes>> Get(const std::string& key);

  // Removes a record; OK even if absent.
  Future<Status> Delete(const std::string& key);

  // Synchronous in-core directory checks (the kernel keeps the record index
  // in memory, as any real filesystem would).
  bool Contains(const std::string& key) const { return records_.count(key) > 0; }
  size_t record_count() const { return records_.size(); }
  uint64_t bytes_used() const { return bytes_used_; }
  std::vector<std::string> Keys() const;

  const StoreStats& stats() const { return stats_; }
  const DiskConfig& config() const { return config_; }

  // Mirrors the StoreStats counters into `registry` under store.* names and
  // records per-operation service latency (queueing + seek + transfer) into
  // store.read.latency / store.write.latency. The registry must outlive this
  // store; nullptr detaches.
  void set_metrics(MetricsRegistry* registry);

 private:
  struct StoreMetrics {
    Counter* reads = nullptr;
    Counter* writes = nullptr;
    Counter* deletes = nullptr;
    Counter* read_bytes = nullptr;
    Counter* written_bytes = nullptr;
    Gauge* bytes_used = nullptr;
    Histogram* read_latency = nullptr;
    Histogram* write_latency = nullptr;
  };

  // Serializes requests through the single disk arm and returns the
  // completion time of a transfer of `bytes`.
  SimDuration ServiceDelay(uint64_t bytes);

  void UpdateBytesUsedGauge() {
    if (metrics_.bytes_used != nullptr) {
      metrics_.bytes_used->Set(static_cast<int64_t>(bytes_used_));
    }
  }

  Simulation& sim_;
  DiskConfig config_;
  StoreStats stats_;
  StoreMetrics metrics_;
  std::map<std::string, Bytes> records_;
  uint64_t bytes_used_ = 0;
  SimTime arm_free_at_ = 0;
};

}  // namespace eden

#endif  // EDEN_SRC_STORAGE_STABLE_STORE_H_
