// Simulated stable storage: one Winchester-class disk per node machine
// (paper section 3: a 300 MB disk on the file-server node; smaller disks
// elsewhere). StableStore is the "reliable storage medium" of section 4.4:
// its contents survive node failures; only the service *time* is simulated.
//
// The write path models the mechanisms a real 1981 disk subsystem would use
// to survive checkpoint-heavy load (DESIGN.md §10 "Storage path"):
//
//   * Request scheduler: pending operations carry a track (a deterministic
//     hash of the record key) and are serviced in C-LOOK elevator order —
//     the arm sweeps toward higher tracks, then returns — instead of strict
//     FIFO. Seek time is charged per track travelled (`seek_settle` +
//     proportional share of `seek_full_stroke`); an idle ("parked") arm pays
//     the classic `average_seek`. `elevator = false` restores FIFO for
//     ablation baselines.
//   * Group commit: writes (and deletes) that queue up while the arm is busy
//     are coalesced into one batched durable flush — a single seek +
//     rotational latency + the summed transfer — bounded by
//     `max_batch_ops` / `max_batch_bytes`. `commit_interval` optionally
//     holds a write that arrives at an idle arm, so immediately following
//     writes can join its flush. Every operation keeps its own completion
//     future and latency sample.
//   * Read fairness: at most `max_writes_per_pass` write services may run
//     while a read is waiting; then the elevator must pick a read. Reads are
//     never batched (each wants its own rotational positioning).
//
// Capacity is enforced synchronously at Put time (ResourceExhausted), and
// Delete / overwrite reclaim their bytes immediately — the in-core record
// index is authoritative, as any real filesystem's would be.
#ifndef EDEN_SRC_STORAGE_STABLE_STORE_H_
#define EDEN_SRC_STORAGE_STABLE_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/metrics/metrics.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"
#include "src/trace/span.h"

namespace eden {

struct DiskConfig {
  // 1981-era Winchester drive.
  SimDuration average_seek = Milliseconds(30);  // cold seek from a parked arm
  SimDuration rotational_latency = Milliseconds(8);
  double transfer_bytes_per_sec = 1.0e6;
  uint64_t capacity_bytes = 300ull << 20;

  // --- Request scheduler -----------------------------------------------
  // C-LOOK elevator over `track_count` tracks; false = strict FIFO.
  bool elevator = true;
  uint32_t track_count = 512;
  SimDuration seek_settle = Milliseconds(4);       // track-to-track minimum
  SimDuration seek_full_stroke = Milliseconds(52); // end-to-end arm travel

  // --- Group commit ------------------------------------------------------
  // Hold-off before servicing a write that arrives at an idle arm, letting
  // immediately following writes join its flush (0 = start at once; reads
  // always start the arm immediately).
  SimDuration commit_interval = 0;
  // Per-flush coalescing caps. max_batch_ops = 1 disables batching.
  size_t max_batch_ops = 32;
  uint64_t max_batch_bytes = 256 * 1024;
  // Read fairness: write services allowed while a read waits.
  size_t max_writes_per_pass = 8;

  // --- Integrity ---------------------------------------------------------
  // Every record carries a CRC32 computed at Put time; reads verify it at
  // service completion and fail with kDataLoss on mismatch (torn writes and
  // at-rest bit rot become *detected* faults instead of silent corruption).
  // false = trust the platter (ablation baseline).
  bool verify_checksums = true;
};

struct StoreStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t deletes = 0;
  uint64_t read_bytes = 0;
  uint64_t written_bytes = 0;
  // Write/delete ops that shared a durable flush with at least one other.
  uint64_t batched_writes = 0;
  // Durable write flushes (each one seek + one rotational + summed transfer).
  uint64_t batch_flushes = 0;
  SimDuration busy_time = 0;
  // Fault-path observability (populated by the chaos harness's hook and the
  // checksum verifier).
  uint64_t write_faults = 0;        // flushes failed by injection
  uint64_t torn_writes = 0;         // durable copies silently truncated
  uint64_t latent_corruptions = 0;  // durable copies bit-rotted at rest
  uint64_t read_soft_retries = 0;   // transparent read retries (extra spins)
  uint64_t degraded_services = 0;   // services slowed by a degraded arm
  uint64_t checksum_failures = 0;   // reads that failed CRC verification
};

// Consulted by the store at its fault-injection points. Implemented by the
// chaos harness (src/fault); every method is called in deterministic
// simulation order, so a seeded hook keeps runs reproducible.
class DiskFaultHook {
 public:
  virtual ~DiskFaultHook() = default;

  struct WriteFault {
    bool error = false;  // the flush fails; the completion future errors and
                         // the durable copy is torn (a detected bad write)
    bool torn = false;   // the durable copy is truncated but the flush still
                         // acks OK — a silent torn write, caught by CRC later
  };
  // One consult per write/delete op, at flush-completion time.
  virtual WriteFault OnWriteFlush(const std::string& key) = 0;
  // True = flip a bit in the durable copy after an otherwise clean flush
  // (latent sector rot, detected only by a later read's checksum).
  virtual bool CorruptAtRest(const std::string& key) = 0;
  // Transparent retries a read service needs (soft read errors); each retry
  // costs one extra rotational latency.
  virtual int ReadRetries(const std::string& key) = 0;
  // Service-time multiplier for the next arm movement (degraded mechanics;
  // values <= 1 mean healthy).
  virtual double ServiceFactor() = 0;
};

class StableStore {
 public:
  StableStore(Simulation& sim, DiskConfig config = {});

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  // Writes (or overwrites) a record. The record is visible in the in-core
  // index immediately; the future completes when the data is durable.
  // Capacity overflow fails synchronously with ResourceExhausted and leaves
  // any existing record untouched. The payload is refcounted, never copied.
  // A valid `parent` span context opens a kStoreWrite span (queueing + seek +
  // transfer) closed when the op retires; injected faults annotate it.
  Future<Status> Put(const std::string& key, SharedBytes value,
                     const SpanContext& parent = {});
  Future<Status> Put(const std::string& key, Bytes value,
                     const SpanContext& parent = {}) {
    return Put(key, SharedBytes(std::move(value)), parent);
  }

  // Reads a record; NotFound if absent (synchronously). The returned bytes
  // are a refcounted snapshot taken at call time. A valid `parent` opens a
  // kStoreRead span for the service.
  Future<StatusOr<SharedBytes>> Get(const std::string& key,
                                    const SpanContext& parent = {});

  // Removes a record; OK even if absent. Bytes are reclaimed immediately.
  Future<Status> Delete(const std::string& key, const SpanContext& parent = {});

  // Fault/test surface: damages the durable copy of `key` without updating
  // its stored checksum, so its next read fails verification (kDataLoss).
  // CorruptRecord flips one bit; TearRecord truncates to half length (a torn
  // write). Both are no-ops if the key is absent.
  void CorruptRecord(const std::string& key, size_t bit = 0);
  void TearRecord(const std::string& key);

  // Installs (or clears, with nullptr) the chaos harness's fault hook. The
  // hook must outlive this store.
  void set_fault_hook(DiskFaultHook* hook) { fault_hook_ = hook; }

  // Synchronous in-core directory checks (the kernel keeps the record index
  // in memory, as any real filesystem would).
  bool Contains(const std::string& key) const { return records_.count(key) > 0; }
  size_t record_count() const { return records_.size(); }
  uint64_t bytes_used() const { return bytes_used_; }
  // Sorted view: the index itself is an unordered map, but callers observe
  // this listing (tests, shells), so it stays deterministic.
  std::vector<std::string> Keys() const;

  // Scheduler introspection (tests, benches).
  size_t queue_depth() const { return pending_.size(); }
  // The track a key's record lives on (deterministic key-hash placement;
  // a '#'-suffixed key shares its base key's track, so delta chains sit in
  // one cylinder group).
  uint32_t TrackOf(const std::string& key) const;

  const StoreStats& stats() const { return stats_; }
  const DiskConfig& config() const { return config_; }

  // Mirrors the StoreStats counters into `registry` under store.* names,
  // records per-operation latency (queueing + seek + transfer) into
  // store.read.latency / store.write.latency, and arm travel (in tracks,
  // not nanoseconds) into store.arm_travel_tracks. The registry must
  // outlive this store; nullptr detaches.
  void set_metrics(MetricsRegistry* registry);

  // Attaches the shared span collector for store-request spans (DESIGN.md
  // §12); `node` is the owning node's station id, recorded on the spans. The
  // collector must outlive this store; nullptr detaches.
  void set_spans(SpanCollector* spans, StationId node) {
    spans_ = spans;
    span_node_ = node;
  }

 private:
  struct StoreMetrics {
    Counter* reads = nullptr;
    Counter* writes = nullptr;
    Counter* deletes = nullptr;
    Counter* read_bytes = nullptr;
    Counter* written_bytes = nullptr;
    Counter* batched_writes = nullptr;
    Counter* batch_flushes = nullptr;
    Gauge* bytes_used = nullptr;
    Histogram* read_latency = nullptr;
    Histogram* write_latency = nullptr;
    Histogram* arm_travel = nullptr;
    Counter* checksum_failures = nullptr;
    Counter* write_faults = nullptr;
  };

  // A durable record: the bytes plus the CRC computed when they were Put.
  // `version` bumps on every overwrite so asynchronous fault effects (a torn
  // flush completing after a newer Put) never damage the wrong generation.
  struct Record {
    SharedBytes value;
    uint32_t crc = 0;
    uint64_t version = 0;
  };

  struct PendingOp {
    enum Kind : uint8_t { kRead, kWrite, kDelete };
    Kind kind = kWrite;
    uint32_t track = 0;
    uint64_t bytes = 0;   // transfer size
    uint64_t seq = 0;     // arrival order (FIFO mode + tie-break)
    SimTime enqueued = 0;
    std::string key;
    uint64_t version = 0;                      // written generation (writes)
    uint32_t crc = 0;                          // snapshot checksum (reads)
    Promise<Status> done;                      // write / delete
    Promise<StatusOr<SharedBytes>> read_done;  // read
    SharedBytes value;                         // read snapshot
    SpanContext span;                          // invalid when tracing is off
  };

  void Enqueue(PendingOp op);
  // Dispatches the next service (single read, or a coalesced write flush)
  // if the arm is free and work is pending.
  void StartService();
  // Elevator / FIFO / fairness selection of the next op to service.
  size_t PickNext() const;
  // Seek cost of moving the arm to `track`, and the travel distance charged.
  SimDuration SeekTo(uint32_t track, uint32_t* travel_out) const;
  void CompleteOps(std::vector<PendingOp> ops);
  void RecordOpLatency(const PendingOp& op);
  // Truncates the durable copy of `key` (leaving its checksum stale) if the
  // record still holds generation `version`; 0 = whatever is current.
  void TearRecordVersion(const std::string& key, uint64_t version);

  void UpdateBytesUsedGauge() {
    if (metrics_.bytes_used != nullptr) {
      metrics_.bytes_used->Set(static_cast<int64_t>(bytes_used_));
    }
  }

  Simulation& sim_;
  DiskConfig config_;
  StoreStats stats_;
  StoreMetrics metrics_;
  DiskFaultHook* fault_hook_ = nullptr;
  SpanCollector* spans_ = nullptr;
  StationId span_node_ = 0;
  std::unordered_map<std::string, Record> records_;
  uint64_t bytes_used_ = 0;
  uint64_t next_version_ = 1;

  std::vector<PendingOp> pending_;
  bool busy_ = false;
  bool arm_parked_ = true;  // no position knowledge until the first service
  uint32_t arm_track_ = 0;
  uint64_t next_op_seq_ = 1;
  size_t reads_pending_ = 0;
  size_t writes_since_read_ = 0;
  EventId hold_timer_ = kInvalidEventId;
};

}  // namespace eden

#endif  // EDEN_SRC_STORAGE_STABLE_STORE_H_
