#include "src/storage/stable_store.h"

#include <algorithm>

namespace eden {

StableStore::StableStore(Simulation& sim, DiskConfig config)
    : sim_(sim), config_(config) {}

void StableStore::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = StoreMetrics{};
    return;
  }
  metrics_.reads = &registry->counter("store.reads");
  metrics_.writes = &registry->counter("store.writes");
  metrics_.deletes = &registry->counter("store.deletes");
  metrics_.read_bytes = &registry->counter("store.read_bytes");
  metrics_.written_bytes = &registry->counter("store.written_bytes");
  metrics_.bytes_used = &registry->gauge("store.bytes_used");
  metrics_.read_latency = &registry->histogram("store.read.latency");
  metrics_.write_latency = &registry->histogram("store.write.latency");
  UpdateBytesUsedGauge();
}

SimDuration StableStore::ServiceDelay(uint64_t bytes) {
  double transfer_sec =
      static_cast<double>(bytes) / config_.transfer_bytes_per_sec;
  SimDuration service = config_.average_seek + config_.rotational_latency +
                        static_cast<SimDuration>(transfer_sec * 1e9);
  SimTime start = std::max(arm_free_at_, sim_.now());
  arm_free_at_ = start + service;
  stats_.busy_time += service;
  return arm_free_at_ - sim_.now();
}

Future<Status> StableStore::Put(const std::string& key, Bytes value) {
  uint64_t new_bytes = value.size();
  auto existing = records_.find(key);
  uint64_t replaced = existing == records_.end() ? 0 : existing->second.size();
  if (bytes_used_ - replaced + new_bytes > config_.capacity_bytes) {
    Promise<Status> promise;
    promise.Set(ResourceExhaustedError("disk full"));
    return promise.GetFuture();
  }
  // The record becomes visible in the index immediately (the kernel issues
  // dependent operations only after the completion future), but durability is
  // only signalled after the simulated transfer.
  bytes_used_ = bytes_used_ - replaced + new_bytes;
  records_[key] = std::move(value);
  stats_.writes++;
  stats_.written_bytes += new_bytes;
  SimDuration delay = ServiceDelay(new_bytes);
  if (metrics_.writes != nullptr) {
    metrics_.writes->Increment();
    metrics_.written_bytes->Increment(new_bytes);
    metrics_.write_latency->Record(delay);
    UpdateBytesUsedGauge();
  }
  Promise<Status> promise;
  sim_.Schedule(delay, [promise]() mutable { promise.Set(OkStatus()); });
  return promise.GetFuture();
}

Future<StatusOr<Bytes>> StableStore::Get(const std::string& key) {
  Promise<StatusOr<Bytes>> promise;
  auto it = records_.find(key);
  if (it == records_.end()) {
    promise.Set(NotFoundError("no such record: " + key));
    return promise.GetFuture();
  }
  stats_.reads++;
  stats_.read_bytes += it->second.size();
  SimDuration delay = ServiceDelay(it->second.size());
  if (metrics_.reads != nullptr) {
    metrics_.reads->Increment();
    metrics_.read_bytes->Increment(it->second.size());
    metrics_.read_latency->Record(delay);
  }
  Bytes value = it->second;
  sim_.Schedule(delay, [promise, value = std::move(value)]() mutable {
    promise.Set(StatusOr<Bytes>(std::move(value)));
  });
  return promise.GetFuture();
}

Future<Status> StableStore::Delete(const std::string& key) {
  auto it = records_.find(key);
  if (it != records_.end()) {
    bytes_used_ -= it->second.size();
    records_.erase(it);
    stats_.deletes++;
    if (metrics_.deletes != nullptr) {
      metrics_.deletes->Increment();
      UpdateBytesUsedGauge();
    }
  }
  SimDuration delay = ServiceDelay(0);
  Promise<Status> promise;
  sim_.Schedule(delay, [promise]() mutable { promise.Set(OkStatus()); });
  return promise.GetFuture();
}

std::vector<std::string> StableStore::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(records_.size());
  for (const auto& [key, value] : records_) {
    keys.push_back(key);
  }
  return keys;
}

}  // namespace eden
