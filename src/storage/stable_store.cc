#include "src/storage/stable_store.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace eden {

StableStore::StableStore(Simulation& sim, DiskConfig config)
    : sim_(sim), config_(config) {
  if (config_.track_count == 0) {
    config_.track_count = 1;
  }
  if (config_.max_batch_ops == 0) {
    config_.max_batch_ops = 1;
  }
  if (config_.max_writes_per_pass == 0) {
    config_.max_writes_per_pass = 1;
  }
}

void StableStore::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = StoreMetrics{};
    return;
  }
  metrics_.reads = &registry->counter("store.reads");
  metrics_.writes = &registry->counter("store.writes");
  metrics_.deletes = &registry->counter("store.deletes");
  metrics_.read_bytes = &registry->counter("store.read_bytes");
  metrics_.written_bytes = &registry->counter("store.written_bytes");
  metrics_.batched_writes = &registry->counter("store.batched_writes");
  metrics_.batch_flushes = &registry->counter("store.batch_flushes");
  metrics_.bytes_used = &registry->gauge("store.bytes_used");
  metrics_.read_latency = &registry->histogram("store.read.latency");
  metrics_.write_latency = &registry->histogram("store.write.latency");
  metrics_.arm_travel = &registry->histogram("store.arm_travel_tracks");
  metrics_.checksum_failures = &registry->counter("store.checksum_failures");
  metrics_.write_faults = &registry->counter("store.write_faults");
  UpdateBytesUsedGauge();
}

uint32_t StableStore::TrackOf(const std::string& key) const {
  // Records that differ only in a '#'-suffix (checkpoint delta links,
  // "<base>#d<k>") share the base record's track — the cylinder-group
  // placement a real filesystem gives an extent chain. Sequential chain
  // appends and replays therefore pay settle-only seeks.
  std::string_view placed(key);
  size_t hash_pos = placed.find('#');
  if (hash_pos != std::string_view::npos) {
    placed = placed.substr(0, hash_pos);
  }
  return static_cast<uint32_t>(Fnv1a64(placed) % config_.track_count);
}

Future<Status> StableStore::Put(const std::string& key, SharedBytes value,
                                const SpanContext& parent) {
  uint64_t new_bytes = value.size();
  auto existing = records_.find(key);
  uint64_t replaced =
      existing == records_.end() ? 0 : existing->second.value.size();
  if (bytes_used_ - replaced + new_bytes > config_.capacity_bytes) {
    Promise<Status> promise;
    promise.Set(ResourceExhaustedError(
        "disk full: " + std::to_string(bytes_used_) + " used of " +
        std::to_string(config_.capacity_bytes) + ", record needs " +
        std::to_string(new_bytes) + " (replacing " + std::to_string(replaced) +
        ")"));
    return promise.GetFuture();
  }
  // The record becomes visible in the index immediately (the kernel issues
  // dependent operations only after the completion future), but durability is
  // only signalled once its flush retires.
  bytes_used_ = bytes_used_ - replaced + new_bytes;
  Record& record = records_[key];
  record.crc = Crc32(value.view());
  record.value = std::move(value);
  record.version = next_version_++;
  stats_.writes++;
  stats_.written_bytes += new_bytes;
  if (metrics_.writes != nullptr) {
    metrics_.writes->Increment();
    metrics_.written_bytes->Increment(new_bytes);
    UpdateBytesUsedGauge();
  }

  PendingOp op;
  op.kind = PendingOp::kWrite;
  op.track = TrackOf(key);
  op.bytes = new_bytes;
  op.key = key;
  op.version = record.version;
  if (spans_ != nullptr && parent.valid()) {
    op.span = spans_->StartSpan(parent, SpanKind::kStoreWrite, span_node_,
                                ObjectName{}, key, sim_.now());
  }
  Future<Status> done = op.done.GetFuture();
  Enqueue(std::move(op));
  return done;
}

Future<StatusOr<SharedBytes>> StableStore::Get(const std::string& key,
                                               const SpanContext& parent) {
  auto it = records_.find(key);
  if (it == records_.end()) {
    Promise<StatusOr<SharedBytes>> promise;
    promise.Set(NotFoundError("no such record: " + key));
    return promise.GetFuture();
  }
  stats_.reads++;
  stats_.read_bytes += it->second.value.size();
  if (metrics_.reads != nullptr) {
    metrics_.reads->Increment();
    metrics_.read_bytes->Increment(it->second.value.size());
  }

  PendingOp op;
  op.kind = PendingOp::kRead;
  op.track = TrackOf(key);
  op.bytes = it->second.value.size();
  op.key = key;
  op.value = it->second.value;  // refcounted snapshot at enqueue time
  op.crc = it->second.crc;
  if (spans_ != nullptr && parent.valid()) {
    op.span = spans_->StartSpan(parent, SpanKind::kStoreRead, span_node_,
                                ObjectName{}, key, sim_.now());
  }
  Future<StatusOr<SharedBytes>> done = op.read_done.GetFuture();
  Enqueue(std::move(op));
  return done;
}

Future<Status> StableStore::Delete(const std::string& key,
                                   const SpanContext& parent) {
  auto it = records_.find(key);
  if (it != records_.end()) {
    bytes_used_ -= it->second.value.size();
    records_.erase(it);
    stats_.deletes++;
    if (metrics_.deletes != nullptr) {
      metrics_.deletes->Increment();
      UpdateBytesUsedGauge();
    }
  }
  // A delete still costs a (zero-transfer) directory write; it joins write
  // flushes like any other durable mutation.
  PendingOp op;
  op.kind = PendingOp::kDelete;
  op.track = TrackOf(key);
  op.bytes = 0;
  op.key = key;
  if (spans_ != nullptr && parent.valid()) {
    op.span = spans_->StartSpan(parent, SpanKind::kStoreWrite, span_node_,
                                ObjectName{}, "delete " + key, sim_.now());
  }
  Future<Status> done = op.done.GetFuture();
  Enqueue(std::move(op));
  return done;
}

std::vector<std::string> StableStore::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(records_.size());
  for (const auto& [key, value] : records_) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void StableStore::Enqueue(PendingOp op) {
  op.seq = next_op_seq_++;
  op.enqueued = sim_.now();
  bool is_read = op.kind == PendingOp::kRead;
  if (is_read) {
    reads_pending_++;
  }
  pending_.push_back(std::move(op));
  if (busy_) {
    return;
  }
  // A read always spins the arm up immediately (and flushes any held
  // writes along the way, per the scheduler's pick order). A write may be
  // held for commit_interval so immediate followers can join its flush.
  if (is_read || config_.commit_interval == 0) {
    if (hold_timer_ != kInvalidEventId) {
      sim_.Cancel(hold_timer_);
      hold_timer_ = kInvalidEventId;
    }
    StartService();
  } else if (hold_timer_ == kInvalidEventId) {
    hold_timer_ = sim_.Schedule(config_.commit_interval, [this] {
      hold_timer_ = kInvalidEventId;
      StartService();
    });
  }
}

size_t StableStore::PickNext() const {
  // Fairness: once max_writes_per_pass write services have run with a read
  // waiting, the next service must be a read.
  bool reads_only =
      reads_pending_ > 0 && writes_since_read_ >= config_.max_writes_per_pass;

  size_t best = pending_.size();
  if (!config_.elevator) {
    // FIFO: oldest eligible op.
    for (size_t i = 0; i < pending_.size(); i++) {
      if (reads_only && pending_[i].kind != PendingOp::kRead) continue;
      if (best == pending_.size() || pending_[i].seq < pending_[best].seq) {
        best = i;
      }
    }
    return best;
  }
  // C-LOOK: smallest track at or ahead of the arm; if none, wrap to the
  // smallest track overall. Ties (same track) go to arrival order.
  auto better = [&](size_t a, size_t b) {  // is a better than b
    if (b == pending_.size()) return true;
    bool a_ahead = pending_[a].track >= arm_track_;
    bool b_ahead = pending_[b].track >= arm_track_;
    if (a_ahead != b_ahead) return a_ahead;
    if (pending_[a].track != pending_[b].track) {
      return pending_[a].track < pending_[b].track;
    }
    return pending_[a].seq < pending_[b].seq;
  };
  for (size_t i = 0; i < pending_.size(); i++) {
    if (reads_only && pending_[i].kind != PendingOp::kRead) continue;
    if (better(i, best)) {
      best = i;
    }
  }
  return best;
}

SimDuration StableStore::SeekTo(uint32_t track, uint32_t* travel_out) const {
  if (arm_parked_) {
    // No position knowledge after an idle spin-down: classic average seek.
    *travel_out = config_.track_count / 2;
    return config_.average_seek;
  }
  uint32_t travel;
  if (config_.elevator) {
    // C-LOOK: forward travel, or a full return stroke plus forward travel.
    travel = track >= arm_track_
                 ? track - arm_track_
                 : (config_.track_count - arm_track_) + track;
  } else {
    travel = track >= arm_track_ ? track - arm_track_ : arm_track_ - track;
  }
  *travel_out = travel;
  if (travel == 0) {
    return config_.seek_settle;
  }
  return config_.seek_settle +
         static_cast<SimDuration>(
             static_cast<double>(config_.seek_full_stroke) * travel /
             config_.track_count);
}

void StableStore::StartService() {
  if (busy_ || pending_.empty()) {
    return;
  }
  size_t lead = PickNext();
  if (lead == pending_.size()) {
    return;  // unreachable: pending_ non-empty always yields a pick
  }
  busy_ = true;

  uint32_t travel = 0;
  SimDuration seek = SeekTo(pending_[lead].track, &travel);

  // Membership of this service: the lead op alone for reads; for writes and
  // deletes, every other queued write/delete in pick order until a cap hits.
  std::vector<size_t> members{lead};
  uint64_t batch_bytes = pending_[lead].bytes;
  if (pending_[lead].kind != PendingOp::kRead && config_.max_batch_ops > 1) {
    // Remaining fairness budget bounds how many writes this flush may retire
    // while a read waits.
    size_t budget = config_.max_batch_ops;
    if (reads_pending_ > 0) {
      size_t pass_left =
          config_.max_writes_per_pass > writes_since_read_
              ? config_.max_writes_per_pass - writes_since_read_
              : 1;
      budget = std::min(budget, pass_left);
    }
    if (budget > members.size()) {
      // Candidates in (track, seq) order starting from the lead's track so
      // the arm keeps sweeping forward through the batch.
      std::vector<size_t> candidates;
      candidates.reserve(pending_.size());
      for (size_t i = 0; i < pending_.size(); i++) {
        if (i == lead || pending_[i].kind == PendingOp::kRead) continue;
        candidates.push_back(i);
      }
      uint32_t origin = pending_[lead].track;
      uint32_t tracks = config_.track_count;
      std::sort(candidates.begin(), candidates.end(),
                [&](size_t a, size_t b) {
                  uint32_t da = (pending_[a].track + tracks - origin) % tracks;
                  uint32_t db = (pending_[b].track + tracks - origin) % tracks;
                  if (da != db) return da < db;
                  return pending_[a].seq < pending_[b].seq;
                });
      for (size_t i : candidates) {
        if (members.size() >= budget) break;
        if (batch_bytes + pending_[i].bytes > config_.max_batch_bytes &&
            !members.empty()) {
          // Caps the flush transfer; oversized stragglers wait their turn.
          continue;
        }
        batch_bytes += pending_[i].bytes;
        members.push_back(i);
      }
    }
  }

  double transfer_sec =
      static_cast<double>(batch_bytes) / config_.transfer_bytes_per_sec;
  SimDuration service = seek + config_.rotational_latency +
                        static_cast<SimDuration>(transfer_sec * 1e9);
  if (fault_hook_ != nullptr) {
    // Soft read errors: the controller retries in place, paying one extra
    // platter revolution per retry. Reads are serviced alone, so only the
    // lead op can be a read.
    if (pending_[lead].kind == PendingOp::kRead) {
      int retries = fault_hook_->ReadRetries(pending_[lead].key);
      if (retries > 0) {
        stats_.read_soft_retries += static_cast<uint64_t>(retries);
        service += static_cast<SimDuration>(retries) *
                   config_.rotational_latency;
        if (spans_ != nullptr && pending_[lead].span.valid()) {
          spans_->Annotate(pending_[lead].span, sim_.now(),
                           "fault:read_retry x" + std::to_string(retries));
        }
      }
    }
    // Degraded mechanics: the whole service (seek + rotation + transfer)
    // slows by the hook's factor.
    double factor = fault_hook_->ServiceFactor();
    if (factor > 1.0) {
      stats_.degraded_services++;
      service = static_cast<SimDuration>(static_cast<double>(service) * factor);
    }
  }
  stats_.busy_time += service;
  if (metrics_.arm_travel != nullptr) {
    metrics_.arm_travel->Record(static_cast<int64_t>(travel));
  }

  // The arm finishes at the last member's track (members are in sweep order).
  arm_track_ = pending_[members.back()].track;
  arm_parked_ = false;

  // Bookkeeping for fairness and batching stats.
  if (pending_[lead].kind == PendingOp::kRead) {
    reads_pending_--;
    writes_since_read_ = 0;
  } else {
    writes_since_read_ += members.size();
    stats_.batch_flushes++;
    if (metrics_.batch_flushes != nullptr) {
      metrics_.batch_flushes->Increment();
    }
    if (members.size() > 1) {
      stats_.batched_writes += members.size();
      if (metrics_.batched_writes != nullptr) {
        metrics_.batched_writes->Increment(
            static_cast<uint64_t>(members.size()));
      }
    }
  }

  // Extract members from the queue (descending index order keeps the
  // remaining indices valid), restoring sweep order for completion.
  std::sort(members.begin(), members.end());
  std::vector<PendingOp> service_ops;
  service_ops.reserve(members.size());
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    service_ops.push_back(std::move(pending_[*it]));
    pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(*it));
  }
  std::sort(service_ops.begin(), service_ops.end(),
            [](const PendingOp& a, const PendingOp& b) { return a.seq < b.seq; });

  sim_.Schedule(service, [this, ops = std::move(service_ops)]() mutable {
    CompleteOps(std::move(ops));
  });
}

void StableStore::RecordOpLatency(const PendingOp& op) {
  SimDuration latency = sim_.now() - op.enqueued;
  Histogram* histogram = op.kind == PendingOp::kRead ? metrics_.read_latency
                                                     : metrics_.write_latency;
  if (histogram != nullptr) {
    histogram->Record(latency);
  }
}

void StableStore::CompleteOps(std::vector<PendingOp> ops) {
  // Promises may resume coroutines that immediately issue new store ops;
  // those just queue behind busy_ and are dispatched by the StartService
  // below, keeping a single dispatch point.
  for (PendingOp& op : ops) {
    RecordOpLatency(op);
    bool span_live = spans_ != nullptr && op.span.valid();
    if (op.kind == PendingOp::kRead) {
      if (config_.verify_checksums && Crc32(op.value.view()) != op.crc) {
        stats_.checksum_failures++;
        if (metrics_.checksum_failures != nullptr) {
          metrics_.checksum_failures->Increment();
        }
        if (span_live) {
          spans_->EndSpan(op.span, sim_.now(), "checksum_failure");
        }
        op.read_done.Set(StatusOr<SharedBytes>(
            DataLossError("checksum mismatch reading record: " + op.key)));
      } else {
        if (span_live) {
          spans_->EndSpan(op.span, sim_.now());
        }
        op.read_done.Set(StatusOr<SharedBytes>(std::move(op.value)));
      }
      continue;
    }
    DiskFaultHook::WriteFault fault;
    if (fault_hook_ != nullptr && op.kind == PendingOp::kWrite) {
      fault = fault_hook_->OnWriteFlush(op.key);
      if (fault.error || fault.torn) {
        // The platter holds a partial record either way; only `error` tells
        // the caller. A torn-but-acked write is the nastier fault — the CRC
        // catches it at the next read.
        TearRecordVersion(op.key, op.version);
        if (fault.error) {
          stats_.write_faults++;
          if (metrics_.write_faults != nullptr) {
            metrics_.write_faults->Increment();
          }
        } else {
          stats_.torn_writes++;
          if (span_live) {
            spans_->Annotate(op.span, sim_.now(), "fault:torn_write");
          }
        }
      } else if (fault_hook_->CorruptAtRest(op.key)) {
        CorruptRecord(op.key, /*bit=*/op.version % 64);
        stats_.latent_corruptions++;
        if (span_live) {
          spans_->Annotate(op.span, sim_.now(), "fault:latent_corruption");
        }
      }
    }
    if (span_live) {
      spans_->EndSpan(op.span, sim_.now(),
                      fault.error ? "fault:write_error" : "");
    }
    op.done.Set(fault.error
                    ? InternalError("injected disk write error: " + op.key)
                    : OkStatus());
  }
  busy_ = false;
  StartService();
}

void StableStore::TearRecordVersion(const std::string& key, uint64_t version) {
  auto it = records_.find(key);
  if (it == records_.end() || it->second.value.empty()) {
    return;
  }
  // A later Put may have already replaced the generation this flush carried;
  // tearing would then damage good data the newer flush will make durable.
  if (version != 0 && it->second.version != version) {
    return;
  }
  size_t keep = it->second.value.size() / 2;
  bytes_used_ -= it->second.value.size() - keep;
  it->second.value = it->second.value.Slice(0, keep);
  UpdateBytesUsedGauge();
}

void StableStore::TearRecord(const std::string& key) {
  TearRecordVersion(key, 0);
}

void StableStore::CorruptRecord(const std::string& key, size_t bit) {
  auto it = records_.find(key);
  if (it == records_.end() || it->second.value.empty()) {
    return;
  }
  Bytes damaged = it->second.value.ToBytes();
  size_t index = (bit / 8) % damaged.size();
  damaged[index] ^= static_cast<uint8_t>(1u << (bit % 8));
  it->second.value = SharedBytes(std::move(damaged));
}

}  // namespace eden
