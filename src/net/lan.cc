#include "src/net/lan.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"

namespace eden {

void Station::Send(Frame frame) {
  assert(frame.wire_size() <= lan_->config().max_payload_bytes &&
         "payload exceeds LAN MTU; use the transport layer to fragment");
  frame.src = id_;
  if (lan_->config().switched) {
    lan_->SwitchedSend(this, std::move(frame));
    return;
  }
  frame.enqueued_at = lan_->sim().now();
  queue_.push_back(std::move(frame));
  if (!transmitting_or_waiting_) {
    transmitting_or_waiting_ = true;
    attempt_ = 0;
    lan_->Attempt(this);
  }
}

void Station::Deliver(const Frame& frame) {
  if (handler_) {
    handler_(frame);
  }
}

Lan::Lan(Simulation& sim, LanConfig config)
    : sim_(sim), config_(config), rng_(sim.rng().Fork()) {}

void Lan::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = LanMetrics{};
    return;
  }
  metrics_.frames_sent = &registry->counter("lan.frames_sent");
  metrics_.frames_delivered = &registry->counter("lan.frames_delivered");
  metrics_.frames_lost = &registry->counter("lan.frames_lost");
  metrics_.collisions = &registry->counter("lan.collisions");
  metrics_.transmit_failures = &registry->counter("lan.transmit_failures");
  metrics_.bytes_on_wire = &registry->counter("lan.bytes_on_wire");
  metrics_.queue_delay = &registry->histogram("lan.queue_delay");
  metrics_.frames_corrupted = &registry->counter("lan.frames_corrupted");
  metrics_.frames_duplicated = &registry->counter("lan.frames_duplicated");
  metrics_.frames_delayed = &registry->counter("lan.frames_delayed");
  metrics_.frames_dropped_fault = &registry->counter("lan.frames_dropped_fault");
}

Lan::~Lan() = default;

Station* Lan::AttachStation(Simulation* owner) {
  auto id = static_cast<StationId>(stations_.size());
  stations_.push_back(std::unique_ptr<Station>(
      new Station(this, id, owner != nullptr ? owner : &sim_)));
  partition_group_.push_back(0);
  detached_.push_back(false);
  if (config_.switched) {
    stations_.back()->loss_rng_ =
        Rng(switched_seed_ ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  }
  return stations_.back().get();
}

Station* Lan::station(StationId id) {
  assert(id < stations_.size());
  return stations_[id].get();
}

void Lan::SetPartitionGroup(StationId station, int group) {
  assert(station < partition_group_.size());
  partition_group_[station] = group;
}

void Lan::ClearPartitions() {
  std::fill(partition_group_.begin(), partition_group_.end(), 0);
}

void Lan::DetachStation(StationId station) {
  assert(station < detached_.size());
  detached_[station] = true;
}

void Lan::ReattachStation(StationId station) {
  assert(station < detached_.size());
  detached_[station] = false;
}

void Lan::EnableSwitched() {
  assert(stats_.frames_sent == 0 && "switch modes before any traffic");
  if (config_.switched) {
    return;
  }
  config_.switched = true;
  // One draw from the (otherwise now-unused) CSMA rng seeds every station's
  // loss stream. Each receiver's draws then follow its own canonical
  // delivery order, so loss decisions are identical across shard layouts.
  switched_seed_ = rng_.NextU64();
  for (auto& st : stations_) {
    st->loss_rng_ = Rng(switched_seed_ ^ (0x9e3779b97f4a7c15ULL * (st->id_ + 1)));
  }
}

void Lan::SetStationShard(StationId station, uint32_t shard) {
  assert(station < stations_.size());
  stations_[station]->shard_ = shard;
}

void Lan::SwitchedSend(Station* station, Frame frame) {
  Simulation& owner = *station->sim_;
  frame.enqueued_at = owner.now();
  if (detached_[station->id_]) {
    station->wire_stats_.transmit_failures++;
    return;
  }
  SimDuration frame_time = FrameTime(frame.wire_size());
  size_t wire_bytes = std::max(frame.wire_size() + config_.frame_overhead_bytes,
                               config_.min_frame_bytes);
  // Full duplex: the only contention is the sender's own egress port.
  SimTime start = std::max(owner.now(), station->egress_free_at_);
  station->egress_free_at_ = start + frame_time + config_.interframe_gap;
  station->wire_stats_.frames_sent++;
  station->wire_stats_.bytes_on_wire += wire_bytes;
  station->wire_stats_.busy_time += frame_time;
  // wire_bytes >= min_frame_bytes, so deliver_at >= now + lookahead() always
  // — the invariant the conservative synchronizer relies on.
  SimTime deliver_at = start + frame_time + config_.propagation_delay;
  auto shared = std::make_shared<Frame>(std::move(frame));
  if (shared->dst == kBroadcastStation) {
    for (StationId id = 0; id < stations_.size(); id++) {
      if (id != station->id_) {
        RouteSwitched(station, id, deliver_at, shared);
      }
    }
  } else {
    RouteSwitched(station, shared->dst, deliver_at, shared);
  }
}

void Lan::RouteSwitched(Station* src, StationId dst, SimTime deliver_at,
                        const std::shared_ptr<Frame>& frame) {
  assert(dst < stations_.size());
  if (dst >= src->pair_seq_.size()) {
    src->pair_seq_.resize(stations_.size(), 0);
  }
  // Canonical delivery key: (receiver, sender, per-pair frame count). All
  // three are properties of the simulated system, not of the shard layout,
  // so same-instant deliveries merge identically however the nodes are
  // partitioned. +1 keeps keyed events disjoint from the unkeyed domain 0.
  uint64_t seq = ++src->pair_seq_[dst];
  Station* dst_station = stations_[dst].get();
  if (src->shard_ == dst_station->shard_) {
    dst_station->sim_->ScheduleAtKeyed(
        deliver_at, dst + 1, src->id_ + 1, seq,
        [this, dst, frame] { SwitchedDeliver(dst, *frame); });
  } else {
    assert(cross_shard_sink_ && "cross-shard traffic with no engine sink");
    CrossShardMsg msg;
    msg.deliver_at = deliver_at;
    msg.dst_entity = dst;
    msg.src_entity = src->id_;
    msg.seq = seq;
    msg.payload = frame;
    cross_shard_sink_(src->shard_, dst_station->shard_, std::move(msg));
  }
}

void Lan::DeliverRouted(const CrossShardMsg& msg) {
  StationId dst = msg.dst_entity;
  auto frame = std::static_pointer_cast<Frame>(msg.payload);
  stations_[dst]->sim_->ScheduleAtKeyed(
      msg.deliver_at, dst + 1, msg.src_entity + 1, msg.seq,
      [this, dst, frame] { SwitchedDeliver(dst, *frame); });
}

void Lan::SwitchedDeliver(StationId dst, const Frame& frame) {
  Station* station = stations_[dst].get();
  if (!Reachable(frame.src, dst)) {
    station->wire_stats_.frames_dropped_partition++;
    return;
  }
  if (config_.loss_probability > 0.0 &&
      station->loss_rng_.NextBool(config_.loss_probability)) {
    station->wire_stats_.frames_lost++;
    return;
  }
  station->wire_stats_.frames_delivered++;
  station->Deliver(frame);
}

const LanStats& Lan::stats() const {
  if (!config_.switched) {
    return stats_;
  }
  merged_stats_ = stats_;
  for (const auto& st : stations_) {
    const StationWireStats& w = st->wire_stats_;
    merged_stats_.frames_sent += w.frames_sent;
    merged_stats_.bytes_on_wire += w.bytes_on_wire;
    merged_stats_.busy_time += w.busy_time;
    merged_stats_.transmit_failures += w.transmit_failures;
    merged_stats_.frames_delivered += w.frames_delivered;
    merged_stats_.frames_lost += w.frames_lost;
    merged_stats_.frames_dropped_partition += w.frames_dropped_partition;
  }
  return merged_stats_;
}

void Lan::SyncMetrics() const {
  if (!config_.switched) {
    return;  // CSMA mode bumps counters inline
  }
  const LanStats& s = stats();
  Bump(metrics_.frames_sent, s.frames_sent - synced_.frames_sent);
  Bump(metrics_.frames_delivered,
       s.frames_delivered - synced_.frames_delivered);
  Bump(metrics_.frames_lost, s.frames_lost - synced_.frames_lost);
  Bump(metrics_.bytes_on_wire, s.bytes_on_wire - synced_.bytes_on_wire);
  Bump(metrics_.transmit_failures,
       s.transmit_failures - synced_.transmit_failures);
  synced_ = s;
}

SimDuration Lan::FrameTime(size_t payload_bytes) const {
  size_t wire_bytes =
      std::max(payload_bytes + config_.frame_overhead_bytes, config_.min_frame_bytes);
  double seconds =
      static_cast<double>(wire_bytes) * 8.0 / config_.bandwidth_bits_per_sec;
  return static_cast<SimDuration>(seconds * 1e9);
}

bool Lan::Reachable(StationId from, StationId to) const {
  if (from >= stations_.size() || to >= stations_.size()) {
    return false;
  }
  if (detached_[from] || detached_[to]) {
    return false;
  }
  return partition_group_[from] == partition_group_[to];
}

void Lan::Attempt(Station* station) {
  assert(!station->queue_.empty());
  SimTime now = sim_.now();

  if (detached_[station->id_]) {
    // A failed node's pending output evaporates.
    stats_.transmit_failures++;
    Bump(metrics_.transmit_failures);
    station->queue_.pop_front();
    station->attempt_ = 0;
    if (station->queue_.empty()) {
      station->transmitting_or_waiting_ = false;
    } else {
      sim_.Schedule(0, [this, station] { Attempt(station); });
    }
    return;
  }

  if (current_.has_value()) {
    if (now < current_->started + config_.propagation_delay) {
      // The other transmission has not propagated to us yet: we sense an idle
      // carrier, transmit, and collide.
      HandleCollision(stations_[current_->src].get(), station);
      return;
    }
    // Carrier sensed busy: defer until the wire goes idle (1-persistent).
    SimTime retry_at = std::max(busy_until_, now);
    sim_.ScheduleAt(retry_at, [this, station] {
      if (!station->queue_.empty()) {
        Attempt(station);
      }
    });
    return;
  }

  if (now < busy_until_) {
    // Jam period after a collision.
    sim_.ScheduleAt(busy_until_, [this, station] {
      if (!station->queue_.empty()) {
        Attempt(station);
      }
    });
    return;
  }

  BeginTransmission(station);
}

void Lan::BeginTransmission(Station* station) {
  const Frame& frame = station->queue_.front();
  SimDuration duration = FrameTime(frame.wire_size());
  busy_until_ = sim_.now() + duration;
  EventId completion = sim_.Schedule(duration, [this, station] {
    Frame frame = std::move(station->queue_.front());
    FinishTransmission(station, std::move(frame));
  });
  current_ = Transmission{station->id_, sim_.now(), completion};
}

void Lan::HandleCollision(Station* first, Station* second) {
  stats_.collisions++;
  Bump(metrics_.collisions);
  sim_.Cancel(current_->completion_event);
  current_.reset();
  // Jam signal occupies the wire for one slot.
  busy_until_ = sim_.now() + config_.slot_time;
  ScheduleRetry(first, /*after_collision=*/true);
  ScheduleRetry(second, /*after_collision=*/true);
}

void Lan::ScheduleRetry(Station* station, bool after_collision) {
  station->attempt_++;
  if (station->attempt_ >= config_.max_transmit_attempts) {
    EDEN_LOG(kWarning, "lan") << "station " << station->id_
                              << " dropped frame after excessive collisions";
    stats_.transmit_failures++;
    Bump(metrics_.transmit_failures);
    station->queue_.pop_front();
    station->attempt_ = 0;
    if (station->queue_.empty()) {
      station->transmitting_or_waiting_ = false;
      return;
    }
  }
  // Binary exponential backoff, capped at 2^10 slots.
  int exponent = std::min(station->attempt_, 10);
  uint64_t slots = rng_.NextBelow(1ull << exponent);
  SimTime retry_at =
      std::max(busy_until_, sim_.now()) + static_cast<SimDuration>(slots) *
                                              config_.slot_time;
  sim_.ScheduleAt(retry_at, [this, station] {
    if (!station->queue_.empty()) {
      Attempt(station);
    }
  });
}

void Lan::FinishTransmission(Station* station, Frame frame) {
  SimDuration duration = FrameTime(frame.wire_size());
  size_t wire_bytes = std::max(frame.wire_size() + config_.frame_overhead_bytes,
                               config_.min_frame_bytes);
  current_.reset();
  stats_.frames_sent++;
  stats_.bytes_on_wire += wire_bytes;
  stats_.busy_time += duration;
  Bump(metrics_.frames_sent);
  Bump(metrics_.bytes_on_wire, wire_bytes);
  if (metrics_.queue_delay != nullptr) {
    // Time from Send() to the start of the successful transmission: queueing
    // behind the sender's own backlog plus deferral/backoff on a busy medium.
    metrics_.queue_delay->Record(sim_.now() - duration - frame.enqueued_at);
  }
  station->queue_.pop_front();
  station->attempt_ = 0;

  // Deliver after the propagation delay, independently per receiver.
  auto deliver_to = [this](StationId src, StationId dst, const Frame& f) {
    if (!Reachable(src, dst)) {
      stats_.frames_dropped_partition++;
      return;
    }
    if (config_.loss_probability > 0.0 && rng_.NextBool(config_.loss_probability)) {
      stats_.frames_lost++;
      Bump(metrics_.frames_lost);
      return;
    }
    if (fault_hook_ != nullptr) {
      WireFaultHook::Decision decision =
          fault_hook_->OnDeliver(src, dst, f.wire_size());
      if (decision.drop) {
        stats_.frames_dropped_fault++;
        Bump(metrics_.frames_dropped_fault);
        return;
      }
      if (decision.corrupt || decision.duplicate || decision.extra_delay > 0) {
        DeliverWithFaults(dst, f, decision);
        return;
      }
    }
    stats_.frames_delivered++;
    Bump(metrics_.frames_delivered);
    stations_[dst]->Deliver(f);
  };

  auto shared = std::make_shared<Frame>(std::move(frame));
  sim_.Schedule(config_.propagation_delay, [this, shared, deliver_to] {
    if (shared->dst == kBroadcastStation) {
      for (StationId id = 0; id < stations_.size(); id++) {
        if (id != shared->src) {
          deliver_to(shared->src, id, *shared);
        }
      }
    } else {
      deliver_to(shared->src, shared->dst, *shared);
    }
  });

  if (!station->queue_.empty()) {
    sim_.Schedule(config_.interframe_gap, [this, station] {
      if (!station->queue_.empty()) {
        Attempt(station);
      }
    });
  } else {
    station->transmitting_or_waiting_ = false;
  }
}

void Lan::DeliverWithFaults(StationId dst, const Frame& frame,
                            const WireFaultHook::Decision& decision) {
  Frame copy;
  copy.src = frame.src;
  copy.dst = frame.dst;
  copy.header = frame.header;
  copy.body = frame.body;
  copy.enqueued_at = frame.enqueued_at;

  if (decision.corrupt && copy.wire_size() > 0) {
    // One random bit flips somewhere in the frame. The body is a zero-copy
    // slice of the sender's retransmit buffer, so a body hit must flatten
    // the whole frame into a private header first — never mutate the shared
    // buffer the sender will retransmit from.
    size_t bit = rng_.NextBelow(copy.wire_size() * 8);
    size_t byte = bit / 8;
    if (byte >= copy.header.size()) {
      Bytes flat = copy.header;
      flat.insert(flat.end(), copy.body.data(),
                  copy.body.data() + copy.body.size());
      copy.header = std::move(flat);
      copy.body = SharedBytes();
    }
    copy.header[byte] ^= static_cast<uint8_t>(1u << (bit % 8));
    stats_.frames_corrupted++;
    Bump(metrics_.frames_corrupted);
  }

  auto deliver_copy = [this, dst](const Frame& f) {
    if (!Reachable(f.src, dst)) {
      stats_.frames_dropped_partition++;
      return;
    }
    stats_.frames_delivered++;
    Bump(metrics_.frames_delivered);
    stations_[dst]->Deliver(f);
  };

  if (decision.extra_delay > 0) {
    stats_.frames_delayed++;
    Bump(metrics_.frames_delayed);
    auto shared = std::make_shared<Frame>(copy);
    sim_.Schedule(decision.extra_delay,
                  [shared, deliver_copy] { deliver_copy(*shared); });
  } else {
    deliver_copy(copy);
  }

  if (decision.duplicate) {
    stats_.frames_duplicated++;
    Bump(metrics_.frames_duplicated);
    auto shared = std::make_shared<Frame>(std::move(copy));
    sim_.Schedule(decision.extra_delay + config_.slot_time,
                  [shared, deliver_copy] { deliver_copy(*shared); });
  }
}

}  // namespace eden
