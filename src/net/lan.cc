#include "src/net/lan.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"

namespace eden {

void Station::Send(Frame frame) {
  assert(frame.wire_size() <= lan_->config().max_payload_bytes &&
         "payload exceeds LAN MTU; use the transport layer to fragment");
  frame.src = id_;
  frame.enqueued_at = lan_->sim().now();
  queue_.push_back(std::move(frame));
  if (!transmitting_or_waiting_) {
    transmitting_or_waiting_ = true;
    attempt_ = 0;
    lan_->Attempt(this);
  }
}

void Station::Deliver(const Frame& frame) {
  if (handler_) {
    handler_(frame);
  }
}

Lan::Lan(Simulation& sim, LanConfig config)
    : sim_(sim), config_(config), rng_(sim.rng().Fork()) {}

void Lan::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = LanMetrics{};
    return;
  }
  metrics_.frames_sent = &registry->counter("lan.frames_sent");
  metrics_.frames_delivered = &registry->counter("lan.frames_delivered");
  metrics_.frames_lost = &registry->counter("lan.frames_lost");
  metrics_.collisions = &registry->counter("lan.collisions");
  metrics_.transmit_failures = &registry->counter("lan.transmit_failures");
  metrics_.bytes_on_wire = &registry->counter("lan.bytes_on_wire");
  metrics_.queue_delay = &registry->histogram("lan.queue_delay");
  metrics_.frames_corrupted = &registry->counter("lan.frames_corrupted");
  metrics_.frames_duplicated = &registry->counter("lan.frames_duplicated");
  metrics_.frames_delayed = &registry->counter("lan.frames_delayed");
  metrics_.frames_dropped_fault = &registry->counter("lan.frames_dropped_fault");
}

Lan::~Lan() = default;

Station* Lan::AttachStation() {
  auto id = static_cast<StationId>(stations_.size());
  stations_.push_back(std::unique_ptr<Station>(new Station(this, id)));
  partition_group_.push_back(0);
  detached_.push_back(false);
  return stations_.back().get();
}

Station* Lan::station(StationId id) {
  assert(id < stations_.size());
  return stations_[id].get();
}

void Lan::SetPartitionGroup(StationId station, int group) {
  assert(station < partition_group_.size());
  partition_group_[station] = group;
}

void Lan::ClearPartitions() {
  std::fill(partition_group_.begin(), partition_group_.end(), 0);
}

void Lan::DetachStation(StationId station) {
  assert(station < detached_.size());
  detached_[station] = true;
}

void Lan::ReattachStation(StationId station) {
  assert(station < detached_.size());
  detached_[station] = false;
}

SimDuration Lan::FrameTime(size_t payload_bytes) const {
  size_t wire_bytes =
      std::max(payload_bytes + config_.frame_overhead_bytes, config_.min_frame_bytes);
  double seconds =
      static_cast<double>(wire_bytes) * 8.0 / config_.bandwidth_bits_per_sec;
  return static_cast<SimDuration>(seconds * 1e9);
}

bool Lan::Reachable(StationId from, StationId to) const {
  if (from >= stations_.size() || to >= stations_.size()) {
    return false;
  }
  if (detached_[from] || detached_[to]) {
    return false;
  }
  return partition_group_[from] == partition_group_[to];
}

void Lan::Attempt(Station* station) {
  assert(!station->queue_.empty());
  SimTime now = sim_.now();

  if (detached_[station->id_]) {
    // A failed node's pending output evaporates.
    stats_.transmit_failures++;
    Bump(metrics_.transmit_failures);
    station->queue_.pop_front();
    station->attempt_ = 0;
    if (station->queue_.empty()) {
      station->transmitting_or_waiting_ = false;
    } else {
      sim_.Schedule(0, [this, station] { Attempt(station); });
    }
    return;
  }

  if (current_.has_value()) {
    if (now < current_->started + config_.propagation_delay) {
      // The other transmission has not propagated to us yet: we sense an idle
      // carrier, transmit, and collide.
      HandleCollision(stations_[current_->src].get(), station);
      return;
    }
    // Carrier sensed busy: defer until the wire goes idle (1-persistent).
    SimTime retry_at = std::max(busy_until_, now);
    sim_.ScheduleAt(retry_at, [this, station] {
      if (!station->queue_.empty()) {
        Attempt(station);
      }
    });
    return;
  }

  if (now < busy_until_) {
    // Jam period after a collision.
    sim_.ScheduleAt(busy_until_, [this, station] {
      if (!station->queue_.empty()) {
        Attempt(station);
      }
    });
    return;
  }

  BeginTransmission(station);
}

void Lan::BeginTransmission(Station* station) {
  const Frame& frame = station->queue_.front();
  SimDuration duration = FrameTime(frame.wire_size());
  busy_until_ = sim_.now() + duration;
  EventId completion = sim_.Schedule(duration, [this, station] {
    Frame frame = std::move(station->queue_.front());
    FinishTransmission(station, std::move(frame));
  });
  current_ = Transmission{station->id_, sim_.now(), completion};
}

void Lan::HandleCollision(Station* first, Station* second) {
  stats_.collisions++;
  Bump(metrics_.collisions);
  sim_.Cancel(current_->completion_event);
  current_.reset();
  // Jam signal occupies the wire for one slot.
  busy_until_ = sim_.now() + config_.slot_time;
  ScheduleRetry(first, /*after_collision=*/true);
  ScheduleRetry(second, /*after_collision=*/true);
}

void Lan::ScheduleRetry(Station* station, bool after_collision) {
  station->attempt_++;
  if (station->attempt_ >= config_.max_transmit_attempts) {
    EDEN_LOG(kWarning, "lan") << "station " << station->id_
                              << " dropped frame after excessive collisions";
    stats_.transmit_failures++;
    Bump(metrics_.transmit_failures);
    station->queue_.pop_front();
    station->attempt_ = 0;
    if (station->queue_.empty()) {
      station->transmitting_or_waiting_ = false;
      return;
    }
  }
  // Binary exponential backoff, capped at 2^10 slots.
  int exponent = std::min(station->attempt_, 10);
  uint64_t slots = rng_.NextBelow(1ull << exponent);
  SimTime retry_at =
      std::max(busy_until_, sim_.now()) + static_cast<SimDuration>(slots) *
                                              config_.slot_time;
  sim_.ScheduleAt(retry_at, [this, station] {
    if (!station->queue_.empty()) {
      Attempt(station);
    }
  });
}

void Lan::FinishTransmission(Station* station, Frame frame) {
  SimDuration duration = FrameTime(frame.wire_size());
  size_t wire_bytes = std::max(frame.wire_size() + config_.frame_overhead_bytes,
                               config_.min_frame_bytes);
  current_.reset();
  stats_.frames_sent++;
  stats_.bytes_on_wire += wire_bytes;
  stats_.busy_time += duration;
  Bump(metrics_.frames_sent);
  Bump(metrics_.bytes_on_wire, wire_bytes);
  if (metrics_.queue_delay != nullptr) {
    // Time from Send() to the start of the successful transmission: queueing
    // behind the sender's own backlog plus deferral/backoff on a busy medium.
    metrics_.queue_delay->Record(sim_.now() - duration - frame.enqueued_at);
  }
  station->queue_.pop_front();
  station->attempt_ = 0;

  // Deliver after the propagation delay, independently per receiver.
  auto deliver_to = [this](StationId src, StationId dst, const Frame& f) {
    if (!Reachable(src, dst)) {
      stats_.frames_dropped_partition++;
      return;
    }
    if (config_.loss_probability > 0.0 && rng_.NextBool(config_.loss_probability)) {
      stats_.frames_lost++;
      Bump(metrics_.frames_lost);
      return;
    }
    if (fault_hook_ != nullptr) {
      WireFaultHook::Decision decision =
          fault_hook_->OnDeliver(src, dst, f.wire_size());
      if (decision.drop) {
        stats_.frames_dropped_fault++;
        Bump(metrics_.frames_dropped_fault);
        return;
      }
      if (decision.corrupt || decision.duplicate || decision.extra_delay > 0) {
        DeliverWithFaults(dst, f, decision);
        return;
      }
    }
    stats_.frames_delivered++;
    Bump(metrics_.frames_delivered);
    stations_[dst]->Deliver(f);
  };

  auto shared = std::make_shared<Frame>(std::move(frame));
  sim_.Schedule(config_.propagation_delay, [this, shared, deliver_to] {
    if (shared->dst == kBroadcastStation) {
      for (StationId id = 0; id < stations_.size(); id++) {
        if (id != shared->src) {
          deliver_to(shared->src, id, *shared);
        }
      }
    } else {
      deliver_to(shared->src, shared->dst, *shared);
    }
  });

  if (!station->queue_.empty()) {
    sim_.Schedule(config_.interframe_gap, [this, station] {
      if (!station->queue_.empty()) {
        Attempt(station);
      }
    });
  } else {
    station->transmitting_or_waiting_ = false;
  }
}

void Lan::DeliverWithFaults(StationId dst, const Frame& frame,
                            const WireFaultHook::Decision& decision) {
  Frame copy;
  copy.src = frame.src;
  copy.dst = frame.dst;
  copy.header = frame.header;
  copy.body = frame.body;
  copy.enqueued_at = frame.enqueued_at;

  if (decision.corrupt && copy.wire_size() > 0) {
    // One random bit flips somewhere in the frame. The body is a zero-copy
    // slice of the sender's retransmit buffer, so a body hit must flatten
    // the whole frame into a private header first — never mutate the shared
    // buffer the sender will retransmit from.
    size_t bit = rng_.NextBelow(copy.wire_size() * 8);
    size_t byte = bit / 8;
    if (byte >= copy.header.size()) {
      Bytes flat = copy.header;
      flat.insert(flat.end(), copy.body.data(),
                  copy.body.data() + copy.body.size());
      copy.header = std::move(flat);
      copy.body = SharedBytes();
    }
    copy.header[byte] ^= static_cast<uint8_t>(1u << (bit % 8));
    stats_.frames_corrupted++;
    Bump(metrics_.frames_corrupted);
  }

  auto deliver_copy = [this, dst](const Frame& f) {
    if (!Reachable(f.src, dst)) {
      stats_.frames_dropped_partition++;
      return;
    }
    stats_.frames_delivered++;
    Bump(metrics_.frames_delivered);
    stations_[dst]->Deliver(f);
  };

  if (decision.extra_delay > 0) {
    stats_.frames_delayed++;
    Bump(metrics_.frames_delayed);
    auto shared = std::make_shared<Frame>(copy);
    sim_.Schedule(decision.extra_delay,
                  [shared, deliver_copy] { deliver_copy(*shared); });
  } else {
    deliver_copy(copy);
  }

  if (decision.duplicate) {
    stats_.frames_duplicated++;
    Bump(metrics_.frames_duplicated);
    auto shared = std::make_shared<Frame>(std::move(copy));
    sim_.Schedule(decision.extra_delay + config_.slot_time,
                  [shared, deliver_copy] { deliver_copy(*shared); });
  }
}

}  // namespace eden
