// Simulated Ethernet local area network (paper section 3: "the Ethernet
// jointly specified by Digital, Intel and Xerox was the logical choice").
//
// The model is a single shared medium with:
//   * transmission time = frame bytes / bandwidth,
//   * end-to-end propagation delay,
//   * 1-persistent CSMA/CD: stations sense the carrier, defer while busy, and
//     two stations that begin transmitting within one propagation window
//     collide; colliders jam and retry with binary exponential backoff
//     (slot time 51.2 us, as in the 10 Mb/s specification),
//   * seeded probabilistic frame loss and explicit partitions for failure
//     injection.
//
// This is the substrate substitution documented in DESIGN.md section 2.2: it
// exercises the same kernel code paths as real hardware (retransmission,
// duplicate suppression, broadcast location) with era-appropriate timing.
#ifndef EDEN_SRC_NET_LAN_H_
#define EDEN_SRC_NET_LAN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/metrics/metrics.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace eden {

// Identifies a network interface on the LAN.
using StationId = uint32_t;
constexpr StationId kBroadcastStation = 0xffffffffu;

struct LanConfig {
  // 10 Mb/s Ethernet (the 1980 DIX specification).
  double bandwidth_bits_per_sec = 10e6;
  SimDuration propagation_delay = Microseconds(5);
  SimDuration slot_time = Nanoseconds(51200);
  // 9.6 us interframe gap: a station that just transmitted yields the wire
  // before contending again.
  SimDuration interframe_gap = Nanoseconds(9600);
  // Preamble + addresses + type + CRC + interframe gap, amortized per frame.
  size_t frame_overhead_bytes = 38;
  size_t min_frame_bytes = 64;
  size_t max_payload_bytes = 1500;
  // Independent per-frame loss (bit-error stand-in). 0 = perfect wire.
  double loss_probability = 0.0;
  int max_transmit_attempts = 16;
  // Switched full-duplex mode (set via Lan::EnableSwitched, required for
  // sharding): no shared medium, no CSMA/CD. Each station serializes its own
  // egress (frame time + interframe gap per frame) and a frame's delivery
  // time is computable from the send alone — which is what gives the sharded
  // engine its lookahead. Collisions never happen; loss/partition/detach
  // still apply. The chaos fault hook is CSMA-mode only.
  bool switched = false;
};

// A frame is carried in two parts, scatter-gather style (real NICs do the
// same with DMA descriptors): a small frame-local `header` owned by the
// frame, and an optional refcounted `body` that is a zero-copy slice of the
// sender's message buffer. The wire cost is header.size() + body.size();
// receivers parse the header and hand the body on without copying it.
struct Frame {
  StationId src = 0;
  StationId dst = 0;  // kBroadcastStation for broadcast
  Bytes header;
  SharedBytes body;
  // Stamped by Station::Send; drives the lan.queue_delay histogram (time the
  // frame waited behind the sender's queue and the busy medium).
  SimTime enqueued_at = 0;

  size_t wire_size() const { return header.size() + body.size(); }
};

struct LanStats {
  uint64_t frames_sent = 0;       // successfully placed on the wire
  uint64_t frames_delivered = 0;  // per-receiver deliveries
  uint64_t frames_lost = 0;       // dropped by loss injection
  uint64_t frames_dropped_partition = 0;
  uint64_t collisions = 0;
  uint64_t transmit_failures = 0;  // gave up after max attempts
  uint64_t bytes_on_wire = 0;      // includes per-frame overhead
  SimDuration busy_time = 0;       // total time the medium carried bits
  // Injected by a WireFaultHook (chaos harness), not the base loss model.
  uint64_t frames_corrupted = 0;   // delivered with flipped bits
  uint64_t frames_duplicated = 0;  // delivered twice
  uint64_t frames_delayed = 0;     // delivered late (reordering jitter)
  uint64_t frames_dropped_fault = 0;
};

class Lan;

// Per-delivery fault decision, consulted by the Lan between the loss model
// and the receiver (i.e. the frame survived partitions and base loss).
// Implemented by the chaos harness (src/fault); the Lan itself applies the
// decision — flips a seeded bit, schedules the duplicate or the delay — so
// the hook stays a pure policy object and rng draw order stays with the Lan.
class WireFaultHook {
 public:
  virtual ~WireFaultHook() = default;

  struct Decision {
    bool drop = false;       // swallow the frame (counted separately from loss)
    bool corrupt = false;    // flip one random bit before delivery
    bool duplicate = false;  // deliver a second copy one slot later
    SimDuration extra_delay = 0;  // defer delivery (reorders against others)
  };
  virtual Decision OnDeliver(StationId src, StationId dst,
                             size_t wire_bytes) = 0;
};

// Per-station wire counters for switched mode. Thread-safety by ownership:
// every field is written only on the station's owner-shard thread (a
// station's sends run there, and so do deliveries *to* it), so no locks are
// needed; Lan::stats() / SyncMetrics() aggregate after the shards quiesce.
struct StationWireStats {
  uint64_t frames_sent = 0;
  uint64_t bytes_on_wire = 0;
  SimDuration busy_time = 0;
  uint64_t transmit_failures = 0;  // detached sender
  uint64_t frames_delivered = 0;
  uint64_t frames_lost = 0;
  uint64_t frames_dropped_partition = 0;
};

// One network interface attached to the LAN. Owned by the Lan.
class Station {
 public:
  using ReceiveHandler = std::function<void(const Frame&)>;

  StationId id() const { return id_; }
  void SetReceiveHandler(ReceiveHandler handler) { handler_ = std::move(handler); }

  // Queues a frame for transmission; frames from one station go out in FIFO
  // order. The payload must be at most max_payload_bytes.
  void Send(Frame frame);

  size_t queue_depth() const { return queue_.size(); }

 private:
  friend class Lan;
  Station(Lan* lan, StationId id, Simulation* sim)
      : lan_(lan), id_(id), sim_(sim) {}

  void Deliver(const Frame& frame);
  void TransmitComplete();

  Lan* lan_;
  StationId id_;
  // Owner shard's simulation: the clock for this station's sends and the
  // queue its inbound deliveries are scheduled into. The Lan's own sim when
  // unsharded.
  Simulation* sim_;
  uint32_t shard_ = 0;
  ReceiveHandler handler_;
  std::deque<Frame> queue_;
  bool transmitting_or_waiting_ = false;
  int attempt_ = 0;
  // Switched-mode state, all owner-thread-only.
  SimTime egress_free_at_ = 0;
  std::vector<uint64_t> pair_seq_;  // per-destination frame counters
  Rng loss_rng_{1};
  StationWireStats wire_stats_;
};

class Lan {
 public:
  Lan(Simulation& sim, LanConfig config = {});
  ~Lan();

  Lan(const Lan&) = delete;
  Lan& operator=(const Lan&) = delete;

  // Creates a new interface. The pointer remains valid for the Lan lifetime.
  // `owner` is the simulation that drives the station (its shard's clock and
  // event queue); nullptr means the Lan's own simulation.
  Station* AttachStation(Simulation* owner = nullptr);

  Station* station(StationId id);
  size_t station_count() const { return stations_.size(); }

  // Partition control: stations only hear stations in the same group.
  // Everyone starts in group 0.
  void SetPartitionGroup(StationId station, int group);
  void ClearPartitions();
  // A detached station hears nothing and reaches nobody (node failure).
  void DetachStation(StationId station);
  void ReattachStation(StationId station);

  void set_loss_probability(double p) { config_.loss_probability = p; }

  // Installs (or clears, with nullptr) the chaos harness's per-delivery fault
  // hook. The hook must outlive this Lan.
  void set_fault_hook(WireFaultHook* hook) { fault_hook_ = hook; }

  const LanConfig& config() const { return config_; }
  // In switched mode this aggregates the per-station wire counters (call
  // only while the shards are quiescent); otherwise it is the live totals.
  const LanStats& stats() const;
  Simulation& sim() { return sim_; }

  // --- Switched full-duplex mode (sharding substrate) ---

  // Flips the LAN into switched mode (see LanConfig::switched). Must be
  // called before any traffic; seeds per-station loss streams from one draw
  // on the Lan rng so serial and sharded layouts see identical loss
  // sequences per receiver.
  void EnableSwitched();

  // Minimum send-to-delivery latency in switched mode: every frame arrives
  // at least FrameTime(0) + propagation_delay after its Send. This is the
  // sharded engine's lookahead.
  SimDuration lookahead() const {
    return config_.propagation_delay + FrameTime(0);
  }

  // Routes deliveries whose destination lives on another shard into the
  // engine's channels instead of scheduling directly.
  using CrossShardSink =
      std::function<void(uint32_t from_shard, uint32_t to_shard,
                         CrossShardMsg msg)>;
  void set_cross_shard_sink(CrossShardSink sink) {
    cross_shard_sink_ = std::move(sink);
  }
  void SetStationShard(StationId station, uint32_t shard);

  // The engine's deliver callback: runs on the destination shard's thread,
  // schedules the (keyed) delivery into that shard's simulation.
  void DeliverRouted(const CrossShardMsg& msg);

  // Pushes switched-mode per-station counter deltas into the metrics
  // registry (counters are not thread-safe, so switched mode defers them).
  // Call from the rollup path, with the shards quiescent.
  void SyncMetrics() const;

  // Mirrors the LanStats counters into `registry` under lan.* names and
  // records per-frame queueing delay into lan.queue_delay. The registry must
  // outlive this Lan; nullptr detaches.
  void set_metrics(MetricsRegistry* registry);

  // Time to clock one frame of `payload_bytes` onto the wire.
  SimDuration FrameTime(size_t payload_bytes) const;

 private:
  friend class Station;

  struct Transmission {
    StationId src;
    SimTime started;
    EventId completion_event;
  };

  struct LanMetrics {
    Counter* frames_sent = nullptr;
    Counter* frames_delivered = nullptr;
    Counter* frames_lost = nullptr;
    Counter* collisions = nullptr;
    Counter* transmit_failures = nullptr;
    Counter* bytes_on_wire = nullptr;
    Histogram* queue_delay = nullptr;
    Counter* frames_corrupted = nullptr;
    Counter* frames_duplicated = nullptr;
    Counter* frames_delayed = nullptr;
    Counter* frames_dropped_fault = nullptr;
  };

  static void Bump(Counter* counter, uint64_t n = 1) {
    if (counter != nullptr) {
      counter->Increment(n);
    }
  }

  // Station wants the wire; called when a frame reaches its queue head.
  void Attempt(Station* station);
  void BeginTransmission(Station* station);
  void FinishTransmission(Station* station, Frame frame);
  void HandleCollision(Station* first, Station* second);
  void ScheduleRetry(Station* station, bool after_collision);
  bool Reachable(StationId from, StationId to) const;
  // Switched-mode path: compute the delivery time from the sender's egress
  // serialization, then route each (src, dst) copy by shard.
  void SwitchedSend(Station* station, Frame frame);
  void RouteSwitched(Station* src, StationId dst, SimTime deliver_at,
                     const std::shared_ptr<Frame>& frame);
  // Runs on the destination's owner thread at the delivery instant.
  void SwitchedDeliver(StationId dst, const Frame& frame);
  // Applies the fault hook's decision (bit flip, duplicate, delay) and hands
  // the (possibly mutated copy of the) frame to the destination station.
  void DeliverWithFaults(StationId dst, const Frame& frame,
                         const WireFaultHook::Decision& decision);

  Simulation& sim_;
  LanConfig config_;
  LanStats stats_;
  LanMetrics metrics_;
  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<int> partition_group_;   // index by StationId
  std::vector<bool> detached_;
  SimTime busy_until_ = 0;
  std::optional<Transmission> current_;
  WireFaultHook* fault_hook_ = nullptr;
  Rng rng_;
  uint64_t switched_seed_ = 0;  // base for per-station loss streams
  CrossShardSink cross_shard_sink_;
  // Aggregation scratch for switched-mode stats()/SyncMetrics().
  mutable LanStats merged_stats_;
  mutable LanStats synced_;
};

}  // namespace eden

#endif  // EDEN_SRC_NET_LAN_H_
