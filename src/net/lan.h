// Simulated Ethernet local area network (paper section 3: "the Ethernet
// jointly specified by Digital, Intel and Xerox was the logical choice").
//
// The model is a single shared medium with:
//   * transmission time = frame bytes / bandwidth,
//   * end-to-end propagation delay,
//   * 1-persistent CSMA/CD: stations sense the carrier, defer while busy, and
//     two stations that begin transmitting within one propagation window
//     collide; colliders jam and retry with binary exponential backoff
//     (slot time 51.2 us, as in the 10 Mb/s specification),
//   * seeded probabilistic frame loss and explicit partitions for failure
//     injection.
//
// This is the substrate substitution documented in DESIGN.md section 2.2: it
// exercises the same kernel code paths as real hardware (retransmission,
// duplicate suppression, broadcast location) with era-appropriate timing.
#ifndef EDEN_SRC_NET_LAN_H_
#define EDEN_SRC_NET_LAN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/metrics/metrics.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace eden {

// Identifies a network interface on the LAN.
using StationId = uint32_t;
constexpr StationId kBroadcastStation = 0xffffffffu;

struct LanConfig {
  // 10 Mb/s Ethernet (the 1980 DIX specification).
  double bandwidth_bits_per_sec = 10e6;
  SimDuration propagation_delay = Microseconds(5);
  SimDuration slot_time = Nanoseconds(51200);
  // 9.6 us interframe gap: a station that just transmitted yields the wire
  // before contending again.
  SimDuration interframe_gap = Nanoseconds(9600);
  // Preamble + addresses + type + CRC + interframe gap, amortized per frame.
  size_t frame_overhead_bytes = 38;
  size_t min_frame_bytes = 64;
  size_t max_payload_bytes = 1500;
  // Independent per-frame loss (bit-error stand-in). 0 = perfect wire.
  double loss_probability = 0.0;
  int max_transmit_attempts = 16;
};

// A frame is carried in two parts, scatter-gather style (real NICs do the
// same with DMA descriptors): a small frame-local `header` owned by the
// frame, and an optional refcounted `body` that is a zero-copy slice of the
// sender's message buffer. The wire cost is header.size() + body.size();
// receivers parse the header and hand the body on without copying it.
struct Frame {
  StationId src = 0;
  StationId dst = 0;  // kBroadcastStation for broadcast
  Bytes header;
  SharedBytes body;
  // Stamped by Station::Send; drives the lan.queue_delay histogram (time the
  // frame waited behind the sender's queue and the busy medium).
  SimTime enqueued_at = 0;

  size_t wire_size() const { return header.size() + body.size(); }
};

struct LanStats {
  uint64_t frames_sent = 0;       // successfully placed on the wire
  uint64_t frames_delivered = 0;  // per-receiver deliveries
  uint64_t frames_lost = 0;       // dropped by loss injection
  uint64_t frames_dropped_partition = 0;
  uint64_t collisions = 0;
  uint64_t transmit_failures = 0;  // gave up after max attempts
  uint64_t bytes_on_wire = 0;      // includes per-frame overhead
  SimDuration busy_time = 0;       // total time the medium carried bits
  // Injected by a WireFaultHook (chaos harness), not the base loss model.
  uint64_t frames_corrupted = 0;   // delivered with flipped bits
  uint64_t frames_duplicated = 0;  // delivered twice
  uint64_t frames_delayed = 0;     // delivered late (reordering jitter)
  uint64_t frames_dropped_fault = 0;
};

class Lan;

// Per-delivery fault decision, consulted by the Lan between the loss model
// and the receiver (i.e. the frame survived partitions and base loss).
// Implemented by the chaos harness (src/fault); the Lan itself applies the
// decision — flips a seeded bit, schedules the duplicate or the delay — so
// the hook stays a pure policy object and rng draw order stays with the Lan.
class WireFaultHook {
 public:
  virtual ~WireFaultHook() = default;

  struct Decision {
    bool drop = false;       // swallow the frame (counted separately from loss)
    bool corrupt = false;    // flip one random bit before delivery
    bool duplicate = false;  // deliver a second copy one slot later
    SimDuration extra_delay = 0;  // defer delivery (reorders against others)
  };
  virtual Decision OnDeliver(StationId src, StationId dst,
                             size_t wire_bytes) = 0;
};

// One network interface attached to the LAN. Owned by the Lan.
class Station {
 public:
  using ReceiveHandler = std::function<void(const Frame&)>;

  StationId id() const { return id_; }
  void SetReceiveHandler(ReceiveHandler handler) { handler_ = std::move(handler); }

  // Queues a frame for transmission; frames from one station go out in FIFO
  // order. The payload must be at most max_payload_bytes.
  void Send(Frame frame);

  size_t queue_depth() const { return queue_.size(); }

 private:
  friend class Lan;
  Station(Lan* lan, StationId id) : lan_(lan), id_(id) {}

  void Deliver(const Frame& frame);
  void TransmitComplete();

  Lan* lan_;
  StationId id_;
  ReceiveHandler handler_;
  std::deque<Frame> queue_;
  bool transmitting_or_waiting_ = false;
  int attempt_ = 0;
};

class Lan {
 public:
  Lan(Simulation& sim, LanConfig config = {});
  ~Lan();

  Lan(const Lan&) = delete;
  Lan& operator=(const Lan&) = delete;

  // Creates a new interface. The pointer remains valid for the Lan lifetime.
  Station* AttachStation();

  Station* station(StationId id);
  size_t station_count() const { return stations_.size(); }

  // Partition control: stations only hear stations in the same group.
  // Everyone starts in group 0.
  void SetPartitionGroup(StationId station, int group);
  void ClearPartitions();
  // A detached station hears nothing and reaches nobody (node failure).
  void DetachStation(StationId station);
  void ReattachStation(StationId station);

  void set_loss_probability(double p) { config_.loss_probability = p; }

  // Installs (or clears, with nullptr) the chaos harness's per-delivery fault
  // hook. The hook must outlive this Lan.
  void set_fault_hook(WireFaultHook* hook) { fault_hook_ = hook; }

  const LanConfig& config() const { return config_; }
  const LanStats& stats() const { return stats_; }
  Simulation& sim() { return sim_; }

  // Mirrors the LanStats counters into `registry` under lan.* names and
  // records per-frame queueing delay into lan.queue_delay. The registry must
  // outlive this Lan; nullptr detaches.
  void set_metrics(MetricsRegistry* registry);

  // Time to clock one frame of `payload_bytes` onto the wire.
  SimDuration FrameTime(size_t payload_bytes) const;

 private:
  friend class Station;

  struct Transmission {
    StationId src;
    SimTime started;
    EventId completion_event;
  };

  struct LanMetrics {
    Counter* frames_sent = nullptr;
    Counter* frames_delivered = nullptr;
    Counter* frames_lost = nullptr;
    Counter* collisions = nullptr;
    Counter* transmit_failures = nullptr;
    Counter* bytes_on_wire = nullptr;
    Histogram* queue_delay = nullptr;
    Counter* frames_corrupted = nullptr;
    Counter* frames_duplicated = nullptr;
    Counter* frames_delayed = nullptr;
    Counter* frames_dropped_fault = nullptr;
  };

  static void Bump(Counter* counter, uint64_t n = 1) {
    if (counter != nullptr) {
      counter->Increment(n);
    }
  }

  // Station wants the wire; called when a frame reaches its queue head.
  void Attempt(Station* station);
  void BeginTransmission(Station* station);
  void FinishTransmission(Station* station, Frame frame);
  void HandleCollision(Station* first, Station* second);
  void ScheduleRetry(Station* station, bool after_collision);
  bool Reachable(StationId from, StationId to) const;
  // Applies the fault hook's decision (bit flip, duplicate, delay) and hands
  // the (possibly mutated copy of the) frame to the destination station.
  void DeliverWithFaults(StationId dst, const Frame& frame,
                         const WireFaultHook::Decision& decision);

  Simulation& sim_;
  LanConfig config_;
  LanStats stats_;
  LanMetrics metrics_;
  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<int> partition_group_;   // index by StationId
  std::vector<bool> detached_;
  SimTime busy_until_ = 0;
  std::optional<Transmission> current_;
  WireFaultHook* fault_hook_ = nullptr;
  Rng rng_;
};

}  // namespace eden

#endif  // EDEN_SRC_NET_LAN_H_
