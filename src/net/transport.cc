#include "src/net/transport.h"

#include <algorithm>
#include <cassert>

#include "src/common/log.h"

namespace eden {

namespace {
// Every frame leads with kind (1) + CRC32 (4) over the rest of the header
// plus the body — the simulated equivalent of the Ethernet FCS the LAN
// model only charges as overhead bytes.
constexpr size_t kFrameChecksumBytes = 5;
// Per-fragment header budget inside one LAN frame: kind + CRC (5) + msg id
// (8) + reliable (1) + index/count varints (<=10) + empty ACK block (1),
// rounded up. Full-size fragments leave no slack, so ACKs only piggyback on
// frames with room to spare.
constexpr size_t kFragmentHeaderBytes = 28;
// Worst-case wire cost of one piggybacked ACK id (u64, plus varint growth).
constexpr size_t kAckIdBytes = 9;

// Checksums the kind tag, `payload` (the header bytes after kind+crc) and
// `body`, and returns the completed frame header. The kind byte must be
// covered: a flip there would otherwise route the frame to the wrong (or no)
// handler while the rest of the checksum still verifies.
Bytes SealFrame(uint8_t kind, BufferWriter& payload, const SharedBytes& body) {
  uint32_t crc = Crc32Begin();
  crc = Crc32Update(crc, &kind, 1);
  crc = Crc32Update(crc, payload.buffer().data(), payload.size());
  crc = Crc32Update(crc, body.data(), body.size());
  BufferWriter header;
  header.WriteU8(kind);
  header.WriteU32(Crc32End(crc));
  header.WriteRaw(payload.buffer().data(), payload.size());
  return header.Take();
}
}  // namespace

Transport::Transport(Simulation& sim, Lan& lan, TransportConfig config,
                     Rng* id_rng)
    : sim_(sim),
      lan_(lan),
      station_(lan.AttachStation(&sim)),
      config_(config),
      id_rng_(id_rng != nullptr ? id_rng : &sim.rng()) {
  // Randomized so a restarted node never reuses a predecessor's ids (the
  // peer's duplicate-suppression history would silently eat new messages).
  next_msg_id_ = id_rng_->NextU64() | 1;
  station_->SetReceiveHandler([this](const Frame& frame) { OnFrame(frame); });
}

void Transport::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    counters_ = TransportCounters{};
    return;
  }
  counters_.messages_sent = &registry->counter("transport.messages_sent");
  counters_.messages_delivered = &registry->counter("transport.messages_delivered");
  counters_.duplicates_suppressed =
      &registry->counter("transport.duplicates_suppressed");
  counters_.retransmits = &registry->counter("transport.retransmits");
  counters_.send_failures = &registry->counter("transport.send_failures");
  counters_.acks_sent = &registry->counter("transport.acks_sent");
  counters_.acks_piggybacked = &registry->counter("transport.acks_piggybacked");
  counters_.fragments_sent = &registry->counter("transport.fragments_sent");
  counters_.frames_corrupt_dropped =
      &registry->counter("transport.frames_corrupt_dropped");
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

uint64_t Transport::SendReliable(StationId dst, Bytes message,
                                 const SpanContext& parent) {
  assert(dst != kBroadcastStation && "reliable broadcast is not supported");
  uint64_t msg_id = next_msg_id_++;
  PendingSend pending;
  pending.dst = dst;
  pending.msg_id = msg_id;
  pending.message = SharedBytes(std::move(message));
  pending.reliable = true;
  if (spans_ != nullptr && parent.valid()) {
    pending.span =
        spans_->StartSpan(parent, SpanKind::kWire, station_->id(), ObjectName{},
                          "to node" + std::to_string(dst), sim_.now());
  }
  stats_.messages_sent++;
  Bump(counters_.messages_sent);
  auto [it, inserted] = pending_.emplace(msg_id, std::move(pending));
  assert(inserted);
  TransmitFragments(it->second);
  ScheduleRetry(it->second, sim_.now() + config_.retransmit_timeout);
  return msg_id;
}

void Transport::SendBestEffort(StationId dst, Bytes message) {
  PendingSend once;
  once.dst = dst;
  once.msg_id = next_msg_id_++;
  once.message = SharedBytes(std::move(message));
  once.reliable = false;
  stats_.messages_sent++;
  Bump(counters_.messages_sent);
  TransmitFragments(once);
}

void Transport::TransmitFragments(PendingSend& pending) {
  size_t max_chunk = lan_.config().max_payload_bytes - kFragmentHeaderBytes;
  size_t size = pending.message.size();
  size_t count = size == 0 ? 1 : (size + max_chunk - 1) / max_chunk;
  for (size_t i = 0; i < count; i++) {
    size_t offset = i * max_chunk;
    size_t len = std::min(max_chunk, size - offset);
    BufferWriter writer;
    writer.WriteU64(pending.msg_id);
    writer.WriteBool(pending.reliable);
    writer.WriteVarint(i);
    writer.WriteVarint(count);
    AppendPiggybackAcks(writer, pending.dst, len);
    Frame frame;
    frame.dst = pending.dst;
    frame.body = pending.message.Slice(offset, len);
    frame.header = SealFrame(kData, writer, frame.body);
    station_->Send(std::move(frame));
    stats_.fragments_sent++;
    Bump(counters_.fragments_sent);
  }
}

// ---------------------------------------------------------------------------
// Retransmission: one timer, a deadline heap, lazy invalidation
// ---------------------------------------------------------------------------

void Transport::ScheduleRetry(PendingSend& pending, SimTime at) {
  pending.next_retry = at;
  retry_queue_.push({at, pending.msg_id});
  ArmRetryTimer();
}

void Transport::ArmRetryTimer() {
  // Shed stale heads (acknowledged messages, superseded deadlines) so the
  // timer is armed for a real deadline.
  while (!retry_queue_.empty()) {
    const auto& [at, msg_id] = retry_queue_.top();
    auto it = pending_.find(msg_id);
    if (it == pending_.end() || it->second.next_retry != at) {
      retry_queue_.pop();
      continue;
    }
    break;
  }
  if (retry_queue_.empty()) {
    if (retry_timer_ != kInvalidEventId) {
      sim_.Cancel(retry_timer_);
      retry_timer_ = kInvalidEventId;
    }
    return;
  }
  SimTime next = retry_queue_.top().first;
  if (retry_timer_ != kInvalidEventId) {
    if (retry_timer_at_ <= next) {
      return;  // already armed early enough; OnRetryTimer re-arms for later
    }
    sim_.Cancel(retry_timer_);
  }
  retry_timer_at_ = next;
  retry_timer_ = sim_.ScheduleAt(next, [this] { OnRetryTimer(); });
}

void Transport::OnRetryTimer() {
  retry_timer_ = kInvalidEventId;
  SimTime now = sim_.now();
  while (!retry_queue_.empty() && retry_queue_.top().first <= now) {
    auto [at, msg_id] = retry_queue_.top();
    retry_queue_.pop();
    auto it = pending_.find(msg_id);
    if (it == pending_.end() || it->second.next_retry != at) {
      continue;  // acknowledged or rescheduled since this entry was pushed
    }
    PendingSend& pending = it->second;
    if (pending.retransmits >= config_.max_retransmits) {
      EDEN_LOG(kDebug, "transport")
          << "station " << station_->id() << " gave up on message " << msg_id;
      stats_.send_failures++;
      Bump(counters_.send_failures);
      StationId dst = pending.dst;
      if (spans_ != nullptr && pending.span.valid()) {
        spans_->EndSpan(pending.span, now, "gave_up");
      }
      pending_.erase(it);
      if (on_send_outcome_) {
        on_send_outcome_(dst, /*delivered=*/false);
      }
      continue;
    }
    pending.retransmits++;
    stats_.retransmits++;
    Bump(counters_.retransmits);
    if (spans_ != nullptr && pending.span.valid()) {
      spans_->Annotate(pending.span, now,
                       "retransmit#" + std::to_string(pending.retransmits));
    }
    TransmitFragments(pending);
    // Exponential backoff.
    pending.next_retry = now + (config_.retransmit_timeout << pending.retransmits);
    retry_queue_.push({pending.next_retry, msg_id});
  }
  ArmRetryTimer();
}

// ---------------------------------------------------------------------------
// ACK coalescing: piggyback on data frames, else delay and batch
// ---------------------------------------------------------------------------

void Transport::AppendPiggybackAcks(BufferWriter& writer, StationId dst,
                                    size_t body_bytes) {
  size_t n = 0;
  auto it = pending_acks_.find(dst);
  if (it != pending_acks_.end() && !it->second.empty()) {
    // +1: the count varint; the kind+CRC prefix is added by SealFrame later.
    size_t used = kFrameChecksumBytes + writer.size() + body_bytes + 1;
    size_t max_payload = lan_.config().max_payload_bytes;
    size_t slack = max_payload > used ? max_payload - used : 0;
    n = std::min({it->second.size(), config_.max_acks_per_frame,
                  slack / kAckIdBytes});
  }
  writer.WriteVarint(n);
  if (n == 0) {
    return;
  }
  std::vector<uint64_t>& ids = it->second;
  for (size_t j = 0; j < n; j++) {
    writer.WriteU64(ids[j]);
  }
  ids.erase(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(n));
  pending_ack_total_ -= n;
  stats_.acks_piggybacked += n;
  Bump(counters_.acks_piggybacked, n);
  if (ids.empty()) {
    pending_acks_.erase(it);
  }
  MaybeCancelAckTimer();
}

void Transport::QueueAck(StationId peer, uint64_t msg_id) {
  std::vector<uint64_t>& ids = pending_acks_[peer];
  ids.push_back(msg_id);
  pending_ack_total_++;
  if (config_.ack_delay == 0 || ids.size() >= config_.max_acks_per_frame) {
    FlushPeerAcks(peer, ids);
    pending_acks_.erase(peer);
    MaybeCancelAckTimer();
    return;
  }
  if (ack_timer_ == kInvalidEventId) {
    ack_timer_ = sim_.Schedule(config_.ack_delay, [this] {
      ack_timer_ = kInvalidEventId;
      FlushAllAcks();
    });
  }
}

void Transport::FlushPeerAcks(StationId peer, std::vector<uint64_t>& ids) {
  for (size_t start = 0; start < ids.size();
       start += config_.max_acks_per_frame) {
    size_t n = std::min(config_.max_acks_per_frame, ids.size() - start);
    BufferWriter writer;
    writer.WriteVarint(n);
    for (size_t j = 0; j < n; j++) {
      writer.WriteU64(ids[start + j]);
    }
    Frame ack;
    ack.dst = peer;
    ack.header = SealFrame(kAck, writer, ack.body);
    station_->Send(std::move(ack));
    stats_.acks_sent++;
    stats_.ack_ids_sent += n;
    Bump(counters_.acks_sent);
  }
  pending_ack_total_ -= ids.size();
  ids.clear();
}

void Transport::FlushAllAcks() {
  for (auto& [peer, ids] : pending_acks_) {
    FlushPeerAcks(peer, ids);
  }
  pending_acks_.clear();
}

void Transport::MaybeCancelAckTimer() {
  if (pending_ack_total_ == 0 && ack_timer_ != kInvalidEventId) {
    sim_.Cancel(ack_timer_);
    ack_timer_ = kInvalidEventId;
  }
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Transport::OnFrame(const Frame& frame) {
  BufferReader reader(frame.header);
  auto kind = reader.ReadU8();
  auto crc = kind.ok() ? reader.ReadU32() : StatusOr<uint32_t>(kind.status());
  if (!crc.ok()) {
    stats_.frames_corrupt_dropped++;
    Bump(counters_.frames_corrupt_dropped);
    return;
  }
  // Verify before trusting any field — a flipped bit may sit anywhere,
  // including the kind tag itself. A corrupt frame is indistinguishable from
  // a lost one: drop it and let the sender's retransmission recover.
  uint32_t actual = Crc32Begin();
  actual = Crc32Update(actual, frame.header.data(), 1);  // the kind tag
  size_t checked = reader.position();
  actual = Crc32Update(actual, frame.header.data() + checked,
                       frame.header.size() - checked);
  actual = Crc32Update(actual, frame.body.data(), frame.body.size());
  if (Crc32End(actual) != *crc) {
    stats_.frames_corrupt_dropped++;
    Bump(counters_.frames_corrupt_dropped);
    EDEN_LOG(kDebug, "transport")
        << "station " << station_->id() << " dropped corrupt frame from "
        << frame.src;
    return;
  }
  switch (*kind) {
    case kData:
      HandleData(frame, reader);
      break;
    case kAck:
      HandleAck(reader);
      break;
    default:
      EDEN_LOG(kWarning, "transport") << "unknown frame kind " << int{*kind};
  }
}

void Transport::HandleAck(BufferReader& reader) {
  auto count = reader.ReadVarint();
  if (!count.ok()) {
    return;
  }
  for (uint64_t i = 0; i < *count; i++) {
    auto msg_id = reader.ReadU64();
    if (!msg_id.ok()) {
      return;
    }
    AckMsgId(*msg_id);
  }
}

void Transport::AckMsgId(uint64_t msg_id) {
  // The retry heap entry goes stale and is skipped when it surfaces; no
  // simulation event needs cancelling.
  auto it = pending_.find(msg_id);
  if (it == pending_.end()) {
    return;  // duplicate ACK
  }
  StationId dst = it->second.dst;
  bool reliable = it->second.reliable;
  if (spans_ != nullptr && it->second.span.valid()) {
    spans_->EndSpan(it->second.span, sim_.now());
  }
  pending_.erase(it);
  if (reliable && on_send_outcome_) {
    on_send_outcome_(dst, /*delivered=*/true);
  }
}

void Transport::DeliverFastPath(const Frame& frame, uint64_t msg_id,
                                bool reliable) {
  RecordDelivered(frame.src, msg_id);
  if (reliable) {
    QueueAck(frame.src, msg_id);
  }
  stats_.messages_delivered++;
  Bump(counters_.messages_delivered);
  if (handler_) {
    handler_(frame.src, frame.body.view());
  }
}

void Transport::HandleData(const Frame& frame, BufferReader& reader) {
  auto msg_id = reader.ReadU64();
  auto reliable = msg_id.ok() ? reader.ReadBool() : StatusOr<bool>(msg_id.status());
  auto index = reliable.ok() ? reader.ReadVarint() : StatusOr<uint64_t>(reliable.status());
  auto count = index.ok() ? reader.ReadVarint() : index;
  if (!count.ok() || *count == 0 || *index >= *count) {
    EDEN_LOG(kWarning, "transport") << "malformed data frame dropped";
    return;
  }
  // Piggybacked ACKs ride even on duplicates; process them first.
  HandleAck(reader);

  if (AlreadyDelivered(frame.src, *msg_id)) {
    stats_.duplicates_suppressed++;
    Bump(counters_.duplicates_suppressed);
    if (*reliable) {
      // The sender missed our ack; repeat it.
      QueueAck(frame.src, *msg_id);
    }
    return;
  }

  if (*count == 1) {
    // Common case: the whole message fits one frame. No reassembly-table
    // touch, no payload copy — the handler reads the sender's buffer.
    DeliverFastPath(frame, *msg_id, *reliable);
    return;
  }

  auto key = std::make_pair(frame.src, *msg_id);
  auto [it, inserted] = reassembly_.try_emplace(key);
  Reassembly& assembly = it->second;
  if (inserted) {
    assembly.fragments.resize(*count);
    ArmReassemblySweep();
  }
  if (assembly.fragments.size() != *count) {
    EDEN_LOG(kWarning, "transport") << "inconsistent fragment count; dropped";
    return;
  }
  if (assembly.fragments[*index].empty()) {
    assembly.fragments[*index] = frame.body;  // refcounted slice, no copy
    assembly.received++;
  }
  assembly.last_progress = sim_.now();

  if (assembly.received < *count) {
    return;
  }

  // All fragments present. They are normally contiguous slices of the
  // sender's one message buffer, so reassembly is a slice widening; only if
  // retransmission produced mixed buffers do we concatenate.
  SharedBytes message = assembly.fragments[0];
  bool contiguous = true;
  for (size_t i = 1; i < assembly.fragments.size(); i++) {
    if (!message.Precedes(assembly.fragments[i])) {
      contiguous = false;
      break;
    }
    message.ExtendOver(assembly.fragments[i]);
  }
  if (!contiguous) {
    Bytes flat;
    size_t total = 0;
    for (const SharedBytes& fragment : assembly.fragments) {
      total += fragment.size();
    }
    flat.reserve(total);
    for (const SharedBytes& fragment : assembly.fragments) {
      flat.insert(flat.end(), fragment.data(), fragment.data() + fragment.size());
    }
    message = SharedBytes(std::move(flat));
  }
  reassembly_.erase(it);
  RecordDelivered(frame.src, *msg_id);
  if (*reliable) {
    QueueAck(frame.src, *msg_id);
  }
  stats_.messages_delivered++;
  Bump(counters_.messages_delivered);
  if (handler_) {
    handler_(frame.src, message.view());
  }
}

// ---------------------------------------------------------------------------
// Reassembly garbage collection: periodic sweep, armed only while needed
// ---------------------------------------------------------------------------

void Transport::ArmReassemblySweep() {
  if (sweep_timer_ != kInvalidEventId) {
    return;
  }
  sweep_timer_ = sim_.Schedule(config_.reassembly_timeout, [this] {
    sweep_timer_ = kInvalidEventId;
    for (auto stale = reassembly_.begin(); stale != reassembly_.end();) {
      if (sim_.now() - stale->second.last_progress >= config_.reassembly_timeout) {
        stale = reassembly_.erase(stale);
      } else {
        ++stale;
      }
    }
    if (!reassembly_.empty()) {
      ArmReassemblySweep();
    }
  });
}

// ---------------------------------------------------------------------------
// Duplicate suppression
// ---------------------------------------------------------------------------

bool Transport::AlreadyDelivered(StationId src, uint64_t msg_id) const {
  auto it = history_.find(src);
  if (it == history_.end()) {
    return false;
  }
  return it->second.delivered.count(msg_id) > 0;
}

void Transport::RecordDelivered(StationId src, uint64_t msg_id) {
  PeerHistory& peer = history_[src];
  peer.delivered.insert(msg_id);
  peer.order.push_back(msg_id);
  while (peer.order.size() > config_.dedup_window) {
    peer.delivered.erase(peer.order.front());
    peer.order.pop_front();
  }
}

void Transport::Reset() {
  if (spans_ != nullptr) {
    // Close wire spans of discarded in-flight messages in a deterministic
    // (msg-id) order — pending_ itself iterates in hash order.
    std::vector<const PendingSend*> doomed;
    for (const auto& [msg_id, pending] : pending_) {
      if (pending.span.valid()) {
        doomed.push_back(&pending);
      }
    }
    std::sort(doomed.begin(), doomed.end(),
              [](const PendingSend* a, const PendingSend* b) {
                return a->msg_id < b->msg_id;
              });
    for (const PendingSend* pending : doomed) {
      spans_->EndSpan(pending->span, sim_.now(), "reset");
    }
  }
  pending_.clear();
  retry_queue_ = {};
  if (retry_timer_ != kInvalidEventId) {
    sim_.Cancel(retry_timer_);
    retry_timer_ = kInvalidEventId;
  }
  pending_acks_.clear();
  pending_ack_total_ = 0;
  if (ack_timer_ != kInvalidEventId) {
    sim_.Cancel(ack_timer_);
    ack_timer_ = kInvalidEventId;
  }
  reassembly_.clear();
  if (sweep_timer_ != kInvalidEventId) {
    sim_.Cancel(sweep_timer_);
    sweep_timer_ = kInvalidEventId;
  }
  history_.clear();
  next_msg_id_ = id_rng_->NextU64() | 1;
}

}  // namespace eden
