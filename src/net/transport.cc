#include "src/net/transport.h"

#include <cassert>

#include "src/common/log.h"

namespace eden {

namespace {
// Per-fragment header budget inside one LAN frame.
constexpr size_t kFragmentHeaderBytes = 24;
}  // namespace

Transport::Transport(Simulation& sim, Lan& lan, TransportConfig config)
    : sim_(sim), lan_(lan), station_(lan.AttachStation()), config_(config) {
  // Randomized so a restarted node never reuses a predecessor's ids (the
  // peer's duplicate-suppression history would silently eat new messages).
  next_msg_id_ = sim_.rng().NextU64() | 1;
  station_->SetReceiveHandler([this](const Frame& frame) { OnFrame(frame); });
}

void Transport::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    counters_ = TransportCounters{};
    return;
  }
  counters_.messages_sent = &registry->counter("transport.messages_sent");
  counters_.messages_delivered = &registry->counter("transport.messages_delivered");
  counters_.duplicates_suppressed =
      &registry->counter("transport.duplicates_suppressed");
  counters_.retransmits = &registry->counter("transport.retransmits");
  counters_.send_failures = &registry->counter("transport.send_failures");
  counters_.acks_sent = &registry->counter("transport.acks_sent");
  counters_.fragments_sent = &registry->counter("transport.fragments_sent");
}

std::vector<Bytes> Transport::Fragment(uint64_t msg_id, bool reliable,
                                       const Bytes& message) {
  size_t max_chunk = lan_.config().max_payload_bytes - kFragmentHeaderBytes;
  size_t count = message.empty() ? 1 : (message.size() + max_chunk - 1) / max_chunk;
  std::vector<Bytes> fragments;
  fragments.reserve(count);
  for (size_t i = 0; i < count; i++) {
    size_t offset = i * max_chunk;
    size_t len = std::min(max_chunk, message.size() - offset);
    BufferWriter writer;
    writer.WriteU8(kData);
    writer.WriteU64(msg_id);
    writer.WriteBool(reliable);
    writer.WriteVarint(i);
    writer.WriteVarint(count);
    writer.WriteVarint(len);
    writer.WriteRaw(message.data() + offset, len);
    fragments.push_back(writer.Take());
  }
  return fragments;
}

uint64_t Transport::SendReliable(StationId dst, Bytes message) {
  assert(dst != kBroadcastStation && "reliable broadcast is not supported");
  uint64_t msg_id = next_msg_id_++;
  PendingSend pending;
  pending.dst = dst;
  pending.fragments = Fragment(msg_id, /*reliable=*/true, message);
  stats_.messages_sent++;
  Bump(counters_.messages_sent);
  TransmitFragments(pending);
  pending_[msg_id] = std::move(pending);
  ArmRetransmit(msg_id);
  return msg_id;
}

void Transport::SendBestEffort(StationId dst, Bytes message) {
  uint64_t msg_id = next_msg_id_++;
  PendingSend once;
  once.dst = dst;
  once.fragments = Fragment(msg_id, /*reliable=*/false, message);
  stats_.messages_sent++;
  Bump(counters_.messages_sent);
  TransmitFragments(once);
}

void Transport::TransmitFragments(const PendingSend& pending) {
  for (const Bytes& payload : pending.fragments) {
    Frame frame;
    frame.dst = pending.dst;
    frame.payload = payload;
    station_->Send(std::move(frame));
    stats_.fragments_sent++;
    Bump(counters_.fragments_sent);
  }
}

void Transport::ArmRetransmit(uint64_t msg_id) {
  auto it = pending_.find(msg_id);
  if (it == pending_.end()) {
    return;
  }
  // Exponential backoff.
  SimDuration timeout = config_.retransmit_timeout << it->second.retransmits;
  it->second.timer = sim_.Schedule(timeout, [this, msg_id] {
    auto it = pending_.find(msg_id);
    if (it == pending_.end()) {
      return;
    }
    if (it->second.retransmits >= config_.max_retransmits) {
      EDEN_LOG(kDebug, "transport")
          << "station " << station_->id() << " gave up on message " << msg_id;
      stats_.send_failures++;
      Bump(counters_.send_failures);
      pending_.erase(it);
      return;
    }
    it->second.retransmits++;
    stats_.retransmits++;
    Bump(counters_.retransmits);
    TransmitFragments(it->second);
    ArmRetransmit(msg_id);
  });
}

void Transport::OnFrame(const Frame& frame) {
  BufferReader reader(frame.payload);
  auto kind = reader.ReadU8();
  if (!kind.ok()) {
    return;
  }
  switch (*kind) {
    case kData:
      HandleData(frame, reader);
      break;
    case kAck:
      HandleAck(frame.src, reader);
      break;
    default:
      EDEN_LOG(kWarning, "transport") << "unknown frame kind " << int{*kind};
  }
}

void Transport::HandleAck(StationId src, BufferReader& reader) {
  auto msg_id = reader.ReadU64();
  if (!msg_id.ok()) {
    return;
  }
  auto it = pending_.find(*msg_id);
  if (it != pending_.end()) {
    sim_.Cancel(it->second.timer);
    pending_.erase(it);
  }
}

void Transport::HandleData(const Frame& frame, BufferReader& reader) {
  auto msg_id = reader.ReadU64();
  auto reliable = msg_id.ok() ? reader.ReadBool() : StatusOr<bool>(msg_id.status());
  auto index = reliable.ok() ? reader.ReadVarint() : StatusOr<uint64_t>(reliable.status());
  auto count = index.ok() ? reader.ReadVarint() : index;
  auto len = count.ok() ? reader.ReadVarint() : count;
  if (!len.ok() || *count == 0 || *index >= *count || reader.remaining() < *len) {
    EDEN_LOG(kWarning, "transport") << "malformed data frame dropped";
    return;
  }

  auto send_ack = [this, &frame, &msg_id] {
    BufferWriter writer;
    writer.WriteU8(kAck);
    writer.WriteU64(*msg_id);
    Frame ack;
    ack.dst = frame.src;
    ack.payload = writer.Take();
    station_->Send(std::move(ack));
    stats_.acks_sent++;
    Bump(counters_.acks_sent);
  };

  if (AlreadyDelivered(frame.src, *msg_id)) {
    stats_.duplicates_suppressed++;
    Bump(counters_.duplicates_suppressed);
    if (*reliable) {
      // The sender missed our ack; repeat it.
      send_ack();
    }
    return;
  }

  // Garbage-collect abandoned reassembly buffers (e.g. best-effort broadcasts
  // that lost a fragment and will never complete).
  for (auto stale = reassembly_.begin(); stale != reassembly_.end();) {
    if (sim_.now() - stale->second.last_progress > config_.reassembly_timeout) {
      stale = reassembly_.erase(stale);
    } else {
      ++stale;
    }
  }

  auto key = std::make_pair(frame.src, *msg_id);
  auto [it, inserted] = reassembly_.try_emplace(key);
  Reassembly& assembly = it->second;
  if (inserted) {
    assembly.fragments.resize(*count);
    assembly.present.resize(*count, false);
  }
  if (assembly.fragments.size() != *count) {
    EDEN_LOG(kWarning, "transport") << "inconsistent fragment count; dropped";
    return;
  }
  if (!assembly.present[*index]) {
    assembly.present[*index] = true;
    assembly.received++;
    const uint8_t* base =
        frame.payload.data() + frame.payload.size() - reader.remaining();
    assembly.fragments[*index] = Bytes(base, base + *len);
  }
  assembly.last_progress = sim_.now();

  if (assembly.received < *count) {
    return;
  }

  Bytes message;
  for (const Bytes& fragment : assembly.fragments) {
    message.insert(message.end(), fragment.begin(), fragment.end());
  }
  reassembly_.erase(it);
  RecordDelivered(frame.src, *msg_id);
  if (*reliable) {
    send_ack();
  }
  stats_.messages_delivered++;
  Bump(counters_.messages_delivered);
  if (handler_) {
    handler_(frame.src, message);
  }
}

bool Transport::AlreadyDelivered(StationId src, uint64_t msg_id) const {
  auto it = history_.find(src);
  if (it == history_.end()) {
    return false;
  }
  return it->second.delivered.count(msg_id) > 0;
}

void Transport::RecordDelivered(StationId src, uint64_t msg_id) {
  PeerHistory& peer = history_[src];
  peer.delivered.insert(msg_id);
  peer.order.push_back(msg_id);
  while (peer.order.size() > config_.dedup_window) {
    peer.delivered.erase(peer.order.front());
    peer.order.pop_front();
  }
}

void Transport::Reset() {
  for (auto& [msg_id, pending] : pending_) {
    sim_.Cancel(pending.timer);
  }
  pending_.clear();
  reassembly_.clear();
  history_.clear();
  next_msg_id_ = sim_.rng().NextU64() | 1;
}

}  // namespace eden
