// Reliable message transport over the simulated Ethernet.
//
// The Eden kernel exchanges messages (invocation requests/replies, checkpoint
// writes, object transfers) that routinely exceed one Ethernet frame, so the
// transport fragments messages into MTU-sized frames, reassembles them at the
// receiver, acknowledges complete messages, retransmits on timeout with
// exponential backoff, and suppresses duplicates. Broadcast messages (used by
// the kernel's location protocol) are best-effort: no acknowledgements.
//
// The transport gives *at-most-once delivery per message id*; end-to-end
// semantics (invocation timeouts, duplicate invocation suppression) are the
// kernel's job, exactly as the paper divides responsibilities in section 4.2.
#ifndef EDEN_SRC_NET_TRANSPORT_H_
#define EDEN_SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/metrics/metrics.h"
#include "src/net/lan.h"
#include "src/sim/simulation.h"

namespace eden {

struct TransportConfig {
  SimDuration retransmit_timeout = Milliseconds(20);
  int max_retransmits = 8;
  // Delivered message ids remembered per peer for duplicate suppression.
  size_t dedup_window = 1024;
  // Reassembly buffers are garbage-collected after this long without progress.
  SimDuration reassembly_timeout = Seconds(5);
};

struct TransportStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t duplicates_suppressed = 0;
  uint64_t retransmits = 0;
  uint64_t send_failures = 0;  // gave up after max_retransmits
  uint64_t acks_sent = 0;
  uint64_t fragments_sent = 0;
};

class Transport {
 public:
  using Handler = std::function<void(StationId src, const Bytes& message)>;

  // Attaches a fresh station to `lan`.
  Transport(Simulation& sim, Lan& lan, TransportConfig config = {});

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  StationId station_id() const { return station_->id(); }

  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  // Sends with retransmission until acknowledged (or max_retransmits).
  // Returns the message id (for tests/diagnostics).
  uint64_t SendReliable(StationId dst, Bytes message);

  // Fire-and-forget; `dst` may be kBroadcastStation.
  void SendBestEffort(StationId dst, Bytes message);

  // Simulates the volatile state loss of a node failure: pending
  // retransmissions and reassembly buffers are discarded. Dedup history is
  // also dropped (a restarted node has no memory).
  void Reset();

  const TransportStats& stats() const { return stats_; }

  // Mirrors the TransportStats counters into `registry` under transport.*
  // names. The registry must outlive this transport; nullptr detaches.
  void set_metrics(MetricsRegistry* registry);

 private:
  enum FrameKind : uint8_t { kData = 1, kAck = 2 };

  struct PendingSend {
    StationId dst;
    std::vector<Bytes> fragments;  // pre-encoded frame payloads
    int retransmits = 0;
    EventId timer = kInvalidEventId;
  };

  struct Reassembly {
    std::vector<Bytes> fragments;
    std::vector<bool> present;
    size_t received = 0;
    SimTime last_progress = 0;
  };

  struct PeerHistory {
    std::set<uint64_t> delivered;
    std::deque<uint64_t> order;
  };

  struct TransportCounters {
    Counter* messages_sent = nullptr;
    Counter* messages_delivered = nullptr;
    Counter* duplicates_suppressed = nullptr;
    Counter* retransmits = nullptr;
    Counter* send_failures = nullptr;
    Counter* acks_sent = nullptr;
    Counter* fragments_sent = nullptr;
  };

  static void Bump(Counter* counter) {
    if (counter != nullptr) {
      counter->Increment();
    }
  }

  void OnFrame(const Frame& frame);
  void HandleData(const Frame& frame, BufferReader& reader);
  void HandleAck(StationId src, BufferReader& reader);
  void TransmitFragments(const PendingSend& pending);
  void ArmRetransmit(uint64_t msg_id);
  void RecordDelivered(StationId src, uint64_t msg_id);
  bool AlreadyDelivered(StationId src, uint64_t msg_id) const;
  std::vector<Bytes> Fragment(uint64_t msg_id, bool reliable, const Bytes& message);

  Simulation& sim_;
  Lan& lan_;
  Station* station_;
  TransportConfig config_;
  TransportStats stats_;
  TransportCounters counters_;
  Handler handler_;
  uint64_t next_msg_id_ = 1;
  std::map<uint64_t, PendingSend> pending_;
  std::map<std::pair<StationId, uint64_t>, Reassembly> reassembly_;
  std::map<StationId, PeerHistory> history_;
};

}  // namespace eden

#endif  // EDEN_SRC_NET_TRANSPORT_H_
