// Reliable message transport over the simulated Ethernet.
//
// The Eden kernel exchanges messages (invocation requests/replies, checkpoint
// writes, object transfers) that routinely exceed one Ethernet frame, so the
// transport fragments messages into MTU-sized frames, reassembles them at the
// receiver, acknowledges complete messages, retransmits on timeout with
// exponential backoff, and suppresses duplicates. Broadcast messages (used by
// the kernel's location protocol) are best-effort: no acknowledgements.
//
// The transport gives *at-most-once delivery per message id*; end-to-end
// semantics (invocation timeouts, duplicate invocation suppression) are the
// kernel's job, exactly as the paper divides responsibilities in section 4.2.
//
// Fast-path engineering (DESIGN.md "Performance"):
//   * Zero-copy payloads: an outgoing message is moved into a refcounted
//     SharedBytes; fragments are slices of it riding Frame::body, and the
//     receiver reassembles by re-slicing. A single-fragment message — the
//     common case — reaches the handler without a single payload copy and
//     without touching the reassembly table.
//   * Coalesced ACKs: completed message ids are piggybacked on the next data
//     frame to that peer, or batched into one ACK frame after ack_delay.
//   * One retransmit timer per transport (a deadline min-heap), not one
//     simulation event per in-flight message.
#ifndef EDEN_SRC_NET_TRANSPORT_H_
#define EDEN_SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/metrics/metrics.h"
#include "src/net/lan.h"
#include "src/sim/simulation.h"
#include "src/trace/span.h"

namespace eden {

struct TransportConfig {
  SimDuration retransmit_timeout = Milliseconds(20);
  int max_retransmits = 8;
  // Delivered message ids remembered per peer for duplicate suppression.
  size_t dedup_window = 1024;
  // Reassembly buffers are garbage-collected after this long without
  // progress, by a periodic sweep that runs every reassembly_timeout while
  // any buffer is outstanding (never on the per-frame path).
  SimDuration reassembly_timeout = Seconds(5);
  // How long a completed message's ACK may wait for a data frame to ride on
  // (or for more ACKs to batch with) before a dedicated ACK frame is sent.
  // 0 disables coalescing: every reliable message is ACKed immediately.
  SimDuration ack_delay = Microseconds(500);
  // ACK ids per frame — both the standalone-frame batch size and the flush
  // threshold for a peer's pending-ACK queue.
  size_t max_acks_per_frame = 32;
};

struct TransportStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t duplicates_suppressed = 0;
  uint64_t retransmits = 0;
  uint64_t send_failures = 0;  // gave up after max_retransmits
  uint64_t acks_sent = 0;      // standalone ACK frames
  uint64_t ack_ids_sent = 0;   // message ids carried in standalone ACK frames
  uint64_t acks_piggybacked = 0;  // message ids carried on data frames
  uint64_t fragments_sent = 0;
  // Frames whose CRC32 failed verification: treated exactly like lost frames
  // (the sender's retransmission recovers the message).
  uint64_t frames_corrupt_dropped = 0;
};

class Transport {
 public:
  // The payload view is only valid for the duration of the call; handlers
  // that keep the bytes must copy them (BytesView::ToBytes).
  using Handler = std::function<void(StationId src, BytesView message)>;

  // Attaches a fresh station to `lan`, owned by `sim` (the shard clock that
  // drives this endpoint). `id_rng` is the stream message ids are drawn
  // from; nullptr means `sim`'s rng. Sharded systems pass the primary
  // shard's rng so id draws happen in node-creation order, independent of
  // which shard each node landed on.
  Transport(Simulation& sim, Lan& lan, TransportConfig config = {},
            Rng* id_rng = nullptr);

  // Observes the fate of every *reliable* send: `delivered` is true when the
  // peer's ACK arrives, false when the transport gives up after
  // max_retransmits. The kernel's peer-health tracker feeds on this. The
  // handler may issue new sends. Invoked after the pending entry is retired,
  // never for Reset()-discarded messages.
  using SendOutcomeHandler = std::function<void(StationId dst, bool delivered)>;
  void SetSendOutcomeHandler(SendOutcomeHandler handler) {
    on_send_outcome_ = std::move(handler);
  }

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  StationId station_id() const { return station_->id(); }

  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  // Sends with retransmission until acknowledged (or max_retransmits).
  // Returns the message id (for tests/diagnostics). Pass the payload with
  // std::move — it is shared with the wire, never copied.
  uint64_t SendReliable(StationId dst, Bytes message) {
    return SendReliable(dst, std::move(message), SpanContext{});
  }

  // As above, but opens a kWire span (child of `parent`) covering first
  // transmit -> ACK. Retransmits annotate the span; give-up and Reset close
  // it with an error status. No-op when no collector is attached.
  uint64_t SendReliable(StationId dst, Bytes message,
                        const SpanContext& parent);

  // Fire-and-forget; `dst` may be kBroadcastStation.
  void SendBestEffort(StationId dst, Bytes message);

  // Simulates the volatile state loss of a node failure: pending
  // retransmissions, delayed ACKs and reassembly buffers are discarded.
  // Dedup history is also dropped (a restarted node has no memory).
  void Reset();

  // Reliable sends still awaiting acknowledgement. Only SendReliable enters
  // the pending table (best-effort frames are fire-and-forget), so this is
  // exactly the state a node failure would silently discard — drain logic
  // waits for it to reach zero before departing a node.
  size_t pending_reliable_sends() const { return pending_.size(); }

  const TransportStats& stats() const { return stats_; }

  // Mirrors the TransportStats counters into `registry` under transport.*
  // names. The registry must outlive this transport; nullptr detaches.
  void set_metrics(MetricsRegistry* registry);

  // Attaches the shared span collector for kWire spans (DESIGN.md §12). The
  // collector must outlive this transport; nullptr detaches.
  void set_spans(SpanCollector* spans) { spans_ = spans; }

 private:
  enum FrameKind : uint8_t { kData = 1, kAck = 2 };

  struct PendingSend {
    StationId dst = 0;
    uint64_t msg_id = 0;
    SharedBytes message;
    bool reliable = false;
    int retransmits = 0;
    // Authoritative next deadline; stale retry-heap entries disagree and are
    // skipped when popped.
    SimTime next_retry = 0;
    // The kWire span riding this message (invalid when tracing is off).
    SpanContext span;
  };

  struct Reassembly {
    std::vector<SharedBytes> fragments;  // zero-copy slices of sender buffers
    size_t received = 0;
    SimTime last_progress = 0;
  };

  struct PeerHistory {
    std::unordered_set<uint64_t> delivered;
    std::deque<uint64_t> order;
  };

  struct TransportCounters {
    Counter* messages_sent = nullptr;
    Counter* messages_delivered = nullptr;
    Counter* duplicates_suppressed = nullptr;
    Counter* retransmits = nullptr;
    Counter* send_failures = nullptr;
    Counter* acks_sent = nullptr;
    Counter* acks_piggybacked = nullptr;
    Counter* fragments_sent = nullptr;
    Counter* frames_corrupt_dropped = nullptr;
  };

  static void Bump(Counter* counter, uint64_t n = 1) {
    if (counter != nullptr) {
      counter->Increment(n);
    }
  }

  void OnFrame(const Frame& frame);
  void HandleData(const Frame& frame, BufferReader& reader);
  void HandleAck(BufferReader& reader);
  void AckMsgId(uint64_t msg_id);
  void TransmitFragments(PendingSend& pending);
  // Writes the piggybacked-ACK block into a data frame header, consuming as
  // many of `dst`'s pending ACK ids as fit beside `body_bytes` of payload.
  void AppendPiggybackAcks(BufferWriter& writer, StationId dst,
                           size_t body_bytes);
  void QueueAck(StationId peer, uint64_t msg_id);
  void FlushPeerAcks(StationId peer, std::vector<uint64_t>& ids);
  void FlushAllAcks();
  void MaybeCancelAckTimer();
  void ScheduleRetry(PendingSend& pending, SimTime at);
  void ArmRetryTimer();
  void OnRetryTimer();
  void ArmReassemblySweep();
  void RecordDelivered(StationId src, uint64_t msg_id);
  bool AlreadyDelivered(StationId src, uint64_t msg_id) const;
  void DeliverFastPath(const Frame& frame, uint64_t msg_id, bool reliable);

  Simulation& sim_;
  Lan& lan_;
  Station* station_;
  TransportConfig config_;
  TransportStats stats_;
  TransportCounters counters_;
  SpanCollector* spans_ = nullptr;
  Handler handler_;
  SendOutcomeHandler on_send_outcome_;
  Rng* id_rng_;  // message-id stream (see the constructor comment)
  uint64_t next_msg_id_ = 1;

  std::unordered_map<uint64_t, PendingSend> pending_;
  // Retransmit deadlines, lazily invalidated: one simulation timer serves
  // every in-flight message.
  std::priority_queue<std::pair<SimTime, uint64_t>,
                      std::vector<std::pair<SimTime, uint64_t>>,
                      std::greater<std::pair<SimTime, uint64_t>>>
      retry_queue_;
  EventId retry_timer_ = kInvalidEventId;
  SimTime retry_timer_at_ = 0;

  // std::map: ACK flush order must be deterministic across runs.
  std::map<StationId, std::vector<uint64_t>> pending_acks_;
  size_t pending_ack_total_ = 0;
  EventId ack_timer_ = kInvalidEventId;

  std::map<std::pair<StationId, uint64_t>, Reassembly> reassembly_;
  EventId sweep_timer_ = kInvalidEventId;

  std::unordered_map<StationId, PeerHistory> history_;
};

}  // namespace eden

#endif  // EDEN_SRC_NET_TRANSPORT_H_
