// Telemetry time series (DESIGN.md §17): fixed-size ring buffers of sampled
// metric values, filled by a deterministic sim-timer scrape.
//
// A SeriesBuffer is the storage primitive — a ring of doubles with a bounded
// capacity, so an always-on pipeline holds a sliding window of history in
// constant memory no matter how long the run gets. A RegistrySampler walks
// one MetricsRegistry per scrape tick and maintains one series per
// instrument:
//
//   counter   <name>.delta   — events since the previous tick (windowed rate)
//   gauge     <name>         — the level at the tick
//   histogram <name>.count   — samples recorded inside the tick
//             <name>.p50_us  — p50 of just those samples (DeltaSince window)
//             <name>.p99_us  — p99 of the window
//             <name>.max_us  — bucket-granular max of the window
//
// Registries are std::map-ordered, so the series set and the sample order
// are pure functions of the execution — scrapes are bit-identical per seed
// and across shard layouts (telemetry_test pins this).
#ifndef EDEN_SRC_TELEMETRY_TIMESERIES_H_
#define EDEN_SRC_TELEMETRY_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/metrics/json_writer.h"
#include "src/metrics/metrics.h"

namespace eden {

// Fixed-capacity ring of samples. Push is O(1); the window keeps the most
// recent `capacity` points.
class SeriesBuffer {
 public:
  explicit SeriesBuffer(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  void Push(double value) {
    if (ring_.size() < capacity_) {
      ring_.push_back(value);
    } else {
      ring_[head_] = value;
      // Compare-and-wrap, not %: a scrape tick pushes to every series, and
      // a runtime-capacity modulo is an integer divide on that hot path.
      head_++;
      if (head_ == capacity_) {
        head_ = 0;
      }
    }
    total_++;
  }

  size_t capacity() const { return capacity_; }
  // Points currently retained (<= capacity).
  size_t size() const { return ring_.size(); }
  // Points pushed over the series' lifetime.
  uint64_t total() const { return total_; }

  // i = 0 is the oldest retained point, i = size()-1 the newest.
  double at(size_t i) const {
    size_t idx = head_ + i;  // head_ < size() and i < size(), so one wrap
    if (idx >= ring_.size()) {
      idx -= ring_.size();
    }
    return ring_[idx];
  }
  double back() const { return at(ring_.size() - 1); }

  // Sum of the newest min(k, size()) points — the sliding-window aggregate
  // the SLO engine and the load-aware rebalancer consume.
  double SumLast(size_t k) const {
    size_t n = k < ring_.size() ? k : ring_.size();
    double sum = 0;
    for (size_t i = 0; i < n; i++) {
      sum += at(ring_.size() - 1 - i);
    }
    return sum;
  }

 private:
  size_t capacity_;
  size_t head_ = 0;  // index of the oldest element once the ring is full
  uint64_t total_ = 0;
  std::vector<double> ring_;
};

// Scrapes one MetricsRegistry into named series (see the header comment for
// the per-instrument naming scheme). The sampler never mutates the registry;
// it keeps previous counter values and full histogram snapshots so each tick
// records window deltas, not cumulative totals.
//
// The per-tick walk is slot-cached: instruments resolve to direct pointers
// (instrument, previous state, series ring) once, and the name-keyed maps are
// only consulted again when the registry has grown. Registries only ever add
// instruments and both std::map and the instruments themselves are
// pointer-stable, so a steady-state scrape is a flat array walk with no
// string allocation — what makes a 1 ms cadence affordable.
class RegistrySampler {
 public:
  RegistrySampler(const MetricsRegistry* registry, size_t ring_capacity)
      : registry_(registry), ring_capacity_(ring_capacity) {}

  // One scrape. Instruments created since the last tick get their series
  // started here (their first counter delta is the full cumulative value).
  void Sample();

  // Pre-registers series and slots for every instrument that exists now,
  // without recording a tick. Optional: a warm system can prime after its
  // instruments are created so the first scrape is a plain sample, not a
  // burst of series allocations. Idempotent; later instruments still
  // resolve on their first tick.
  void Prime() { ResolveNewInstruments(); }

  uint64_t ticks() const { return ticks_; }
  const std::map<std::string, SeriesBuffer>& series() const { return series_; }
  const SeriesBuffer* Find(const std::string& name) const {
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
  }
  // Sum of the newest `last_ticks` points of `name` (0 when absent).
  double WindowSum(const std::string& name, size_t last_ticks) const {
    const SeriesBuffer* s = Find(name);
    return s == nullptr ? 0.0 : s->SumLast(last_ticks);
  }

  // {"<series>":[...], ...} — the newest min(last_ticks, size) points each.
  void WriteJson(JsonWriter& json, size_t last_ticks) const;

 private:
  struct CounterSlot {
    const Counter* counter;
    uint64_t prev = 0;
    SeriesBuffer* series;
  };
  struct GaugeSlot {
    const Gauge* gauge;
    SeriesBuffer* series;
  };
  struct HistogramSlot {
    const Histogram* hist;
    // Full bucket snapshot: DeltaSince needs the whole previous state to
    // produce window quantiles.
    Histogram prev;
    SeriesBuffer* count;
    SeriesBuffer* p50;
    SeriesBuffer* p99;
    SeriesBuffer* max;
  };

  // Appends slots for instruments the registry added since the last resolve.
  void ResolveNewInstruments();
  SeriesBuffer* SeriesFor(const std::string& name) {
    return &series_.try_emplace(name, SeriesBuffer(ring_capacity_))
                .first->second;
  }

  const MetricsRegistry* registry_;
  size_t ring_capacity_;
  uint64_t ticks_ = 0;
  std::map<std::string, SeriesBuffer> series_;
  std::vector<CounterSlot> counter_slots_;
  std::vector<GaugeSlot> gauge_slots_;
  std::vector<HistogramSlot> histogram_slots_;
};

}  // namespace eden

#endif  // EDEN_SRC_TELEMETRY_TIMESERIES_H_
