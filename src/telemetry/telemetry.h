// Always-on telemetry (DESIGN.md §17): the live pipeline over the passive
// metrics registries and the span collector.
//
// Three cooperating pieces:
//
//   1. Scrape — a deterministic sim-timer chain per shard samples every
//      node's MetricsRegistry (and the system registry when unsharded) into
//      bounded SeriesBuffer rings each scrape_interval. Ticks are scheduled
//      with ScheduleAtKeyed under a reserved domain that orders *after*
//      every other event at the same instant, so a sample always observes
//      the end-of-instant state regardless of the shard layout — the same
//      virtual second produces the same series on 1, 2 or 4 shards.
//
//   2. SLO engine — per-invocation-class objectives (latency target + goal
//      fraction, max error rate) evaluated as sliding-window burn rates over
//      the last window_ticks scrapes. A burn of 1.0 means "consuming error
//      budget exactly at the objective rate"; crossing burn_threshold emits
//      a structured SloViolation (rising-edge latched, so a sustained burn
//      yields one violation, not one per tick). Unsharded systems only —
//      the same worlds where faults and membership churn can run.
//
//   3. Flight recorder — on an SLO violation or an injected fault, dumps a
//      DiagnosticBundle: the violation, the last bundle_series_ticks of
//      every time series, summaries of the tail-retained traces (span.h's
//      tail policy keeps the slow/annotated/sampled ones), the K worst
//      exemplars, and a Chrome-trace slice. Bundles are capped in count and
//      spacing, so a fault storm cannot turn the recorder into the outage.
//
// Determinism: scrapes read state that is itself deterministic, push into
// std::map-ordered series, and consume no simulation randomness. The tick
// events do occupy (domain, stream, seq) slots, so sim.trace() digests shift
// when telemetry is on — but node digests and wire traffic are untouched
// (telemetry_test pins this).
#ifndef EDEN_SRC_TELEMETRY_TELEMETRY_H_
#define EDEN_SRC_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/sim/time.h"
#include "src/telemetry/timeseries.h"

namespace eden {

class EdenSystem;

// One latency/error objective for an invocation class (InvokeOptions::
// metrics_class). Example: class "user", 99% of invocations under 5ms,
// at most 1% errors.
struct SloObjective {
  std::string metrics_class;
  SimDuration latency_target = Milliseconds(5);
  double latency_goal = 0.99;   // fraction that must land under the target
  double max_error_rate = 0.01;
  // Violation fires when a window burn rate reaches this multiple of the
  // objective's budget. 1.0 = exactly at budget; SRE practice pages at >1.
  double burn_threshold = 1.0;
  // Windows with fewer requests than this are not evaluated (a single slow
  // call in an idle window is not an outage).
  uint64_t min_requests = 32;
};

struct SloViolation {
  SimTime when = 0;
  std::string metrics_class;
  std::string kind;  // "latency" or "error"
  double burn = 0;
  uint64_t window_requests = 0;
  uint64_t window_bad = 0;
  // Critical-path phase dominating the recently retained traces ("wire",
  // "store.read", ...) — the recorder's first-guess root cause. "invoke"
  // when no traced evidence is available.
  std::string dominant_phase;
};

struct DiagnosticBundle {
  SimTime when = 0;
  std::string trigger;  // "slo:<class>:<kind>" or "fault:<kind>"
  std::string json;     // the full bundle document
};

struct TelemetryConfig {
  bool enabled = false;
  SimDuration scrape_interval = Milliseconds(10);
  // Points retained per series (ring capacity): bounded memory no matter how
  // long the run is.
  size_t ring_capacity = 256;
  // SLO burn-rate window, in scrape ticks.
  size_t window_ticks = 8;
  std::vector<SloObjective> objectives;
  // Flight-recorder caps: at most max_bundles dumps per run, at least
  // min_bundle_spacing of virtual time apart.
  size_t max_bundles = 4;
  SimDuration min_bundle_spacing = Milliseconds(100);
  // How much series history a bundle embeds.
  size_t bundle_series_ticks = 32;
};

class Telemetry {
 public:
  Telemetry(EdenSystem* system, TelemetryConfig config);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Starts the scrape chain on every shard that does not have one yet.
  // Idempotent; EdenSystem calls it again after WithShards so late-created
  // shards get their chains.
  void Start();

  // Eager sampler creation, called by EdenSystem::AddNodeWithConfig from the
  // main thread. Ticks running on shard threads only *read* the vector, so
  // growth must never happen there.
  void OnNodeAdded(size_t index);

  // Pre-registers series for every instrument that exists right now, so a
  // warm system's first scrape samples instead of allocating ~100 series
  // per node in one burst. Optional and idempotent; call from the main
  // thread after warmup traffic, before the measured window. Instruments
  // created later still get their series on their first scrape.
  void Prime();

  // Fault-injector sink hook: every injected fault can open a bundle
  // (subject to the caps). `kind` is the injector's fault name.
  void OnFault(const char* kind, uint32_t site);

  const TelemetryConfig& config() const { return config_; }
  // Scrape ticks completed on shard 0.
  uint64_t ticks() const { return ticks_; }

  // Sliding-window sum of one node series (e.g. "kernel.dispatches.delta"
  // over the rebalancer's rate window). 0 when the node or series is unknown.
  double WindowSum(size_t node, const std::string& series,
                   size_t last_ticks) const;
  const RegistrySampler* NodeSampler(size_t index) const {
    return index < node_samplers_.size() ? node_samplers_[index].get()
                                         : nullptr;
  }

  // The windowed export: per-node series, the system registry's series
  // (unsharded runs), and a cross-node rollup where counter deltas /counts
  // sum element-wise and quantile series take the element-wise max.
  std::string WindowJson(size_t last_ticks) const;

  const std::vector<SloViolation>& violations() const { return violations_; }
  const std::vector<DiagnosticBundle>& bundles() const { return bundles_; }

  // Folds telemetry's own health counters (telemetry.scrapes, the violation
  // and bundle counts) into a Rollup() snapshot.
  void ContributeTo(MetricsRegistry& rollup) const;

 private:
  // Sliding-window SLO inputs for one objective: previous cumulative values
  // per node (so each tick yields a delta) and rings of per-tick cluster-wide
  // deltas, window_ticks deep.
  struct SloState {
    explicit SloState(size_t window_ticks)
        : bad(window_ticks),
          requests(window_ticks),
          completed(window_ticks),
          errors(window_ticks) {}
    std::vector<uint64_t> prev_bad;        // by node index
    std::vector<uint64_t> prev_requests;   // by node index
    std::vector<uint64_t> prev_completed;  // by node index
    std::vector<uint64_t> prev_errors;     // by node index
    // The class's instrument names, built once; per-node instrument pointers
    // resolve lazily (null until the class's first invocation on that node
    // creates them) and stay valid — registries only ever add instruments.
    std::string hist_name;
    std::string completed_name;
    std::string errors_name;
    std::vector<const Histogram*> hist;        // by node index
    std::vector<const Counter*> completed_ctr;  // by node index
    std::vector<const Counter*> errors_ctr;     // by node index
    SeriesBuffer bad;
    SeriesBuffer requests;
    SeriesBuffer completed;
    SeriesBuffer errors;
    // Rising-edge latches: a sustained burn emits one violation.
    bool latency_latched = false;
    bool error_latched = false;
  };

  void ScheduleTick(size_t shard, uint64_t k);
  void Tick(size_t shard, uint64_t k);
  void EvaluateSlos(SimTime now);
  std::string DominantPhase() const;
  void MaybeBundle(SimTime now, const std::string& trigger,
                   const SloViolation* violation);
  std::string BuildBundleJson(SimTime now, const std::string& trigger,
                              const SloViolation* violation) const;

  EdenSystem* system_;
  TelemetryConfig config_;

  std::vector<std::unique_ptr<RegistrySampler>> node_samplers_;  // by index
  std::unique_ptr<RegistrySampler> system_sampler_;
  std::vector<bool> chain_started_;      // by shard
  std::vector<SimTime> chain_origin_;    // by shard: now() when started
  std::vector<uint64_t> shard_scrapes_;  // each written only by its shard
  uint64_t ticks_ = 0;                   // shard 0 only

  std::vector<SloState> slo_;  // parallel to config_.objectives
  std::vector<SloViolation> violations_;
  std::vector<DiagnosticBundle> bundles_;
};

}  // namespace eden

#endif  // EDEN_SRC_TELEMETRY_TELEMETRY_H_
