#include "src/telemetry/timeseries.h"

#include <unordered_map>

namespace eden {

namespace {
constexpr double kNsPerUs = 1000.0;
}  // namespace

void RegistrySampler::ResolveNewInstruments() {
  // Registries only add instruments; a new name can sort anywhere, so on
  // growth the slot list is rebuilt in the registry's (name-sorted) order,
  // carrying each known instrument's previous state across by pointer
  // identity. Instruments trickle in as code paths warm, so rebuilds recur
  // through a run — each is O(n), and the steady state stays a flat
  // slot-array walk behind three size checks.
  if (counter_slots_.size() != registry_->counters().size()) {
    std::unordered_map<const Counter*, size_t> old;
    old.reserve(counter_slots_.size());
    for (size_t i = 0; i < counter_slots_.size(); i++) {
      old.emplace(counter_slots_[i].counter, i);
    }
    std::vector<CounterSlot> fresh;
    fresh.reserve(registry_->counters().size());
    for (const auto& [name, counter] : registry_->counters()) {
      auto it = old.find(counter.get());
      if (it != old.end()) {
        fresh.push_back(counter_slots_[it->second]);
      } else {
        fresh.push_back(CounterSlot{counter.get(), 0,
                                    SeriesFor(name + ".delta")});
      }
    }
    counter_slots_ = std::move(fresh);
  }
  if (gauge_slots_.size() != registry_->gauges().size()) {
    std::unordered_map<const Gauge*, size_t> old;
    old.reserve(gauge_slots_.size());
    for (size_t i = 0; i < gauge_slots_.size(); i++) {
      old.emplace(gauge_slots_[i].gauge, i);
    }
    std::vector<GaugeSlot> fresh;
    fresh.reserve(registry_->gauges().size());
    for (const auto& [name, gauge] : registry_->gauges()) {
      auto it = old.find(gauge.get());
      if (it != old.end()) {
        fresh.push_back(gauge_slots_[it->second]);
      } else {
        fresh.push_back(GaugeSlot{gauge.get(), SeriesFor(name)});
      }
    }
    gauge_slots_ = std::move(fresh);
  }
  if (histogram_slots_.size() != registry_->histograms().size()) {
    std::unordered_map<const Histogram*, size_t> old;
    old.reserve(histogram_slots_.size());
    for (size_t i = 0; i < histogram_slots_.size(); i++) {
      old.emplace(histogram_slots_[i].hist, i);
    }
    std::vector<HistogramSlot> fresh;
    fresh.reserve(registry_->histograms().size());
    for (const auto& [name, hist] : registry_->histograms()) {
      auto it = old.find(hist.get());
      if (it != old.end()) {
        fresh.push_back(std::move(histogram_slots_[it->second]));
      } else {
        fresh.push_back(HistogramSlot{hist.get(), Histogram{},
                                      SeriesFor(name + ".count"),
                                      SeriesFor(name + ".p50_us"),
                                      SeriesFor(name + ".p99_us"),
                                      SeriesFor(name + ".max_us")});
      }
    }
    histogram_slots_ = std::move(fresh);
  }
}

void RegistrySampler::Sample() {
  ticks_++;
  ResolveNewInstruments();
  for (CounterSlot& slot : counter_slots_) {
    uint64_t now = slot.counter->value();
    slot.series->Push(static_cast<double>(now - slot.prev));
    slot.prev = now;
  }
  for (GaugeSlot& slot : gauge_slots_) {
    slot.series->Push(static_cast<double>(slot.gauge->value()));
  }
  for (HistogramSlot& slot : histogram_slots_) {
    // Idle histograms (no new samples since the last tick) skip the snapshot
    // copy and both bucket walks — the common case for most instruments on
    // most ticks, and exactly what the full DeltaSince path would produce.
    if (slot.hist->count() == slot.prev.count()) {
      slot.count->Push(0.0);
      slot.p50->Push(0.0);
      slot.p99->Push(0.0);
      slot.max->Push(0.0);
      continue;
    }
    Histogram::WindowStats window = slot.hist->StatsSince(slot.prev);
    slot.prev = *slot.hist;
    slot.count->Push(static_cast<double>(window.count));
    slot.p50->Push(static_cast<double>(window.p50) / kNsPerUs);
    slot.p99->Push(static_cast<double>(window.p99) / kNsPerUs);
    slot.max->Push(static_cast<double>(window.max) / kNsPerUs);
  }
}

void RegistrySampler::WriteJson(JsonWriter& json, size_t last_ticks) const {
  json.BeginObject();
  for (const auto& [name, series] : series_) {
    json.Key(name).BeginArray();
    size_t n = last_ticks < series.size() ? last_ticks : series.size();
    for (size_t i = series.size() - n; i < series.size(); i++) {
      json.Double(series.at(i));
    }
    json.EndArray();
  }
  json.EndObject();
}

}  // namespace eden
