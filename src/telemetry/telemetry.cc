#include "src/telemetry/telemetry.h"

#include <algorithm>
#include <map>

#include "src/kernel/eden_system.h"
#include "src/metrics/json_writer.h"
#include "src/trace/span.h"

namespace eden {

namespace {

// Scrape ticks are keyed into a reserved domain above every station id and
// above domain 0, so at any shared timestamp the sampler runs after all the
// work of that instant — an end-of-instant snapshot, identically placed on
// every shard layout.
constexpr uint32_t kTelemetryDomain = 0xffffffffu;

// How many recently retained traces feed dominant-phase attribution and the
// bundle's trace summaries.
constexpr size_t kBundleTraceWindow = 16;

bool IsQuantileSeries(const std::string& name) {
  auto ends_with = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           std::string_view(name).substr(name.size() - suffix.size()) ==
               suffix;
  };
  return ends_with(".p50_us") || ends_with(".p99_us") || ends_with(".max_us");
}

}  // namespace

Telemetry::Telemetry(EdenSystem* system, TelemetryConfig config)
    : system_(system), config_(config) {
  if (config_.scrape_interval <= 0) {
    config_.scrape_interval = Milliseconds(10);
  }
  if (config_.window_ticks == 0) {
    config_.window_ticks = 1;
  }
  slo_.reserve(config_.objectives.size());
  for (size_t i = 0; i < config_.objectives.size(); i++) {
    slo_.emplace_back(config_.window_ticks);
    const std::string& cls = config_.objectives[i].metrics_class;
    slo_.back().hist_name = "kernel.invoke.latency.class." + cls;
    slo_.back().completed_name = "kernel.invoke.class." + cls + ".completed";
    slo_.back().errors_name = "kernel.invoke.class." + cls + ".errors";
  }
  system_sampler_ =
      std::make_unique<RegistrySampler>(&system->metrics(), config_.ring_capacity);
  for (size_t i = 0; i < system->node_count(); i++) {
    OnNodeAdded(i);
  }
}

void Telemetry::Start() {
  size_t shards = system_->shard_count();
  if (chain_started_.size() < shards) {
    chain_started_.resize(shards, false);
    chain_origin_.resize(shards, 0);
    shard_scrapes_.resize(shards, 0);
  }
  for (size_t s = 0; s < shards; s++) {
    if (chain_started_[s]) {
      continue;
    }
    chain_started_[s] = true;
    chain_origin_[s] = system_->shard_sim(s).now();
    ScheduleTick(s, 0);
  }
}

void Telemetry::OnNodeAdded(size_t index) {
  while (node_samplers_.size() <= index) {
    size_t i = node_samplers_.size();
    node_samplers_.push_back(std::make_unique<RegistrySampler>(
        &system_->node(i).metrics(), config_.ring_capacity));
  }
  for (SloState& state : slo_) {
    state.prev_bad.resize(node_samplers_.size(), 0);
    state.prev_requests.resize(node_samplers_.size(), 0);
    state.prev_completed.resize(node_samplers_.size(), 0);
    state.prev_errors.resize(node_samplers_.size(), 0);
    state.hist.resize(node_samplers_.size(), nullptr);
    state.completed_ctr.resize(node_samplers_.size(), nullptr);
    state.errors_ctr.resize(node_samplers_.size(), nullptr);
  }
}

void Telemetry::Prime() {
  for (auto& sampler : node_samplers_) {
    sampler->Prime();
  }
  if (!system_->sharded()) {
    // Mirrors Tick(): the system registry is only scraped in the
    // single-threaded world, so only that world pre-registers its series.
    system_sampler_->Prime();
  }
}

void Telemetry::ScheduleTick(size_t shard, uint64_t k) {
  SimTime when = chain_origin_[shard] +
                 static_cast<SimTime>(k + 1) * config_.scrape_interval;
  system_->shard_sim(shard).ScheduleAtKeyed(
      when, kTelemetryDomain, /*stream=*/0, /*seq=*/k,
      [this, shard, k] { Tick(shard, k); });
}

void Telemetry::Tick(size_t shard, uint64_t k) {
  // Each shard samples only the registries its thread owns; node_samplers_
  // never grows during a run, so concurrent shard ticks read a stable vector.
  for (size_t i = 0; i < node_samplers_.size(); i++) {
    if (system_->node_shard(i) == shard) {
      node_samplers_[i]->Sample();
    }
  }
  shard_scrapes_[shard]++;
  if (shard == 0) {
    ticks_ = k + 1;
    if (!system_->sharded()) {
      // The system registry (lan.*, fault.*) is only live-written in the
      // single-threaded world; under the sharded engine its per-station
      // counters are deferred until Rollup, so sampling it mid-run would be
      // layout-dependent noise.
      system_sampler_->Sample();
      EvaluateSlos(system_->sim().now());
    }
  }
  ScheduleTick(shard, k + 1);
}

void Telemetry::EvaluateSlos(SimTime now) {
  for (size_t oi = 0; oi < config_.objectives.size(); oi++) {
    const SloObjective& obj = config_.objectives[oi];
    SloState& state = slo_[oi];
    uint64_t bad_tick = 0;
    uint64_t requests_tick = 0;
    uint64_t completed_tick = 0;
    uint64_t errors_tick = 0;
    for (size_t i = 0; i < node_samplers_.size(); i++) {
      const MetricsRegistry& reg = system_->node(i).metrics();
      // Lazily resolve instrument pointers: the name lookups only repeat
      // while the class has not yet touched this node; once created the
      // instruments are pointer-stable for the registry's lifetime, so the
      // steady-state tick does no string work and no map lookups.
      if (state.hist[i] == nullptr) {
        state.hist[i] = reg.FindHistogram(state.hist_name);
      }
      if (state.completed_ctr[i] == nullptr) {
        state.completed_ctr[i] = reg.FindCounter(state.completed_name);
      }
      if (state.errors_ctr[i] == nullptr) {
        state.errors_ctr[i] = reg.FindCounter(state.errors_name);
      }
      uint64_t bad = 0;
      uint64_t requests = 0;
      if (const Histogram* hist = state.hist[i]) {
        bad = hist->CountAbove(obj.latency_target);
        requests = hist->count();
      }
      uint64_t completed = 0;
      if (const Counter* c = state.completed_ctr[i]) {
        completed = c->value();
      }
      uint64_t errors = 0;
      if (const Counter* c = state.errors_ctr[i]) {
        errors = c->value();
      }
      bad_tick += bad - state.prev_bad[i];
      requests_tick += requests - state.prev_requests[i];
      completed_tick += completed - state.prev_completed[i];
      errors_tick += errors - state.prev_errors[i];
      state.prev_bad[i] = bad;
      state.prev_requests[i] = requests;
      state.prev_completed[i] = completed;
      state.prev_errors[i] = errors;
    }
    state.bad.Push(static_cast<double>(bad_tick));
    state.requests.Push(static_cast<double>(requests_tick));
    state.completed.Push(static_cast<double>(completed_tick));
    state.errors.Push(static_cast<double>(errors_tick));

    const size_t w = config_.window_ticks;
    double bad_w = state.bad.SumLast(w);
    double requests_w = state.requests.SumLast(w);
    double completed_w = state.completed.SumLast(w);
    double errors_w = state.errors.SumLast(w);

    // Latency burn: the fraction of budget (1 - goal) consumed by requests
    // over the target, per unit of budget.
    if (requests_w >= static_cast<double>(obj.min_requests)) {
      double budget = std::max(1.0 - obj.latency_goal, 1e-9);
      double burn = (bad_w / requests_w) / budget;
      if (burn >= obj.burn_threshold) {
        if (!state.latency_latched) {
          state.latency_latched = true;
          SloViolation v;
          v.when = now;
          v.metrics_class = obj.metrics_class;
          v.kind = "latency";
          v.burn = burn;
          v.window_requests = static_cast<uint64_t>(requests_w);
          v.window_bad = static_cast<uint64_t>(bad_w);
          v.dominant_phase = DominantPhase();
          violations_.push_back(v);
          MaybeBundle(now, "slo:" + obj.metrics_class + ":latency",
                      &violations_.back());
        }
      } else {
        state.latency_latched = false;
      }
    }

    // Error burn: observed error rate per unit of allowed error rate.
    if (completed_w >= static_cast<double>(obj.min_requests) &&
        obj.max_error_rate > 0) {
      double burn = (errors_w / completed_w) / obj.max_error_rate;
      if (burn >= obj.burn_threshold) {
        if (!state.error_latched) {
          state.error_latched = true;
          SloViolation v;
          v.when = now;
          v.metrics_class = obj.metrics_class;
          v.kind = "error";
          v.burn = burn;
          v.window_requests = static_cast<uint64_t>(completed_w);
          v.window_bad = static_cast<uint64_t>(errors_w);
          v.dominant_phase = DominantPhase();
          violations_.push_back(v);
          MaybeBundle(now, "slo:" + obj.metrics_class + ":error",
                      &violations_.back());
        }
      } else {
        state.error_latched = false;
      }
    }
  }
}

std::string Telemetry::DominantPhase() const {
  SpanCollector* collector = system_->span_collector();
  if (collector == nullptr) {
    return "invoke";
  }
  PhaseBreakdown agg;
  size_t counted = 0;
  const std::deque<TraceTree>& done = collector->completed();
  for (auto it = done.rbegin(); it != done.rend() && counted < kBundleTraceWindow;
       ++it) {
    // Rooted traces only: a fragment has no span 0 rooted here, and its
    // critical path would attribute a partial tree.
    if (it->spans.empty() || it->spans[0].parent_span_id != 0) {
      continue;
    }
    PhaseBreakdown one = SpanCollector::CriticalPath(*it);
    for (size_t k = 0; k < kSpanKindCount; k++) {
      agg.by_kind[k] += one.by_kind[k];
    }
    counted++;
  }
  // The invocation phase is the residue (client-side waiting) — attribute to
  // the dominant *cause* phase instead, unless nothing else registered.
  size_t best = static_cast<size_t>(SpanKind::kInvocation);
  SimDuration best_time = 0;
  for (size_t k = 0; k < kSpanKindCount; k++) {
    if (k == static_cast<size_t>(SpanKind::kInvocation)) {
      continue;
    }
    if (agg.by_kind[k] > best_time) {
      best_time = agg.by_kind[k];
      best = k;
    }
  }
  if (counted == 0 || best_time == 0) {
    return "invoke";
  }
  return std::string(SpanKindName(static_cast<SpanKind>(best)));
}

void Telemetry::OnFault(const char* kind, uint32_t site) {
  (void)site;
  MaybeBundle(system_->sim().now(), std::string("fault:") + kind, nullptr);
}

void Telemetry::MaybeBundle(SimTime now, const std::string& trigger,
                            const SloViolation* violation) {
  if (bundles_.size() >= config_.max_bundles) {
    return;
  }
  if (!bundles_.empty() &&
      now - bundles_.back().when < config_.min_bundle_spacing) {
    return;
  }
  DiagnosticBundle bundle;
  bundle.when = now;
  bundle.trigger = trigger;
  bundle.json = BuildBundleJson(now, trigger, violation);
  bundles_.push_back(std::move(bundle));
}

std::string Telemetry::BuildBundleJson(SimTime now, const std::string& trigger,
                                       const SloViolation* violation) const {
  JsonWriter json;
  json.BeginObject();
  json.Key("trigger").String(trigger);
  json.Key("when_ns").I64(now);
  if (violation != nullptr) {
    json.Key("violation").BeginObject();
    json.Key("class").String(violation->metrics_class);
    json.Key("kind").String(violation->kind);
    json.Key("burn").Double(violation->burn);
    json.Key("window_requests").U64(violation->window_requests);
    json.Key("window_bad").U64(violation->window_bad);
    json.Key("dominant_phase").String(violation->dominant_phase);
    json.EndObject();
  }
  json.Key("series").Raw(WindowJson(config_.bundle_series_ticks));
  SpanCollector* collector = system_->span_collector();
  if (collector != nullptr) {
    json.Key("retained_traces").BeginArray();
    const std::deque<TraceTree>& done = collector->completed();
    size_t first =
        done.size() > kBundleTraceWindow ? done.size() - kBundleTraceWindow : 0;
    for (size_t i = first; i < done.size(); i++) {
      const TraceTree& tree = done[i];
      if (tree.spans.empty()) {
        continue;
      }
      bool annotated = false;
      for (const Span& span : tree.spans) {
        if (!span.status.empty() || !span.notes.empty()) {
          annotated = true;
          break;
        }
      }
      json.BeginObject();
      json.Key("trace_id").U64(tree.trace_id);
      json.Key("label").String(tree.spans[0].label);
      json.Key("spans").U64(tree.spans.size());
      json.Key("duration_ns").I64(tree.spans[0].duration());
      json.Key("annotated").Bool(annotated);
      json.EndObject();
    }
    json.EndArray();
    json.Key("slow_exemplars").BeginArray();
    for (const TraceTree& tree : collector->slow_exemplars()) {
      if (tree.spans.empty()) {
        continue;
      }
      json.BeginObject();
      json.Key("trace_id").U64(tree.trace_id);
      json.Key("label").String(tree.spans[0].label);
      json.Key("duration_ns").I64(tree.spans[0].duration());
      json.EndObject();
    }
    json.EndArray();
    json.Key("chrome_trace").Raw(collector->ExportChromeTrace());
  }
  json.EndObject();
  return json.Take();
}

double Telemetry::WindowSum(size_t node, const std::string& series,
                            size_t last_ticks) const {
  const RegistrySampler* sampler = NodeSampler(node);
  return sampler == nullptr ? 0.0 : sampler->WindowSum(series, last_ticks);
}

std::string Telemetry::WindowJson(size_t last_ticks) const {
  JsonWriter json;
  json.BeginObject();
  json.Key("when_ns").I64(system_->sim().now());
  json.Key("interval_ns").I64(config_.scrape_interval);
  json.Key("ticks").U64(ticks_);
  json.Key("nodes").BeginObject();
  for (size_t i = 0; i < node_samplers_.size(); i++) {
    json.Key(std::to_string(i)).BeginObject();
    json.Key("name").String(system_->node(i).node_name());
    JsonWriter series;
    node_samplers_[i]->WriteJson(series, last_ticks);
    json.Key("series").Raw(series.str());
    json.EndObject();
  }
  json.EndObject();
  if (!system_->sharded()) {
    JsonWriter series;
    system_sampler_->WriteJson(series, last_ticks);
    json.Key("system").Raw(series.str());
  }

  // Cross-node rollup, aligned at the newest tick: counter deltas and counts
  // sum element-wise; quantile estimates (.p50_us/.p99_us/.max_us) take the
  // element-wise max (summing percentiles is meaningless).
  std::map<std::string, size_t> lengths;
  for (const auto& sampler : node_samplers_) {
    for (const auto& [name, series] : sampler->series()) {
      size_t n = std::min(last_ticks, series.size());
      size_t& len = lengths[name];
      len = std::max(len, n);
    }
  }
  std::map<std::string, std::vector<double>> rollup;
  for (const auto& [name, len] : lengths) {
    rollup[name].assign(len, 0.0);
  }
  for (const auto& sampler : node_samplers_) {
    for (const auto& [name, series] : sampler->series()) {
      size_t n = std::min(last_ticks, series.size());
      std::vector<double>& out = rollup[name];
      bool quantile = IsQuantileSeries(name);
      for (size_t j = 0; j < n; j++) {
        double v = series.at(series.size() - n + j);
        size_t slot = out.size() - n + j;
        if (quantile) {
          out[slot] = std::max(out[slot], v);
        } else {
          out[slot] += v;
        }
      }
    }
  }
  json.Key("rollup").BeginObject();
  for (const auto& [name, values] : rollup) {
    json.Key(name).BeginArray();
    for (double v : values) {
      json.Double(v);
    }
    json.EndArray();
  }
  json.EndObject();
  json.EndObject();
  return json.Take();
}

void Telemetry::ContributeTo(MetricsRegistry& rollup) const {
  uint64_t scrapes = 0;
  for (uint64_t s : shard_scrapes_) {
    scrapes += s;
  }
  rollup.counter("telemetry.scrapes").Increment(scrapes);
  rollup.counter("telemetry.slo.violations").Increment(violations_.size());
  rollup.counter("telemetry.bundles").Increment(bundles_.size());
}

}  // namespace eden
