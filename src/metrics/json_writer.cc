#include "src/metrics/json_writer.h"

#include <cmath>
#include <cstdio>

namespace eden {

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its separator
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::U64(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::I64(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace eden
