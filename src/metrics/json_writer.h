// Minimal streaming JSON writer. The metrics registry, the Chrome-trace
// exporter and the benchmark harness all need to emit machine-readable JSON;
// the container bakes in no JSON library, so this ~100-line writer is the
// single shared implementation. It tracks nesting and inserts commas itself,
// so callers cannot produce structurally invalid output.
#ifndef EDEN_SRC_METRICS_JSON_WRITER_H_
#define EDEN_SRC_METRICS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eden {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Must precede every value inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& U64(uint64_t value);
  JsonWriter& I64(int64_t value);
  // Finite doubles render with enough precision to round-trip; NaN and
  // infinities (invalid JSON) render as null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices pre-rendered JSON in as one value (e.g. a nested export built by
  // another writer). The caller owns its validity.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

  static std::string Escape(std::string_view raw);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true once the first element was written
  // (the next element needs a comma separator).
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

}  // namespace eden

#endif  // EDEN_SRC_METRICS_JSON_WRITER_H_
