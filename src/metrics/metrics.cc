#include "src/metrics/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace eden {

// ---------------------------------------------------------------------------
// Histogram bucket geometry
//
// Index layout: values 0..15 get exact unit buckets 0..15. A value with most
// significant bit `msb` >= 4 lands in block `msb - 3` (blocks of 16), with
// the 4 bits below the msb selecting the linear sub-bucket. Block 59 (msb 62)
// is the last, giving kBucketCount = 60 * 16 = 960.
// ---------------------------------------------------------------------------

size_t Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  int msb = 63 - std::countl_zero(value);
  if (msb > 62) {
    msb = 62;  // clamp: values >= 2^63 share the final bucket range
  }
  uint64_t sub = (value >> (msb - 4)) & (kSubBuckets - 1);
  size_t index = static_cast<size_t>(msb - 3) * kSubBuckets + sub;
  return std::min(index, kBucketCount - 1);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  int msb = static_cast<int>(index / kSubBuckets) + 3;
  uint64_t sub = index % kSubBuckets;
  return (uint64_t{1} << msb) + (sub << (msb - 4));
}

uint64_t Histogram::BucketWidth(size_t index) {
  if (index < kSubBuckets) {
    return 1;
  }
  int msb = static_cast<int>(index / kSubBuckets) + 3;
  return uint64_t{1} << (msb - 4);
}

void Histogram::Record(SimDuration value) {
  uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value);
  buckets_[BucketFor(v)]++;
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  count_++;
  sum_ += value;
}

SimDuration Histogram::Percentile(double fraction) const {
  if (count_ == 0) {
    return 0;
  }
  fraction = std::clamp(fraction, 0.0, 1.0);
  // Rank of the sample we want, 1-based.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  // All samples live in [BucketFor(min), BucketFor(max)]; buckets outside
  // are zero, so bounding the walk changes nothing but the iteration count.
  size_t lo = BucketFor(min_ < 0 ? 0 : static_cast<uint64_t>(min_));
  size_t hi = BucketFor(static_cast<uint64_t>(max_));
  for (size_t i = lo; i <= hi; i++) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (cumulative + buckets_[i] >= rank) {
      // Interpolate linearly inside the bucket.
      double within = static_cast<double>(rank - cumulative) /
                      static_cast<double>(buckets_[i]);
      double estimate = static_cast<double>(BucketLowerBound(i)) +
                        within * static_cast<double>(BucketWidth(i));
      auto value = static_cast<SimDuration>(estimate);
      return std::clamp(value, min(), max_);
    }
    cumulative += buckets_[i];
  }
  return max_;
}

uint64_t Histogram::CountAbove(SimDuration threshold) const {
  if (count_ == 0) {
    return 0;
  }
  uint64_t v = threshold < 0 ? 0 : static_cast<uint64_t>(threshold);
  uint64_t above = 0;
  size_t hi = BucketFor(static_cast<uint64_t>(max_));
  for (size_t i = BucketFor(v) + 1; i <= hi; i++) {
    above += buckets_[i];
  }
  return above;
}

Histogram Histogram::DeltaSince(const Histogram& earlier) const {
  Histogram delta;
  if (count_ <= earlier.count_) {
    return delta;  // no new samples (or a bogus snapshot)
  }
  size_t first = kBucketCount, last = 0;
  // `earlier` is a past snapshot, so its occupied range is a subset of this
  // histogram's — outside [BucketFor(min), BucketFor(max)] both sides are 0.
  size_t lo = BucketFor(min_ < 0 ? 0 : static_cast<uint64_t>(min_));
  size_t hi = BucketFor(static_cast<uint64_t>(max_));
  for (size_t i = lo; i <= hi; i++) {
    delta.buckets_[i] = buckets_[i] - earlier.buckets_[i];
    if (delta.buckets_[i] > 0) {
      if (first == kBucketCount) {
        first = i;
      }
      last = i;
    }
  }
  delta.count_ = count_ - earlier.count_;
  delta.sum_ = sum_ - earlier.sum_;
  if (first < kBucketCount) {
    delta.min_ = static_cast<SimDuration>(BucketLowerBound(first));
    delta.max_ = std::min(
        max_, static_cast<SimDuration>(BucketLowerBound(last) +
                                       BucketWidth(last)));
  }
  return delta;
}

Histogram::WindowStats Histogram::StatsSince(const Histogram& earlier) const {
  WindowStats w;
  if (count_ <= earlier.count_) {
    return w;
  }
  w.count = count_ - earlier.count_;
  // Ranks replicate Percentile()'s arithmetic on the delta histogram exactly
  // (ceil of fraction * count, clamped to [1, count]), so the fused walk
  // returns bit-identical estimates to DeltaSince + Percentile.
  uint64_t rank50 = static_cast<uint64_t>(
      std::ceil(0.5 * static_cast<double>(w.count)));
  rank50 = std::clamp<uint64_t>(rank50, 1, w.count);
  uint64_t rank99 = static_cast<uint64_t>(
      std::ceil(0.99 * static_cast<double>(w.count)));
  rank99 = std::clamp<uint64_t>(rank99, 1, w.count);

  size_t lo = BucketFor(min_ < 0 ? 0 : static_cast<uint64_t>(min_));
  size_t hi = BucketFor(static_cast<uint64_t>(max_));
  uint64_t cumulative = 0;
  size_t first = kBucketCount, last = 0;
  double est50 = 0, est99 = 0;
  bool have50 = false, have99 = false;
  for (size_t i = lo; i <= hi; i++) {
    uint64_t d = buckets_[i] - earlier.buckets_[i];
    if (d == 0) {
      continue;
    }
    if (first == kBucketCount) {
      first = i;
    }
    last = i;
    if (!have50 && cumulative + d >= rank50) {
      double within = static_cast<double>(rank50 - cumulative) /
                      static_cast<double>(d);
      est50 = static_cast<double>(BucketLowerBound(i)) +
              within * static_cast<double>(BucketWidth(i));
      have50 = true;
    }
    if (!have99 && cumulative + d >= rank99) {
      double within = static_cast<double>(rank99 - cumulative) /
                      static_cast<double>(d);
      est99 = static_cast<double>(BucketLowerBound(i)) +
              within * static_cast<double>(BucketWidth(i));
      have99 = true;
    }
    cumulative += d;
  }
  if (first == kBucketCount) {
    return w;  // unreachable when count grew, but keeps the walk total-safe
  }
  // Window min/max as DeltaSince estimates them: the first occupied bucket's
  // lower bound and the last's upper bound clamped by the cumulative max.
  auto wmin = static_cast<SimDuration>(BucketLowerBound(first));
  w.max = std::min(max_, static_cast<SimDuration>(BucketLowerBound(last) +
                                                  BucketWidth(last)));
  w.p50 = std::clamp(static_cast<SimDuration>(est50), wmin, w.max);
  w.p99 = std::clamp(static_cast<SimDuration>(est99), wmin, w.max);
  return w;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kBucketCount; i++) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("count").U64(count_);
  json.Key("mean_us").Double(ToMicroseconds(mean()));
  json.Key("min_us").Double(ToMicroseconds(min()));
  json.Key("p50_us").Double(ToMicroseconds(Percentile(0.50)));
  json.Key("p90_us").Double(ToMicroseconds(Percentile(0.90)));
  json.Key("p99_us").Double(ToMicroseconds(Percentile(0.99)));
  json.Key("max_us").Double(ToMicroseconds(max_));
  json.EndObject();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).Increment(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).Add(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name).MergeFrom(*h);
  }
}

void MetricsRegistry::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) {
    json.Key(name).U64(c->value());
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) {
    json.Key(name).I64(g->value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    json.Key(name);
    h->WriteJson(json);
  }
  json.EndObject();
  json.EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter json;
  WriteJson(json);
  return json.Take();
}

}  // namespace eden
