#include "src/metrics/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace eden {

// ---------------------------------------------------------------------------
// Histogram bucket geometry
//
// Index layout: values 0..15 get exact unit buckets 0..15. A value with most
// significant bit `msb` >= 4 lands in block `msb - 3` (blocks of 16), with
// the 4 bits below the msb selecting the linear sub-bucket. Block 59 (msb 62)
// is the last, giving kBucketCount = 60 * 16 = 960.
// ---------------------------------------------------------------------------

size_t Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  int msb = 63 - std::countl_zero(value);
  if (msb > 62) {
    msb = 62;  // clamp: values >= 2^63 share the final bucket range
  }
  uint64_t sub = (value >> (msb - 4)) & (kSubBuckets - 1);
  size_t index = static_cast<size_t>(msb - 3) * kSubBuckets + sub;
  return std::min(index, kBucketCount - 1);
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  int msb = static_cast<int>(index / kSubBuckets) + 3;
  uint64_t sub = index % kSubBuckets;
  return (uint64_t{1} << msb) + (sub << (msb - 4));
}

uint64_t Histogram::BucketWidth(size_t index) {
  if (index < kSubBuckets) {
    return 1;
  }
  int msb = static_cast<int>(index / kSubBuckets) + 3;
  return uint64_t{1} << (msb - 4);
}

void Histogram::Record(SimDuration value) {
  uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value);
  buckets_[BucketFor(v)]++;
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  count_++;
  sum_ += value;
}

SimDuration Histogram::Percentile(double fraction) const {
  if (count_ == 0) {
    return 0;
  }
  fraction = std::clamp(fraction, 0.0, 1.0);
  // Rank of the sample we want, 1-based.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; i++) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (cumulative + buckets_[i] >= rank) {
      // Interpolate linearly inside the bucket.
      double within = static_cast<double>(rank - cumulative) /
                      static_cast<double>(buckets_[i]);
      double estimate = static_cast<double>(BucketLowerBound(i)) +
                        within * static_cast<double>(BucketWidth(i));
      auto value = static_cast<SimDuration>(estimate);
      return std::clamp(value, min(), max_);
    }
    cumulative += buckets_[i];
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kBucketCount; i++) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("count").U64(count_);
  json.Key("mean_us").Double(ToMicroseconds(mean()));
  json.Key("min_us").Double(ToMicroseconds(min()));
  json.Key("p50_us").Double(ToMicroseconds(Percentile(0.50)));
  json.Key("p90_us").Double(ToMicroseconds(Percentile(0.90)));
  json.Key("p99_us").Double(ToMicroseconds(Percentile(0.99)));
  json.Key("max_us").Double(ToMicroseconds(max_));
  json.EndObject();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).Increment(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).Add(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name).MergeFrom(*h);
  }
}

void MetricsRegistry::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) {
    json.Key(name).U64(c->value());
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) {
    json.Key(name).I64(g->value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    json.Key(name);
    h->WriteJson(json);
  }
  json.EndObject();
  json.EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter json;
  WriteJson(json);
  return json.Take();
}

}  // namespace eden
