// The Eden metrics subsystem. The paper's project plan hinges on measurement
// ("additional functions can be moved into the kernel if measurements
// indicate that significant performance gains will result", section 4.5);
// this module is the uniform instrument every layer shares:
//
//   * Counter    — monotonically increasing event count,
//   * Gauge      — instantaneous level (active objects, bytes on disk),
//   * Histogram  — log-linear-bucketed latency distribution over virtual
//                  time with p50/p90/p99/max,
//   * MetricsRegistry — a named collection of the above, mergeable across
//                  nodes for the system-wide rollup, exportable as JSON.
//
// Naming scheme (see DESIGN.md "Observability"): dot-separated paths rooted
// at the owning layer — kernel.*, store.*, transport.* live in each node's
// registry; lan.* lives in the system registry. Latency histograms end in
// ".latency" (or a ".latency.<subclass>" variant) and record nanoseconds of
// virtual time.
//
// Everything here is deliberately dependency-light (sim/time.h only) so the
// network, storage and trace layers can link it without cycles.
#ifndef EDEN_SRC_METRICS_METRICS_H_
#define EDEN_SRC_METRICS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/metrics/json_writer.h"
#include "src/sim/time.h"

namespace eden {

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Log-linear bucketing (HdrHistogram-style): each power-of-two range is
// split into 16 linear sub-buckets, so any recorded value lands in a bucket
// whose width is at most 1/16 of the value — percentile estimates carry a
// bounded ~6% relative error while the whole table stays a fixed 960
// buckets covering [0, 2^63) nanoseconds.
class Histogram {
 public:
  static constexpr size_t kSubBuckets = 16;  // 2^4 linear slices per octave
  static constexpr size_t kBucketCount = 960;

  void Record(SimDuration value);

  uint64_t count() const { return count_; }
  SimDuration sum() const { return sum_; }
  SimDuration min() const { return count_ == 0 ? 0 : min_; }
  SimDuration max() const { return max_; }
  SimDuration mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<SimDuration>(count_);
  }

  // Value below which `fraction` (in [0,1]) of recorded samples fall,
  // linearly interpolated inside the containing bucket and clamped to the
  // recorded [min, max].
  SimDuration Percentile(double fraction) const;

  // Samples recorded in buckets strictly above the bucket containing
  // `threshold` — the SLO engine's "requests over the objective" count.
  // Bucket-granular: samples sharing the threshold's bucket are not counted,
  // so the result carries the same ~6% relative error as Percentile.
  uint64_t CountAbove(SimDuration threshold) const;

  // The samples recorded since `earlier` was snapshotted (bucket-wise
  // difference; `earlier` must be a past copy of this histogram). Used by
  // the telemetry scraper for per-tick window quantiles. min/max of the
  // window are bucket-granular estimates (the exact extremes are not
  // recoverable from cumulative state).
  Histogram DeltaSince(const Histogram& earlier) const;

  // The four window figures a telemetry scrape exports, computed in a single
  // bucket walk over the occupied range — identical values to
  // DeltaSince(earlier) followed by count()/Percentile(0.5)/Percentile(0.99)/
  // max(), without materializing the intermediate histogram. This is the
  // per-tick hot path when a 1 ms scrape cadence meets active instruments.
  struct WindowStats {
    uint64_t count = 0;
    SimDuration p50 = 0;
    SimDuration p99 = 0;
    SimDuration max = 0;
  };
  WindowStats StatsSince(const Histogram& earlier) const;

  void MergeFrom(const Histogram& other);

  // {"count":n,"mean_us":..,"min_us":..,"p50_us":..,"p90_us":..,
  //  "p99_us":..,"max_us":..} — microseconds, the unit benches report.
  void WriteJson(JsonWriter& json) const;

  // Bucket geometry, exposed for tests.
  static size_t BucketFor(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketWidth(size_t index);

 private:
  uint64_t count_ = 0;
  SimDuration sum_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
  std::array<uint64_t, kBucketCount> buckets_ = {};
};

// A named collection of metrics. Instruments are created on first use and
// live as long as the registry (pointers remain stable), so hot paths can
// cache Counter*/Histogram* and skip the map lookup.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Read-only lookups; null when the metric was never touched.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Convenience for compatibility accessors: 0 when absent.
  uint64_t CounterValue(const std::string& name) const;

  // Aggregates `other` into this registry: counters and gauges add,
  // histograms merge bucket-wise. Used for the per-system rollup (same
  // metric names across nodes sum together).
  void MergeFrom(const MetricsRegistry& other);

  size_t counter_count() const { return counters_.size(); }
  size_t gauge_count() const { return gauges_.size(); }
  size_t histogram_count() const { return histograms_.size(); }

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

  // {"counters":{...},"gauges":{...},"histograms":{name:{...}}}
  std::string ToJson() const;
  // Emits the same structure into an enclosing writer (the bench exporter
  // nests the registry inside its own envelope).
  void WriteJson(JsonWriter& json) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace eden

#endif  // EDEN_SRC_METRICS_METRICS_H_
