#include "src/common/bytes.h"

namespace eden {

Bytes ToBytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string ToString(const Bytes& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

std::string ToString(BytesView bytes) {
  return std::string(bytes.begin(), bytes.end());
}

void BufferWriter::WriteU8(uint8_t value) { buffer_.push_back(value); }

void BufferWriter::WriteU16(uint16_t value) {
  buffer_.push_back(static_cast<uint8_t>(value));
  buffer_.push_back(static_cast<uint8_t>(value >> 8));
}

void BufferWriter::WriteU32(uint32_t value) {
  for (int i = 0; i < 4; i++) {
    buffer_.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void BufferWriter::WriteU64(uint64_t value) {
  for (int i = 0; i < 8; i++) {
    buffer_.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void BufferWriter::WriteI64(int64_t value) {
  WriteU64(static_cast<uint64_t>(value));
}

void BufferWriter::WriteVarint(uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(value));
}

void BufferWriter::WriteBytes(const Bytes& bytes) {
  WriteVarint(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void BufferWriter::WriteBytes(BytesView bytes) {
  WriteVarint(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void BufferWriter::WriteString(std::string_view text) {
  WriteVarint(text.size());
  buffer_.insert(buffer_.end(), text.begin(), text.end());
}

void BufferWriter::WriteBool(bool value) { WriteU8(value ? 1 : 0); }

void BufferWriter::WriteDouble(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void BufferWriter::WriteRaw(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

Status BufferReader::Need(size_t n) const {
  if (size_ - pos_ < n) {
    return InvalidArgumentError("truncated buffer");
  }
  return OkStatus();
}

StatusOr<uint8_t> BufferReader::ReadU8() {
  EDEN_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

StatusOr<uint16_t> BufferReader::ReadU16() {
  EDEN_RETURN_IF_ERROR(Need(2));
  uint16_t value = static_cast<uint16_t>(data_[pos_]) |
                   static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return value;
}

StatusOr<uint32_t> BufferReader::ReadU32() {
  EDEN_RETURN_IF_ERROR(Need(4));
  uint32_t value = 0;
  for (int i = 0; i < 4; i++) {
    value |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return value;
}

StatusOr<uint64_t> BufferReader::ReadU64() {
  EDEN_RETURN_IF_ERROR(Need(8));
  uint64_t value = 0;
  for (int i = 0; i < 8; i++) {
    value |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return value;
}

StatusOr<int64_t> BufferReader::ReadI64() {
  EDEN_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  return static_cast<int64_t>(bits);
}

StatusOr<uint64_t> BufferReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    EDEN_RETURN_IF_ERROR(Need(1));
    uint8_t byte = data_[pos_++];
    if (shift >= 63 && byte > 1) {
      return InvalidArgumentError("varint overflow");
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
    if (shift > 63) {
      return InvalidArgumentError("varint too long");
    }
  }
}

StatusOr<Bytes> BufferReader::ReadBytes() {
  EDEN_ASSIGN_OR_RETURN(uint64_t length, ReadVarint());
  EDEN_RETURN_IF_ERROR(Need(length));
  Bytes out(data_ + pos_, data_ + pos_ + length);
  pos_ += length;
  return out;
}

StatusOr<std::string> BufferReader::ReadString() {
  EDEN_ASSIGN_OR_RETURN(uint64_t length, ReadVarint());
  EDEN_RETURN_IF_ERROR(Need(length));
  std::string out(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return out;
}

StatusOr<bool> BufferReader::ReadBool() {
  EDEN_ASSIGN_OR_RETURN(uint8_t byte, ReadU8());
  if (byte > 1) {
    return InvalidArgumentError("bad bool encoding");
  }
  return byte == 1;
}

StatusOr<double> BufferReader::ReadDouble() {
  EDEN_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; i++) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Fnv1a64(BytesView bytes) { return Fnv1a64(bytes.data(), bytes.size()); }

uint64_t Fnv1a64(std::string_view text) {
  return Fnv1a64(reinterpret_cast<const uint8_t*>(text.data()), text.size());
}

namespace {

// Table-driven reflected CRC-32; the table is built once on first use.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; bit++) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Begin() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t state, const uint8_t* data, size_t size) {
  const uint32_t* table = Crc32Table();
  for (size_t i = 0; i < size; i++) {
    state = (state >> 8) ^ table[(state ^ data[i]) & 0xffu];
  }
  return state;
}

uint32_t Crc32End(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32(const uint8_t* data, size_t size) {
  return Crc32End(Crc32Update(Crc32Begin(), data, size));
}

uint32_t Crc32(BytesView bytes) { return Crc32(bytes.data(), bytes.size()); }

void Digest::Mix(uint64_t value) {
  for (int i = 0; i < 8; i++) {
    state_ ^= (value >> (8 * i)) & 0xff;
    state_ *= 0x100000001b3ULL;
  }
}

void Digest::Mix(std::string_view text) {
  for (char c : text) {
    state_ ^= static_cast<uint8_t>(c);
    state_ *= 0x100000001b3ULL;
  }
}

}  // namespace eden
