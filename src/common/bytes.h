// Bounds-checked binary codec used for every wire message, checkpoint record
// and representation segment in Eden. Encoding is little-endian with varint
// length prefixes; readers never trust lengths (a truncated or hostile buffer
// yields an error Status, never UB).
#ifndef EDEN_SRC_COMMON_BYTES_H_
#define EDEN_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace eden {

using Bytes = std::vector<uint8_t>;

// Converts between Bytes and std::string views for convenience.
Bytes ToBytes(std::string_view text);
std::string ToString(const Bytes& bytes);

// Append-only encoder. All writes succeed (the buffer grows); the produced
// buffer is retrieved with Take() or buffer().
class BufferWriter {
 public:
  BufferWriter() = default;

  void WriteU8(uint8_t value);
  void WriteU16(uint16_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  // Unsigned LEB128.
  void WriteVarint(uint64_t value);
  // Varint length prefix + raw bytes.
  void WriteBytes(const Bytes& bytes);
  void WriteString(std::string_view text);
  void WriteBool(bool value);
  void WriteDouble(double value);
  // Raw bytes with no length prefix (caller knows the framing).
  void WriteRaw(const uint8_t* data, size_t size);

  const Bytes& buffer() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

// Bounds-checked decoder over a borrowed buffer. The buffer must outlive the
// reader. Every Read* returns an error on truncation or overflow.
class BufferReader {
 public:
  explicit BufferReader(const Bytes& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  StatusOr<uint8_t> ReadU8();
  StatusOr<uint16_t> ReadU16();
  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<int64_t> ReadI64();
  StatusOr<uint64_t> ReadVarint();
  StatusOr<Bytes> ReadBytes();
  StatusOr<std::string> ReadString();
  StatusOr<bool> ReadBool();
  StatusOr<double> ReadDouble();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// 64-bit FNV-1a, used for content digests (determinism tests, replica
// integrity checks). Not cryptographic; Eden's threat model excludes
// malicious users (paper section 2).
uint64_t Fnv1a64(const uint8_t* data, size_t size);
uint64_t Fnv1a64(const Bytes& bytes);
uint64_t Fnv1a64(std::string_view text);

// Incremental digest for hashing event traces.
class Digest {
 public:
  void Mix(uint64_t value);
  void Mix(std::string_view text);
  uint64_t value() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ULL;
};

}  // namespace eden

#endif  // EDEN_SRC_COMMON_BYTES_H_
