// Bounds-checked binary codec used for every wire message, checkpoint record
// and representation segment in Eden. Encoding is little-endian with varint
// length prefixes; readers never trust lengths (a truncated or hostile buffer
// yields an error Status, never UB).
#ifndef EDEN_SRC_COMMON_BYTES_H_
#define EDEN_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace eden {

using Bytes = std::vector<uint8_t>;

// A borrowed, non-owning view of a byte range (the uint8_t analogue of
// std::string_view). The hot message path hands decoders and transport
// handlers views instead of Bytes so a single-fragment message is never
// copied between the wire and the kernel's decode. A view is only valid
// while the underlying buffer lives; handlers that stash a payload must
// call ToBytes().
class BytesView {
 public:
  constexpr BytesView() = default;
  constexpr BytesView(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  BytesView(const Bytes& bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.data()), size_(bytes.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const uint8_t* begin() const { return data_; }
  const uint8_t* end() const { return data_ + size_; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  BytesView subview(size_t offset, size_t length) const {
    return BytesView(data_ + offset, length);
  }

  // Explicit copy into an owned buffer.
  Bytes ToBytes() const { return Bytes(data_, data_ + size_); }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// An immutable, reference-counted byte buffer plus an offset/length window
// into it. Copying or slicing a SharedBytes bumps a refcount; the underlying
// allocation is shared. The transport moves each outgoing message into one
// of these, fragments it by slicing, ships the slices inside LAN frames, and
// reassembles by re-slicing — one allocation per message end to end.
class SharedBytes {
 public:
  SharedBytes() = default;

  // Takes ownership of `bytes` (one allocation, no copy).
  explicit SharedBytes(Bytes bytes)
      : buffer_(std::make_shared<const Bytes>(std::move(bytes))),
        offset_(0),
        length_(buffer_->size()) {}

  // A sub-window sharing this buffer. `offset + length` must be in range.
  SharedBytes Slice(size_t offset, size_t length) const {
    SharedBytes out;
    out.buffer_ = buffer_;
    out.offset_ = offset_ + offset;
    out.length_ = length;
    return out;
  }

  const uint8_t* data() const {
    return buffer_ == nullptr ? nullptr : buffer_->data() + offset_;
  }
  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  BytesView view() const { return BytesView(data(), length_); }
  Bytes ToBytes() const { return Bytes(data(), data() + length_); }

  // True when `other` is the window immediately following this one in the
  // same underlying buffer (reassembly uses this to rebuild a fragmented
  // message by widening a slice instead of concatenating).
  bool Precedes(const SharedBytes& other) const {
    return buffer_ != nullptr && buffer_ == other.buffer_ &&
           offset_ + length_ == other.offset_;
  }

  // Widens this window to cover `other` as well (requires Precedes(other)).
  void ExtendOver(const SharedBytes& other) { length_ += other.length_; }

 private:
  std::shared_ptr<const Bytes> buffer_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

// Converts between Bytes and std::string views for convenience.
Bytes ToBytes(std::string_view text);
std::string ToString(const Bytes& bytes);
std::string ToString(BytesView bytes);

// Append-only encoder. All writes succeed (the buffer grows); the produced
// buffer is retrieved with Take() or buffer().
class BufferWriter {
 public:
  BufferWriter() = default;

  void WriteU8(uint8_t value);
  void WriteU16(uint16_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  // Unsigned LEB128.
  void WriteVarint(uint64_t value);
  // Varint length prefix + raw bytes.
  void WriteBytes(const Bytes& bytes);
  void WriteBytes(BytesView bytes);
  void WriteString(std::string_view text);
  void WriteBool(bool value);
  void WriteDouble(double value);
  // Raw bytes with no length prefix (caller knows the framing).
  void WriteRaw(const uint8_t* data, size_t size);

  const Bytes& buffer() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

// Bounds-checked decoder over a borrowed buffer. The buffer must outlive the
// reader. Every Read* returns an error on truncation or overflow.
class BufferReader {
 public:
  explicit BufferReader(BytesView buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  StatusOr<uint8_t> ReadU8();
  StatusOr<uint16_t> ReadU16();
  StatusOr<uint32_t> ReadU32();
  StatusOr<uint64_t> ReadU64();
  StatusOr<int64_t> ReadI64();
  StatusOr<uint64_t> ReadVarint();
  StatusOr<Bytes> ReadBytes();
  StatusOr<std::string> ReadString();
  StatusOr<bool> ReadBool();
  StatusOr<double> ReadDouble();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// 64-bit FNV-1a, used for content digests (determinism tests, replica
// integrity checks). Not cryptographic; Eden's threat model excludes
// malicious users (paper section 2).
uint64_t Fnv1a64(const uint8_t* data, size_t size);
uint64_t Fnv1a64(BytesView bytes);
uint64_t Fnv1a64(std::string_view text);

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum a
// 1981-era controller would compute in hardware. Used to detect wire
// bit-flips on transport frames and at-rest corruption / torn writes on
// stable-store records. Not a defense against adversaries (see Fnv1a64
// note); it exists to make injected faults *detectable* instead of silent.
uint32_t Crc32(const uint8_t* data, size_t size);
uint32_t Crc32(BytesView bytes);
// Incremental form for multi-buffer frames (header + body): seed with
// Crc32Begin(), fold in each buffer, finish with Crc32End().
uint32_t Crc32Begin();
uint32_t Crc32Update(uint32_t state, const uint8_t* data, size_t size);
uint32_t Crc32End(uint32_t state);

// Incremental digest for hashing event traces.
class Digest {
 public:
  void Mix(uint64_t value);
  void Mix(std::string_view text);
  uint64_t value() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ULL;
};

}  // namespace eden

#endif  // EDEN_SRC_COMMON_BYTES_H_
