// Minimal leveled logging. Kernel code logs through this so tests can silence
// or capture output. Log lines carry a component tag and (when attached to a
// simulation) the virtual timestamp.
#ifndef EDEN_SRC_COMMON_LOG_H_
#define EDEN_SRC_COMMON_LOG_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace eden {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kNone = 5,  // disables all output
};

// Global log configuration. Not thread-safe by design: the whole system is a
// single-threaded discrete-event simulation.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Replaces the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  void Log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();

  LogLevel level_ = LogLevel::kWarning;
  Sink sink_;
};

// Stream-style log statement: EDEN_LOG(kInfo, "kernel") << "object " << name;
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogStatement() { Logger::Get().Log(level_, component_, stream_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

#define EDEN_LOG(severity, component)                                   \
  if (::eden::Logger::Get().level() <= ::eden::LogLevel::severity)      \
  ::eden::LogStatement(::eden::LogLevel::severity, (component))

// Unconditional fatal error: prints to stderr (bypassing the configurable
// sink, which a test may have silenced) and aborts the process. For API
// misuse that would otherwise be *silently wrong* in release builds, where
// a plain assert() compiles away — e.g. combining the chaos layer or the
// open-loop driver with the parallel sharded engine.
[[noreturn]] void FatalError(std::string_view message);

}  // namespace eden

#endif  // EDEN_SRC_COMMON_LOG_H_
