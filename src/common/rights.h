// Access rights carried in capabilities (paper section 4.1: "capabilities,
// which contain both unique names and access rights"). Rights form a 32-bit
// set; a capability can only ever be *restricted* (rights removed), never
// amplified, except by the object's own type manager.
#ifndef EDEN_SRC_COMMON_RIGHTS_H_
#define EDEN_SRC_COMMON_RIGHTS_H_

#include <cstdint>
#include <string>

namespace eden {

// A set of access rights. The low 8 bits are kernel-defined; the remaining
// bits are available for type-specific rights chosen by type programmers.
class Rights {
 public:
  // Kernel-defined rights.
  static constexpr uint32_t kInvoke = 1u << 0;    // may invoke any operation at all
  static constexpr uint32_t kRead = 1u << 1;      // conventional: read-class ops
  static constexpr uint32_t kWrite = 1u << 2;     // conventional: mutating ops
  static constexpr uint32_t kDestroy = 1u << 3;   // may destroy the object
  static constexpr uint32_t kMove = 1u << 4;      // may request migration
  static constexpr uint32_t kCheckpoint = 1u << 5;// may force a checkpoint
  static constexpr uint32_t kGrant = 1u << 6;     // may pass the capability on
  static constexpr uint32_t kOwner = 1u << 7;     // full control

  // First bit available to type programmers.
  static constexpr uint32_t kFirstTypeRight = 1u << 8;

  constexpr Rights() : bits_(0) {}
  constexpr explicit Rights(uint32_t bits) : bits_(bits) {}

  static constexpr Rights All() { return Rights(~0u); }
  static constexpr Rights None() { return Rights(0); }

  constexpr uint32_t bits() const { return bits_; }

  // True if this set contains every right in `required`.
  constexpr bool Covers(Rights required) const {
    return (bits_ & required.bits_) == required.bits_;
  }

  constexpr bool Has(uint32_t right) const { return (bits_ & right) == right; }

  // Set intersection: the only way rights ever change as capabilities flow
  // between objects (monotone non-amplification).
  constexpr Rights Restrict(Rights mask) const { return Rights(bits_ & mask.bits_); }

  constexpr Rights Union(Rights other) const { return Rights(bits_ | other.bits_); }

  constexpr bool operator==(const Rights& other) const { return bits_ == other.bits_; }

  // e.g. "{invoke,read,write}" or "{0x0}".
  std::string ToString() const;

 private:
  uint32_t bits_;
};

}  // namespace eden

#endif  // EDEN_SRC_COMMON_RIGHTS_H_
