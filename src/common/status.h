// Status and StatusOr: error propagation primitives used across every Eden
// module. Modeled on absl::Status but self-contained; no exceptions are used
// anywhere in the library (C++ Core Guidelines E.deterministic for a kernel
// substrate, and consistent behaviour inside coroutines).
#ifndef EDEN_SRC_COMMON_STATUS_H_
#define EDEN_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace eden {

// Error space for the whole system. Values are stable; they are serialized
// into invocation reply messages by the kernel.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,    // malformed request, bad parameter
  kNotFound = 2,           // object/operation/version does not exist
  kPermissionDenied = 3,   // capability lacks required rights
  kTimeout = 4,            // user-supplied invocation timeout expired
  kUnavailable = 5,        // node down / partitioned / object unreachable
  kFailedPrecondition = 6, // e.g. checkpoint before checksite bound
  kAlreadyExists = 7,      // duplicate name / version conflict
  kAborted = 8,            // transaction aborted, invocation cancelled
  kResourceExhausted = 9,  // class queue overflow, store full
  kDataLoss = 10,          // no checkpoint exists for a failed object
  kInternal = 11,          // invariant violation inside the kernel
  kUnimplemented = 12,     // operation not defined by the type
};

// Human-readable name of a StatusCode ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such object".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, mirroring absl.
Status OkStatus();
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status PermissionDeniedError(std::string_view message);
Status TimeoutError(std::string_view message);
Status UnavailableError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status AbortedError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status DataLossError(std::string_view message);
Status InternalError(std::string_view message);
Status UnimplementedError(std::string_view message);

// A value of type T or an error Status. Never holds both.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, so `return value;` and `return SomeError();`
  // both work in functions returning StatusOr<T>.
  StatusOr(const T& value) : rep_(value) {}
  StatusOr(T&& value) : rep_(std::move(value)) {}
  StatusOr(Status status) : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() && "StatusOr constructed with OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // value() if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    if (ok()) {
      return value();
    }
    return fallback;
  }

 private:
  std::variant<T, Status> rep_;
};

// RETURN_IF_ERROR(expr): early-return the Status if it is not OK.
#define EDEN_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::eden::Status _eden_status = (expr);     \
    if (!_eden_status.ok()) {                 \
      return _eden_status;                    \
    }                                         \
  } while (0)

// ASSIGN_OR_RETURN(lhs, expr): bind the value or early-return the error.
#define EDEN_STATUS_CONCAT_INNER(a, b) a##b
#define EDEN_STATUS_CONCAT(a, b) EDEN_STATUS_CONCAT_INNER(a, b)
#define EDEN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()
#define EDEN_ASSIGN_OR_RETURN(lhs, expr) \
  EDEN_ASSIGN_OR_RETURN_IMPL(EDEN_STATUS_CONCAT(_eden_statusor_, __LINE__), lhs, expr)

}  // namespace eden

#endif  // EDEN_SRC_COMMON_STATUS_H_
