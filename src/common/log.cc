#include "src/common/log.h"

#include <cstdio>

namespace eden {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "-";
  }
  return "?";
}

}  // namespace

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view component, std::string_view message) {
    std::fprintf(stderr, "[%s %.*s] %.*s\n", LevelName(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    *this = Logger();
  }
}

void FatalError(std::string_view message) {
  std::fprintf(stderr, "[F eden] %.*s\n", static_cast<int>(message.size()),
               message.data());
  std::fflush(stderr);
  std::abort();
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (level < level_) {
    return;
  }
  sink_(level, component, message);
}

}  // namespace eden
