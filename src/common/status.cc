#include "src/common/status.h"

namespace eden {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}
Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, std::string(message));
}
Status PermissionDeniedError(std::string_view message) {
  return Status(StatusCode::kPermissionDenied, std::string(message));
}
Status TimeoutError(std::string_view message) {
  return Status(StatusCode::kTimeout, std::string(message));
}
Status UnavailableError(std::string_view message) {
  return Status(StatusCode::kUnavailable, std::string(message));
}
Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, std::string(message));
}
Status AlreadyExistsError(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, std::string(message));
}
Status AbortedError(std::string_view message) {
  return Status(StatusCode::kAborted, std::string(message));
}
Status ResourceExhaustedError(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, std::string(message));
}
Status DataLossError(std::string_view message) {
  return Status(StatusCode::kDataLoss, std::string(message));
}
Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, std::string(message));
}
Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, std::string(message));
}

}  // namespace eden
