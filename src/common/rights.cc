#include "src/common/rights.h"

#include <cstdio>

namespace eden {

std::string Rights::ToString() const {
  static constexpr struct {
    uint32_t bit;
    const char* name;
  } kNames[] = {
      {kInvoke, "invoke"},   {kRead, "read"},       {kWrite, "write"},
      {kDestroy, "destroy"}, {kMove, "move"},       {kCheckpoint, "checkpoint"},
      {kGrant, "grant"},     {kOwner, "owner"},
  };
  std::string out = "{";
  bool first = true;
  for (const auto& entry : kNames) {
    if (Has(entry.bit)) {
      if (!first) {
        out += ",";
      }
      out += entry.name;
      first = false;
    }
  }
  uint32_t type_bits = bits_ & 0xffffff00u;
  if (type_bits != 0) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%x", type_bits);
    if (!first) {
      out += ",";
    }
    out += "type:";
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace eden
