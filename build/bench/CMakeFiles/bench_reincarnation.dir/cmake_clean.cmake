file(REMOVE_RECURSE
  "CMakeFiles/bench_reincarnation.dir/bench_reincarnation.cc.o"
  "CMakeFiles/bench_reincarnation.dir/bench_reincarnation.cc.o.d"
  "bench_reincarnation"
  "bench_reincarnation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reincarnation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
