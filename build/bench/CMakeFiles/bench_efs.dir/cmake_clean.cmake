file(REMOVE_RECURSE
  "CMakeFiles/bench_efs.dir/bench_efs.cc.o"
  "CMakeFiles/bench_efs.dir/bench_efs.cc.o.d"
  "bench_efs"
  "bench_efs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_efs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
