# Empty dependencies file for bench_efs.
# This may be replaced when dependencies are built.
