file(REMOVE_RECURSE
  "CMakeFiles/bench_frozen.dir/bench_frozen.cc.o"
  "CMakeFiles/bench_frozen.dir/bench_frozen.cc.o.d"
  "bench_frozen"
  "bench_frozen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frozen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
