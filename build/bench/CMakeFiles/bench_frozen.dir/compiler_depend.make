# Empty compiler generated dependencies file for bench_frozen.
# This may be replaced when dependencies are built.
