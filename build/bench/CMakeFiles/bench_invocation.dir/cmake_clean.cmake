file(REMOVE_RECURSE
  "CMakeFiles/bench_invocation.dir/bench_invocation.cc.o"
  "CMakeFiles/bench_invocation.dir/bench_invocation.cc.o.d"
  "bench_invocation"
  "bench_invocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
