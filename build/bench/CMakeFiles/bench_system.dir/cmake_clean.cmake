file(REMOVE_RECURSE
  "CMakeFiles/bench_system.dir/bench_system.cc.o"
  "CMakeFiles/bench_system.dir/bench_system.cc.o.d"
  "bench_system"
  "bench_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
