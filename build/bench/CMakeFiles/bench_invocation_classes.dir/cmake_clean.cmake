file(REMOVE_RECURSE
  "CMakeFiles/bench_invocation_classes.dir/bench_invocation_classes.cc.o"
  "CMakeFiles/bench_invocation_classes.dir/bench_invocation_classes.cc.o.d"
  "bench_invocation_classes"
  "bench_invocation_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invocation_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
