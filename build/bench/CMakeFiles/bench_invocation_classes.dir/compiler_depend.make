# Empty compiler generated dependencies file for bench_invocation_classes.
# This may be replaced when dependencies are built.
