file(REMOVE_RECURSE
  "CMakeFiles/eden_storage.dir/stable_store.cc.o"
  "CMakeFiles/eden_storage.dir/stable_store.cc.o.d"
  "libeden_storage.a"
  "libeden_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
