file(REMOVE_RECURSE
  "libeden_edit.a"
)
