# Empty dependencies file for eden_edit.
# This may be replaced when dependencies are built.
