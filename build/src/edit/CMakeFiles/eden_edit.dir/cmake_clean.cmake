file(REMOVE_RECURSE
  "CMakeFiles/eden_edit.dir/editable.cc.o"
  "CMakeFiles/eden_edit.dir/editable.cc.o.d"
  "CMakeFiles/eden_edit.dir/structure.cc.o"
  "CMakeFiles/eden_edit.dir/structure.cc.o.d"
  "libeden_edit.a"
  "libeden_edit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_edit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
