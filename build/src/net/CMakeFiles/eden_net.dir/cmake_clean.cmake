file(REMOVE_RECURSE
  "CMakeFiles/eden_net.dir/lan.cc.o"
  "CMakeFiles/eden_net.dir/lan.cc.o.d"
  "CMakeFiles/eden_net.dir/transport.cc.o"
  "CMakeFiles/eden_net.dir/transport.cc.o.d"
  "libeden_net.a"
  "libeden_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
