file(REMOVE_RECURSE
  "libeden_net.a"
)
