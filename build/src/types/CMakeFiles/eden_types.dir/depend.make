# Empty dependencies file for eden_types.
# This may be replaced when dependencies are built.
