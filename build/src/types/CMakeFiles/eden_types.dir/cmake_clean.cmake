file(REMOVE_RECURSE
  "CMakeFiles/eden_types.dir/abstract_type.cc.o"
  "CMakeFiles/eden_types.dir/abstract_type.cc.o.d"
  "CMakeFiles/eden_types.dir/standard_types.cc.o"
  "CMakeFiles/eden_types.dir/standard_types.cc.o.d"
  "libeden_types.a"
  "libeden_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
