file(REMOVE_RECURSE
  "libeden_types.a"
)
