file(REMOVE_RECURSE
  "CMakeFiles/eden_common.dir/bytes.cc.o"
  "CMakeFiles/eden_common.dir/bytes.cc.o.d"
  "CMakeFiles/eden_common.dir/log.cc.o"
  "CMakeFiles/eden_common.dir/log.cc.o.d"
  "CMakeFiles/eden_common.dir/rights.cc.o"
  "CMakeFiles/eden_common.dir/rights.cc.o.d"
  "CMakeFiles/eden_common.dir/status.cc.o"
  "CMakeFiles/eden_common.dir/status.cc.o.d"
  "libeden_common.a"
  "libeden_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
