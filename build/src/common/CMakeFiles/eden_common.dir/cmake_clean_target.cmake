file(REMOVE_RECURSE
  "libeden_common.a"
)
