# Empty dependencies file for eden_workload.
# This may be replaced when dependencies are built.
