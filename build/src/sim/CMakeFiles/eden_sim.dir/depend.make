# Empty dependencies file for eden_sim.
# This may be replaced when dependencies are built.
