file(REMOVE_RECURSE
  "libeden_sim.a"
)
