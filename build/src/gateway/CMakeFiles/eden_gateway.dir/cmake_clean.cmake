file(REMOVE_RECURSE
  "CMakeFiles/eden_gateway.dir/foreign_machine.cc.o"
  "CMakeFiles/eden_gateway.dir/foreign_machine.cc.o.d"
  "CMakeFiles/eden_gateway.dir/gateway.cc.o"
  "CMakeFiles/eden_gateway.dir/gateway.cc.o.d"
  "libeden_gateway.a"
  "libeden_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
