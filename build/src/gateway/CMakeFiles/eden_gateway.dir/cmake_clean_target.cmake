file(REMOVE_RECURSE
  "libeden_gateway.a"
)
