# Empty compiler generated dependencies file for eden_gateway.
# This may be replaced when dependencies are built.
