# Empty compiler generated dependencies file for eden_kernel.
# This may be replaced when dependencies are built.
