file(REMOVE_RECURSE
  "libeden_kernel.a"
)
