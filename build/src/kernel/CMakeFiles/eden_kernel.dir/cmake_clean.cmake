file(REMOVE_RECURSE
  "CMakeFiles/eden_kernel.dir/__/trace/trace.cc.o"
  "CMakeFiles/eden_kernel.dir/__/trace/trace.cc.o.d"
  "CMakeFiles/eden_kernel.dir/capability.cc.o"
  "CMakeFiles/eden_kernel.dir/capability.cc.o.d"
  "CMakeFiles/eden_kernel.dir/eden_system.cc.o"
  "CMakeFiles/eden_kernel.dir/eden_system.cc.o.d"
  "CMakeFiles/eden_kernel.dir/invoke.cc.o"
  "CMakeFiles/eden_kernel.dir/invoke.cc.o.d"
  "CMakeFiles/eden_kernel.dir/message.cc.o"
  "CMakeFiles/eden_kernel.dir/message.cc.o.d"
  "CMakeFiles/eden_kernel.dir/name.cc.o"
  "CMakeFiles/eden_kernel.dir/name.cc.o.d"
  "CMakeFiles/eden_kernel.dir/node_kernel.cc.o"
  "CMakeFiles/eden_kernel.dir/node_kernel.cc.o.d"
  "CMakeFiles/eden_kernel.dir/representation.cc.o"
  "CMakeFiles/eden_kernel.dir/representation.cc.o.d"
  "CMakeFiles/eden_kernel.dir/type_manager.cc.o"
  "CMakeFiles/eden_kernel.dir/type_manager.cc.o.d"
  "libeden_kernel.a"
  "libeden_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
