
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/trace.cc" "src/kernel/CMakeFiles/eden_kernel.dir/__/trace/trace.cc.o" "gcc" "src/kernel/CMakeFiles/eden_kernel.dir/__/trace/trace.cc.o.d"
  "/root/repo/src/kernel/capability.cc" "src/kernel/CMakeFiles/eden_kernel.dir/capability.cc.o" "gcc" "src/kernel/CMakeFiles/eden_kernel.dir/capability.cc.o.d"
  "/root/repo/src/kernel/eden_system.cc" "src/kernel/CMakeFiles/eden_kernel.dir/eden_system.cc.o" "gcc" "src/kernel/CMakeFiles/eden_kernel.dir/eden_system.cc.o.d"
  "/root/repo/src/kernel/invoke.cc" "src/kernel/CMakeFiles/eden_kernel.dir/invoke.cc.o" "gcc" "src/kernel/CMakeFiles/eden_kernel.dir/invoke.cc.o.d"
  "/root/repo/src/kernel/message.cc" "src/kernel/CMakeFiles/eden_kernel.dir/message.cc.o" "gcc" "src/kernel/CMakeFiles/eden_kernel.dir/message.cc.o.d"
  "/root/repo/src/kernel/name.cc" "src/kernel/CMakeFiles/eden_kernel.dir/name.cc.o" "gcc" "src/kernel/CMakeFiles/eden_kernel.dir/name.cc.o.d"
  "/root/repo/src/kernel/node_kernel.cc" "src/kernel/CMakeFiles/eden_kernel.dir/node_kernel.cc.o" "gcc" "src/kernel/CMakeFiles/eden_kernel.dir/node_kernel.cc.o.d"
  "/root/repo/src/kernel/representation.cc" "src/kernel/CMakeFiles/eden_kernel.dir/representation.cc.o" "gcc" "src/kernel/CMakeFiles/eden_kernel.dir/representation.cc.o.d"
  "/root/repo/src/kernel/type_manager.cc" "src/kernel/CMakeFiles/eden_kernel.dir/type_manager.cc.o" "gcc" "src/kernel/CMakeFiles/eden_kernel.dir/type_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/eden_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eden_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eden_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eden_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
