file(REMOVE_RECURSE
  "CMakeFiles/eden_efs.dir/client.cc.o"
  "CMakeFiles/eden_efs.dir/client.cc.o.d"
  "CMakeFiles/eden_efs.dir/file_store.cc.o"
  "CMakeFiles/eden_efs.dir/file_store.cc.o.d"
  "libeden_efs.a"
  "libeden_efs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_efs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
