file(REMOVE_RECURSE
  "libeden_efs.a"
)
