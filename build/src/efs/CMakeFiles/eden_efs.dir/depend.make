# Empty dependencies file for eden_efs.
# This may be replaced when dependencies are built.
