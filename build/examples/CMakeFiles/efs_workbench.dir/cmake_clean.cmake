file(REMOVE_RECURSE
  "CMakeFiles/efs_workbench.dir/efs_workbench.cc.o"
  "CMakeFiles/efs_workbench.dir/efs_workbench.cc.o.d"
  "efs_workbench"
  "efs_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efs_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
