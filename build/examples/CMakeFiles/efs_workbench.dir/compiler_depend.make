# Empty compiler generated dependencies file for efs_workbench.
# This may be replaced when dependencies are built.
