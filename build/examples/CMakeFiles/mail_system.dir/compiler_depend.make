# Empty compiler generated dependencies file for mail_system.
# This may be replaced when dependencies are built.
