file(REMOVE_RECURSE
  "CMakeFiles/mail_system.dir/mail_system.cc.o"
  "CMakeFiles/mail_system.dir/mail_system.cc.o.d"
  "mail_system"
  "mail_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
