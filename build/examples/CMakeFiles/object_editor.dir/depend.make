# Empty dependencies file for object_editor.
# This may be replaced when dependencies are built.
