file(REMOVE_RECURSE
  "CMakeFiles/object_editor.dir/object_editor.cc.o"
  "CMakeFiles/object_editor.dir/object_editor.cc.o.d"
  "object_editor"
  "object_editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
