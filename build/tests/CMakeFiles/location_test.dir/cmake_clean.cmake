file(REMOVE_RECURSE
  "CMakeFiles/location_test.dir/location_test.cc.o"
  "CMakeFiles/location_test.dir/location_test.cc.o.d"
  "location_test"
  "location_test.pdb"
  "location_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
