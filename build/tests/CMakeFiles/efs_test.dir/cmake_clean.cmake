file(REMOVE_RECURSE
  "CMakeFiles/efs_test.dir/efs_test.cc.o"
  "CMakeFiles/efs_test.dir/efs_test.cc.o.d"
  "efs_test"
  "efs_test.pdb"
  "efs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
