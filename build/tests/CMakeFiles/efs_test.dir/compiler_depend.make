# Empty compiler generated dependencies file for efs_test.
# This may be replaced when dependencies are built.
