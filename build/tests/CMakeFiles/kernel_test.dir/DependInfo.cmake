
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernel_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/efs/CMakeFiles/eden_efs.dir/DependInfo.cmake"
  "/root/repo/build/src/gateway/CMakeFiles/eden_gateway.dir/DependInfo.cmake"
  "/root/repo/build/src/edit/CMakeFiles/eden_edit.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eden_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eden_types.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/eden_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eden_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eden_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eden_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eden_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
