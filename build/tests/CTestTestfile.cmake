# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
include("/root/repo/build/tests/location_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/efs_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/gateway_test[1]_include.cmake")
include("/root/repo/build/tests/edit_test[1]_include.cmake")
include("/root/repo/build/tests/message_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_edge_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
