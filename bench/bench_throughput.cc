// E11 — Simulator-core wall-clock throughput.
//
// Every other benchmark in this directory reports *virtual* time: how fast
// the modeled 1981 hardware is. This one deliberately reports *wall-clock*
// time: how fast the simulator itself executes, which bounds how large a
// simulated installation we can evaluate (SimBricks makes the same point for
// full-system simulation). All series use ->UseManualTime() fed from a
// monotonic host clock, so the google-benchmark "Time" column is host
// seconds, not simulated seconds.
//
// Series:
//   BM_SchedulerChurn        schedule/cancel/fire storm on a bare Simulation:
//                            pure event-queue overhead, no kernel or LAN
//   BM_TransportStream/bytes back-to-back reliable messages between two
//                            stations: the message path (fragment, transmit,
//                            reassemble, ack) without kernel logic
//   BM_Saturated16           16-node system, one closed-loop client per node
//                            invoking objects on the next node with zero
//                            think time: the wire and every kernel stay busy
//   BM_ShardedSaturated/S/N  the same saturated ring at N nodes on the
//                            parallel sharded engine with S worker shards
//                            (switched LAN, DESIGN.md §14); S=1 is the
//                            sharded baseline the speedup is measured against
//
// Exported gauges (BENCH_bench_throughput.json):
//   bench.throughput.events_per_sec        wall-clock simulator event rate
//   bench.throughput.invocations_per_sec   completed invocations per host sec
//   bench.throughput.shards<S>.nodes<N>.events_per_sec   sharded sweep (E16)
// Compare runs with scripts/perf_compare.py.
#include <chrono>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/workload.h"

namespace eden {
namespace {

using WallClock = std::chrono::steady_clock;

double WallSecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

// Pure event-queue churn: a self-rescheduling chain plus a ring of timers
// that are cancelled just before they fire — the Schedule/Cancel pattern the
// transport's retransmit path used to exercise per message.
void BM_SchedulerChurn(benchmark::State& state) {
  constexpr int kTimersPerTick = 8;
  Simulation sim;
  uint64_t fired = 0;
  for (auto _ : state) {
    constexpr uint64_t kEvents = 200000;
    auto start = WallClock::now();
    EventId cancel_ring[kTimersPerTick] = {};
    std::function<void()> tick = [&] {
      fired++;
      for (int i = 0; i < kTimersPerTick; i++) {
        sim.Cancel(cancel_ring[i]);
        cancel_ring[i] = sim.Schedule(Milliseconds(5), [&fired] { fired++; });
      }
      sim.Schedule(Microseconds(10), tick);
    };
    sim.Schedule(0, tick);
    sim.Run(kEvents);
    state.SetIterationTime(WallSecondsSince(start));
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(sim.events_executed()), benchmark::Counter::kIsRate);
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_SchedulerChurn)->UseManualTime();

// Message-path throughput: stream reliable messages of `bytes` between two
// transports as fast as the simulated wire carries them.
void BM_TransportStream(benchmark::State& state) {
  size_t bytes = static_cast<size_t>(state.range(0));
  Simulation sim;
  Lan lan(sim);
  Transport a(sim, lan), b(sim, lan);
  uint64_t delivered = 0;
  b.SetHandler([&](StationId, const auto& message) {
    benchmark::DoNotOptimize(message.data());
    delivered++;
  });
  for (auto _ : state) {
    constexpr int kMessages = 2000;
    uint64_t before = delivered;
    auto start = WallClock::now();
    for (int i = 0; i < kMessages; i++) {
      a.SendReliable(b.station_id(), Bytes(bytes, 0x42));
    }
    sim.Run();
    state.SetIterationTime(WallSecondsSince(start));
    state.counters["msgs_per_sec"] = benchmark::Counter(
        static_cast<double>(delivered - before), benchmark::Counter::kIsRate);
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(sim.events_executed()), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_TransportStream)->Arg(256)->Arg(1200)->Arg(16384)->UseManualTime();

// The headline series: a 16-node installation where every node runs one
// zero-think-time closed-loop client invoking a data object on its ring
// neighbor. The shared 10 Mb/s medium saturates; the wall-clock event rate
// is the simulator's capacity on a busy system.
void BM_Saturated16(benchmark::State& state) {
  constexpr size_t kNodes = 16;
  auto system = MakeBenchSystem(kNodes);
  std::vector<Capability> targets;
  std::vector<size_t> clients;
  for (size_t i = 0; i < kNodes; i++) {
    targets.push_back(MakeDataObject(*system, (i + 1) % kNodes, 64));
    clients.push_back(i);
  }
  // Warm every location cache so the steady state has no broadcasts.
  for (size_t i = 0; i < kNodes; i++) {
    system->Await(system->node(i).Invoke(targets[i], "size"));
  }
  Bytes payload(128, 0x5a);
  WorkFactory factory = [&](size_t client, uint64_t) {
    return WorkItem{targets[client], "put", InvokeArgs{}.AddBytes(payload)};
  };

  uint64_t events = 0;
  uint64_t invocations = 0;
  double wall_seconds = 0;
  for (auto _ : state) {
    uint64_t events_before = system->sim().events_executed();
    auto start = WallClock::now();
    WorkloadStats stats = RunClosedLoop(*system, clients, factory,
                                        /*duration=*/Milliseconds(200),
                                        /*mean_think_time=*/0);
    double elapsed = WallSecondsSince(start);
    state.SetIterationTime(elapsed);
    wall_seconds += elapsed;
    events += system->sim().events_executed() - events_before;
    invocations += stats.completed;
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
    state.counters["invocations_per_sec"] = benchmark::Counter(
        static_cast<double>(invocations), benchmark::Counter::kIsRate);
  }
  if (wall_seconds > 0) {
    BenchMetrics()
        .gauge("bench.throughput.events_per_sec")
        .Set(static_cast<int64_t>(static_cast<double>(events) / wall_seconds));
    BenchMetrics()
        .gauge("bench.throughput.invocations_per_sec")
        .Set(static_cast<int64_t>(static_cast<double>(invocations) / wall_seconds));
  }
}
BENCHMARK(BM_Saturated16)->UseManualTime()->MinTime(2.0);

// The tentpole series (E16): the saturated ring again, but on the parallel
// sharded engine. Block placement keeps each client's ring neighbor on the
// same shard except at the S boundaries, so the sweep measures engine scaling
// with a realistic mostly-local traffic matrix. Events are counted across
// every shard; the rate is wall-clock, so the S>1 rows show real speedup
// (acceptance bar: >= 3x at S=8, N=256, checked by scripts/ci.sh in full
// mode via the exported gauges).
void BM_ShardedSaturated(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  size_t nodes = static_cast<size_t>(state.range(1));
  SystemConfig config;
  config.seed = 42;
  config.shards = shards;
  EdenSystem system(config);
  MetricsExportScope export_scope(system);
  RegisterStandardTypes(system);
  system.AddNodes(nodes);
  std::vector<Capability> targets;
  std::vector<size_t> clients;
  for (size_t i = 0; i < nodes; i++) {
    targets.push_back(MakeDataObject(system, (i + 1) % nodes, 64));
    clients.push_back(i);
  }
  for (size_t i = 0; i < nodes; i++) {
    system.Await(system.node(i).Invoke(targets[i], "size"));
  }
  Bytes payload(128, 0x5a);
  WorkFactory factory = [&](size_t client, uint64_t) {
    return WorkItem{targets[client], "put", InvokeArgs{}.AddBytes(payload)};
  };

  uint64_t events = 0;
  uint64_t invocations = 0;
  double wall_seconds = 0;
  for (auto _ : state) {
    uint64_t events_before = system.total_events();
    auto start = WallClock::now();
    WorkloadStats stats = RunClosedLoop(system, clients, factory,
                                        /*duration=*/Milliseconds(200),
                                        /*mean_think_time=*/0);
    double elapsed = WallSecondsSince(start);
    state.SetIterationTime(elapsed);
    wall_seconds += elapsed;
    events += system.total_events() - events_before;
    invocations += stats.completed;
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
    state.counters["invocations_per_sec"] = benchmark::Counter(
        static_cast<double>(invocations), benchmark::Counter::kIsRate);
  }
  if (wall_seconds > 0) {
    std::string prefix = "bench.throughput.shards" + std::to_string(shards) +
                         ".nodes" + std::to_string(nodes);
    BenchMetrics()
        .gauge(prefix + ".events_per_sec")
        .Set(static_cast<int64_t>(static_cast<double>(events) / wall_seconds));
    BenchMetrics()
        .gauge(prefix + ".invocations_per_sec")
        .Set(static_cast<int64_t>(static_cast<double>(invocations) /
                                  wall_seconds));
  }
}
BENCHMARK(BM_ShardedSaturated)
    ->ArgsProduct({{1, 2, 4, 8}, {64, 256}})
    ->UseManualTime()
    ->MinTime(1.0);

}  // namespace
}  // namespace eden

// Custom main: EDEN_BENCH_MAIN plus a --quick flag (CI smoke) that caps the
// per-benchmark budget so the sharded sweep still covers every shard count.
int main(int argc, char** argv) {
  std::string json_path =
      ::eden::ConsumeJsonFlag(&argc, argv, "BENCH_bench_throughput.json");
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.01";
  if (quick) {
    args.push_back(min_time);
  }
  int run_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&run_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(run_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!::eden::WriteBenchJson("bench_throughput", json_path)) {
    return 1;
  }
  return 0;
}
