// E17 — Lease-based read caching of hot mutable objects (DESIGN.md §15):
// aggregate read throughput on one hot counter as the network and the write
// mix grow, leases on vs off.
//
// Series (leases 0 = off, 1 = on):
//   BM_LeaseHotReadMix/leases/nodes/write_pct
//       every node but the home reads the hot object each round, all at
//       once; with probability write_pct a round is instead an update round
//       (one station writes, the rest read), so write_pct is the object's
//       mutation rate relative to read bursts. Exports reads_per_vsec
//       (aggregate virtual-time read throughput), local_read_fraction, and
//       the grant/recall/renewal traffic the mix generated.
//   BM_LeaseRecallWriteLatency/holders
//       one write against `holders` outstanding read leases: the full
//       recall -> release -> commit round, i.e. what a writer pays for the
//       readers' fast path.
//
// Expected shape: with 0-10% writes a leased read is a local dispatch, so
// reads_per_vsec grows with the node count instead of flatlining at the
// home's round-trip rate — the >=3x-at-16-nodes split is the acceptance
// number for ISSUE 8 (tabulated in EXPERIMENTS.md E17). At 50% writes the
// recalls eat the benefit: leases hover near the no-lease line, which is the
// honest cost side of the trade.
//
// Run with --quick for a CI smoke (fewer iterations); --json=<path> to move
// the metrics export.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace eden {
namespace {

// Deterministic xorshift64* draw in [0,1), so benchmark runs are replayable
// and the leases-on/off workloads are op-for-op identical.
double NextUniform(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return static_cast<double>((x * 0x2545f4914f6cdd1dULL) >> 11) /
         static_cast<double>(1ULL << 53);
}

BenchSystem MakeLeaseSystem(size_t nodes, bool leases, uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  config.kernel.lease_reads = leases;
  BenchSystem system(new EdenSystem(config));
  RegisterStandardTypes(*system);
  system->AddNodes(nodes);
  return system;
}

void BM_LeaseHotReadMix(benchmark::State& state) {
  const bool leases = state.range(0) != 0;
  const size_t nodes = static_cast<size_t>(state.range(1));
  const int write_pct = static_cast<int>(state.range(2));
  const size_t kRounds = 24;
  const std::string series =
      std::string("lease.mix.") + (leases ? "on" : "off");
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t local_reads = 0;
  uint64_t grants = 0;
  uint64_t recalls = 0;
  uint64_t renewals = 0;
  double vseconds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeLeaseSystem(nodes, leases, 1981 + state.iterations());
    auto cap = system->node(0).CreateObject("std.counter", Representation{});
    system->RunFor(Milliseconds(5));  // creation's directory update lands
    // Same seed for both modes: the on/off op sequences are identical, so
    // the throughput split is purely the lease machinery.
    uint64_t rng = 0x9e3779b97f4a7c15ULL ^
                   static_cast<uint64_t>(state.iterations() + 1);
    state.ResumeTiming();

    SimTime start = system->sim().now();
    for (size_t r = 0; r < kRounds; r++) {
      // Aggregate load: every station fires its op for this round at once
      // (leases let the reads proceed in parallel on their own processors;
      // without them every read funnels through the home kernel). A round
      // mutates the object with probability write_pct — one station writes,
      // recalling whatever leases the read bursts built up.
      size_t writer = 0;  // station 0 never plays, so 0 = read-only round
      if (NextUniform(&rng) * 100.0 < static_cast<double>(write_pct)) {
        writer = 1 + static_cast<size_t>(NextUniform(&rng) *
                                         static_cast<double>(nodes - 1));
      }
      std::vector<Future<InvokeResult>> round;
      round.reserve(nodes - 1);
      for (size_t n = 1; n < nodes; n++) {
        if (n == writer) {
          round.push_back(system->node(n).Invoke(*cap, "increment"));
          writes++;
        } else {
          round.push_back(system->node(n).Invoke(*cap, "read"));
          reads++;
        }
      }
      for (Future<InvokeResult>& op : round) {
        system->Await(std::move(op));
      }
    }
    SimDuration elapsed = system->sim().now() - start;
    SetVirtualTime(state, elapsed, series);
    vseconds += ToSeconds(elapsed);

    state.PauseTiming();
    for (size_t n = 0; n < nodes; n++) {
      const KernelStats& stats = system->node(n).stats();
      local_reads += stats.lease_local_reads;
      grants += stats.lease_grants;
      recalls += stats.lease_recalls;
      renewals += stats.lease_renewals;
    }
    state.ResumeTiming();
  }
  state.counters["reads_per_vsec"] =
      vseconds == 0 ? 0.0 : static_cast<double>(reads) / vseconds;
  state.counters["local_read_fraction"] =
      reads == 0 ? 0.0
                 : static_cast<double>(local_reads) / static_cast<double>(reads);
  state.counters["writes"] = static_cast<double>(writes);
  state.counters["grants"] = static_cast<double>(grants);
  state.counters["recalls"] = static_cast<double>(recalls);
  state.counters["renewals"] = static_cast<double>(renewals);
}
BENCHMARK(BM_LeaseHotReadMix)
    ->ArgsProduct({{0, 1}, {8, 16, 32, 64}, {0, 10, 50}})
    ->UseManualTime();

// The writer's bill: one write-class invocation against `holders` live
// leases pays a recall round before it may commit.
void BM_LeaseRecallWriteLatency(benchmark::State& state) {
  const size_t holders = static_cast<size_t>(state.range(0));
  uint64_t recalls = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto system =
        MakeLeaseSystem(holders + 2, /*leases=*/true, 7 + state.iterations());
    auto cap = system->node(0).CreateObject("std.counter", Representation{});
    system->RunFor(Milliseconds(5));
    for (size_t h = 1; h <= holders; h++) {
      system->Await(system->node(h).Invoke(*cap, "read"));
    }
    system->RunFor(Milliseconds(5));  // every grant lands
    state.ResumeTiming();
    SimDuration elapsed = TimeAwait(
        *system, system->node(holders + 1).Invoke(*cap, "increment"));
    SetVirtualTime(state, elapsed, "lease.recall");
    recalls += system->node(0).stats().lease_recalls;
  }
  state.counters["recalls"] = static_cast<double>(recalls);
}
BENCHMARK(BM_LeaseRecallWriteLatency)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(48)
    ->UseManualTime();

}  // namespace
}  // namespace eden

// Custom main: EDEN_BENCH_MAIN plus a --quick flag (CI smoke) that caps the
// per-benchmark budget.
int main(int argc, char** argv) {
  std::string json_path =
      ::eden::ConsumeJsonFlag(&argc, argv, "BENCH_bench_lease.json");
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.01";
  if (quick) {
    args.push_back(min_time);
  }
  int run_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&run_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(run_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!::eden::WriteBenchJson("bench_lease", json_path)) {
    return 1;
  }
  return 0;
}
