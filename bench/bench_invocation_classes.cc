// E7 — Invocation classes as internal flow control (paper section 4.2: the
// type programmer "specifies the number of concurrent processes that are
// allowed to be servicing each class... by limiting a class to one process,
// mutual exclusion is obtained").
//
// Workload: 32 invocations of a 10 ms operation arrive at once; the class
// concurrency limit is the benchmark argument.
//   BM_ClassLimit/k         total completion time of the batch
//   BM_ClassIsolation       a limit-1 class is saturated while a second
//                           class keeps serving: classes don't interfere
//
// Expected shape: batch completion ~ ceil(32/k) * 10 ms + overheads —
// throughput rises linearly with the limit until the wire/dispatch floor;
// the isolated class's latency is unaffected by the saturated one.
#include "bench/bench_util.h"

namespace eden {
namespace {

constexpr int kBatch = 32;
constexpr SimDuration kWorkTime = Milliseconds(10);

std::shared_ptr<TypeManager> MakeWorkerType(int limit) {
  auto type = std::make_shared<TypeManager>("bench.worker");
  size_t work_class = type->AddClass("work", limit);
  size_t aux_class = type->AddClass("aux", 1);
  type->AddOperation(OperationSpec{
      .name = "work",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_await ctx.Sleep(kWorkTime);
        co_return InvokeResult::Ok();
      },
      .invocation_class = work_class,
  });
  type->AddOperation(OperationSpec{
      .name = "ping",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok();
      },
      .invocation_class = aux_class,
      .read_only = true,
  });
  return type;
}

void BM_ClassLimit(benchmark::State& state) {
  int limit = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 3 + limit;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.RegisterType(MakeWorkerType(limit));
    system.AddNodes(5);
    auto cap = system.node(0).CreateObject("bench.worker", Representation{});
    state.ResumeTiming();

    SimTime start = system.sim().now();
    std::vector<Future<InvokeResult>> futures;
    for (int i = 0; i < kBatch; i++) {
      futures.push_back(system.node(1 + i % 4).Invoke(*cap, "work"));
    }
    for (auto& future : futures) {
      system.Await(std::move(future));
    }
    SimDuration elapsed = system.sim().now() - start;
    SetVirtualTime(state, elapsed);
    state.counters["ops_per_virt_sec"] =
        static_cast<double>(kBatch) / ToSeconds(elapsed);
  }
}
BENCHMARK(BM_ClassLimit)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseManualTime()
    ->Iterations(1);

void BM_ClassIsolation(benchmark::State& state) {
  // Saturate the "work" class (limit 1) with long operations, then measure
  // "ping" latency in the independent "aux" class.
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.RegisterType(MakeWorkerType(1));
    system.AddNodes(3);
    auto cap = system.node(0).CreateObject("bench.worker", Representation{});
    std::vector<Future<InvokeResult>> background;
    for (int i = 0; i < 16; i++) {
      background.push_back(system.node(1).Invoke(*cap, "work"));
    }
    system.RunFor(Milliseconds(15));  // the work queue is now deep
    state.ResumeTiming();

    SimDuration elapsed =
        TimeAwait(system, system.node(2).Invoke(*cap, "ping"));
    SetVirtualTime(state, elapsed);
    state.PauseTiming();
    for (auto& future : background) {
      system.Await(std::move(future));
    }
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ClassIsolation)->UseManualTime();

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_invocation_classes);
