// E12 — Storage & checkpoint fast path (DESIGN.md §10).
//
// Two families, each with a slow-path ablation as benchmark argument 0 and
// the fast path as argument 1:
//
//   BM_StoreSaturatedWrites/mode   64 concurrent writes against one raw
//       StableStore. mode 0 = strict FIFO, no batching (the pre-§10 write
//       path); mode 1 = C-LOOK elevator + group commit. Exports per-op write
//       latency histograms (bench.storage.writes_{fifo,fast}.write_latency)
//       and an ops/virtual-second rate.
//
//   BM_CheckpointSaturated/mode    48 live objects (16 KB cold + 64 B hot
//       segment) on one node checkpointing concurrently, round after round.
//       mode 0 = full-record checkpoints on the FIFO disk; mode 1 = delta
//       chains + elevator + group commit. Reports checkpoints/virtual-second
//       and bytes written per checkpoint.
//
// Run with --quick for a CI smoke (fewer iterations); --json=<path> to move
// the metrics export.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/storage/stable_store.h"

namespace eden {
namespace {

DiskConfig SlowPathDisk() {
  DiskConfig config;
  config.elevator = false;
  config.max_batch_ops = 1;
  return config;
}

void BM_StoreSaturatedWrites(benchmark::State& state) {
  bool fast = state.range(0) == 1;
  const std::string series =
      fast ? "storage.writes_fast" : "storage.writes_fifo";
  Histogram& latency =
      BenchMetrics().histogram("bench." + series + ".write_latency");

  constexpr int kOps = 64;
  uint64_t total_ops = 0;
  for (auto _ : state) {
    Simulation sim;
    StableStore store(sim, fast ? DiskConfig{} : SlowPathDisk());
    SimTime start = sim.now();
    std::vector<Future<Status>> writes;
    writes.reserve(kOps);
    for (int i = 0; i < kOps; i++) {
      // Mostly checkpoint-delta-sized records with periodic large bases.
      size_t bytes = (i % 8 == 0) ? 32 * 1024 : 2 * 1024;
      Future<Status> put = store.Put("rec" + std::to_string(i),
                                     Bytes(bytes, static_cast<uint8_t>(i)));
      put.OnReady([&latency, &sim, start] { latency.Record(sim.now() - start); });
      writes.push_back(std::move(put));
    }
    for (auto& put : writes) {
      sim.RunWhile([&] { return !put.ready(); });
    }
    SetVirtualTime(state, sim.now() - start, series);
    total_ops += kOps;
  }
  state.counters["ops_per_vsec"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreSaturatedWrites)->Arg(0)->Arg(1)->UseManualTime();

void BM_CheckpointSaturated(benchmark::State& state) {
  bool fast = state.range(0) == 1;
  const std::string series = fast ? "storage.ckpt_fast" : "storage.ckpt_full";

  SystemConfig config;
  config.seed = 42;
  if (!fast) {
    config.kernel.checkpoint_deltas = false;
    config.disk = SlowPathDisk();
  }
  EdenSystem system(config);
  MetricsExportScope export_scope(system);
  RegisterStandardTypes(system);
  system.AddNodes(1);

  constexpr int kObjects = 48;
  std::vector<Capability> caps;
  for (int i = 0; i < kObjects; i++) {
    Representation rep;
    rep.set_data(0, Bytes(16 * 1024, static_cast<uint8_t>(i)));  // cold
    rep.set_data(1, Bytes(64, 0));                               // hot
    auto cap = system.node(0).CreateObject("std.data", rep);
    caps.push_back(cap.value_or(Capability()));
  }

  uint64_t round = 0;
  uint64_t total_checkpoints = 0;
  auto run_round = [&] {
    round++;
    for (int i = 0; i < kObjects; i++) {
      auto object = system.node(0).FindActive(caps[i].name());
      object->core->rep.set_data(
          1, Bytes(64, static_cast<uint8_t>(round + static_cast<uint64_t>(i))));
    }
    std::vector<Future<Status>> checkpoints;
    checkpoints.reserve(kObjects);
    for (int i = 0; i < kObjects; i++) {
      checkpoints.push_back(system.node(0).CheckpointObject(caps[i].name()));
    }
    for (auto& ckpt : checkpoints) {
      system.Await(std::move(ckpt));
    }
  };
  // Warm-up: the first checkpoint of every object is a full base record in
  // both modes; the steady state is what the benchmark times.
  run_round();

  uint64_t bytes_before = system.node(0).store().stats().written_bytes;
  for (auto _ : state) {
    SimTime start = system.sim().now();
    run_round();
    SetVirtualTime(state, system.sim().now() - start, series);
    total_checkpoints += kObjects;
  }
  uint64_t bytes_written =
      system.node(0).store().stats().written_bytes - bytes_before;
  state.counters["ckpt_per_vsec"] = benchmark::Counter(
      static_cast<double>(total_checkpoints), benchmark::Counter::kIsRate);
  state.counters["bytes_per_ckpt"] = benchmark::Counter(
      total_checkpoints == 0
          ? 0.0
          : static_cast<double>(bytes_written) /
                static_cast<double>(total_checkpoints));
}
BENCHMARK(BM_CheckpointSaturated)->Arg(0)->Arg(1)->UseManualTime();

}  // namespace
}  // namespace eden

// Custom main: EDEN_BENCH_MAIN plus a --quick flag (CI smoke) that caps the
// per-benchmark virtual-time budget.
int main(int argc, char** argv) {
  std::string json_path =
      ::eden::ConsumeJsonFlag(&argc, argv, "BENCH_bench_storage.json");
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.01";
  if (quick) {
    args.push_back(min_time);
  }
  int run_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&run_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(run_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!::eden::WriteBenchJson("bench_storage", json_path)) {
    return 1;
  }
  return 0;
}
