// E19 — Always-on telemetry: scrape/SLO pipeline overhead and export cost
// (DESIGN.md §17).
//
//   BM_Saturated8Telemetry   an eight-node saturated ring (the bench_
//       throughput shape at half size) where every iteration runs one 100 ms
//       (virtual) closed-loop segment on a system with telemetry off and one
//       on a system with a live pipeline (an armed SLO objective over the
//       classified traffic; scrape cadence per benchmark arg — 1 ms stress
//       and the 10 ms default), alternating which mode runs first. Pairing inside the iteration cancels host drift, exactly like
//       bench_tracing. The pipeline never schedules workload-visible events,
//       so the per-segment invocation counts must be identical off/on — the
//       zero-perturbation contract telemetry_test pins — and those counts
//       are what perf_compare gates.
//
//   BM_WindowJsonExport      cost and size of the windowed series export on
//       a populated installation: each iteration renders WindowJson over the
//       last 64 ticks. The document size is deterministic (virtual metrics
//       only), so the exported size histogram gates accidental export bloat.
//
//   BM_FlightRecorderBundle  end-to-end flight-recorder dump: a run whose
//       traffic burns an unattainable latency objective, with tail-retention
//       tracing attached, must produce a violation bundle; the bundle's size
//       is deterministic and gated like the window export.
//
// Exported metrics:
//
//   bench.observability.off.invocations_per_segment   gated (identical by
//   bench.observability.on.invocations_per_segment    the zero-perturbation
//                                                     contract)
//   bench.observability.window_json_bytes             gated export size
//   bench.observability.bundle_bytes                  gated bundle size
//   bench.observability.scrape_<N>ms.off.events_per_sec   wall-clock rates,
//   bench.observability.scrape_<N>ms.on.events_per_sec    host-dependent,
//   bench.observability.scrape_<N>ms.overhead_pct         not gated
//
//   (N = 1 and 10: the stress cadence and TelemetryConfig's default.)
//
// Run with --quick for a CI smoke; --json=<path> to move the metrics export.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/telemetry/telemetry.h"
#include "src/trace/span.h"
#include "src/workload/workload.h"

namespace eden {
namespace {

using WallClock = std::chrono::steady_clock;

double WallSecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

constexpr size_t kNodes = 8;

// The saturated ring with classified traffic; telemetry per `enabled`.
BenchSystem MakeTelemetrySystem(bool enabled,
                                SimDuration scrape_interval = Milliseconds(1)) {
  SystemConfig config;
  config.seed = 42;
  config.telemetry.enabled = enabled;
  config.telemetry.scrape_interval = scrape_interval;
  config.telemetry.window_ticks = 8;
  // Armed so every tick pays the burn-rate evaluation, with a target this
  // traffic never violates: a violation opens a flight-recorder bundle
  // (~44 KB of JSON mid-segment), which would turn the overhead benchmark
  // into a bundle-cost benchmark — BM_FlightRecorderBundle measures that
  // path on purpose.
  SloObjective objective;
  objective.metrics_class = "user";
  objective.latency_target = Milliseconds(500);
  config.telemetry.objectives.push_back(objective);
  BenchSystem system(new EdenSystem(config));
  RegisterStandardTypes(*system);
  system->AddNodes(kNodes);
  return system;
}

WorkFactory RingFactory(const std::vector<Capability>& targets,
                        const Bytes& payload) {
  return [&targets, &payload](size_t client, uint64_t) {
    WorkItem item{targets[client], "put", InvokeArgs{}.AddBytes(payload)};
    item.metrics_class = "user";
    return item;
  };
}

std::vector<Capability> MakeRingTargets(EdenSystem& system) {
  std::vector<Capability> targets;
  for (size_t i = 0; i < kNodes; i++) {
    targets.push_back(MakeDataObject(system, (i + 1) % kNodes, 64));
  }
  // Warm every location cache so the steady state has no broadcasts.
  for (size_t i = 0; i < kNodes; i++) {
    system.Await(system.node(i).Invoke(targets[i], "size"));
  }
  return targets;
}

// Arg 0: scrape cadence in virtual milliseconds. 1 ms is the stress shape
// (every node's ~97 series sampled per virtual ms of a deliberately light
// ring); 10 ms is TelemetryConfig's default cadence.
void BM_Saturated8Telemetry(benchmark::State& state) {
  const auto scrape_ms = static_cast<SimDuration>(state.range(0));
  std::vector<size_t> clients(kNodes);
  for (size_t i = 0; i < kNodes; i++) {
    clients[i] = i;
  }
  Bytes payload(128, 0x5a);

  // [0] = telemetry off, [1] = on. Fresh per-mode systems each iteration —
  // the pipeline cannot be detached once started — built in alternating
  // order so construction cost cancels with the mode pairing.
  double wall[2] = {0.0, 0.0};
  uint64_t events[2] = {0, 0};
  uint64_t invocations[2] = {0, 0};
  auto run_segment = [&](bool enabled) {
    BenchSystem system = MakeTelemetrySystem(enabled, Milliseconds(scrape_ms));
    std::vector<Capability> targets = MakeRingTargets(*system);
    WorkFactory factory = RingFactory(targets, payload);
    if (enabled) {
      // The warmup traffic above created the instruments; prime so the
      // timed region measures the steady-state scrape, not the first
      // tick's one-shot series registration (which a long-lived system
      // amortizes to nothing).
      system->telemetry()->Prime();
    }
    uint64_t events_before = system->sim().events_executed();
    auto start = WallClock::now();
    WorkloadStats stats = RunClosedLoop(*system, clients, factory,
                                        /*duration=*/Milliseconds(100),
                                        /*mean_think_time=*/0);
    double elapsed = WallSecondsSince(start);
    size_t mode = enabled ? 1 : 0;
    wall[mode] += elapsed;
    events[mode] += system->sim().events_executed() - events_before;
    invocations[mode] += stats.completed;
    BenchMetrics()
        .histogram(enabled ? "bench.observability.on.invocations_per_segment"
                           : "bench.observability.off.invocations_per_segment")
        .Record(static_cast<SimDuration>(stats.completed));
    return elapsed;
  };

  uint64_t iteration = 0;
  for (auto _ : state) {
    bool on_first = (iteration++ % 2) == 1;
    double elapsed = run_segment(on_first) + run_segment(!on_first);
    state.SetIterationTime(elapsed);
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(events[0] + events[1]), benchmark::Counter::kIsRate);
  }

  if (wall[0] > 0 && wall[1] > 0) {
    const std::string prefix = "bench.observability.scrape_" +
                               std::to_string(static_cast<long long>(scrape_ms)) +
                               "ms.";
    double rate_off = static_cast<double>(events[0]) / wall[0];
    double rate_on = static_cast<double>(events[1]) / wall[1];
    BenchMetrics()
        .gauge(prefix + "off.events_per_sec")
        .Set(static_cast<int64_t>(rate_off));
    BenchMetrics()
        .gauge(prefix + "on.events_per_sec")
        .Set(static_cast<int64_t>(rate_on));
    double overhead = (rate_off - rate_on) / rate_off * 100.0;
    BenchMetrics()
        .gauge(prefix + "overhead_pct")
        .Set(static_cast<int64_t>(overhead));
    std::printf("telemetry overhead (%lld ms scrapes): %.1f%% of wall-clock "
                "events/s (off %.0f/s, on %.0f/s, %llu paired segments)\n",
                static_cast<long long>(scrape_ms), overhead, rate_off, rate_on,
                static_cast<unsigned long long>(iteration));
  }
}
BENCHMARK(BM_Saturated8Telemetry)
    ->UseManualTime()
    ->MinTime(2.0)
    ->Arg(1)
    ->Arg(10);

void BM_WindowJsonExport(benchmark::State& state) {
  BenchSystem system = MakeTelemetrySystem(/*enabled=*/true);
  std::vector<size_t> clients(kNodes);
  for (size_t i = 0; i < kNodes; i++) {
    clients[i] = i;
  }
  Bytes payload(128, 0x5a);
  std::vector<Capability> targets = MakeRingTargets(*system);
  WorkFactory factory = RingFactory(targets, payload);
  RunClosedLoop(*system, clients, factory, Milliseconds(200));

  Telemetry* telemetry = system->telemetry();
  size_t bytes = 0;
  for (auto _ : state) {
    auto start = WallClock::now();
    std::string json = telemetry->WindowJson(/*last_ticks=*/64);
    state.SetIterationTime(WallSecondsSince(start));
    bytes = json.size();
    benchmark::DoNotOptimize(json);
  }
  BenchMetrics()
      .histogram("bench.observability.window_json_bytes")
      .Record(static_cast<SimDuration>(bytes));
  std::printf("window export: %zu bytes over 64 ticks, %zu nodes\n", bytes,
              static_cast<size_t>(kNodes));
}
BENCHMARK(BM_WindowJsonExport)->UseManualTime()->MinTime(1.0);

void BM_FlightRecorderBundle(benchmark::State& state) {
  size_t bundle_bytes = 0;
  for (auto _ : state) {
    SpanCollectorConfig trace_config;
    trace_config.tail.enabled = true;
    SpanCollector spans(trace_config);

    SystemConfig config;
    config.seed = 42;
    config.telemetry.enabled = true;
    config.telemetry.scrape_interval = Milliseconds(1);
    config.telemetry.window_ticks = 8;
    SloObjective objective;
    objective.metrics_class = "user";
    objective.latency_target = Microseconds(1);  // unattainable: must burn
    objective.min_requests = 16;
    config.telemetry.objectives.push_back(objective);
    auto system = std::make_unique<EdenSystem>(config);
    MetricsExportScope export_scope(*system);
    system->set_span_collector(&spans);
    RegisterStandardTypes(*system);
    system->AddNodes(4);
    Capability target = MakeDataObject(*system, 0, 64);
    Bytes payload(128, 0x5a);
    WorkFactory factory = [&](size_t, uint64_t) {
      WorkItem item{target, "put", InvokeArgs{}.AddBytes(payload)};
      item.metrics_class = "user";
      return item;
    };
    auto start = WallClock::now();
    RunClosedLoop(*system, {1, 2, 3}, factory, Milliseconds(50));
    state.SetIterationTime(WallSecondsSince(start));
    const Telemetry* telemetry = system->telemetry();
    if (telemetry->bundles().empty()) {
      state.SkipWithError("no violation bundle produced");
      break;
    }
    bundle_bytes = telemetry->bundles().front().json.size();
    system->set_span_collector(nullptr);
  }
  if (bundle_bytes > 0) {
    BenchMetrics()
        .histogram("bench.observability.bundle_bytes")
        .Record(static_cast<SimDuration>(bundle_bytes));
    std::printf("violation bundle: %zu bytes\n", bundle_bytes);
  }
}
BENCHMARK(BM_FlightRecorderBundle)->UseManualTime()->MinTime(1.0);

}  // namespace
}  // namespace eden

// Custom main: EDEN_BENCH_MAIN plus a --quick flag (CI smoke) that caps the
// per-benchmark time budget.
int main(int argc, char** argv) {
  std::string json_path =
      ::eden::ConsumeJsonFlag(&argc, argv, "BENCH_bench_observability.json");
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.05";
  if (quick) {
    args.push_back(min_time);
  }
  int run_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&run_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(run_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!::eden::WriteBenchJson("bench_observability", json_path)) {
    return 1;
  }
  return 0;
}
