// E5 — Object mobility (paper section 4.3: "an active Eden object can request
// that responsibility for its resources be transferred to another node
// through the kernel-supplied move operation").
//
// Series:
//   BM_Move/size                 drain + transfer + reactivation, vs size
//   BM_PostMoveForwarded         invocation through the stale cache +
//                                forwarding address right after a move
//   BM_PostMoveHealed            the next invocation, cache updated
//
// Expected shape: move cost grows linearly with representation size (one
// wire transfer at 10 Mb/s) plus a fixed drain/reactivate cost; the first
// post-move invocation pays one redirect round; subsequent ones match the
// plain cached-remote latency of E1.
#include "bench/bench_util.h"

namespace eden {
namespace {

void BM_Move(benchmark::State& state) {
  size_t rep_bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    // A fresh installation per iteration: repeated ping-pong moves would
    // otherwise measure interference with the previous iteration's
    // forwarding state rather than the clean move cost.
    auto system = MakeBenchSystem(3, 50 + state.iterations());
    Capability data = MakeDataObject(*system, 0, rep_bytes);
    auto object = system->node(0).FindActive(data.name());
    state.ResumeTiming();
    SimDuration elapsed = TimeAwait(
        *system,
        system->node(0).MoveObject(object, system->node(1).station()));
    SetVirtualTime(state, elapsed);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(rep_bytes));
}
BENCHMARK(BM_Move)
    ->Arg(1024)
    ->Arg(64 * 1024)
    ->Arg(256 * 1024)
    ->Arg(1024 * 1024)
    ->UseManualTime();

void BM_PostMoveForwarded(benchmark::State& state) {
  // Invoker cached the old host; measure the redirect-chasing invocation.
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeBenchSystem(4, 21 + state.iterations());
    Capability data = MakeDataObject(*system, 0, 1024);
    NodeKernel& invoker = system->node(3);
    system->Await(invoker.Invoke(data, "size"));  // cache -> node 0
    auto object = system->node(0).FindActive(data.name());
    system->Await(system->node(0).MoveObject(object, system->node(1).station()));
    system->RunFor(Milliseconds(5));
    state.ResumeTiming();
    SimDuration elapsed = TimeAwait(*system, invoker.Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_PostMoveForwarded)->UseManualTime();

void BM_PostMoveHealed(benchmark::State& state) {
  auto system = MakeBenchSystem(4);
  Capability data = MakeDataObject(*system, 0, 1024);
  NodeKernel& invoker = system->node(3);
  system->Await(invoker.Invoke(data, "size"));
  auto object = system->node(0).FindActive(data.name());
  system->Await(system->node(0).MoveObject(object, system->node(1).station()));
  system->RunFor(Milliseconds(5));
  system->Await(invoker.Invoke(data, "size"));  // heal the cache
  for (auto _ : state) {
    SimDuration elapsed = TimeAwait(*system, invoker.Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_PostMoveHealed)->UseManualTime();

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_migration);
