// E10 — Whole-system workload: a "day in Eden". Not tied to one mechanism;
// this is the integrated behavior the paper's architecture promises, measured
// end-to-end on the Figure 1 installation (five nodes, one file server).
//
// Mix (closed-loop clients on four workstation nodes):
//   45%  counter increments  (shared service object)
//   25%  directory lookups   (naming traffic)
//   20%  mailbox deposits    (write-through durable mail)
//   10%  data reads of a frozen, replica-cached 4 KB object
//
//   BM_MixedWorkload/clients          steady state, sweep client count
//   BM_MixedWorkloadWithFailure       same mix while a node fails and
//                                     restarts mid-run: availability and the
//                                     latency tail show the recovery cost
//
// Reported: throughput (ops per virtual second), mean and ~p99 latency,
// availability (% of invocations answered OK).
#include "bench/bench_util.h"
#include "src/workload/workload.h"

namespace eden {
namespace {

constexpr SimDuration kWindow = Seconds(5);

struct MixObjects {
  Capability counter;
  Capability directory;
  Capability mailbox;
  Capability frozen_data;
};

MixObjects SetUpMix(EdenSystem& system) {
  MixObjects mix;
  mix.counter = *system.node(0).CreateObject("std.counter", Representation{});
  mix.directory = *system.node(4).CreateObject("std.directory", Representation{});
  mix.mailbox = *system.node(1).CreateObject("std.mailbox", Representation{});
  Representation data;
  data.set_data(0, Bytes(4096, 0x42));
  mix.frozen_data = *system.node(2).CreateObject("std.data", data);
  system.Await(system.node(2).Invoke(mix.frozen_data, "freeze"));

  // Seed the directory with bindings the workload will look up.
  for (int i = 0; i < 8; i++) {
    system.Await(system.node(4).Invoke(
        mix.directory, "bind",
        InvokeArgs{}.AddString("svc" + std::to_string(i)).AddCapability(
            mix.counter)));
  }
  return mix;
}

WorkFactory MakeMixFactory(const MixObjects& mix) {
  return [mix](size_t client, uint64_t seq) -> WorkItem {
    uint64_t roll = (client * 7919 + seq * 104729) % 100;
    if (roll < 45) {
      return WorkItem{mix.counter, "increment", InvokeArgs{}.AddU64(1)};
    }
    if (roll < 70) {
      return WorkItem{mix.directory, "lookup",
                      InvokeArgs{}.AddString("svc" + std::to_string(seq % 8))};
    }
    if (roll < 90) {
      return WorkItem{mix.mailbox, "deposit",
                      InvokeArgs{}
                          .AddString("client" + std::to_string(client))
                          .AddString("message " + std::to_string(seq))};
    }
    return WorkItem{mix.frozen_data, "get", InvokeArgs{}};
  };
}

void ReportStats(benchmark::State& state, const WorkloadStats& stats,
                 SimDuration window) {
  state.counters["ops_per_virt_sec"] = stats.ThroughputPerVirtualSecond(window);
  state.counters["mean_latency_us"] = ToMicroseconds(stats.latency.mean());
  state.counters["p99_latency_us"] =
      ToMicroseconds(stats.latency.Percentile(0.99));
  state.counters["availability_pct"] = stats.AvailabilityPercent();
}

void BM_MixedWorkload(benchmark::State& state) {
  size_t clients = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 900 + clients;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.AddNodes(5);
    MixObjects mix = SetUpMix(system);
    std::vector<size_t> client_nodes;
    for (size_t c = 0; c < clients; c++) {
      client_nodes.push_back(c % 4);  // workstations 0-3; node 4 = file server
    }
    state.ResumeTiming();

    SimTime start = system.sim().now();
    WorkloadStats stats = RunClosedLoop(system, client_nodes,
                                        MakeMixFactory(mix), kWindow,
                                        Milliseconds(20));
    SetVirtualTime(state, system.sim().now() - start);
    ReportStats(state, stats, kWindow);
  }
}
BENCHMARK(BM_MixedWorkload)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseManualTime()
    ->Iterations(1);

void BM_MixedWorkloadWithFailure(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 1234;
    // Fast dead-host abandonment keeps the failure window's latency tail
    // bounded (see bench_ablation attempt-timeout sweep).
    config.kernel.attempt_timeout = Milliseconds(500);
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.AddNodes(5);
    MixObjects mix = SetUpMix(system);
    // Everything the failing node hosts must be recoverable: checkpoint the
    // counter (node 0) so it reincarnates at its checksite... which is node 0
    // itself, so bind the checksite to the file server first.
    auto counter_object = system.node(0).FindActive(mix.counter.name());
    counter_object->policy =
        CheckpointPolicy{system.node(4).station(), ReliabilityLevel::kLocal, 0};
    system.Await(system.node(0).CheckpointObject(mix.counter.name()));

    // Node 0 fails 1.5 s in and returns at 3 s.
    system.sim().Schedule(Milliseconds(1500),
                          [&system] { system.node(0).FailNode(); });
    system.sim().Schedule(Milliseconds(3000),
                          [&system] { system.node(0).RestartNode(); });

    std::vector<size_t> client_nodes = {1, 2, 3, 1, 2, 3, 1, 2};
    state.ResumeTiming();

    SimTime start = system.sim().now();
    WorkloadStats stats = RunClosedLoop(system, client_nodes,
                                        MakeMixFactory(mix), kWindow,
                                        Milliseconds(20), Seconds(4));
    SetVirtualTime(state, system.sim().now() - start);
    ReportStats(state, stats, kWindow);
  }
}
BENCHMARK(BM_MixedWorkloadWithFailure)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_system);
