// Ablation studies for the design choices DESIGN.md calls out. Each series
// turns one mechanism off (or sweeps its key constant) and measures what it
// buys — or costs.
//
//   BM_AblatePassiveReplyDelay/us    the delay passive checkpoint holders add
//                                    before answering locate queries. Safety
//                                    mechanism (active hosts must win); the
//                                    sweep shows its latency cost on the
//                                    reincarnation path.
//   BM_AblateFrozenCache/on          frozen-object replica caching on/off:
//                                    steady-state read latency.
//   BM_AblateRetransmitTimeout/ms    transport retransmit timer under 15%
//                                    frame loss: too small wastes the wire,
//                                    too large stalls invocations.
//   BM_AblateReplyCache/capacity     server-side at-most-once cache. With it
//                                    disabled, lost replies cause duplicate
//                                    executions (counted, not just timed).
//   BM_AblateAttemptTimeout/ms       per-host attempt timer: how fast an
//                                    invoker abandons a dead host and
//                                    re-locates (failure-recovery latency).
#include "bench/bench_util.h"

namespace eden {
namespace {

void BM_AblatePassiveReplyDelay(benchmark::State& state) {
  SimDuration delay = Milliseconds(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 31 + static_cast<uint64_t>(state.range(0));
    config.kernel.locate.passive_reply_delay = delay;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.AddNodes(4);
    Capability data = MakeDataObject(system, 0, 4096);
    system.Await(system.node(0).CheckpointObject(data.name()));
    system.Await(system.node(0).Invoke(data, "crash"));
    state.ResumeTiming();
    // Cold invocation of a passive object from another node: broadcast
    // locate -> delayed passive reply -> reincarnation -> dispatch.
    SimDuration elapsed = TimeAwait(system, system.node(2).Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_AblatePassiveReplyDelay)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->UseManualTime();

void BM_AblateFrozenCache(benchmark::State& state) {
  bool cache_on = state.range(0) != 0;
  SystemConfig config;
  config.kernel.cache_frozen_replicas = cache_on;
  EdenSystem system(config);
  MetricsExportScope export_scope(system);
  RegisterStandardTypes(system);
  system.AddNodes(3);
  Capability data = MakeDataObject(system, 0, 8 * 1024);
  system.Await(system.node(0).Invoke(data, "freeze"));
  // Warm-up: first read (and replica fetch if enabled).
  system.Await(system.node(2).Invoke(data, "get"));
  system.RunFor(Milliseconds(500));
  for (auto _ : state) {
    SimDuration elapsed = TimeAwait(system, system.node(2).Invoke(data, "get"));
    SetVirtualTime(state, elapsed);
  }
  state.counters["has_replica"] =
      system.node(2).HasReplica(data.name()) ? 1 : 0;
}
BENCHMARK(BM_AblateFrozenCache)->Arg(0)->Arg(1)->UseManualTime();

void BM_AblateRetransmitTimeout(benchmark::State& state) {
  SystemConfig config;
  config.seed = 77;
  config.lan.loss_probability = 0.15;
  config.transport.retransmit_timeout = Milliseconds(state.range(0));
  EdenSystem system(config);
  MetricsExportScope export_scope(system);
  RegisterStandardTypes(system);
  system.AddNodes(3);
  Capability data = MakeDataObject(system, 0, 2048);
  system.Await(system.node(2).Invoke(data, "size"));  // prime cache
  uint64_t failures = 0;
  for (auto _ : state) {
    SimTime start = system.sim().now();
    InvokeResult result = system.Await(system.node(2).Invoke(data, "get"));
    SimDuration elapsed = system.sim().now() - start;
    SetVirtualTime(state, elapsed);
    if (!result.ok()) {
      failures++;
    }
  }
  state.counters["failures"] = static_cast<double>(failures);
  state.counters["retransmits"] =
      static_cast<double>(system.node(2).transport().stats().retransmits);
}
BENCHMARK(BM_AblateRetransmitTimeout)
    ->Arg(5)
    ->Arg(20)
    ->Arg(80)
    ->Arg(320)
    ->UseManualTime();

void BM_AblateReplyCache(benchmark::State& state) {
  size_t capacity = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 123;
    // Make the KERNEL do the retrying: the transport sends each message
    // exactly once (no link-level retransmission), so a lost reply forces
    // the invoking kernel to re-send the request under the same invocation
    // id after its attempt timeout. Without the reply cache, that re-sent
    // request executes again.
    config.lan.loss_probability = 0.2;
    config.transport.max_retransmits = 0;
    config.kernel.attempt_timeout = Milliseconds(150);
    config.kernel.locate.timeout = Milliseconds(30);
    config.kernel.reply_cache_capacity = capacity;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.AddNodes(3);
    auto counter = system.node(0).CreateObject("std.counter", Representation{});
    state.ResumeTiming();

    constexpr int kCalls = 40;
    int ok_count = 0;
    SimTime start = system.sim().now();
    for (int i = 0; i < kCalls; i++) {
      if (system.Await(system.node(1 + i % 2).Invoke(*counter, "increment"))
              .ok()) {
        ok_count++;
      }
    }
    SetVirtualTime(state, system.sim().now() - start);
    system.lan().set_loss_probability(0.0);
    InvokeResult read = system.Await(system.node(0).Invoke(*counter, "read"));
    double value = static_cast<double>(read.results.U64At(0).value_or(0));
    // With the cache, value == ok_count (exactly-once). Without it, lost
    // replies make retransmitted requests execute again.
    state.counters["extra_executions"] = value - ok_count;
    state.counters["duplicates_suppressed"] =
        static_cast<double>(system.node(0).stats().duplicate_requests);
  }
}
BENCHMARK(BM_AblateReplyCache)->Arg(0)->Arg(4096)->UseManualTime()->Iterations(1);

void BM_AblateAttemptTimeout(benchmark::State& state) {
  SimDuration attempt_timeout = Milliseconds(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 17 + static_cast<uint64_t>(state.range(0));
    config.kernel.attempt_timeout = attempt_timeout;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.AddNodes(4);
    Capability data = MakeDataObject(system, 0, 1024);
    // Checkpoint at node 3 (the checksite), then let node 2 cache node 0.
    auto object = system.node(0).FindActive(data.name());
    object->policy = CheckpointPolicy{system.node(3).station(),
                                      ReliabilityLevel::kLocal, 0};
    system.Await(system.node(0).CheckpointObject(data.name()));
    system.Await(system.node(2).Invoke(data, "size"));
    // The host dies; node 2 still points at it.
    system.node(0).FailNode();
    state.ResumeTiming();

    // Recovery latency: stale cache -> attempt timeout -> re-locate ->
    // reincarnation at the checksite.
    SimDuration elapsed = TimeAwait(system, system.node(2).Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_AblateAttemptTimeout)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(8000)
    ->UseManualTime();

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_ablation);
