// E3 — Checkpoint cost vs representation size and reliability level (paper
// section 4.4: "different reliability levels may cause different actions when
// a checkpoint is issued").
//
// Series (size in bytes as the benchmark argument):
//   BM_CheckpointLocal/size      long-term state on the node's own disk
//   BM_CheckpointRemote/size     checksite on another node (wire + its disk)
//   BM_CheckpointMirrored/size   primary + synchronous mirror site
//
// Expected shape: all grow linearly in size (disk transfer at ~1 MB/s
// dominates); remote adds wire time (10 Mb/s ≈ disk rate, so roughly 2x);
// mirrored ≈ max(primary, mirror) + extra wire traffic, costlier than local
// but the two writes overlap.
#include "bench/bench_util.h"

namespace eden {
namespace {

void RunCheckpointBenchmark(benchmark::State& state, ReliabilityLevel level,
                            bool remote_primary) {
  size_t rep_bytes = static_cast<size_t>(state.range(0));
  auto system = MakeBenchSystem(3);
  Capability data = MakeDataObject(*system, 0, rep_bytes);
  auto object = system->node(0).FindActive(data.name());
  CheckpointPolicy policy;
  policy.primary_site =
      remote_primary ? system->node(1).station() : system->node(0).station();
  policy.level = level;
  policy.mirror_site = system->node(2).station();
  object->policy = policy;

  for (auto _ : state) {
    // Full rewrite between checkpoints: this bench measures the classic
    // cost-vs-size curve for a whole-representation record. (An unmutated
    // object's checkpoint is a no-op, and lightly-dirty objects write small
    // deltas — bench_storage covers those.)
    object->core->rep.MarkAllDirty();
    SimDuration elapsed =
        TimeAwait(*system, system->node(0).CheckpointObject(data.name()));
    SetVirtualTime(state, elapsed);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(rep_bytes));
}

void BM_CheckpointLocal(benchmark::State& state) {
  RunCheckpointBenchmark(state, ReliabilityLevel::kLocal,
                         /*remote_primary=*/false);
}
BENCHMARK(BM_CheckpointLocal)
    ->Arg(1024)
    ->Arg(16 * 1024)
    ->Arg(256 * 1024)
    ->Arg(1024 * 1024)
    ->UseManualTime();

void BM_CheckpointRemote(benchmark::State& state) {
  RunCheckpointBenchmark(state, ReliabilityLevel::kLocal,
                         /*remote_primary=*/true);
}
BENCHMARK(BM_CheckpointRemote)
    ->Arg(1024)
    ->Arg(16 * 1024)
    ->Arg(256 * 1024)
    ->Arg(1024 * 1024)
    ->UseManualTime();

void BM_CheckpointMirrored(benchmark::State& state) {
  RunCheckpointBenchmark(state, ReliabilityLevel::kMirrored,
                         /*remote_primary=*/false);
}
BENCHMARK(BM_CheckpointMirrored)
    ->Arg(1024)
    ->Arg(16 * 1024)
    ->Arg(256 * 1024)
    ->Arg(1024 * 1024)
    ->UseManualTime();

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_checkpoint);
