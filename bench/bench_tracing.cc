// E14 — Causal-span tracing overhead and critical-path attribution
// (DESIGN.md §12).
//
//   BM_Saturated16Tracing   the bench_throughput Saturated16 shape — a
//       16-node installation, one zero-think-time closed-loop client per
//       node invoking its ring neighbor — where every iteration runs one
//       100 ms (virtual) segment with no SpanCollector attached and one with
//       always-on tracing as the flight recorder runs it (DESIGN.md §17):
//       span assembly plus tail-based retention, which keeps the slow /
//       annotated / 1-in-N traces and recycles the rest without the
//       critical-path sweep. Both segments run on the SAME system,
//       alternating which runs first. Pairing the modes inside each
//       iteration cancels host drift (frequency scaling, noisy neighbors),
//       which dwarfs the effect being measured when the modes run as
//       separate benchmarks.
//
// Like bench_throughput this series reports *wall-clock* iteration time
// (UseManualTime fed from a host clock): the span layer never adds simulated
// work — the determinism tests prove virtual time is bit-identical either
// way — so its cost is host-side only. Exported:
//
//   bench.tracing.off.invocations_per_segment   histograms; identical by the
//   bench.tracing.on.invocations_per_segment    determinism contract, so
//                                               perf_compare gates on them
//   bench.tracing.off.events_per_sec    wall-clock simulator event rate
//   bench.tracing.on.events_per_sec     gauges, host-dependent, not gated
//   bench.tracing.overhead_pct          (off - on) / off * 100, rounded
//   bench.tracing.spans_held_high_water the most spans the collector ever
//                                       held at once — the bounded-memory
//                                       witness of the tail policy
//
// After the run the binary prints the measured overhead, the aggregate
// critical-path breakdown over the retained traces, and the worst slow
// exemplar — the "where does a saturated invocation spend its time" table
// the span layer exists for.
//
// Run with --quick for a CI smoke; --json=<path> to move the metrics export.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/trace/span.h"
#include "src/workload/workload.h"

namespace eden {
namespace {

using WallClock = std::chrono::steady_clock;

double WallSecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

void BM_Saturated16Tracing(benchmark::State& state) {
  constexpr size_t kNodes = 16;

  SpanCollectorConfig trace_config;
  trace_config.slow_exemplars = 1;
  // Flight-recorder mode: retain the slow tail, the annotated traces and a
  // deterministic 1-in-N baseline; recycle everything else on the spot.
  trace_config.tail.enabled = true;
  SpanCollector spans(trace_config);  // Declared before the system: outlives it.
  auto system = MakeBenchSystem(kNodes);
  std::vector<Capability> targets;
  std::vector<size_t> clients;
  for (size_t i = 0; i < kNodes; i++) {
    targets.push_back(MakeDataObject(*system, (i + 1) % kNodes, 64));
    clients.push_back(i);
  }
  // Warm every location cache so the steady state has no broadcasts.
  for (size_t i = 0; i < kNodes; i++) {
    system->Await(system->node(i).Invoke(targets[i], "size"));
  }
  Bytes payload(128, 0x5a);
  WorkFactory factory = [&](size_t client, uint64_t) {
    return WorkItem{targets[client], "put", InvokeArgs{}.AddBytes(payload)};
  };

  // [0] = untraced, [1] = traced.
  double wall[2] = {0.0, 0.0};
  uint64_t events[2] = {0, 0};
  uint64_t invocations[2] = {0, 0};
  auto run_segment = [&](bool traced) {
    if (traced) {
      system->set_span_collector(&spans);
    }
    uint64_t events_before = system->sim().events_executed();
    auto start = WallClock::now();
    WorkloadStats stats = RunClosedLoop(*system, clients, factory,
                                        /*duration=*/Milliseconds(100),
                                        /*mean_think_time=*/0);
    double elapsed = WallSecondsSince(start);
    if (traced) {
      // Detach and force-close the spans of requests still in flight, so
      // the untraced segment starts from a collector at rest.
      system->set_span_collector(nullptr);
      spans.Flush(system->sim().now());
    }
    size_t mode = traced ? 1 : 0;
    wall[mode] += elapsed;
    events[mode] += system->sim().events_executed() - events_before;
    invocations[mode] += stats.completed;
    BenchMetrics()
        .histogram(traced ? "bench.tracing.on.invocations_per_segment"
                          : "bench.tracing.off.invocations_per_segment")
        .Record(static_cast<SimDuration>(stats.completed));
    return elapsed;
  };

  uint64_t iteration = 0;
  for (auto _ : state) {
    bool traced_first = (iteration++ % 2) == 1;
    double elapsed =
        run_segment(traced_first) + run_segment(!traced_first);
    state.SetIterationTime(elapsed);
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(events[0] + events[1]), benchmark::Counter::kIsRate);
    state.counters["invocations_per_sec"] =
        benchmark::Counter(static_cast<double>(invocations[0] + invocations[1]),
                           benchmark::Counter::kIsRate);
  }

  if (wall[0] > 0 && wall[1] > 0) {
    double rate_off = static_cast<double>(events[0]) / wall[0];
    double rate_on = static_cast<double>(events[1]) / wall[1];
    BenchMetrics()
        .gauge("bench.tracing.off.events_per_sec")
        .Set(static_cast<int64_t>(rate_off));
    BenchMetrics()
        .gauge("bench.tracing.on.events_per_sec")
        .Set(static_cast<int64_t>(rate_on));
    double overhead = (rate_off - rate_on) / rate_off * 100.0;
    BenchMetrics()
        .gauge("bench.tracing.overhead_pct")
        .Set(static_cast<int64_t>(overhead));
    std::printf("tracing overhead: %.1f%% of wall-clock events/s "
                "(off %.0f/s, on %.0f/s, %llu paired segments)\n",
                overhead, rate_off, rate_on,
                static_cast<unsigned long long>(iteration));
  }
  const SpanCollectorStats& tail_stats = spans.stats();
  BenchMetrics()
      .gauge("bench.tracing.spans_held_high_water")
      .Set(static_cast<int64_t>(tail_stats.spans_held_high_water));
  std::printf("tail retention: %llu retained, %llu recycled, "
              "span high-water %llu\n",
              static_cast<unsigned long long>(tail_stats.traces_retained),
              static_cast<unsigned long long>(tail_stats.traces_discarded),
              static_cast<unsigned long long>(tail_stats.spans_held_high_water));

  // Where a saturated invocation spends its time: the aggregate critical-path
  // attribution over the retained traces.
  PhaseBreakdown aggregate;
  for (const TraceTree& tree : spans.completed()) {
    PhaseBreakdown one = SpanCollector::CriticalPath(tree);
    for (size_t k = 0; k < kSpanKindCount; k++) {
      aggregate.by_kind[k] += one.by_kind[k];
    }
    aggregate.total += one.total;
  }
  std::printf("Saturated16 critical path over %zu traces:\n%s",
              spans.completed().size(),
              SpanCollector::FormatBreakdown(aggregate).c_str());
  std::printf("worst exemplar:\n%s", spans.DumpSlowTraces().c_str());
}
BENCHMARK(BM_Saturated16Tracing)->UseManualTime()->MinTime(2.0);

}  // namespace
}  // namespace eden

// Custom main: EDEN_BENCH_MAIN plus a --quick flag (CI smoke) that caps the
// per-benchmark time budget.
int main(int argc, char** argv) {
  std::string json_path =
      ::eden::ConsumeJsonFlag(&argc, argv, "BENCH_bench_tracing.json");
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.05";
  if (quick) {
    args.push_back(min_time);
  }
  int run_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&run_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(run_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!::eden::WriteBenchJson("bench_tracing", json_path)) {
    return 1;
  }
  return 0;
}
