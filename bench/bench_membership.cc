// E18 — Elastic membership (DESIGN.md §16): what a drain costs and what a
// rolling restart does to the tail.
//
// Series:
//   BM_DrainEvacuation/objects
//       one node of an 8-node installation holds `objects` counters and is
//       drained out (LeaveNode). The timed quantity is the full evacuation:
//       membership change, directory-partition handoff, rebalancer moves,
//       departure. Exports objects_per_vsec. Histogram series
//       bench.membership.drain.virtual_time.
//   BM_RestartTailLatency/restarts
//       8 nodes under continuous elastic closed-loop increment traffic for a
//       fixed window; `restarts` of them are gracefully restarted one at a
//       time mid-window (restarts == 0 is the steady-state control). The
//       per-iteration workload p99 is recorded as
//       bench.membership.steady_p99.virtual_time (control) and
//       bench.membership.restart_p99.virtual_time (roll) — the two series
//       the CI gate watches: the first pins the elastic client's overhead,
//       the second bounds the restart-induced tail bump. Exports
//       completed_per_vsec, failed (must stay 0), and p99_us.
//
// Expected shape: a drain streams objects off at the move pipeline's pace
// (rate-limited by RebalanceConfig, so tens of ms for tens of objects), and
// a full roll costs the tail a bounded bump — EXPERIMENTS.md E18 tabulates
// the SLO numbers.
//
// Run with --quick for a CI smoke (fewer iterations); --json=<path> to move
// the metrics export.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/workload.h"

namespace eden {
namespace {

void BM_DrainEvacuation(benchmark::State& state) {
  const size_t kNodes = 8;
  const size_t objects = static_cast<size_t>(state.range(0));
  uint64_t drained = 0;
  double vseconds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeBenchSystem(kNodes, 1981 + state.iterations());
    std::vector<Capability> caps;
    caps.reserve(objects);
    for (size_t k = 0; k < objects; k++) {
      auto cap = system->node(1).CreateObject("std.counter", Representation{});
      caps.push_back(cap.value_or(Capability()));
    }
    system->RunFor(Milliseconds(5));  // creation publishes land
    state.ResumeTiming();

    SimDuration elapsed =
        TimeAwait(*system, system->LeaveNode(1, /*drain=*/true));
    SetVirtualTime(state, elapsed, "membership.drain");
    drained += objects;
    vseconds += ToSeconds(elapsed);
  }
  state.counters["objects_per_vsec"] =
      vseconds == 0 ? 0.0 : static_cast<double>(drained) / vseconds;
}
BENCHMARK(BM_DrainEvacuation)->Arg(8)->Arg(32)->UseManualTime();

void BM_RestartTailLatency(benchmark::State& state) {
  const size_t kNodes = 8;
  const size_t kClients = 12;
  const SimDuration kWindow = Seconds(2);
  const size_t restarts = static_cast<size_t>(state.range(0));
  const std::string series = restarts == 0 ? "membership.steady_p99"
                                           : "membership.restart_p99";
  uint64_t completed = 0;
  uint64_t failed = 0;
  double vseconds = 0;
  SimDuration worst_p99 = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 1981 + state.iterations();
    config.membership.rebalance.spread_gap = 2;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.AddNodes(kNodes);
    std::vector<Capability> caps;
    caps.reserve(kNodes);
    for (size_t i = 0; i < kNodes; i++) {
      auto cap = system.node(i).CreateObject("std.counter", Representation{});
      caps.push_back(cap.value_or(Capability()));
    }
    system.RunFor(Milliseconds(5));

    Promise<Status> rolled;
    [](EdenSystem* sys, size_t count, Promise<Status> done) -> DetachedTask {
      Status worst = OkStatus();
      for (size_t i = 0; i < count; i++) {
        Status status = co_await sys->GracefulRestart(i, Milliseconds(40));
        if (!status.ok()) {
          worst = status;
        }
        co_await SleepFor(sys->sim(), sys->config().membership.join_warmup);
      }
      done.Set(worst);
    }(&system, restarts, rolled);
    state.ResumeTiming();

    SimTime start = system.sim().now();
    WorkloadStats stats = RunClosedLoopElastic(
        system, kClients,
        [&caps](size_t client, uint64_t seq) {
          WorkItem item;
          item.target = caps[(client + seq) % caps.size()];
          item.operation = "increment";
          return item;
        },
        kWindow, /*mean_think_time=*/Milliseconds(2));
    system.Await(rolled.GetFuture());
    SimDuration elapsed = system.sim().now() - start;

    state.SetIterationTime(ToSeconds(elapsed));
    BenchMetrics().histogram("bench.iteration.virtual_time").Record(elapsed);
    // The gated quantity is the workload's tail, not the window length.
    SimDuration p99 = stats.latency.Percentile(0.99);
    BenchMetrics()
        .histogram("bench." + series + ".virtual_time")
        .Record(p99);
    completed += stats.completed;
    failed += stats.failed;
    vseconds += ToSeconds(elapsed);
    if (p99 > worst_p99) {
      worst_p99 = p99;
    }
  }
  state.counters["completed_per_vsec"] =
      vseconds == 0 ? 0.0 : static_cast<double>(completed) / vseconds;
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["p99_us"] = static_cast<double>(worst_p99);
}
BENCHMARK(BM_RestartTailLatency)->Arg(0)->Arg(8)->UseManualTime();

}  // namespace
}  // namespace eden

// Custom main: EDEN_BENCH_MAIN plus a --quick flag (CI smoke) that caps the
// per-benchmark budget.
int main(int argc, char** argv) {
  std::string json_path =
      ::eden::ConsumeJsonFlag(&argc, argv, "BENCH_bench_membership.json");
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.01";
  if (quick) {
    args.push_back(min_time);
  }
  int run_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&run_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(run_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!::eden::WriteBenchJson("bench_membership", json_path)) {
    return 1;
  }
  return 0;
}
