// E2 — Object location (paper sections 2 and 4.3: "it is the responsibility
// of the Eden kernel... to determine the node on which the target object
// resides and to forward the invocation message").
//
// Series:
//   BM_LocateCacheHit              hint cache points straight at the host
//   BM_LocateBroadcast/nodes       cold broadcast resolution vs network size
//   BM_LocateForwardingChain/hops  invocation chasing a chain of forwarding
//                                  addresses left by successive moves
//
// Expected shape: cache hit ≈ plain remote invocation; broadcast adds one
// query round (mildly growing with contention as nodes increase); forwarding
// chains cost one extra redirect round per hop until the cache heals.
#include "bench/bench_util.h"

namespace eden {
namespace {

void BM_LocateCacheHit(benchmark::State& state) {
  auto system = MakeBenchSystem(5);
  Capability data = MakeDataObject(*system, 0, 16);
  system->Await(system->node(2).Invoke(data, "size"));  // prime
  for (auto _ : state) {
    SimDuration elapsed = TimeAwait(*system, system->node(2).Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
  }
  state.counters["cache_hits"] =
      static_cast<double>(system->node(2).stats().locate_cache_hits);
}
BENCHMARK(BM_LocateCacheHit)->UseManualTime();

void BM_LocateBroadcast(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  uint64_t broadcasts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeBenchSystem(nodes, 7 + state.iterations());
    Capability data = MakeDataObject(*system, 0, 16);
    NodeKernel& invoker = system->node(nodes - 1);
    state.ResumeTiming();
    SimDuration elapsed = TimeAwait(*system, invoker.Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
    broadcasts += invoker.stats().locate_broadcasts;
  }
  state.counters["broadcasts_per_op"] =
      static_cast<double>(broadcasts) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_LocateBroadcast)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->UseManualTime();

void BM_LocateForwardingChain(benchmark::State& state) {
  // The object moves `hops` times after the invoker cached its location; the
  // next invocation follows the whole redirect chain.
  int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeBenchSystem(static_cast<size_t>(hops) + 3,
                                  11 + state.iterations());
    Capability data = MakeDataObject(*system, 0, 16);
    NodeKernel& invoker = system->node(static_cast<size_t>(hops) + 2);
    system->Await(invoker.Invoke(data, "size"));  // cache -> node 0
    for (int h = 1; h <= hops; h++) {
      auto object = system->NodeAt(static_cast<StationId>(h - 1))
                        ->FindActive(data.name());
      system->Await(system->node(static_cast<size_t>(h) - 1)
                        .MoveObject(object, system->node(static_cast<size_t>(h))
                                                .station()));
      system->RunFor(Milliseconds(5));
    }
    state.ResumeTiming();
    SimDuration elapsed = TimeAwait(*system, invoker.Invoke(data, "size"));
    SetVirtualTime(state, elapsed);

    // The cache healed: the next call goes straight to the final host.
    SimDuration healed = TimeAwait(*system, invoker.Invoke(data, "size"));
    state.counters["healed_us"] = ToMicroseconds(healed);
  }
}
BENCHMARK(BM_LocateForwardingChain)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime();

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_location);
