// E2/E15 — Object location: the broadcast protocol of paper section 4.3
// against the partitioned directory of DESIGN.md §13, over growing networks.
//
// Series (backend 0 = broadcast, 1 = directory):
//   BM_LocateCacheHit                   hint cache points straight at the host
//   BM_LocateColdResolve/backend/nodes  one cold resolution; exports
//                                       msgs_per_locate, the per-receiver
//                                       frame deliveries the round cost
//   BM_LocateZipfChurn/backend/nodes    Zipf-skewed population under
//                                       move churn: stale caches, forward
//                                       hints, directory updates/fallbacks
//   BM_LocateForwardingChain/hops       invocation chasing a chain of
//                                       forwarding addresses left by moves
//
// Expected shape: a cold broadcast touches every node, so msgs_per_locate
// grows linearly with the network; the directory asks one home node and gets
// one reply, so it stays O(1) at 64 nodes — that constant-vs-linear split is
// the acceptance number for ISSUE 6 (tabulated in EXPERIMENTS.md E15).
//
// Run with --quick for a CI smoke (fewer iterations); --json=<path> to move
// the metrics export.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace eden {
namespace {

const char* BackendTag(int backend) {
  return backend == 0 ? "broadcast" : "directory";
}

BenchSystem MakeLocationSystem(size_t nodes, int backend, uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  config.kernel.locate.backend =
      backend == 0 ? LocationBackend::kBroadcast : LocationBackend::kDirectory;
  BenchSystem system(new EdenSystem(config));
  RegisterStandardTypes(*system);
  system->AddNodes(nodes);
  return system;
}

// Deterministic xorshift64* draw in [0,1), so benchmark runs are replayable.
double NextUniform(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return static_cast<double>((x * 0x2545f4914f6cdd1dULL) >> 11) /
         static_cast<double>(1ULL << 53);
}

// Zipf(s=1) CDF over `count` ranks: rank 0 is the hot object.
std::vector<double> ZipfCdf(size_t count) {
  std::vector<double> cdf(count);
  double total = 0;
  for (size_t k = 0; k < count; k++) {
    total += 1.0 / static_cast<double>(k + 1);
    cdf[k] = total;
  }
  for (double& c : cdf) {
    c /= total;
  }
  return cdf;
}

size_t ZipfPick(uint64_t* state, const std::vector<double>& cdf) {
  double u = NextUniform(state);
  for (size_t k = 0; k < cdf.size(); k++) {
    if (u <= cdf[k]) {
      return k;
    }
  }
  return cdf.size() - 1;
}

void BM_LocateCacheHit(benchmark::State& state) {
  auto system = MakeBenchSystem(5);
  Capability data = MakeDataObject(*system, 0, 16);
  system->Await(system->node(2).Invoke(data, "size"));  // prime
  for (auto _ : state) {
    SimDuration elapsed =
        TimeAwait(*system, system->node(2).Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
  }
  state.counters["cache_hits"] =
      static_cast<double>(system->node(2).stats().locate_cache_hits);
}
BENCHMARK(BM_LocateCacheHit)->UseManualTime();

// One cold resolution per iteration: how long it takes and how many
// per-receiver frame deliveries the locate round costs as the network grows.
void BM_LocateColdResolve(benchmark::State& state) {
  const int backend = static_cast<int>(state.range(0));
  const size_t nodes = static_cast<size_t>(state.range(1));
  const std::string series = std::string("location.cold.") + BackendTag(backend);
  uint64_t frames = 0;
  uint64_t queries = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeLocationSystem(nodes, backend, 7 + state.iterations());
    Capability data = MakeDataObject(*system, 0, 16);
    system->RunFor(Milliseconds(5));  // creation's directory update lands
    NodeKernel& invoker = system->node(nodes - 1);
    uint64_t frames_before = system->lan().stats().frames_delivered;
    state.ResumeTiming();
    SimDuration elapsed = TimeAwait(*system, invoker.Invoke(data, "size"));
    SetVirtualTime(state, elapsed, series);
    frames += system->lan().stats().frames_delivered - frames_before;
    queries += invoker.stats().locate_queries;
  }
  // Includes the invoke request/reply pair (constant in both modes), so the
  // broadcast-vs-directory gap is purely the locate round's fan-out.
  state.counters["msgs_per_locate"] =
      queries == 0 ? 0.0
                   : static_cast<double>(frames) / static_cast<double>(queries);
}
BENCHMARK(BM_LocateColdResolve)
    ->ArgsProduct({{0, 1}, {8, 16, 32, 64}})
    ->UseManualTime();

// A Zipf-skewed object population under move churn: cold resolutions, cache
// hits on the hot ranks, stale-host forwards after each move, and (directory
// mode) versioned updates flowing to the homes.
void BM_LocateZipfChurn(benchmark::State& state) {
  const int backend = static_cast<int>(state.range(0));
  const size_t nodes = static_cast<size_t>(state.range(1));
  const size_t kObjects = 64;
  const size_t kQueries = 4 * nodes;
  const std::string series = std::string("location.zipf.") + BackendTag(backend);
  const std::vector<double> cdf = ZipfCdf(kObjects);
  uint64_t frames = 0;
  uint64_t ops = 0;
  uint64_t fallbacks = 0;
  uint64_t stale_forwards = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeLocationSystem(nodes, backend, 1981 + state.iterations());
    std::vector<Capability> population;
    population.reserve(kObjects);
    for (size_t i = 0; i < kObjects; i++) {
      population.push_back(MakeDataObject(*system, i % nodes, 16));
    }
    system->RunFor(Milliseconds(5));
    uint64_t rng = 0x9e3779b97f4a7c15ULL ^
                   static_cast<uint64_t>(state.iterations() + 1);
    uint64_t frames_before = system->lan().stats().frames_delivered;
    state.ResumeTiming();

    SimTime start = system->sim().now();
    for (size_t q = 0; q < kQueries; q++) {
      size_t rank = ZipfPick(&rng, cdf);
      NodeKernel& invoker = system->node((q * 7 + rank) % nodes);
      system->Await(invoker.Invoke(population[rank], "size"));
      ops++;
      if (q % 8 == 7) {
        // Move a hot object to a rotating destination: its cached locations
        // everywhere go stale and the next queries pay forwards/updates.
        size_t hot = ZipfPick(&rng, cdf) % 8;
        const ObjectName& name = population[hot].name();
        for (size_t n = 0; n < nodes; n++) {
          auto object = system->node(n).FindActive(name);
          if (object != nullptr) {
            system->Await(system->node(n).MoveObject(
                object, system->node((n + q) % nodes).station()));
            break;
          }
        }
        system->RunFor(Milliseconds(2));
      }
    }
    SetVirtualTime(state, system->sim().now() - start, series);

    state.PauseTiming();
    frames += system->lan().stats().frames_delivered - frames_before;
    for (size_t n = 0; n < nodes; n++) {
      const KernelStats& stats = system->node(n).stats();
      fallbacks +=
          system->node(n).metrics().CounterValue("kernel.directory.fallbacks");
      stale_forwards += stats.directory_stale_forwards;
    }
    state.ResumeTiming();
  }
  state.counters["msgs_per_op"] =
      ops == 0 ? 0.0 : static_cast<double>(frames) / static_cast<double>(ops);
  state.counters["fallbacks"] = static_cast<double>(fallbacks);
  state.counters["stale_forwards"] = static_cast<double>(stale_forwards);
}
BENCHMARK(BM_LocateZipfChurn)
    ->ArgsProduct({{0, 1}, {8, 16, 32, 64}})
    ->UseManualTime();

void BM_LocateForwardingChain(benchmark::State& state) {
  // The object moves `hops` times after the invoker cached its location; the
  // next invocation follows the whole redirect chain.
  int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeBenchSystem(static_cast<size_t>(hops) + 3,
                                  11 + state.iterations());
    Capability data = MakeDataObject(*system, 0, 16);
    NodeKernel& invoker = system->node(static_cast<size_t>(hops) + 2);
    system->Await(invoker.Invoke(data, "size"));  // cache -> node 0
    for (int h = 1; h <= hops; h++) {
      auto object = system->NodeAt(static_cast<StationId>(h - 1))
                        ->FindActive(data.name());
      system->Await(system->node(static_cast<size_t>(h) - 1)
                        .MoveObject(object, system->node(static_cast<size_t>(h))
                                                .station()));
      system->RunFor(Milliseconds(5));
    }
    state.ResumeTiming();
    SimDuration elapsed = TimeAwait(*system, invoker.Invoke(data, "size"));
    SetVirtualTime(state, elapsed);

    // The cache healed: the next call goes straight to the final host.
    SimDuration healed = TimeAwait(*system, invoker.Invoke(data, "size"));
    state.counters["healed_us"] = ToMicroseconds(healed);
  }
}
BENCHMARK(BM_LocateForwardingChain)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime();

}  // namespace
}  // namespace eden

// Custom main: EDEN_BENCH_MAIN plus a --quick flag (CI smoke) that caps the
// per-benchmark budget.
int main(int argc, char** argv) {
  std::string json_path =
      ::eden::ConsumeJsonFlag(&argc, argv, "BENCH_bench_location.json");
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.01";
  if (quick) {
    args.push_back(min_time);
  }
  int run_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&run_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(run_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!::eden::WriteBenchJson("bench_location", json_path)) {
    return 1;
  }
  return 0;
}
