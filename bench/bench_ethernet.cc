// E9 — The Ethernet substrate (paper section 3; the authors separately
// validated Experimental Ethernet behaviour in [Almes & Lazowska 1979],
// "The Behavior of Ethernet-Like Computer Communications Networks").
//
// Workload: `stations` stations offer Poisson traffic of 512-byte frames at
// an aggregate rate swept from 10% to 120% of the 10 Mb/s channel.
//   BM_EthernetLoad/offered%/stations
//
// Reported per run: delivered utilization (fraction of 10 Mb/s), mean frame
// delay (queueing + access + transmission) in microseconds, and collisions.
//
// Expected shape (the classic Ethernet curves): delivered utilization tracks
// offered load until ~90%+, then saturates near (but below) 1.0; mean delay
// stays near the 0.44 ms transmission time at low load and knees sharply as
// offered load approaches saturation; collisions rise with both load and
// station count.
#include "bench/bench_util.h"
#include "src/net/lan.h"

namespace eden {
namespace {

constexpr size_t kFrameBytes = 512;
constexpr SimDuration kWindow = Seconds(5);

void BM_EthernetLoad(benchmark::State& state) {
  int offered_percent = static_cast<int>(state.range(0));
  size_t stations = static_cast<size_t>(state.range(1));

  for (auto _ : state) {
    Simulation sim(1000 + offered_percent + stations);
    Lan lan(sim);

    // Aggregate frame rate to hit the offered load.
    double wire_bits_per_frame =
        static_cast<double>(kFrameBytes + lan.config().frame_overhead_bytes) * 8;
    double offered_bps = lan.config().bandwidth_bits_per_sec *
                         static_cast<double>(offered_percent) / 100.0;
    double frames_per_sec_per_station =
        offered_bps / wire_bits_per_frame / static_cast<double>(stations);
    double mean_interarrival_ns = 1e9 / frames_per_sec_per_station;

    struct Tracking {
      uint64_t delivered = 0;
      uint64_t bytes = 0;
      SimDuration total_delay = 0;
    };
    auto tracking = std::make_shared<Tracking>();

    std::vector<Station*> senders;
    for (size_t s = 0; s < stations; s++) {
      Station* station = lan.AttachStation();
      station->SetReceiveHandler([tracking, &sim](const Frame& frame) {
        BufferReader reader(frame.header);
        auto sent_at = reader.ReadI64();
        if (sent_at.ok()) {
          tracking->delivered++;
          tracking->bytes += frame.wire_size();
          tracking->total_delay += sim.now() - *sent_at;
        }
      });
      senders.push_back(station);
    }

    // Poisson sources: each station sends to a uniformly random other
    // station; the payload carries the enqueue timestamp.
    Rng arrivals(sim.rng().Fork());
    std::function<void(size_t)> schedule_next = [&](size_t s) {
      SimDuration gap = static_cast<SimDuration>(
          arrivals.NextExponential(mean_interarrival_ns));
      sim.Schedule(gap, [&, s] {
        if (sim.now() > kWindow) {
          return;
        }
        BufferWriter writer;
        writer.WriteI64(sim.now());
        Bytes payload = writer.Take();
        payload.resize(kFrameBytes, 0);
        size_t dst = (s + 1 + arrivals.NextBelow(stations - 1)) % stations;
        senders[s]->Send(Frame{0, senders[dst]->id(), std::move(payload)});
        schedule_next(s);
      });
    };
    for (size_t s = 0; s < stations; s++) {
      schedule_next(s);
    }

    // Measure utilization over the offered-load window only; then drain the
    // backlog so delay statistics cover every delivered frame.
    sim.RunUntil(kWindow);
    uint64_t window_wire_bytes = lan.stats().bytes_on_wire;
    sim.Run();
    SetVirtualTime(state, kWindow);

    double delivered_bps =
        static_cast<double>(window_wire_bytes) * 8 / ToSeconds(kWindow);
    state.counters["utilization"] =
        delivered_bps / lan.config().bandwidth_bits_per_sec;
    state.counters["mean_delay_us"] =
        tracking->delivered == 0
            ? 0
            : ToMicroseconds(tracking->total_delay) /
                  static_cast<double>(tracking->delivered);
    state.counters["collisions"] = static_cast<double>(lan.stats().collisions);
    state.counters["drops"] = static_cast<double>(lan.stats().transmit_failures);
  }
}

BENCHMARK(BM_EthernetLoad)
    ->ArgsProduct({{10, 30, 50, 70, 90, 110}, {5, 20}})
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_ethernet);
