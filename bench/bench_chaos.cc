// E13 — Chaos layer: availability and recovery latency under the standard
// fault storm (DESIGN.md §11).
//
//   BM_InvokeUnderStorm/mode     A mirrored counter on a flaky node driven by
//       a clean client. mode 0 = faults off (baseline wire with 2% loss);
//       mode 1 = FaultPlan::StandardStorm (wire corruption/duplication/delay,
//       flaky disks under the primary, crash-restart cycles, a partition/
//       heal pair). Exports first-try availability, per-request invoke
//       latency and — for requests that needed retries — the end-to-end
//       recovery latency distribution (bench.chaos.recovery_latency).
//
//   BM_RestoreAfterCorruption/mode   Reincarnation latency when the primary
//       checkpoint chain is damaged. mode 0 = intact chain (baseline restore),
//       mode 1 = corrupt delta link (longest-intact-prefix fallback),
//       mode 2 = corrupt base record (remote mirror promotion, including the
//       DataLoss round-trip the first attempt pays). The bounded-recovery
//       acceptance numbers come from these histograms.
//
// Run with --quick for a CI smoke (fewer iterations); --json=<path> to move
// the metrics export.
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/fault.h"

namespace eden {
namespace {

void BM_InvokeUnderStorm(benchmark::State& state) {
  const bool storm = state.range(0) == 1;
  const std::string series = storm ? "chaos.storm" : "chaos.clean";
  Histogram& invoke_latency =
      BenchMetrics().histogram("bench." + series + ".invoke_latency");
  Histogram& recovery_latency =
      BenchMetrics().histogram("bench.chaos.recovery_latency");
  Counter& unrecovered = BenchMetrics().counter("bench.chaos.unrecovered");

  constexpr size_t kNodes = 6;
  constexpr int kRounds = 40;
  const SimTime storm_end = Seconds(6);
  uint64_t iter = 0;
  uint64_t requests = 0;
  uint64_t first_try_ok = 0;
  for (auto _ : state) {
    SystemConfig config;
    config.seed = 42 + iter++;
    config.lan.loss_probability = 0.02;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.AddNodes(kNodes);
    if (storm) {
      system.EnableFaults(
          FaultPlan::StandardStorm(kNodes, 3, Milliseconds(10), storm_end));
    }

    // Primary on flaky node 0, mirror on clean node 3; node 4 drives (its
    // disk is clean and the storm's partition clips station 5, not it).
    auto cap = system.node(0).CreateObject("std.counter", Representation{});
    auto object = system.node(0).FindActive(cap->name());
    object->policy = CheckpointPolicy{system.node(0).station(),
                                      ReliabilityLevel::kMirrored,
                                      system.node(3).station()};
    system.Await(system.node(0).CheckpointObject(cap->name()));

    SimTime start = system.sim().now();
    for (int round = 0; round < kRounds; round++) {
      requests++;
      SimTime issued = system.sim().now();
      InvokeResult result = system.Await(
          system.node(4).Invoke(*cap, "increment", InvokeArgs{}.AddU64(1),
                                InvokeOptions::WithTimeout(Seconds(2))));
      if (result.ok()) {
        first_try_ok++;
        invoke_latency.Record(system.sim().now() - issued);
      } else {
        // Client-side retry loop: how long until the system serves us again?
        bool recovered = false;
        for (int attempt = 0; attempt < 8 && !recovered; attempt++) {
          recovered = system
                          .Await(system.node(4).Invoke(
                              *cap, "increment", InvokeArgs{}.AddU64(1),
                              InvokeOptions::WithTimeout(Seconds(10))))
                          .ok();
        }
        if (recovered) {
          recovery_latency.Record(system.sim().now() - issued);
        } else {
          unrecovered.Increment();
        }
      }
      if (round % 4 == 3) {
        system.Await(system.node(4).Invoke(
            *cap, "checkpoint", {}, InvokeOptions::WithTimeout(Seconds(10))));
      }
      system.RunFor(Milliseconds(100));
    }
    // Past the storm the system must serve immediately: one final read.
    while (system.sim().now() < storm_end) {
      system.RunFor(Milliseconds(250));
    }
    InvokeResult final_read = system.Await(system.node(4).Invoke(
        *cap, "read", {}, InvokeOptions::WithTimeout(Seconds(30))));
    if (!final_read.ok()) {
      unrecovered.Increment();
    }
    SetVirtualTime(state, system.sim().now() - start, series);
  }
  state.counters["first_try_pct"] = benchmark::Counter(
      requests == 0 ? 0.0
                    : 100.0 * static_cast<double>(first_try_ok) /
                          static_cast<double>(requests));
  state.counters["req_per_vsec"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InvokeUnderStorm)->Arg(0)->Arg(1)->UseManualTime();

void BM_RestoreAfterCorruption(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const std::string series = mode == 0   ? "chaos.restore_clean"
                             : mode == 1 ? "chaos.restore_prefix"
                                         : "chaos.restore_mirror";
  Histogram& restore_latency =
      BenchMetrics().histogram("bench." + series + ".restore_latency");
  Counter& unrecovered = BenchMetrics().counter("bench.chaos.unrecovered");

  uint64_t iter = 0;
  for (auto _ : state) {
    SystemConfig config;
    config.seed = 1000 + iter++;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    system.AddNodes(4);

    auto cap = system.node(0).CreateObject("std.counter", Representation{});
    auto object = system.node(0).FindActive(cap->name());
    object->policy = CheckpointPolicy{system.node(0).station(),
                                      ReliabilityLevel::kMirrored,
                                      system.node(3).station()};
    // Base + one delta link on both the primary and the mirror chain.
    system.Await(system.node(0).Invoke(*cap, "increment",
                                       InvokeArgs{}.AddU64(7)));
    system.Await(system.node(0).CheckpointObject(cap->name()));
    system.Await(system.node(0).Invoke(*cap, "increment",
                                       InvokeArgs{}.AddU64(7)));
    system.Await(system.node(0).CheckpointObject(cap->name()));
    system.Await(system.node(0).Invoke(*cap, "crash", {}));

    const std::string base_key = "ckpt/" + cap->name().ToKey();
    if (mode == 1) {
      system.node(0).store().CorruptRecord(base_key + "#d1");
    } else if (mode == 2) {
      system.node(0).store().CorruptRecord(base_key);
    }

    // Time from the first read to a served reply — including, in mode 2,
    // the DataLoss the quarantined primary hands the first attempt before
    // the mirror holder answers the next locate.
    SimTime start = system.sim().now();
    bool recovered = false;
    for (int attempt = 0; attempt < 4 && !recovered; attempt++) {
      recovered = system
                      .Await(system.node(1).Invoke(
                          *cap, "read", {},
                          InvokeOptions::WithTimeout(Seconds(10))))
                      .ok();
    }
    if (recovered) {
      restore_latency.Record(system.sim().now() - start);
    } else {
      unrecovered.Increment();
    }
    SetVirtualTime(state, system.sim().now() - start, series);
  }
}
BENCHMARK(BM_RestoreAfterCorruption)->Arg(0)->Arg(1)->Arg(2)->UseManualTime();

}  // namespace
}  // namespace eden

// Custom main: EDEN_BENCH_MAIN plus a --quick flag (CI smoke) that caps the
// per-benchmark virtual-time budget.
int main(int argc, char** argv) {
  std::string json_path =
      ::eden::ConsumeJsonFlag(&argc, argv, "BENCH_bench_chaos.json");
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  std::vector<char*> args(argv, argv + argc);
  static char min_time[] = "--benchmark_min_time=0.01";
  if (quick) {
    args.push_back(min_time);
  }
  int run_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&run_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(run_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!::eden::WriteBenchJson("bench_chaos", json_path)) {
    return 1;
  }
  return 0;
}
