// E8 — Eden File System (paper section 5: "transaction-based, storing
// immutable versions that may be replicated at multiple sites for reliability
// or performance enhancement").
//
// Series:
//   BM_EfsCommit/replicas        2PC commit latency vs replication factor
//   BM_EfsRead/replicas          single-client read latency (replica rotation)
//   BM_EfsReadScaling/clients    aggregate read throughput, 3 replicas,
//                                clients rotating across them
//
// Expected shape: commit latency grows with the replication factor (prepare +
// commit on every replica, serialized by the store's txn class); read latency
// is flat in the replication factor; aggregate read throughput grows with
// clients because reads spread across replicas.
#include "bench/bench_util.h"
#include "src/efs/client.h"
#include "src/efs/file_store.h"

namespace eden {
namespace {

std::vector<Capability> MakeStores(EdenSystem& system, size_t replicas) {
  std::vector<Capability> stores;
  for (size_t i = 0; i < replicas; i++) {
    stores.push_back(
        *system.node(i).CreateObject("efs.store", Representation{}));
  }
  return stores;
}

void BM_EfsCommit(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  SystemConfig config;
  config.seed = 100 + replicas;
  EdenSystem system(config);
  MetricsExportScope export_scope(system);
  RegisterStandardTypes(system);
  RegisterEfsTypes(system);
  system.AddNodes(replicas + 1);
  EfsClient client(system.node(replicas), MakeStores(system, replicas));
  system.Await(client.CreateFile("/bench"));

  for (auto _ : state) {
    auto txn = client.Begin();
    txn.Write("/bench", Bytes(4096, 0x77));
    SimDuration elapsed = TimeAwait(system, txn.Commit());
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_EfsCommit)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->UseManualTime();

void BM_EfsRead(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  SystemConfig config;
  config.seed = 200 + replicas;
  EdenSystem system(config);
  MetricsExportScope export_scope(system);
  RegisterStandardTypes(system);
  RegisterEfsTypes(system);
  system.AddNodes(replicas + 1);
  EfsClient client(system.node(replicas), MakeStores(system, replicas));
  system.Await(client.CreateFile("/bench"));
  auto txn = client.Begin();
  txn.Write("/bench", Bytes(4096, 0x77));
  system.Await(txn.Commit());

  for (auto _ : state) {
    SimDuration elapsed = TimeAwait(system, client.Read("/bench"));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_EfsRead)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->UseManualTime();

// Parameterized coroutine (no captures: they would dangle on suspension).
Task<void> EfsReadLoop(EdenSystem* system, EfsClient* reader, SimTime deadline,
                       std::shared_ptr<uint64_t> completed,
                       std::shared_ptr<int> live) {
  while (system->sim().now() < deadline) {
    auto result = co_await reader->Read("/bench");
    if (result.ok()) {
      (*completed)++;
    }
  }
  (*live)--;
}

void BM_EfsReadScaling(benchmark::State& state) {
  size_t clients = static_cast<size_t>(state.range(0));
  constexpr size_t kReplicas = 3;
  constexpr SimDuration kWindow = Seconds(2);
  for (auto _ : state) {
    state.PauseTiming();
    SystemConfig config;
    config.seed = 300 + clients;
    EdenSystem system(config);
    MetricsExportScope export_scope(system);
    RegisterStandardTypes(system);
    RegisterEfsTypes(system);
    system.AddNodes(kReplicas + clients);
    std::vector<Capability> stores = MakeStores(system, kReplicas);

    // One bootstrap client writes the file.
    EfsClient bootstrap(system.node(kReplicas), stores);
    system.Await(bootstrap.CreateFile("/bench"));
    auto txn = bootstrap.Begin();
    // Small file: scaling should expose store service capacity, not the
    // shared 10 Mb/s wire (bench_ethernet covers wire saturation).
    txn.Write("/bench", Bytes(512, 0x77));
    system.Await(txn.Commit());

    // Per-node clients, each starting on a different replica.
    std::vector<std::unique_ptr<EfsClient>> readers;
    for (size_t c = 0; c < clients; c++) {
      std::vector<Capability> rotated;
      for (size_t r = 0; r < kReplicas; r++) {
        rotated.push_back(stores[(c + r) % kReplicas]);
      }
      readers.push_back(std::make_unique<EfsClient>(
          system.node(kReplicas + c), rotated));
    }
    state.ResumeTiming();

    auto completed = std::make_shared<uint64_t>(0);
    auto live = std::make_shared<int>(static_cast<int>(clients));
    SimTime start = system.sim().now();
    SimTime deadline = start + kWindow;
    for (size_t c = 0; c < clients; c++) {
      Spawn(EfsReadLoop(&system, readers[c].get(), deadline, completed, live));
    }
    system.sim().RunWhile([live] { return *live > 0; });
    SimDuration elapsed = system.sim().now() - start;
    SetVirtualTime(state, elapsed);
    state.counters["reads_per_virt_sec"] =
        static_cast<double>(*completed) / ToSeconds(elapsed);
  }
}
BENCHMARK(BM_EfsReadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_efs);
