// E1 — Invocation latency (paper section 4.2: "invocation is a simple,
// synchronous operation much like a procedure call"; the kernel forwards to
// the target's node transparently).
//
// Series:
//   BM_InvokeSameNode/argbytes    caller and object on one node
//   BM_InvokeRemote/argbytes      object on another node, location cached
//   BM_InvokeRemoteCold           first-ever contact: broadcast locate +
//                                 request (the "cold" path)
//   BM_InvokeNested               object-to-object call chain of depth k
//
// Expected shape (EXPERIMENTS.md): remote >> local (wire + serialization
// dominate); both grow linearly in argument size; the cold path adds one
// locate round on top of the cached remote path.
#include "bench/bench_util.h"

namespace eden {
namespace {

void BM_InvokeSameNode(benchmark::State& state) {
  size_t arg_bytes = static_cast<size_t>(state.range(0));
  auto system = MakeBenchSystem(2);
  Capability data = MakeDataObject(*system, 0, 16);
  Bytes payload(arg_bytes, 0x33);
  for (auto _ : state) {
    SimDuration elapsed = TimeAwait(
        *system,
        system->node(0).Invoke(data, "put", InvokeArgs{}.AddBytes(payload)));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_InvokeSameNode)->Arg(64)->Arg(1024)->Arg(16384)->UseManualTime();

void BM_InvokeRemote(benchmark::State& state) {
  size_t arg_bytes = static_cast<size_t>(state.range(0));
  auto system = MakeBenchSystem(5);
  Capability data = MakeDataObject(*system, 0, 16);
  Bytes payload(arg_bytes, 0x33);
  // Prime node 3's location cache.
  system->Await(system->node(3).Invoke(data, "size"));
  for (auto _ : state) {
    SimDuration elapsed = TimeAwait(
        *system,
        system->node(3).Invoke(data, "put", InvokeArgs{}.AddBytes(payload)));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_InvokeRemote)->Arg(64)->Arg(1024)->Arg(16384)->UseManualTime();

void BM_InvokeRemoteCold(benchmark::State& state) {
  // Every iteration uses a FRESH invoking node so the location cache never
  // helps: cost = broadcast locate + reply + request + reply.
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeBenchSystem(5, 42 + state.iterations());
    Capability data = MakeDataObject(*system, 0, 16);
    state.ResumeTiming();
    SimDuration elapsed =
        TimeAwait(*system, system->node(4).Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_InvokeRemoteCold)->UseManualTime();

void BM_InvokeNested(benchmark::State& state) {
  // A chain of k proxy objects, one per node, each forwarding to the next:
  // measures invocation cost composing across object boundaries.
  int depth = static_cast<int>(state.range(0));
  auto system = MakeBenchSystem(6);

  auto proxy_type = std::make_shared<TypeManager>("bench.proxy");
  proxy_type->AddClass("fwd", 8);
  proxy_type->AddOperation(OperationSpec{
      .name = "call",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        if (ctx.rep().capability_count() == 0) {
          co_return InvokeResult::Ok(InvokeArgs{}.AddU64(ctx.node()));
        }
        InvokeResult nested =
            co_await ctx.Invoke(ctx.rep().capability(0), "call");
        co_return nested;
      },
      .invocation_class = 1,
  });
  system->RegisterType(proxy_type);

  Capability next;  // chain tail: proxy with no successor
  for (int i = depth; i >= 0; i--) {
    Representation rep;
    if (!next.IsNull()) {
      rep.AddCapability(next);
    }
    auto cap = system->node(i % 5 + 1).CreateObject("bench.proxy", rep);
    next = *cap;
  }
  // Warm all location caches.
  system->Await(system->node(0).Invoke(next, "call"));
  for (auto _ : state) {
    SimDuration elapsed = TimeAwait(*system, system->node(0).Invoke(next, "call"));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_InvokeNested)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseManualTime();

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_invocation);
