// E4 — Passive/active transitions (paper sections 4.2 and 4.4: "a passive
// object becomes active when an invocation request is received"; reincarnation
// is the basic method for object restoration).
//
// Series:
//   BM_WarmInvoke/size           object already active (baseline)
//   BM_Reincarnate/size          object passive: first invoke pays activation
//                                (disk read + condition handler) transparently
//   BM_ReincarnateRemoteInvoker/size  the invoker is on another node
//
// Expected shape: reincarnation adds disk access (~40 ms) + transfer (size /
// 1 MB/s) + activation overhead on top of the warm path, growing linearly in
// representation size; the invoker's API is identical (single-level store).
#include "bench/bench_util.h"

namespace eden {
namespace {

void BM_WarmInvoke(benchmark::State& state) {
  size_t rep_bytes = static_cast<size_t>(state.range(0));
  auto system = MakeBenchSystem(2);
  Capability data = MakeDataObject(*system, 0, rep_bytes);
  for (auto _ : state) {
    SimDuration elapsed = TimeAwait(*system, system->node(0).Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
  }
}
BENCHMARK(BM_WarmInvoke)
    ->Arg(1024)
    ->Arg(64 * 1024)
    ->Arg(1024 * 1024)
    ->UseManualTime();

void RunReincarnation(benchmark::State& state, bool remote_invoker) {
  size_t rep_bytes = static_cast<size_t>(state.range(0));
  auto system = MakeBenchSystem(3);
  Capability data = MakeDataObject(*system, 0, rep_bytes);
  for (auto _ : state) {
    state.PauseTiming();
    // Checkpoint + crash: the object goes passive on node 0's disk.
    system->Await(system->node(0).CheckpointObject(data.name()));
    system->Await(system->node(0).Invoke(data, "crash"));
    state.ResumeTiming();
    NodeKernel& invoker = remote_invoker ? system->node(1) : system->node(0);
    SimDuration elapsed = TimeAwait(*system, invoker.Invoke(data, "size"));
    SetVirtualTime(state, elapsed);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(rep_bytes));
}

void BM_Reincarnate(benchmark::State& state) {
  RunReincarnation(state, /*remote_invoker=*/false);
}
BENCHMARK(BM_Reincarnate)
    ->Arg(1024)
    ->Arg(64 * 1024)
    ->Arg(1024 * 1024)
    ->UseManualTime();

void BM_ReincarnateRemoteInvoker(benchmark::State& state) {
  RunReincarnation(state, /*remote_invoker=*/true);
}
BENCHMARK(BM_ReincarnateRemoteInvoker)
    ->Arg(1024)
    ->Arg(64 * 1024)
    ->Arg(1024 * 1024)
    ->UseManualTime();

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_reincarnation);
