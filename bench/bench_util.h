// Shared helpers for the Eden benchmark harness.
//
// All benchmarks report *virtual* time: each iteration runs a scenario inside
// the discrete-event simulation and feeds the elapsed simulated seconds to
// google-benchmark via SetIterationTime (benchmarks use ->UseManualTime()).
// Results are therefore deterministic and describe the modeled 1981 system
// (10 Mb/s Ethernet, ~1 MB/s disks, era processor budgets), not the host.
//
// Besides the google-benchmark console report, every binary exports its
// metrics as JSON. The process-wide BenchMetrics() registry accumulates
//   * bench.iteration.virtual_time — one Histogram sample per timed
//     iteration (every SetVirtualTime call), and
//   * the full kernel/store/transport/lan rollup of every EdenSystem built
//     through MakeBenchSystem (merged when the system is destroyed).
// EDEN_BENCH_MAIN(name) then writes BENCH_<name>.json next to the binary
// (override with --json=<path>) after the benchmarks run.
#ifndef EDEN_BENCH_BENCH_UTIL_H_
#define EDEN_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/kernel/eden_system.h"
#include "src/metrics/metrics.h"
#include "src/types/standard_types.h"

namespace eden {

// Process-wide registry the JSON export reads. Benchmarks normally touch it
// only through SetVirtualTime and the MakeBenchSystem deleter.
inline MetricsRegistry& BenchMetrics() {
  static MetricsRegistry registry;
  return registry;
}

// Deleter that folds the dying system's metrics rollup into BenchMetrics(),
// so the exported JSON covers every system a benchmark built — including
// the throwaway per-iteration ones in cold-path benchmarks.
struct BenchSystemDeleter {
  void operator()(EdenSystem* system) const {
    if (system != nullptr) {
      BenchMetrics().MergeFrom(system->Rollup());
      delete system;
    }
  }
};

using BenchSystem = std::unique_ptr<EdenSystem, BenchSystemDeleter>;

// Same export for benchmarks that build EdenSystem on the stack: declare one
// of these right after the system and its rollup is merged at scope exit.
struct MetricsExportScope {
  explicit MetricsExportScope(EdenSystem& system) : system_(system) {}
  MetricsExportScope(const MetricsExportScope&) = delete;
  MetricsExportScope& operator=(const MetricsExportScope&) = delete;
  ~MetricsExportScope() { BenchMetrics().MergeFrom(system_.Rollup()); }

 private:
  EdenSystem& system_;
};

inline BenchSystem MakeBenchSystem(size_t nodes, uint64_t seed = 42) {
  SystemConfig config;
  config.seed = seed;
  BenchSystem system(new EdenSystem(config));
  RegisterStandardTypes(*system);
  system->AddNodes(nodes);
  return system;
}

// Runs `future` to completion and returns the virtual time it took.
template <typename T>
SimDuration TimeAwait(EdenSystem& system, Future<T> future) {
  SimTime start = system.sim().now();
  system.Await(std::move(future));
  return system.sim().now() - start;
}

// Reports one iteration's virtual time to google-benchmark and records it in
// the exported bench.iteration.virtual_time histogram. Pass `series` to
// additionally record under bench.<series>.virtual_time when a binary wants
// separately exported distributions per scenario.
inline void SetVirtualTime(benchmark::State& state, SimDuration elapsed,
                           const std::string& series = "") {
  state.SetIterationTime(ToSeconds(elapsed));
  BenchMetrics().histogram("bench.iteration.virtual_time").Record(elapsed);
  if (!series.empty()) {
    BenchMetrics().histogram("bench." + series + ".virtual_time").Record(elapsed);
  }
}

// A std.data object with `bytes` of content on `node`.
inline Capability MakeDataObject(EdenSystem& system, size_t node, size_t bytes,
                                 uint8_t fill = 0x5a) {
  Representation rep;
  rep.set_data(0, Bytes(bytes, fill));
  auto cap = system.node(node).CreateObject("std.data", rep);
  return cap.value_or(Capability());
}

// Writes {"bench":<name>,"schema":...,"metrics":<registry>} to `path`.
// Returns false (with a message on stderr) if the file cannot be written.
inline bool WriteBenchJson(const std::string& bench_name,
                           const std::string& path) {
  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String(bench_name);
  json.Key("schema").String("eden-bench-v1");
  json.Key("metrics");
  BenchMetrics().WriteJson(json);
  json.EndObject();

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.str().c_str(), out);
  std::fputc('\n', out);
  std::fclose(out);
  return true;
}

// Pulls --json / --json=<path> out of argv (google-benchmark rejects flags
// it does not know) and returns the export path: <path> if given, the
// default otherwise. Mutates argc/argv in place.
inline std::string ConsumeJsonFlag(int* argc, char** argv,
                                   const std::string& default_path) {
  std::string path = default_path;
  int kept = 1;
  for (int i = 1; i < *argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      continue;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  return path;
}

}  // namespace eden

// Replaces BENCHMARK_MAIN(): runs the registered benchmarks, then exports
// the accumulated metrics registry as BENCH_<name>.json in the working
// directory (or wherever --json=<path> points).
#define EDEN_BENCH_MAIN(name)                                                \
  int main(int argc, char** argv) {                                          \
    std::string json_path = ::eden::ConsumeJsonFlag(                         \
        &argc, argv, std::string("BENCH_") + #name + ".json");               \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    ::benchmark::Shutdown();                                                 \
    if (!::eden::WriteBenchJson(#name, json_path)) return 1;                 \
    return 0;                                                                \
  }

#endif  // EDEN_BENCH_BENCH_UTIL_H_
