// Shared helpers for the Eden benchmark harness.
//
// All benchmarks report *virtual* time: each iteration runs a scenario inside
// the discrete-event simulation and feeds the elapsed simulated seconds to
// google-benchmark via SetIterationTime (benchmarks use ->UseManualTime()).
// Results are therefore deterministic and describe the modeled 1981 system
// (10 Mb/s Ethernet, ~1 MB/s disks, era processor budgets), not the host.
#ifndef EDEN_BENCH_BENCH_UTIL_H_
#define EDEN_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <memory>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {

inline std::unique_ptr<EdenSystem> MakeBenchSystem(size_t nodes,
                                                   uint64_t seed = 42) {
  SystemConfig config;
  config.seed = seed;
  auto system = std::make_unique<EdenSystem>(config);
  RegisterStandardTypes(*system);
  system->AddNodes(nodes);
  return system;
}

// Runs `future` to completion and returns the virtual time it took.
template <typename T>
SimDuration TimeAwait(EdenSystem& system, Future<T> future) {
  SimTime start = system.sim().now();
  system.Await(std::move(future));
  return system.sim().now() - start;
}

inline void SetVirtualTime(benchmark::State& state, SimDuration elapsed) {
  state.SetIterationTime(ToSeconds(elapsed));
}

// A std.data object with `bytes` of content on `node`.
inline Capability MakeDataObject(EdenSystem& system, size_t node, size_t bytes,
                                 uint8_t fill = 0x5a) {
  Representation rep;
  rep.set_data(0, Bytes(bytes, fill));
  auto cap = system.node(node).CreateObject("std.data", rep);
  return cap.value_or(Capability());
}

}  // namespace eden

#endif  // EDEN_BENCH_BENCH_UTIL_H_
