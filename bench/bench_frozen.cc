// E6 — Frozen-object replication (paper section 4.3: a frozen object "can be
// replicated and cached at several sites in order to save the overhead of
// remote invocations. Many traditional operating system utilities, such as
// compilers, will have this property.")
//
// Workload: `clients` nodes each issue a stream of reads against one shared
// 8 KB object for a fixed virtual duration. Two configurations:
//   BM_ReadMutableRemote/clients   object mutable: every read crosses the
//                                  wire and serializes at the owner
//   BM_ReadFrozenCached/clients    object frozen: after the first read each
//                                  node serves from its local replica
//
// Reported: aggregate reads completed per virtual second.
//
// Expected shape: mutable-remote throughput saturates (shared Ethernet + the
// owner's dispatch capacity); frozen-cached throughput scales ~linearly with
// the number of clients.
#include "bench/bench_util.h"

namespace eden {
namespace {

constexpr SimDuration kWindow = Seconds(2);

// One client: sequential reads until the deadline. All state is passed as
// parameters (copied into the coroutine frame); a capturing lambda would
// dangle once this helper returns.
Task<void> ReadClientLoop(NodeKernel* node, Capability target, SimTime deadline,
                          std::shared_ptr<uint64_t> completed,
                          std::shared_ptr<int> live) {
  while (node->sim().now() < deadline) {
    InvokeResult result = co_await node->Invoke(target, "get");
    if (result.ok()) {
      (*completed)++;
    }
  }
  (*live)--;
}

// Each client loops sequential reads until the deadline; returns total reads.
uint64_t RunReadClients(EdenSystem& system, const Capability& target,
                        size_t clients) {
  auto completed = std::make_shared<uint64_t>(0);
  auto deadline = system.sim().now() + kWindow;
  auto live = std::make_shared<int>(static_cast<int>(clients));

  for (size_t c = 0; c < clients; c++) {
    Spawn(ReadClientLoop(&system.node(c + 1), target, deadline, completed, live));
  }
  system.sim().RunWhile([live] { return *live > 0; });
  return *completed;
}

void RunThroughput(benchmark::State& state, bool frozen) {
  size_t clients = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto system = MakeBenchSystem(clients + 1, 5 + clients);
    Capability data = MakeDataObject(*system, 0, 8 * 1024);
    if (frozen) {
      system->Await(system->node(0).Invoke(data, "freeze"));
      // Warm every client's replica cache.
      for (size_t c = 0; c < clients; c++) {
        system->Await(system->node(c + 1).Invoke(data, "get"));
      }
      system->RunFor(Milliseconds(500));
    }
    state.ResumeTiming();
    SimTime start = system->sim().now();
    uint64_t reads = RunReadClients(*system, data, clients);
    SimDuration elapsed = system->sim().now() - start;
    SetVirtualTime(state, elapsed);
    state.counters["reads_per_virt_sec"] =
        static_cast<double>(reads) / ToSeconds(elapsed);
    state.counters["replica_reads"] = 0;
    for (size_t c = 0; c < clients; c++) {
      state.counters["replica_reads"] +=
          static_cast<double>(system->node(c + 1).stats().replica_reads);
    }
  }
}

void BM_ReadMutableRemote(benchmark::State& state) {
  RunThroughput(state, /*frozen=*/false);
}
BENCHMARK(BM_ReadMutableRemote)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(1);

void BM_ReadFrozenCached(benchmark::State& state) {
  RunThroughput(state, /*frozen=*/true);
}
BENCHMARK(BM_ReadFrozenCached)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN(bench_frozen);
